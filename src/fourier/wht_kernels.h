// Internal SIMD kernels for the Walsh–Hadamard butterfly. The AVX2
// translation unit is compiled with -mavx2 -ffp-contract=off (and without
// -mfma); since the butterfly is adds and subtracts only, the kernel is
// bit-identical to the scalar stage loop in wht.cc.
#ifndef PRIVIEW_FOURIER_WHT_KERNELS_H_
#define PRIVIEW_FOURIER_WHT_KERNELS_H_

#include <cstddef>

namespace priview {
namespace internal {

/// One butterfly stage of half-width `len` (len >= 4, a multiple of 4)
/// over `a[0, n)`: for every pair (j, j+len) within each 2*len block,
/// (u, v) -> (u + v, u - v). Must only be called when AVX2 is available.
void WhtStageAvx2(double* a, size_t n, size_t len);

}  // namespace internal
}  // namespace priview

#endif  // PRIVIEW_FOURIER_WHT_KERNELS_H_
