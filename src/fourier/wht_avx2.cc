// AVX2 kernel for the Walsh–Hadamard butterfly. Compiled with -mavx2 and
// -ffp-contract=off (and deliberately WITHOUT -mfma): the stage is pure
// lane-wise add/sub, so results are bit-identical to the scalar loop in
// wht.cc. solver_golden_test pins scalar and AVX2 against each other.
#include "fourier/wht_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace priview {
namespace internal {

void WhtStageAvx2(double* a, size_t n, size_t len) {
  for (size_t i = 0; i < n; i += len << 1) {
    for (size_t j = i; j < i + len; j += 4) {
      const __m256d u = _mm256_loadu_pd(a + j);
      const __m256d v = _mm256_loadu_pd(a + j + len);
      _mm256_storeu_pd(a + j, _mm256_add_pd(u, v));
      _mm256_storeu_pd(a + j + len, _mm256_sub_pd(u, v));
    }
  }
}

}  // namespace internal
}  // namespace priview

#else  // !defined(__AVX2__)

#include "common/check.h"

namespace priview {
namespace internal {

void WhtStageAvx2(double*, size_t, size_t) {
  PRIVIEW_CHECK(false);  // dispatch must not route here without AVX2
}

}  // namespace internal
}  // namespace priview

#endif  // defined(__AVX2__)
