#include "fourier/wht.h"

#include "common/check.h"

namespace priview {

void Wht(std::vector<double>* data) {
  const size_t n = data->size();
  PRIVIEW_CHECK(n != 0 && (n & (n - 1)) == 0);
  std::vector<double>& a = *data;
  for (size_t len = 1; len < n; len <<= 1) {
    for (size_t i = 0; i < n; i += len << 1) {
      for (size_t j = i; j < i + len; ++j) {
        const double u = a[j];
        const double v = a[j + len];
        a[j] = u + v;
        a[j + len] = u - v;
      }
    }
  }
}

std::vector<double> FourierCoefficients(const MarginalTable& table) {
  std::vector<double> f = table.cells();
  Wht(&f);
  return f;
}

MarginalTable TableFromCoefficients(AttrSet attrs,
                                    std::vector<double> coefficients) {
  PRIVIEW_CHECK(coefficients.size() == (size_t{1} << attrs.size()));
  Wht(&coefficients);
  const double scale = 1.0 / static_cast<double>(coefficients.size());
  for (double& c : coefficients) c *= scale;
  return MarginalTable(attrs, std::move(coefficients));
}

}  // namespace priview
