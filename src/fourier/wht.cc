#include "fourier/wht.h"

#include "common/check.h"
#include "common/simd.h"
#include "fourier/wht_kernels.h"

namespace priview {

void Wht(double* data, size_t n) {
  PRIVIEW_CHECK(n != 0 && (n & (n - 1)) == 0);
  const bool use_avx2 = simd::ActiveLevel() == simd::Level::kAvx2;
  for (size_t len = 1; len < n; len <<= 1) {
    if (use_avx2 && len >= 4) {
      internal::WhtStageAvx2(data, n, len);
      continue;
    }
    // Scalar stages: the narrow ones (len < 4) always, all of them when
    // AVX2 is off. The AVX2 kernel computes exactly these adds/subtracts.
    for (size_t i = 0; i < n; i += len << 1) {
      for (size_t j = i; j < i + len; ++j) {
        const double u = data[j];
        const double v = data[j + len];
        data[j] = u + v;
        data[j + len] = u - v;
      }
    }
  }
}

void Wht(std::vector<double>* data) { Wht(data->data(), data->size()); }

std::vector<double> FourierCoefficients(const MarginalTable& table) {
  std::vector<double> f = table.cells();
  Wht(&f);
  return f;
}

MarginalTable TableFromCoefficients(AttrSet attrs,
                                    std::vector<double> coefficients) {
  PRIVIEW_CHECK(coefficients.size() == (size_t{1} << attrs.size()));
  Wht(&coefficients);
  const double scale = 1.0 / static_cast<double>(coefficients.size());
  for (double& c : coefficients) c *= scale;
  return MarginalTable(attrs, std::move(coefficients));
}

}  // namespace priview
