// Fast Walsh–Hadamard transform and the marginal ↔ Fourier-coefficient
// correspondence used by the Barak et al. (PODS'07) baseline.
//
// Conventions (unnormalized): for a table T over k attributes,
//   f_S = Σ_a T(a) · (-1)^{a·S}          (forward; f_∅ is the total count)
//   T(a) = (1/2^k) Σ_S f_S · (-1)^{a·S}  (inverse)
// Both directions are the same butterfly; the inverse divides by 2^k.
#ifndef PRIVIEW_FOURIER_WHT_H_
#define PRIVIEW_FOURIER_WHT_H_

#include <vector>

#include "table/marginal_table.h"

namespace priview {

/// In-place unnormalized Walsh–Hadamard transform. data.size() must be a
/// power of two. Applying it twice multiplies every entry by data.size().
void Wht(std::vector<double>* data);

/// All 2^k Fourier coefficients of a marginal table; index S is a bitmask
/// over the table's cell-index bit positions.
std::vector<double> FourierCoefficients(const MarginalTable& table);

/// Rebuilds a marginal table over `attrs` from its 2^|attrs| coefficients.
MarginalTable TableFromCoefficients(AttrSet attrs,
                                    std::vector<double> coefficients);

}  // namespace priview

#endif  // PRIVIEW_FOURIER_WHT_H_
