// Fast Walsh–Hadamard transform and the marginal ↔ Fourier-coefficient
// correspondence used by the Barak et al. (PODS'07) baseline.
//
// Conventions (unnormalized): for a table T over k attributes,
//   f_S = Σ_a T(a) · (-1)^{a·S}          (forward; f_∅ is the total count)
//   T(a) = (1/2^k) Σ_S f_S · (-1)^{a·S}  (inverse)
// Both directions are the same butterfly; the inverse divides by 2^k.
//
// The butterfly is pure adds and subtracts — no contraction sites — so the
// wide stages (len >= 4) dispatch to an AVX2 kernel (wht_avx2.cc) that is
// bit-identical to the scalar path by construction.
#ifndef PRIVIEW_FOURIER_WHT_H_
#define PRIVIEW_FOURIER_WHT_H_

#include <cstddef>
#include <vector>

#include "table/marginal_table.h"

namespace priview {

/// In-place unnormalized Walsh–Hadamard transform over `data[0, n)`. n
/// must be a power of two. Applying it twice multiplies every entry by n.
/// Allocation-free; works on arena spans and table cells alike.
void Wht(double* data, size_t n);

/// Vector convenience overload.
void Wht(std::vector<double>* data);

/// All 2^k Fourier coefficients of a marginal table; index S is a bitmask
/// over the table's cell-index bit positions.
std::vector<double> FourierCoefficients(const MarginalTable& table);

/// Rebuilds a marginal table over `attrs` from its 2^|attrs| coefficients.
MarginalTable TableFromCoefficients(AttrSet attrs,
                                    std::vector<double> coefficients);

}  // namespace priview

#endif  // PRIVIEW_FOURIER_WHT_H_
