// Server-side observability for the query-serving subsystem: lock-free
// atomic counters for the request lifecycle (admitted / rejected /
// coalesced / deadline-expired / degraded) and fixed-bucket latency
// histograms per request kind. Everything here is queryable in-process
// (Snapshot) and over the wire (the stats request renders Snapshot as
// JSON), and cheap enough to record on every request: one relaxed
// fetch_add per counter, two per completed request.
//
// Histogram shape: bucket i covers latencies in [2^i, 2^(i+1)) microseconds
// (bucket 0 additionally absorbs sub-microsecond samples), 22 buckets total
// so the top bucket starts at ~2.1 s — far past any serving deadline.
// Percentiles are read off the cumulative bucket counts and reported as the
// bucket's upper bound, so a reported p99 is a true upper bound at ~2x
// resolution, which is what capacity planning needs.
#ifndef PRIVIEW_SERVE_SERVER_METRICS_H_
#define PRIVIEW_SERVE_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace priview::serve {

/// Wire-level request families the server tracks latency for separately.
/// Cube operations (roll-up / slice / dice) share one family: they are all
/// "fetch a marginal, post-process it" and have the same cost profile.
enum class RequestKind : int {
  kMarginal = 0,
  kConjunction = 1,
  kCube = 2,
  kStats = 3,
};
inline constexpr int kRequestKindCount = 4;
const char* RequestKindName(RequestKind kind);

/// Degradation tier that produced an answer (the PR 1 fallback chain as
/// seen from the broker): full requested-method reconstruction, the
/// cheaper least-norm solve, or a cache roll-up with no solve at all.
enum class ServeTier : int {
  kFull = 0,
  kLeastNorm = 1,
  kCacheRollUp = 2,
};
inline constexpr int kServeTierCount = 3;
const char* ServeTierName(ServeTier tier);

class ServerMetrics {
 public:
  static constexpr int kLatencyBuckets = 22;

  ServerMetrics() = default;
  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  // --- request lifecycle ---------------------------------------------------
  void RecordAdmitted() { Add(&admitted_); }
  void RecordRejected() { Add(&rejected_); }
  void RecordCoalesced() { Add(&coalesced_); }
  void RecordDeadlineExpired() { Add(&deadline_expired_); }
  void RecordServedByTier(ServeTier tier) {
    Add(&served_by_tier_[static_cast<int>(tier)]);
  }

  // --- connections and framing ---------------------------------------------
  void RecordConnectionOpened() { Add(&connections_opened_); }
  void RecordConnectionClosed() { Add(&connections_closed_); }
  void RecordFrameError() { Add(&frame_errors_); }

  /// Completed request of `kind` that took `micros` microseconds end to
  /// end (admission to response), successful or not.
  void RecordLatency(RequestKind kind, uint64_t micros);

  /// Point-in-time copy of every counter — plain values, safe to hand to
  /// other threads or serialize. Individual counters are read relaxed, so a
  /// snapshot taken mid-request may be off by in-flight increments; it is
  /// never torn within a single counter.
  struct Snapshot {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t coalesced = 0;
    uint64_t deadline_expired = 0;
    uint64_t served_by_tier[kServeTierCount] = {};
    uint64_t connections_opened = 0;
    uint64_t connections_closed = 0;
    uint64_t frame_errors = 0;
    uint64_t latency_counts[kRequestKindCount][kLatencyBuckets] = {};
    uint64_t latency_totals[kRequestKindCount] = {};

    /// Fraction of admitted requests that shared another request's
    /// reconstruction (duplicate or sub-marginal coalescing).
    double CoalescingHitRate() const;
    /// Latency below which a fraction `p` (in (0, 1]) of completed `kind`
    /// requests fell, in milliseconds (bucket upper bound; 0 when no
    /// requests of that kind completed).
    double LatencyPercentileMs(RequestKind kind, double p) const;
    /// Multi-line human-readable rendering for logs.
    std::string ToString() const;
    /// Single JSON object — the stats request's wire payload.
    std::string ToJson() const;
  };
  Snapshot TakeSnapshot() const;

 private:
  static void Add(std::atomic<uint64_t>* counter) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::array<std::atomic<uint64_t>, kServeTierCount> served_by_tier_{};
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::array<std::array<std::atomic<uint64_t>, kLatencyBuckets>,
             kRequestKindCount>
      latency_counts_{};
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_SERVER_METRICS_H_
