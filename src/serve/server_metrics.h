// Server-side observability for the query-serving subsystem, built on the
// unified obs substrate: every counter and latency histogram below is an
// obs instrument owned by a per-server MetricsRegistry, so one scrape
// (registry().RenderPrometheus()) exports the whole request lifecycle —
// admitted / rejected / expired-at-admission / coalesced /
// deadline-expired / degraded — alongside per-kind latency, broker queue
// wait, coalesce width and dispatch latency.
//
// Each ServerMetrics owns its registry rather than writing into
// MetricsRegistry::Global(): tests and multi-server processes must not
// cross-pollute counts. The legacy Snapshot/ToJson API is kept as a facade
// over the instruments (the wire `stats` request still renders JSON; the
// new `metrics` request renders the Prometheus exposition).
//
// Histogram shape (shared with obs::Histogram): bucket i covers latencies
// in [2^i, 2^(i+1)) microseconds (bucket 0 additionally absorbs
// sub-microsecond samples), 22 buckets total so the top bucket starts at
// ~2.1 s — far past any serving deadline. Percentiles are read off the
// cumulative bucket counts and reported as the bucket's upper bound, so a
// reported p99 is a true upper bound at ~2x resolution, which is what
// capacity planning needs.
#ifndef PRIVIEW_SERVE_SERVER_METRICS_H_
#define PRIVIEW_SERVE_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics_registry.h"

namespace priview::serve {

/// Wire-level request families the server tracks latency for separately.
/// Cube operations (roll-up / slice / dice) share one family: they are all
/// "fetch a marginal, post-process it" and have the same cost profile.
enum class RequestKind : int {
  kMarginal = 0,
  kConjunction = 1,
  kCube = 2,
  kStats = 3,
  /// Time-series query: one marginal per retained epoch (or trend deltas).
  kSeries = 4,
};
inline constexpr int kRequestKindCount = 5;
const char* RequestKindName(RequestKind kind);

/// Degradation tier that produced an answer (the PR 1 fallback chain as
/// seen from the broker): full requested-method reconstruction, the
/// cheaper least-norm solve, or a cache roll-up with no solve at all.
enum class ServeTier : int {
  kFull = 0,
  kLeastNorm = 1,
  kCacheRollUp = 2,
};
inline constexpr int kServeTierCount = 3;
const char* ServeTierName(ServeTier tier);

/// Why the connection supervisor force-closed a connection. Rendered as
/// the `cause` label of priview_serve_evictions_total — values are drawn
/// from this fixed enum (never from peer-controlled bytes), so no label
/// escaping is ever needed.
enum class EvictionCause : int {
  /// Slowloris defense: a frame started but stalled past the io deadline.
  kFrameStall = 0,
  /// Half-open defense: no completed traffic within the idle deadline.
  kIdle = 1,
  /// Slow-reader defense: the bounded egress buffer overflowed because
  /// the peer stopped draining its responses.
  kEgressOverflow = 2,
  /// Too many pipelined requests outstanding on one connection.
  kPipelineOverflow = 3,
  /// Unsyncable stream: oversized/torn frame or a raw read error.
  kProtocolError = 4,
  /// Server stop or drain-deadline straggler cleanup.
  kShutdown = 5,
};
inline constexpr int kEvictionCauseCount = 6;
const char* EvictionCauseName(EvictionCause cause);

/// Why an accepted connection was shed (closed immediately at admission,
/// before any frame was read). The `cause` label of
/// priview_serve_accepts_shed_total.
enum class ShedCause : int {
  /// Global connection-count cap reached.
  kConnCap = 0,
  /// Per-peer-IP cap reached (TCP listeners only).
  kIpCap = 1,
  /// accept(2) hit the fd limit; the spare-fd path shed the connection.
  kEmfile = 2,
  /// Adaptive overload shedding: broker queue-wait p99 over threshold.
  kOverload = 3,
};
inline constexpr int kShedCauseCount = 4;
const char* ShedCauseName(ShedCause cause);

class ServerMetrics {
 public:
  static constexpr int kLatencyBuckets = obs::Histogram::kBuckets;

  ServerMetrics();
  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  // --- request lifecycle ---------------------------------------------------
  void RecordAdmitted() { admitted_->Increment(); }
  void RecordRejected() { rejected_->Increment(); }
  /// Request whose deadline had already passed when it reached admission:
  /// rejected up front, counted separately from queue-full rejections.
  void RecordExpiredAtAdmission() { expired_at_admission_->Increment(); }
  void RecordCoalesced() { coalesced_->Increment(); }
  void RecordDeadlineExpired() { deadline_expired_->Increment(); }
  void RecordServedByTier(ServeTier tier) {
    served_by_tier_[static_cast<int>(tier)]->Increment();
  }

  // --- broker internals ----------------------------------------------------
  /// Time a request sat in the admission queue before its batch was
  /// picked up, in microseconds.
  void RecordQueueWait(uint64_t micros) { queue_wait_us_->Observe(micros); }
  /// Distinct scopes handed to the engine for one dispatched batch after
  /// coalescing (batch width as the solver sees it).
  void RecordCoalesceWidth(uint64_t width) {
    coalesce_width_->Observe(width);
  }
  /// End-to-end time for one broker batch dispatch (shed + group +
  /// coalesce + answer + complete), in microseconds.
  void RecordDispatchLatency(uint64_t micros) {
    dispatch_latency_us_->Observe(micros);
  }

  // --- connections and framing ---------------------------------------------
  void RecordConnectionOpened() { connections_opened_->Increment(); }
  void RecordConnectionClosed() { connections_closed_->Increment(); }
  void RecordFrameError() { frame_errors_->Increment(); }

  // --- supervisor: eviction, shedding, backpressure ------------------------
  /// The supervisor force-closed a connection for `cause`.
  void RecordEviction(EvictionCause cause) {
    evictions_[static_cast<int>(cause)]->Increment();
  }
  /// An accepted connection was closed at admission for `cause`.
  void RecordShedAccept(ShedCause cause) {
    shed_accepts_[static_cast<int>(cause)]->Increment();
  }
  /// Ratchet the per-connection egress-buffer high-water mark (bytes).
  void RecordEgressHighWater(uint64_t bytes) {
    uint64_t seen = egress_hwm_seen_.load(std::memory_order_relaxed);
    while (bytes > seen && !egress_hwm_seen_.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
    egress_hwm_bytes_->Set(
        static_cast<int64_t>(egress_hwm_seen_.load(std::memory_order_relaxed)));
  }
  /// Point-in-time copy of the broker queue-wait histogram, for the
  /// supervisor's windowed (delta-based) overload-shedding p99.
  obs::Histogram::Snapshot QueueWaitSnapshot() const {
    return queue_wait_us_->TakeSnapshot();
  }

  // --- lifecycle -----------------------------------------------------------
  /// A graceful drain completed; `inflight_at_close` is how many requests
  /// were still queued or executing when the drain grace expired (0 means
  /// the drain was clean).
  void RecordDrain(uint64_t inflight_at_close) {
    drains_->Increment();
    drain_inflight_at_close_->Set(static_cast<int64_t>(inflight_at_close));
  }
  void RecordHealthProbe() { health_probes_->Increment(); }

  /// Completed request of `kind` that took `micros` microseconds end to
  /// end (admission to response), successful or not.
  void RecordLatency(RequestKind kind, uint64_t micros) {
    latency_us_[static_cast<int>(kind)]->Observe(micros);
  }

  /// The registry every instrument above lives in; rendering it is the
  /// server's Prometheus scrape payload for this server instance.
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

  /// Point-in-time copy of every counter — plain values, safe to hand to
  /// other threads or serialize. Individual counters are read relaxed, so a
  /// snapshot taken mid-request may be off by in-flight increments; it is
  /// never torn within a single counter.
  struct Snapshot {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t expired_at_admission = 0;
    uint64_t coalesced = 0;
    uint64_t deadline_expired = 0;
    uint64_t served_by_tier[kServeTierCount] = {};
    uint64_t connections_opened = 0;
    uint64_t connections_closed = 0;
    uint64_t frame_errors = 0;
    uint64_t evictions[kEvictionCauseCount] = {};
    uint64_t shed_accepts[kShedCauseCount] = {};
    uint64_t latency_counts[kRequestKindCount][kLatencyBuckets] = {};
    uint64_t latency_totals[kRequestKindCount] = {};

    uint64_t TotalEvictions() const;
    uint64_t TotalShedAccepts() const;

    /// Fraction of admitted requests that shared another request's
    /// reconstruction (duplicate or sub-marginal coalescing).
    double CoalescingHitRate() const;
    /// Latency below which a fraction `p` (in (0, 1]) of completed `kind`
    /// requests fell, in milliseconds (bucket upper bound; 0 when no
    /// requests of that kind completed).
    double LatencyPercentileMs(RequestKind kind, double p) const;
    /// Multi-line human-readable rendering for logs.
    std::string ToString() const;
    /// Single JSON object — the stats request's wire payload.
    std::string ToJson() const;
  };
  Snapshot TakeSnapshot() const;

 private:
  obs::MetricsRegistry registry_;

  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* expired_at_admission_;
  obs::Counter* coalesced_;
  obs::Counter* deadline_expired_;
  std::array<obs::Counter*, kServeTierCount> served_by_tier_;
  obs::Counter* connections_opened_;
  obs::Counter* connections_closed_;
  obs::Counter* frame_errors_;
  std::array<obs::Counter*, kEvictionCauseCount> evictions_;
  std::array<obs::Counter*, kShedCauseCount> shed_accepts_;
  obs::Gauge* egress_hwm_bytes_;
  std::atomic<uint64_t> egress_hwm_seen_{0};
  obs::Counter* drains_;
  obs::Gauge* drain_inflight_at_close_;
  obs::Counter* health_probes_;
  std::array<obs::Histogram*, kRequestKindCount> latency_us_;
  obs::Histogram* queue_wait_us_;
  obs::Histogram* coalesce_width_;
  obs::Histogram* dispatch_latency_us_;
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_SERVER_METRICS_H_
