#include "serve/connection_supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/failpoint.h"

namespace priview::serve {

namespace {

// Sentinel epoll user-data ids for the loop's own fds; real connections
// start at 16 (next_conn_id_).
constexpr uint64_t kIdUnixListener = 0;
constexpr uint64_t kIdTcpListener = 1;
constexpr uint64_t kIdWake = 2;

// Deadline sweeps and shed-window evaluations are amortized: the epoll
// wait wakes at least this often, and the sweep runs at most this often.
constexpr int kSweepIntervalMs = 50;
// Overload shedding looks at the queue-wait p99 over windows of this size.
constexpr int kShedWindowMs = 500;

constexpr size_t kReadChunk = 64 * 1024;

bool WouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

// p99 upper bound (microseconds) of the histogram delta between two
// snapshots — the distribution of only the observations that landed
// between them. Lifetime percentiles go stale after hours of healthy
// traffic; shedding has to react to the last window.
uint64_t WindowP99Us(const obs::Histogram::Snapshot& prev,
                     const obs::Histogram::Snapshot& now) {
  const uint64_t total = now.total - prev.total;
  if (total == 0) return 0;
  const double rank = 0.99 * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    cumulative += now.counts[b] - prev.counts[b];
    if (static_cast<double>(cumulative) >= rank) {
      return obs::Histogram::BucketUpperBound(b);
    }
  }
  return obs::Histogram::BucketUpperBound(obs::Histogram::kBuckets - 1);
}

}  // namespace

ConnectionSupervisor::ConnectionSupervisor(const SupervisorOptions& options,
                                           ServerMetrics* metrics,
                                           Handler handler)
    : options_(options), metrics_(metrics), handler_(std::move(handler)) {}

ConnectionSupervisor::~ConnectionSupervisor() { Stop(); }

Status ConnectionSupervisor::Start(int unix_listen_fd, int tcp_listen_fd) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("supervisor already started");

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError(std::string("eventfd: ") + std::strerror(err));
  }
  // The spare fd backs the EMFILE shed path; /dev/null is always openable
  // at startup. If it ever fails we still run, just without the shed trick.
  spare_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);

  unix_listen_fd_ = unix_listen_fd;
  tcp_listen_fd_ = tcp_listen_fd;

  // On any registration failure release only the loop-owned fds; the
  // listener fds stay the caller's to close.
  auto fail = [this](const char* what) {
    const int err = errno;
    close(epoll_fd_);
    epoll_fd_ = -1;
    close(wake_fd_);
    wake_fd_ = -1;
    if (spare_fd_ >= 0) close(spare_fd_);
    spare_fd_ = -1;
    unix_listen_fd_ = tcp_listen_fd_ = -1;
    return Status::IOError(std::string(what) + ": " + std::strerror(err));
  };
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  if (unix_listen_fd_ >= 0) {
    ev.data.u64 = kIdUnixListener;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, unix_listen_fd_, &ev) != 0) {
      return fail("epoll_ctl(unix listener)");
    }
  }
  if (tcp_listen_fd_ >= 0) {
    ev.data.u64 = kIdTcpListener;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_listen_fd_, &ev) != 0) {
      return fail("epoll_ctl(tcp listener)");
    }
  }
  ev.data.u64 = kIdWake;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail("epoll_ctl(wake)");
  }

  stop_.store(false, std::memory_order_relaxed);
  listeners_closed_.store(false, std::memory_order_relaxed);
  const size_t pool = std::max<size_t>(1, options_.handler_threads);
  handler_pool_.reserve(pool);
  for (size_t i = 0; i < pool; ++i) {
    handler_pool_.emplace_back([this] { HandlerThread(); });
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  started_ = true;
  stopped_ = false;
  return Status::OK();
}

void ConnectionSupervisor::CloseListeners() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (listeners_closed_.exchange(true, std::memory_order_acq_rel)) return;
  // Deregister-and-close from here (not the loop) is safe: the loop only
  // touches listener fds on EPOLLIN events, and closing an fd removes it
  // from the epoll set atomically in the kernel. A race where the loop is
  // mid-accept on the old fd just yields EBADF, which HandleAccept treats
  // as "listener gone".
  const int unix_fd = unix_listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (unix_fd >= 0) close(unix_fd);
  const int tcp_fd = tcp_listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (tcp_fd >= 0) close(tcp_fd);
  WakeLoop();
}

bool ConnectionSupervisor::Quiesce(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool jobs_pending;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_pending = !jobs_.empty();
    }
    bool completions_pending;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_pending = !completions_.empty();
    }
    const bool quiet = !jobs_pending && !completions_pending &&
                       inflight_jobs_.load(std::memory_order_acquire) == 0 &&
                       total_egress_bytes_.load(std::memory_order_acquire) == 0;
    if (quiet) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void ConnectionSupervisor::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stop_.store(true, std::memory_order_release);
  jobs_cv_.notify_all();
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  for (auto& t : handler_pool_) {
    if (t.joinable()) t.join();
  }
  handler_pool_.clear();
  // The loop evicted every connection before exiting; tear down the
  // loop-owned fds.
  {
    const int fd = unix_listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) close(fd);
  }
  {
    const int fd = tcp_listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) close(fd);
  }
  if (wake_fd_ >= 0) close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) close(epoll_fd_);
  epoll_fd_ = -1;
  if (spare_fd_ >= 0) close(spare_fd_);
  spare_fd_ = -1;
  stopped_ = true;
}

void ConnectionSupervisor::WakeLoop() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  ssize_t rc;
  do {
    rc = write(wake_fd_, &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
}

void ConnectionSupervisor::LoopThread() {
  constexpr int kMaxEvents = 256;
  struct epoll_event events[kMaxEvents];
  last_sweep_ = std::chrono::steady_clock::now();
  last_shed_eval_ = last_sweep_;
  if (metrics_ != nullptr) {
    last_queue_wait_snapshot_ = metrics_->QueueWaitSnapshot();
  }

  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, kSweepIntervalMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing to do but shut down
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t mask = events[i].events;
      if (id == kIdWake) {
        uint64_t drain;
        while (read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (id == kIdUnixListener || id == kIdTcpListener) {
        if (listeners_closed_.load(std::memory_order_acquire)) continue;
        const bool is_tcp = (id == kIdTcpListener);
        const int listen_fd =
            is_tcp ? tcp_listen_fd_.load(std::memory_order_acquire)
                   : unix_listen_fd_.load(std::memory_order_acquire);
        if (listen_fd < 0) continue;  // closed since epoll_wait returned
        HandleAccept(listen_fd, is_tcp);
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // evicted earlier this batch
      Conn* conn = it->second.get();
      if (mask & (EPOLLERR | EPOLLHUP)) {
        // Peer reset or vanished. Mid-frame this is a torn stream
        // (protocol error); otherwise it is an ordinary close.
        if (conn->assembler.mid_frame()) {
          if (metrics_ != nullptr) metrics_->RecordFrameError();
          Evict(conn, EvictionCause::kProtocolError);
        } else {
          CloseConn(conn);
        }
        continue;
      }
      if (mask & EPOLLIN) {
        HandleReadable(conn);
        it = conns_.find(id);
        if (it == conns_.end()) continue;  // evicted inside the read
        conn = it->second.get();
      }
      if (mask & EPOLLOUT) HandleWritable(conn);
    }
    DrainCompletions();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep_ >= std::chrono::milliseconds(kSweepIntervalMs)) {
      last_sweep_ = now;
      SweepDeadlines();
    }
    if (now - last_shed_eval_ >= std::chrono::milliseconds(kShedWindowMs)) {
      last_shed_eval_ = now;
      UpdateSheddingWindow();
    }
  }

  // Shutdown: evict every remaining connection. Collect ids first —
  // Evict mutates conns_.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it != conns_.end()) Evict(it->second.get(), EvictionCause::kShutdown);
  }
}

void ConnectionSupervisor::HandleAccept(int listen_fd, bool is_tcp) {
  if (listen_fd < 0) return;
  // Drain the accept backlog; edge cases (EMFILE, caps, overload) shed
  // per connection and keep going so one bad accept cannot wedge the rest.
  for (;;) {
    struct sockaddr_storage addr;
    socklen_t addr_len = sizeof(addr);
    int fd = accept4(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                     &addr_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    const bool forced_emfile = fd >= 0 && PRIVIEW_FAILPOINT("serve/accept-emfile");
    if (forced_emfile) {
      // Drill the EMFILE path with a healthy fd standing in for the one
      // accept would have produced after the spare was released.
      close(fd);
      fd = -1;
      errno = EMFILE;
    }
    if (fd < 0) {
      const int err = errno;
      if (WouldBlock(err)) return;  // backlog drained
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE) {
        // Out of fds: release the spare, accept the pending connection,
        // shed it, re-acquire the spare. Without this the listener stays
        // permanently readable and the loop spins at 100% CPU doing
        // nothing.
        if (spare_fd_ >= 0) {
          close(spare_fd_);
          spare_fd_ = -1;
          int shed = accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (shed >= 0) close(shed);
          spare_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
        }
        if (metrics_ != nullptr) {
          metrics_->RecordShedAccept(ShedCause::kEmfile);
        }
        if (forced_emfile) continue;
        return;  // real fd pressure: stop accepting this round
      }
      return;  // EBADF after CloseListeners, or a listener-level error
    }

    if (conns_.size() >= options_.max_connections) {
      close(fd);
      if (metrics_ != nullptr) metrics_->RecordShedAccept(ShedCause::kConnCap);
      continue;
    }
    if (shedding_.load(std::memory_order_relaxed)) {
      close(fd);
      if (metrics_ != nullptr) metrics_->RecordShedAccept(ShedCause::kOverload);
      continue;
    }
    uint32_t peer_ip = 0;
    if (is_tcp && addr.ss_family == AF_INET) {
      peer_ip = ntohl(reinterpret_cast<struct sockaddr_in*>(&addr)
                          ->sin_addr.s_addr);
      if (options_.max_connections_per_ip > 0) {
        auto it = per_ip_.find(peer_ip);
        if (it != per_ip_.end() &&
            it->second >= options_.max_connections_per_ip) {
          close(fd);
          if (metrics_ != nullptr) {
            metrics_->RecordShedAccept(ShedCause::kIpCap);
          }
          continue;
        }
      }
    }

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->peer_ip = peer_ip;
    conn->last_activity = Conn::Clock::now();
    if (PRIVIEW_FAILPOINT("serve/half-open")) {
      // Drill the half-open defense: pretend this peer's last activity
      // was in the deep past so the idle sweep evicts it.
      conn->last_activity -= std::chrono::hours(24);
    }

    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    if (peer_ip != 0) per_ip_[peer_ip]++;
    if (metrics_ != nullptr) metrics_->RecordConnectionOpened();
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void ConnectionSupervisor::HandleReadable(Conn* conn) {
  uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (WouldBlock(errno)) break;
      Evict(conn, EvictionCause::kProtocolError);
      return;
    }
    if (n == 0) {
      // EOF. Mid-frame it is a torn frame; at a boundary it is a clean
      // close — but only once every buffered response has gone out.
      if (conn->assembler.mid_frame()) {
        if (metrics_ != nullptr) metrics_->RecordFrameError();
        Evict(conn, EvictionCause::kProtocolError);
      } else if (conn->request_inflight || !conn->pending.empty() ||
                 conn->egress_off < conn->egress.size()) {
        // Half-close: peer shut down its write side but may still read.
        // Let in-flight work finish; the conn closes once everything
        // drains. Drop read interest or the level-triggered EOF would
        // re-fire every epoll_wait.
        conn->read_eof = true;
        conn->last_activity = Conn::Clock::now();
        UpdateEpollInterest(conn);
      } else {
        CloseConn(conn);
      }
      return;
    }

    const bool was_mid_frame = conn->assembler.mid_frame();
    const Status ingest = conn->assembler.Ingest(buf, n);
    if (!ingest.ok()) {
      // Oversized/liar header — unsyncable stream.
      if (metrics_ != nullptr) metrics_->RecordFrameError();
      Evict(conn, EvictionCause::kProtocolError);
      return;
    }
    conn->last_activity = Conn::Clock::now();
    while (conn->assembler.HasFrame()) {
      conn->pending.push_back(conn->assembler.PopFrame());
    }
    const size_t outstanding =
        conn->pending.size() + (conn->request_inflight ? 1 : 0);
    if (outstanding > options_.max_pipelined_frames) {
      Evict(conn, EvictionCause::kPipelineOverflow);
      return;
    }
    if (conn->assembler.mid_frame()) {
      if (!was_mid_frame && options_.io_timeout_ms > 0) {
        // Frame just started: arm the stall deadline. An already-armed
        // deadline is NOT pushed forward by trickle progress — a
        // slowloris drips one byte per poll precisely to refresh naive
        // idle timers.
        conn->frame_deadline =
            Conn::Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
      }
    } else {
      conn->frame_deadline = {};
    }
    if (PRIVIEW_FAILPOINT("serve/peer-stall")) {
      // Drill the slowloris defense: treat this peer as already stalled.
      Evict(conn, EvictionCause::kFrameStall);
      return;
    }
    DispatchNext(conn);
    if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained the socket
  }
}

void ConnectionSupervisor::DispatchNext(Conn* conn) {
  if (conn->request_inflight || conn->pending.empty()) return;
  conn->request_inflight = true;
  Job job;
  job.conn_id = conn->id;
  job.payload = std::move(conn->pending.front());
  conn->pending.pop_front();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void ConnectionSupervisor::HandlerThread() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !jobs_.empty();
      });
      if (jobs_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    inflight_jobs_.fetch_add(1, std::memory_order_acq_rel);
    Completion done;
    done.conn_id = job.conn_id;
    done.response = handler_(std::move(job.payload));
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    inflight_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    WakeLoop();
  }
}

void ConnectionSupervisor::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (auto& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // evicted while the handler ran
    Conn* conn = it->second.get();
    conn->request_inflight = false;
    if (PRIVIEW_FAILPOINT("serve/slow-reader")) {
      // Drill the slow-reader defense: treat this response as having
      // overflowed the peer's egress bound.
      Evict(conn, EvictionCause::kEgressOverflow);
      continue;
    }
    if (!EnqueueResponse(conn, done.response)) {
      Evict(conn, EvictionCause::kEgressOverflow);
      continue;
    }
    conn->last_activity = Conn::Clock::now();
    DispatchNext(conn);
    HandleWritable(conn);  // opportunistic write; usually completes here
  }
}

bool ConnectionSupervisor::EnqueueResponse(Conn* conn,
                                           const std::vector<uint8_t>& payload) {
  // Compact the sent prefix before growing — keeps the buffer bounded by
  // un-sent bytes, not by lifetime traffic.
  if (conn->egress_off > 0) {
    conn->egress.erase(conn->egress.begin(),
                       conn->egress.begin() + conn->egress_off);
    conn->egress_off = 0;
  }
  const size_t before = conn->egress.size();
  if (!AppendFrame(&conn->egress, payload).ok()) return false;
  const size_t queued = conn->egress.size();
  total_egress_bytes_.fetch_add(queued - before, std::memory_order_acq_rel);
  if (metrics_ != nullptr) metrics_->RecordEgressHighWater(queued);
  if (queued > options_.max_egress_bytes) return false;
  if (options_.io_timeout_ms > 0 && conn->write_deadline == Conn::Clock::time_point{}) {
    conn->write_deadline =
        Conn::Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  }
  return true;
}

void ConnectionSupervisor::HandleWritable(Conn* conn) {
  while (conn->egress_off < conn->egress.size()) {
    const ssize_t n =
        write(conn->fd, conn->egress.data() + conn->egress_off,
              conn->egress.size() - conn->egress_off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (WouldBlock(errno)) break;
      Evict(conn, EvictionCause::kProtocolError);
      return;
    }
    conn->egress_off += static_cast<size_t>(n);
    total_egress_bytes_.fetch_sub(static_cast<uint64_t>(n),
                                  std::memory_order_acq_rel);
    conn->last_activity = Conn::Clock::now();
    if (options_.io_timeout_ms > 0) {
      // Write progress pushes the write stall deadline forward — unlike
      // the read side, any forward motion here is the peer doing real
      // work draining kernel buffers.
      conn->write_deadline = conn->last_activity +
                             std::chrono::milliseconds(options_.io_timeout_ms);
    }
  }
  if (conn->egress_off >= conn->egress.size()) {
    conn->egress.clear();
    conn->egress_off = 0;
    conn->write_deadline = {};
    if (conn->read_eof && !conn->request_inflight && conn->pending.empty()) {
      CloseConn(conn);  // half-closed peer got everything it was owed
      return;
    }
  }
  const bool want_write = conn->egress_off < conn->egress.size();
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    UpdateEpollInterest(conn);
  }
}

void ConnectionSupervisor::UpdateEpollInterest(Conn* conn) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn->read_eof ? 0u : uint32_t(EPOLLIN)) |
              (conn->want_write ? uint32_t(EPOLLOUT) : 0u);
  ev.data.u64 = conn->id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void ConnectionSupervisor::SweepDeadlines() {
  const auto now = Conn::Clock::now();
  std::vector<uint64_t> expired;
  std::vector<EvictionCause> causes;
  for (const auto& [id, conn] : conns_) {
    if (conn->frame_deadline != Conn::Clock::time_point{} &&
        now >= conn->frame_deadline) {
      expired.push_back(id);
      causes.push_back(EvictionCause::kFrameStall);
      continue;
    }
    if (conn->write_deadline != Conn::Clock::time_point{} &&
        now >= conn->write_deadline) {
      expired.push_back(id);
      causes.push_back(EvictionCause::kEgressOverflow);
      continue;
    }
    if (options_.idle_timeout_ms > 0 && !conn->request_inflight &&
        conn->pending.empty() &&
        now - conn->last_activity >=
            std::chrono::milliseconds(options_.idle_timeout_ms)) {
      expired.push_back(id);
      causes.push_back(EvictionCause::kIdle);
    }
  }
  for (size_t i = 0; i < expired.size(); ++i) {
    auto it = conns_.find(expired[i]);
    if (it != conns_.end()) Evict(it->second.get(), causes[i]);
  }
}

void ConnectionSupervisor::UpdateSheddingWindow() {
  if (metrics_ == nullptr || options_.shed_queue_wait_p99_us == 0) return;
  const obs::Histogram::Snapshot now_snap = metrics_->QueueWaitSnapshot();
  const uint64_t p99 = WindowP99Us(last_queue_wait_snapshot_, now_snap);
  last_queue_wait_snapshot_ = now_snap;
  // A quiet window (no queue waits observed) always clears shedding —
  // when shed accepts stop new work, the queue drains and p99 of an
  // empty window must not latch the previous verdict.
  shedding_.store(p99 > options_.shed_queue_wait_p99_us,
                  std::memory_order_relaxed);
}

void ConnectionSupervisor::Evict(Conn* conn, EvictionCause cause) {
  if (metrics_ != nullptr) metrics_->RecordEviction(cause);
  CloseConn(conn);
}

void ConnectionSupervisor::CloseConn(Conn* conn) {
  const uint64_t id = conn->id;
  const size_t unsent = conn->egress.size() - conn->egress_off;
  if (unsent > 0) {
    total_egress_bytes_.fetch_sub(unsent, std::memory_order_acq_rel);
  }
  if (conn->peer_ip != 0) {
    auto it = per_ip_.find(conn->peer_ip);
    if (it != per_ip_.end() && --(it->second) == 0) per_ip_.erase(it);
  }
  // Closing the fd removes it from the epoll set.
  close(conn->fd);
  if (metrics_ != nullptr) metrics_->RecordConnectionClosed();
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  // A completion may still arrive for this conn; DrainCompletions drops
  // completions whose conn_id is gone, so erasing here is safe.
  conns_.erase(id);
}

}  // namespace priview::serve
