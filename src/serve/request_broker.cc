#include "serve/request_broker.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/reconstruct.h"
#include "obs/tracer.h"

namespace priview::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

}  // namespace

struct RequestBroker::Pending {
  enum class Kind { kMarginal, kSeries };
  Kind kind = Kind::kMarginal;
  std::string synopsis;
  AttrSet target;
  // Series-only fields.
  uint32_t last_n = 0;
  SeriesMode mode = SeriesMode::kLevels;
  Clock::time_point deadline;
  Clock::time_point admitted_at;
  // Exactly one of these is fulfilled, per `kind`.
  std::promise<StatusOr<ServedAnswer>> promise;
  std::promise<StatusOr<ServedSeries>> series_promise;

  RequestKind metric_kind() const {
    return kind == Kind::kSeries ? RequestKind::kSeries
                                 : RequestKind::kMarginal;
  }
  void Fail(Status status) {
    if (kind == Kind::kSeries) {
      series_promise.set_value(std::move(status));
    } else {
      promise.set_value(std::move(status));
    }
  }
};

RequestBroker::RequestBroker(SynopsisRegistry* registry, ServerMetrics* metrics,
                             const BrokerOptions& options)
    : registry_(registry), metrics_(metrics), options_(options) {}

RequestBroker::~RequestBroker() { Stop(); }

void RequestBroker::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || stopping_) return;
  running_ = true;
  dispatcher_ = std::thread(&RequestBroker::DispatchLoop, this);
}

void RequestBroker::Stop() {
  std::thread to_join;
  std::deque<std::unique_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!running_) orphans.swap(queue_);
    running_ = false;
    to_join = std::move(dispatcher_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  for (std::unique_ptr<Pending>& p : orphans) {
    // Admitted work failed by the stop is a service-side event, not caller
    // misuse: answer retryably so a client redials the restarted server.
    p->Fail(
        Status::Unavailable("broker stopped before dispatch; retry later"));
  }
}

size_t RequestBroker::Drain(std::chrono::milliseconds grace) {
  if (grace.count() <= 0) grace = options_.stop_grace;
  size_t left = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;  // admission now rejects with Unavailable
    const Clock::time_point deadline = Clock::now() + grace;
    drain_cv_.wait_until(lock, deadline, [&] {
      return (queue_.empty() && inflight_ == 0) || !running_;
    });
    left = queue_.size() + inflight_;
  }
  cv_.notify_all();
  // Whatever did not finish within the grace is failed by the stop; the
  // count tells the operator how much work the drain abandoned.
  Stop();
  return left;
}

bool RequestBroker::accepting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stopping_ && !draining_;
}

StatusOr<ServedAnswer> RequestBroker::Ask(const std::string& synopsis,
                                          AttrSet target) {
  return Ask(synopsis, target, Clock::now() + options_.default_deadline);
}

StatusOr<ServedAnswer> RequestBroker::Ask(const std::string& synopsis,
                                          AttrSet target,
                                          Clock::time_point deadline) {
  // An already-expired deadline is rejected at admission: queueing it
  // would only burn dispatcher time on an answer nobody is waiting for,
  // and (worse) a caller-side clock mistake would still occupy a queue
  // slot. Counted separately from queue-full rejections so operators can
  // tell client clock/deadline bugs from genuine overload.
  if (deadline <= Clock::now()) {
    metrics_->RecordExpiredAtAdmission();
    return Status::DeadlineExceeded("deadline already expired at admission "
                                    "for '" +
                                    synopsis + "' " + target.ToString());
  }
  auto pending = std::make_unique<Pending>();
  pending->synopsis = synopsis;
  pending->target = target;
  pending->deadline = deadline;
  pending->admitted_at = Clock::now();
  std::future<StatusOr<ServedAnswer>> answer = pending->promise.get_future();
  const Status admitted = Admit(std::move(pending));
  if (!admitted.ok()) return admitted;
  if (answer.wait_until(deadline + options_.stop_grace) ==
      std::future_status::ready) {
    return answer.get();
  }
  // The dispatcher will still account for this request when it reaches it;
  // the caller just stops waiting.
  return Status::DeadlineExceeded(
      "no verdict on '" + synopsis + "' " + target.ToString() +
      " within deadline + completion grace");
}

StatusOr<ServedSeries> RequestBroker::AskSeries(const std::string& synopsis,
                                                AttrSet target, uint32_t last_n,
                                                SeriesMode mode) {
  return AskSeries(synopsis, target, last_n, mode,
                   Clock::now() + options_.default_deadline);
}

StatusOr<ServedSeries> RequestBroker::AskSeries(const std::string& synopsis,
                                                AttrSet target, uint32_t last_n,
                                                SeriesMode mode,
                                                Clock::time_point deadline) {
  if (last_n == 0) {
    return Status::InvalidArgument(
        "series request must ask for at least one epoch");
  }
  if (mode != SeriesMode::kLevels && mode != SeriesMode::kDeltas) {
    return Status::InvalidArgument("unknown series mode");
  }
  if (deadline <= Clock::now()) {
    metrics_->RecordExpiredAtAdmission();
    return Status::DeadlineExceeded(
        "deadline already expired at admission for series on '" + synopsis +
        "' " + target.ToString());
  }
  auto pending = std::make_unique<Pending>();
  pending->kind = Pending::Kind::kSeries;
  pending->synopsis = synopsis;
  pending->target = target;
  pending->last_n = last_n;
  pending->mode = mode;
  pending->deadline = deadline;
  pending->admitted_at = Clock::now();
  std::future<StatusOr<ServedSeries>> answer =
      pending->series_promise.get_future();
  const Status admitted = Admit(std::move(pending));
  if (!admitted.ok()) return admitted;
  if (answer.wait_until(deadline + options_.stop_grace) ==
      std::future_status::ready) {
    return answer.get();
  }
  return Status::DeadlineExceeded(
      "no verdict on series '" + synopsis + "' " + target.ToString() +
      " within deadline + completion grace");
}

Status RequestBroker::Admit(std::unique_ptr<Pending> pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("broker stopped");
    }
    if (draining_) {
      // Unlike a full stop this is a transient state: the client should
      // retry against the restarted (or a different) server.
      return Status::Unavailable("broker draining; retry later");
    }
    if (queue_.size() >= options_.queue_capacity ||
        PRIVIEW_FAILPOINT("serve/queue-full")) {
      metrics_->RecordRejected();
      return Status::ResourceExhausted(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + "); retry later");
    }
    queue_.push_back(std::move(pending));
    metrics_->RecordAdmitted();
  }
  cv_.notify_one();
  return Status::OK();
}

size_t RequestBroker::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Queued plus in-flight: the dispatcher swaps the whole queue into a
  // local batch, so counting `queue_` alone reads 0 the entire time a
  // batch is being processed — precisely when the gauge matters.
  return queue_.size() + inflight_;
}

void RequestBroker::DispatchLoop() {
  for (;;) {
    std::deque<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      batch.swap(queue_);
      if (stopping_) {
        lock.unlock();
        for (std::unique_ptr<Pending>& p : batch) {
          // Same contract as Stop(): the caller did nothing wrong, the
          // service went away mid-queue — retryable, not misuse.
          p->Fail(Status::Unavailable(
              "broker stopped before dispatch; retry later"));
        }
        return;
      }
      inflight_ += batch.size();
    }
    const size_t processed = batch.size();
    ProcessBatch(std::move(batch));
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_ -= processed;
    }
    drain_cv_.notify_all();
  }
}

void RequestBroker::ProcessBatch(std::deque<std::unique_ptr<Pending>> batch) {
  obs::TraceSpan dispatch_span("broker/dispatch");
  const Clock::time_point dispatch_time = Clock::now();
  for (const std::unique_ptr<Pending>& p : batch) {
    metrics_->RecordQueueWait(MicrosBetween(p->admitted_at, dispatch_time));
  }

  auto fail = [&](Pending* p, Status status) {
    metrics_->RecordLatency(p->metric_kind(),
                            MicrosBetween(p->admitted_at, Clock::now()));
    p->Fail(std::move(status));
  };
  auto deliver = [&](Pending* p, ServedAnswer answer) {
    metrics_->RecordServedByTier(answer.tier);
    if (answer.coalesced) metrics_->RecordCoalesced();
    metrics_->RecordLatency(RequestKind::kMarginal,
                            MicrosBetween(p->admitted_at, Clock::now()));
    p->promise.set_value(std::move(answer));
  };

  // Partition by synopsis name, shedding requests that are already past
  // their deadline — answering late would just burn solver time nobody is
  // waiting for.
  std::map<std::string, std::vector<Pending*>> groups;
  for (std::unique_ptr<Pending>& p : batch) {
    if (dispatch_time >= p->deadline) {
      metrics_->RecordDeadlineExpired();
      fail(p.get(), Status::DeadlineExceeded(
                        "deadline passed while queued for '" + p->synopsis +
                        "' " + p->target.ToString()));
      continue;
    }
    groups[p->synopsis].push_back(p.get());
  }

  for (auto& [name, requests] : groups) {
    StatusOr<std::shared_ptr<const HostedSynopsis>> hosted =
        registry_->Acquire(name);
    if (!hosted.ok()) {
      for (Pending* p : requests) fail(p, hosted.status());
      continue;
    }
    const HostedSynopsis& host = *hosted.value();
    const QueryEngine& engine = host.engine();
    const AttrSet universe = AttrSet::Full(host.synopsis().d());

    // Validate scopes up front so an invalid target can never become a
    // coalescing superset for a valid one.
    std::vector<Pending*> valid;
    valid.reserve(requests.size());
    for (Pending* p : requests) {
      if (!p->target.IsSubsetOf(universe)) {
        fail(p, Status::InvalidArgument("query scope outside universe: " +
                                        p->target.ToString()));
      } else {
        valid.push_back(p);
      }
    }
    if (valid.empty()) continue;

    // Degradation tier for the group: driven by the most urgent remaining
    // budget, so one slow full solve cannot blow every deadline in the
    // batch.
    const Clock::time_point now = Clock::now();
    auto min_remaining = std::chrono::milliseconds::max();
    for (Pending* p : valid) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(p->deadline -
                                                                now);
      min_remaining = std::min(min_remaining, remaining);
    }
    ServeTier tier = ServeTier::kFull;
    if (min_remaining <= options_.cache_only_below) {
      tier = ServeTier::kCacheRollUp;
    } else if (min_remaining <= options_.least_norm_below) {
      tier = ServeTier::kLeastNorm;
    }

    // Serves one already-executed table to one request.
    auto serve_table = [&](Pending* p, const MarginalTable& exec_table,
                           bool coalesced) {
      ServedAnswer answer;
      answer.tier = tier;
      answer.coalesced = coalesced;
      answer.epoch = host.epoch();
      answer.table = exec_table.attrs() == p->target
                         ? exec_table
                         : exec_table.Project(p->target);
      deliver(p, std::move(answer));
    };
    // Executes one target at the chosen tier against one hosted epoch (the
    // non-coalesced unit; series requests run this per retained epoch).
    auto execute_on = [&](const HostedSynopsis& h,
                          AttrSet target) -> StatusOr<MarginalTable> {
      switch (tier) {
        case ServeTier::kFull:
          return h.engine().TryMarginal(target);
        case ServeTier::kLeastNorm: {
          if (std::optional<MarginalTable> hit =
                  h.engine().CacheProbe(target)) {
            return *std::move(hit);
          }
          // Deliberately not inserted into the cache: the cache holds
          // requested-method reconstructions and a least-norm table must
          // not masquerade as one after the pressure passes.
          return h.synopsis().TryQuery(target,
                                       ReconstructionMethod::kLeastNorm);
        }
        case ServeTier::kCacheRollUp: {
          if (std::optional<MarginalTable> hit =
                  h.engine().CacheProbe(target)) {
            return *std::move(hit);
          }
          metrics_->RecordDeadlineExpired();
          return Status::DeadlineExceeded(
              "deadline pressure: cache-only tier missed on " +
              target.ToString());
        }
      }
      return Status::Internal("unreachable tier");
    };
    auto execute_one = [&](AttrSet target) -> StatusOr<MarginalTable> {
      return execute_on(host, target);
    };

    // Split the group: series requests answer against the registry's
    // retained history, marginals against the current epoch only.
    std::vector<Pending*> marginals;
    std::vector<Pending*> series_reqs;
    for (Pending* p : valid) {
      (p->kind == Pending::Kind::kSeries ? series_reqs : marginals)
          .push_back(p);
    }

    if (!series_reqs.empty()) {
      // Coalesce exact-duplicate series requests (same target, depth and
      // mode): a multi-epoch answer is the priciest thing the broker
      // produces, so identical concurrent asks must cost one computation.
      std::vector<std::vector<Pending*>> series_groups;
      if (options_.coalesce) {
        std::map<std::tuple<uint64_t, uint32_t, uint8_t>, size_t> group_of;
        for (Pending* p : series_reqs) {
          const auto key = std::make_tuple(p->target.mask(), p->last_n,
                                           static_cast<uint8_t>(p->mode));
          auto [it, fresh] = group_of.emplace(key, series_groups.size());
          if (fresh) series_groups.emplace_back();
          series_groups[it->second].push_back(p);
        }
      } else {
        for (Pending* p : series_reqs) series_groups.push_back({p});
      }

      for (std::vector<Pending*>& askers : series_groups) {
        Pending* lead = askers.front();
        StatusOr<std::vector<std::shared_ptr<const HostedSynopsis>>> hosts =
            registry_->AcquireSeries(name, lead->last_n);
        if (!hosts.ok()) {
          for (Pending* p : askers) fail(p, hosts.status());
          continue;
        }
        StatusOr<ServedSeries> result = [&]() -> StatusOr<ServedSeries> {
          ServedSeries series;
          series.tier = tier;
          series.points.reserve(hosts.value().size());
          for (const std::shared_ptr<const HostedSynopsis>& h :
               hosts.value()) {
            // Re-validate per epoch: an older release may have been built
            // over a narrower universe than the current one.
            if (!lead->target.IsSubsetOf(AttrSet::Full(h->synopsis().d()))) {
              return Status::InvalidArgument(
                  "query scope outside the universe of epoch " +
                  std::to_string(h->epoch()) + ": " + lead->target.ToString());
            }
            StatusOr<MarginalTable> table = execute_on(*h, lead->target);
            if (!table.ok()) return table.status();
            SeriesPoint point;
            point.epoch = h->epoch();
            point.table = std::move(table).value();
            series.points.push_back(std::move(point));
          }
          if (lead->mode == SeriesMode::kDeltas && series.points.size() > 1) {
            // Trend deltas: keep point 0 as the current level, rewrite
            // every older point as (current - older) cellwise. All points
            // share the exact target scope, so the cells align.
            const std::vector<double> current = series.points[0].table.cells();
            for (size_t i = 1; i < series.points.size(); ++i) {
              std::vector<double>& older = series.points[i].table.cells();
              for (size_t c = 0; c < older.size(); ++c) {
                older[c] = current[c] - older[c];
              }
            }
          }
          return series;
        }();
        for (size_t i = 0; i < askers.size(); ++i) {
          Pending* p = askers[i];
          if (!result.ok()) {
            fail(p, result.status());
            continue;
          }
          ServedSeries answer = result.value();
          answer.coalesced = i != 0;
          metrics_->RecordServedByTier(answer.tier);
          if (answer.coalesced) metrics_->RecordCoalesced();
          metrics_->RecordLatency(RequestKind::kSeries,
                                  MicrosBetween(p->admitted_at, Clock::now()));
          p->series_promise.set_value(std::move(answer));
        }
      }
    }
    if (marginals.empty()) continue;

    if (!options_.coalesce) {
      metrics_->RecordCoalesceWidth(marginals.size());
      for (Pending* p : marginals) {
        StatusOr<MarginalTable> table = execute_one(p->target);
        if (!table.ok()) {
          fail(p, table.status());
        } else {
          serve_table(p, table.value(), /*coalesced=*/false);
        }
      }
      continue;
    }

    // Coalescing: dedupe targets, then keep only the maximal scopes — a
    // scope strictly contained in another pending scope is answered by
    // rolling the superset's table up. Representative choice is
    // deterministic (first maximal superset in first-seen order).
    std::vector<AttrSet> distinct;
    std::unordered_map<uint64_t, size_t> index_of;
    for (Pending* p : marginals) {
      if (index_of.emplace(p->target.mask(), distinct.size()).second) {
        distinct.push_back(p->target);
      }
    }
    std::vector<bool> is_maximal(distinct.size(), true);
    for (size_t i = 0; i < distinct.size(); ++i) {
      for (size_t j = 0; j < distinct.size(); ++j) {
        if (i != j && distinct[i] != distinct[j] &&
            distinct[i].IsSubsetOf(distinct[j])) {
          is_maximal[i] = false;
          break;
        }
      }
    }
    // rep[mask of distinct target] -> index into exec_targets.
    std::unordered_map<uint64_t, size_t> rep;
    std::vector<AttrSet> exec_targets;
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (is_maximal[i]) {
        rep[distinct[i].mask()] = exec_targets.size();
        exec_targets.push_back(distinct[i]);
      }
    }
    for (size_t i = 0; i < distinct.size(); ++i) {
      if (is_maximal[i]) continue;
      for (size_t e = 0; e < exec_targets.size(); ++e) {
        if (distinct[i].IsSubsetOf(exec_targets[e])) {
          rep[distinct[i].mask()] = e;
          break;
        }
      }
    }

    metrics_->RecordCoalesceWidth(exec_targets.size());
    std::vector<StatusOr<MarginalTable>> exec_answers;
    exec_answers.reserve(exec_targets.size());
    if (tier == ServeTier::kFull) {
      // The batch entry point: distinct reconstructions run concurrently
      // on the parallel pool and land in the read-side cache.
      exec_answers = engine.AnswerBatch(exec_targets);
    } else {
      for (const AttrSet& target : exec_targets) {
        exec_answers.push_back(execute_one(target));
      }
    }

    // The representative of each exec target is the first request that
    // asked for exactly that scope; everyone else sharing the solve is
    // coalesced.
    std::vector<bool> rep_taken(exec_targets.size(), false);
    for (Pending* p : marginals) {
      const size_t e = rep.at(p->target.mask());
      if (!exec_answers[e].ok()) {
        fail(p, exec_answers[e].status());
        continue;
      }
      const bool exact = p->target == exec_targets[e];
      const bool coalesced = !(exact && !rep_taken[e]);
      if (exact) rep_taken[e] = true;
      serve_table(p, exec_answers[e].value(), coalesced);
    }
  }
  metrics_->RecordDispatchLatency(MicrosBetween(dispatch_time, Clock::now()));
}

}  // namespace priview::serve
