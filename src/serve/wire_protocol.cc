#include "serve/wire_protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "common/failpoint.h"

namespace priview::serve {

namespace {

// --- byte-order-explicit serialization helpers -----------------------------

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { AppendLE(v, 2); }
  void U32(uint32_t v) { AppendLE(v, 4); }
  void U64(uint64_t v) { AppendLE(v, 8); }
  void I32(int32_t v) { AppendLE(static_cast<uint32_t>(v), 4); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    const uint16_t n = s.size() > 0xffff ? 0xffff : uint16_t(s.size());
    U16(n);
    out_->insert(out_->end(), s.begin(), s.begin() + n);
  }

 private:
  void AppendLE(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) out_->push_back(uint8_t(v >> (8 * i)));
  }
  std::vector<uint8_t>* out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& in) : in_(in) {}

  Status U8(uint8_t* v) { return ReadLE(v, 1); }
  Status U16(uint16_t* v) { return ReadLE(v, 2); }
  Status U32(uint32_t* v) { return ReadLE(v, 4); }
  Status U64(uint64_t* v) { return ReadLE(v, 8); }
  Status I32(int32_t* v) {
    uint32_t u;
    const Status st = ReadLE(&u, 4);
    if (st.ok()) *v = static_cast<int32_t>(u);
    return st;
  }
  Status F64(double* v) {
    uint64_t bits;
    const Status st = U64(&bits);
    if (st.ok()) std::memcpy(v, &bits, sizeof(*v));
    return st;
  }
  Status Str(std::string* s) {
    uint16_t n;
    Status st = U16(&n);
    if (!st.ok()) return st;
    if (in_.size() - pos_ < n) {
      return Status::DataLoss("truncated string in payload");
    }
    s->assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }
  bool exhausted() const { return pos_ == in_.size(); }

 private:
  template <typename T>
  Status ReadLE(T* v, size_t bytes) {
    if (in_.size() - pos_ < bytes) {
      return Status::DataLoss("truncated payload");
    }
    uint64_t u = 0;
    for (size_t i = 0; i < bytes; ++i) {
      u |= uint64_t(in_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    *v = static_cast<T>(u);
    return Status::OK();
  }

  const std::vector<uint8_t>& in_;
  size_t pos_ = 0;
};

bool IsRequestType(uint8_t t) {
  return t >= uint8_t(MessageType::kMarginal) &&
         t <= uint8_t(MessageType::kListSynopses);
}

bool IsResponseType(uint8_t t) {
  return t >= uint8_t(MessageType::kTable) &&
         t <= uint8_t(MessageType::kSynopsisList);
}

}  // namespace

bool IsIdempotentRequest(MessageType type) {
  switch (type) {
    case MessageType::kMarginal:
    case MessageType::kConjunction:
    case MessageType::kRollUp:
    case MessageType::kSlice:
    case MessageType::kDice:
    case MessageType::kStats:
    case MessageType::kList:
    case MessageType::kMetrics:
    case MessageType::kHealth:
    case MessageType::kSeries:
    case MessageType::kListSynopses:
      // Reads against an immutable release: re-execution is free.
      return true;
    default:
      return false;
  }
}

// --- request ---------------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const WireRequest& request) {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.U8(uint8_t(request.type));
  switch (request.type) {
    case MessageType::kMarginal:
      w.Str(request.synopsis);
      w.U64(request.target_mask);
      w.U32(request.deadline_ms);
      break;
    case MessageType::kConjunction:
      w.Str(request.synopsis);
      w.U64(request.target_mask);
      w.U64(request.assignment);
      w.U32(request.deadline_ms);
      break;
    case MessageType::kRollUp:
      w.Str(request.synopsis);
      w.U64(request.target_mask);
      w.U64(request.aux_mask);
      w.U32(request.deadline_ms);
      break;
    case MessageType::kSlice:
      w.Str(request.synopsis);
      w.U64(request.target_mask);
      w.U8(request.attr);
      w.U8(request.value);
      w.U32(request.deadline_ms);
      break;
    case MessageType::kDice:
      w.Str(request.synopsis);
      w.U64(request.target_mask);
      w.U64(request.aux_mask);
      w.U64(request.assignment);
      w.U32(request.deadline_ms);
      break;
    case MessageType::kSeries:
      w.Str(request.synopsis);
      w.U64(request.target_mask);
      w.U32(request.last_n);
      w.U8(request.series_mode);
      w.U32(request.deadline_ms);
      break;
    case MessageType::kStats:
    case MessageType::kList:
    case MessageType::kMetrics:
    case MessageType::kHealth:
    case MessageType::kListSynopses:
      break;
    default:
      break;  // encoded as a bare (undecodable) type byte
  }
  return out;
}

StatusOr<WireRequest> DecodeRequest(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  uint8_t type_byte;
  Status st = r.U8(&type_byte);
  if (!st.ok()) return st;
  if (!IsRequestType(type_byte)) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(type_byte));
  }
  WireRequest request;
  request.type = MessageType(type_byte);
  auto all = [&](std::initializer_list<Status> steps) {
    for (const Status& s : steps) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  };
  switch (request.type) {
    case MessageType::kMarginal:
      st = all({r.Str(&request.synopsis), r.U64(&request.target_mask),
                r.U32(&request.deadline_ms)});
      break;
    case MessageType::kConjunction:
      st = all({r.Str(&request.synopsis), r.U64(&request.target_mask),
                r.U64(&request.assignment), r.U32(&request.deadline_ms)});
      break;
    case MessageType::kRollUp:
      st = all({r.Str(&request.synopsis), r.U64(&request.target_mask),
                r.U64(&request.aux_mask), r.U32(&request.deadline_ms)});
      break;
    case MessageType::kSlice:
      st = all({r.Str(&request.synopsis), r.U64(&request.target_mask),
                r.U8(&request.attr), r.U8(&request.value),
                r.U32(&request.deadline_ms)});
      break;
    case MessageType::kDice:
      st = all({r.Str(&request.synopsis), r.U64(&request.target_mask),
                r.U64(&request.aux_mask), r.U64(&request.assignment),
                r.U32(&request.deadline_ms)});
      break;
    case MessageType::kSeries:
      st = all({r.Str(&request.synopsis), r.U64(&request.target_mask),
                r.U32(&request.last_n), r.U8(&request.series_mode),
                r.U32(&request.deadline_ms)});
      break;
    case MessageType::kStats:
    case MessageType::kList:
    case MessageType::kMetrics:
    case MessageType::kHealth:
    case MessageType::kListSynopses:
      break;
    default:
      return Status::Internal("unreachable request type");
  }
  if (!st.ok()) return st;
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after request payload");
  }
  return request;
}

// --- response --------------------------------------------------------------

std::vector<uint8_t> EncodeResponse(const WireResponse& response) {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.U8(uint8_t(response.type));
  switch (response.type) {
    case MessageType::kTable:
      w.U8(response.tier);
      w.U8(response.coalesced);
      w.U64(response.epoch);
      w.U64(response.table_attrs_mask);
      w.U32(uint32_t(response.cells.size()));
      for (double c : response.cells) w.F64(c);
      break;
    case MessageType::kValue:
      w.U8(response.tier);
      w.U8(response.coalesced);
      w.U64(response.epoch);
      w.F64(response.value);
      break;
    case MessageType::kText:
      w.Str(response.text);
      break;
    case MessageType::kError:
      w.I32(response.code);
      w.Str(response.message);
      break;
    case MessageType::kTableSeries:
      w.U8(response.tier);
      w.U8(response.coalesced);
      w.U32(uint32_t(response.series.size()));
      for (const SeriesEntry& entry : response.series) {
        w.U64(entry.epoch);
        w.U64(entry.attrs_mask);
        w.U32(uint32_t(entry.cells.size()));
        for (double c : entry.cells) w.F64(c);
      }
      break;
    case MessageType::kSynopsisList:
      w.U32(uint32_t(response.synopses.size()));
      for (const SynopsisEntry& entry : response.synopses) {
        w.Str(entry.name);
        w.U64(entry.epoch);
        w.U64(entry.install_unix_ms);
        w.U16(entry.d);
        w.U32(entry.views);
        w.F64(entry.epsilon);
        w.U8(entry.fully_intact);
      }
      break;
    default:
      break;
  }
  return out;
}

StatusOr<WireResponse> DecodeResponse(const std::vector<uint8_t>& payload) {
  ByteReader r(payload);
  uint8_t type_byte;
  Status st = r.U8(&type_byte);
  if (!st.ok()) return st;
  if (!IsResponseType(type_byte)) {
    return Status::InvalidArgument("unknown response type " +
                                   std::to_string(type_byte));
  }
  WireResponse response;
  response.type = MessageType(type_byte);
  switch (response.type) {
    case MessageType::kTable: {
      st = r.U8(&response.tier);
      if (st.ok()) st = r.U8(&response.coalesced);
      if (st.ok()) st = r.U64(&response.epoch);
      if (st.ok()) st = r.U64(&response.table_attrs_mask);
      uint32_t cell_count = 0;
      if (st.ok()) st = r.U32(&cell_count);
      if (!st.ok()) return st;
      // Bound the count by what the payload can actually hold before
      // reserving anything — a hostile header must not drive allocation.
      if (size_t(cell_count) * 8 > payload.size()) {
        return Status::DataLoss("cell count exceeds payload");
      }
      response.cells.resize(cell_count);
      for (uint32_t i = 0; i < cell_count && st.ok(); ++i) {
        st = r.F64(&response.cells[i]);
      }
      break;
    }
    case MessageType::kValue:
      st = r.U8(&response.tier);
      if (st.ok()) st = r.U8(&response.coalesced);
      if (st.ok()) st = r.U64(&response.epoch);
      if (st.ok()) st = r.F64(&response.value);
      break;
    case MessageType::kText:
      st = r.Str(&response.text);
      break;
    case MessageType::kError:
      st = r.I32(&response.code);
      if (st.ok()) st = r.Str(&response.message);
      break;
    case MessageType::kTableSeries: {
      st = r.U8(&response.tier);
      if (st.ok()) st = r.U8(&response.coalesced);
      uint32_t entry_count = 0;
      if (st.ok()) st = r.U32(&entry_count);
      if (!st.ok()) return st;
      // Each entry needs >= 20 bytes of payload even when empty; bound
      // before allocating, a hostile header must not drive allocation.
      if (size_t(entry_count) * 20 > payload.size()) {
        return Status::DataLoss("series entry count exceeds payload");
      }
      response.series.resize(entry_count);
      for (uint32_t i = 0; i < entry_count && st.ok(); ++i) {
        SeriesEntry& entry = response.series[i];
        st = r.U64(&entry.epoch);
        if (st.ok()) st = r.U64(&entry.attrs_mask);
        uint32_t cell_count = 0;
        if (st.ok()) st = r.U32(&cell_count);
        if (!st.ok()) break;
        if (size_t(cell_count) * 8 > payload.size()) {
          return Status::DataLoss("series cell count exceeds payload");
        }
        entry.cells.resize(cell_count);
        for (uint32_t c = 0; c < cell_count && st.ok(); ++c) {
          st = r.F64(&entry.cells[c]);
        }
      }
      break;
    }
    case MessageType::kSynopsisList: {
      uint32_t count = 0;
      st = r.U32(&count);
      if (!st.ok()) return st;
      // Each entry needs >= 25 bytes even with an empty name.
      if (size_t(count) * 25 > payload.size()) {
        return Status::DataLoss("synopsis count exceeds payload");
      }
      response.synopses.resize(count);
      for (uint32_t i = 0; i < count && st.ok(); ++i) {
        SynopsisEntry& entry = response.synopses[i];
        st = r.Str(&entry.name);
        if (st.ok()) st = r.U64(&entry.epoch);
        if (st.ok()) st = r.U64(&entry.install_unix_ms);
        if (st.ok()) st = r.U16(&entry.d);
        if (st.ok()) st = r.U32(&entry.views);
        if (st.ok()) st = r.F64(&entry.epsilon);
        if (st.ok()) st = r.U8(&entry.fully_intact);
      }
      break;
    }
    default:
      return Status::Internal("unreachable response type");
  }
  if (!st.ok()) return st;
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after response payload");
  }
  return response;
}

StatusOr<MarginalTable> WireResponse::ToTable() const {
  if (type != MessageType::kTable) {
    return Status::InvalidArgument("response is not a table");
  }
  const AttrSet attrs(table_attrs_mask);
  if (attrs.size() > 30 || cells.size() != (size_t{1} << attrs.size())) {
    return Status::DataLoss("table cell count does not match scope " +
                            attrs.ToString());
  }
  return MarginalTable(attrs, cells);
}

Status WireResponse::ToStatus() const {
  if (type != MessageType::kError) return Status::OK();
  const int32_t max_code = int32_t(StatusCode::kUnavailable);
  const StatusCode status_code =
      (code < 0 || code > max_code) ? StatusCode::kInternal : StatusCode(code);
  return Status(status_code, message);
}

WireResponse MakeErrorResponse(const Status& status) {
  WireResponse response;
  response.type = MessageType::kError;
  response.code = int32_t(status.code());
  response.message = status.message();
  return response;
}

WireResponse MakeTableResponse(const MarginalTable& table, uint8_t tier,
                               bool coalesced, uint64_t epoch) {
  WireResponse response;
  response.type = MessageType::kTable;
  response.tier = tier;
  response.coalesced = coalesced ? 1 : 0;
  response.epoch = epoch;
  response.table_attrs_mask = table.attrs().mask();
  response.cells = table.cells();
  return response;
}

// --- framing ---------------------------------------------------------------

namespace {

using IoClock = std::chrono::steady_clock;

// The default-constructed time_point means "no deadline": wait forever.
constexpr IoClock::time_point kNoDeadline{};

// Blocks until `fd` is ready for `events` (POLLIN / POLLOUT) or `deadline`
// passes. Used when a read/write on a non-blocking fd reports EAGAIN:
// parking in poll() keeps the exactly-N-bytes contract of ReadAll/WriteAll
// without busy-spinning, the deadline keeps a stalled peer from parking
// the calling thread forever (DeadlineExceeded), and a genuinely broken
// descriptor surfaces as IOError (poll failure or POLLERR/POLLNVAL).
Status WaitReady(int fd, short events, IoClock::time_point deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != kNoDeadline) {
      const IoClock::time_point now = IoClock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded(
            "socket stalled past the frame io deadline");
      }
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(deadline - now)
              .count();
      timeout_ms = static_cast<int>(
          std::min<long long>(remaining, std::numeric_limits<int>::max()));
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) {
      // POLLHUP alone is left to read()/send(): it can coexist with
      // buffered data, and the syscall reports the precise condition.
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        return Status::IOError("socket error while waiting for readiness");
      }
      return Status::OK();
    }
    if (n == 0) {
      return Status::DeadlineExceeded(
          "socket stalled past the frame io deadline");
    }
    if (errno != EINTR) {
      return Status::IOError("poll failed: " +
                             std::string(std::strerror(errno)));
    }
  }
}

Status WriteAll(int fd, const uint8_t* data, size_t len,
                IoClock::time_point deadline) {
  size_t written = 0;
  while (written < len) {
    // MSG_NOSIGNAL: writing to a peer-closed socket must surface as EPIPE
    // (an IOError the caller handles), never a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const Status ready = WaitReady(fd, POLLOUT, deadline);
        if (!ready.ok()) return ready;
        continue;
      }
      return Status::IOError("frame write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += size_t(n);
  }
  return Status::OK();
}

// Reads exactly len bytes. *eof_at_start distinguishes a clean close (no
// bytes at all) from a torn read (some bytes, then EOF). `*deadline`
// starts as kNoDeadline for the first ReadAll of a frame — the wait for a
// frame to *begin* is unbounded (an idle connection is healthy) — and is
// armed to now + timeout_ms by the first byte that arrives, bounding how
// long a frame, once started, may stall or trickle.
Status ReadAll(int fd, uint8_t* data, size_t len, bool* eof_at_start,
               int timeout_ms, IoClock::time_point* deadline) {
  *eof_at_start = false;
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with nothing buffered yet: wait for readability
        // instead of spinning on EAGAIN (the pre-fix behavior surfaced
        // this as IOError, and a retry loop above it would spin forever).
        const Status ready = WaitReady(fd, POLLIN, *deadline);
        if (!ready.ok()) return ready;
        continue;
      }
      return Status::IOError("frame read failed: " +
                             std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0) {
        *eof_at_start = true;
        return Status::OK();
      }
      return Status::DataLoss("torn frame: connection closed after " +
                              std::to_string(got) + " of " +
                              std::to_string(len) + " bytes");
    }
    if (got == 0 && timeout_ms > 0 && *deadline == kNoDeadline) {
      *deadline = IoClock::now() + std::chrono::milliseconds(timeout_ms);
    }
    got += size_t(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::vector<uint8_t>& payload,
                  int timeout_ms) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload over limit: " +
                                   std::to_string(payload.size()));
  }
  // A write has data in hand, so the deadline arms immediately: a peer
  // that stops draining its socket is a stall, not an idle connection.
  const IoClock::time_point deadline =
      timeout_ms > 0 ? IoClock::now() + std::chrono::milliseconds(timeout_ms)
                     : kNoDeadline;
  uint8_t header[4];
  const uint32_t len = uint32_t(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = uint8_t(len >> (8 * i));
  Status st = WriteAll(fd, header, sizeof(header), deadline);
  if (!st.ok()) return st;
  if (PRIVIEW_FAILPOINT("serve/io-torn-frame")) {
    // Tear the frame: ship only half the payload, then report the failure
    // so the caller abandons the connection. The peer's ReadFrame sees the
    // truncation as DataLoss once the socket closes.
    (void)WriteAll(fd, payload.data(), payload.size() / 2, deadline);
    return Status::IOError("injected: serve/io-torn-frame");
  }
  return WriteAll(fd, payload.data(), payload.size(), deadline);
}

Status ReadFrame(int fd, std::vector<uint8_t>* payload, bool* clean_eof,
                 int timeout_ms) {
  payload->clear();
  *clean_eof = false;
  // Shared across header and payload reads: armed by the frame's first
  // byte, so one budget covers the whole frame.
  IoClock::time_point deadline = kNoDeadline;
  uint8_t header[4];
  bool eof_at_start = false;
  Status st =
      ReadAll(fd, header, sizeof(header), &eof_at_start, timeout_ms,
              &deadline);
  if (!st.ok()) return st;
  if (eof_at_start) {
    *clean_eof = true;
    return Status::OK();
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t(header[i]) << (8 * i);
  if (len > kMaxFramePayload) {
    return Status::DataLoss("oversized frame: declared " +
                            std::to_string(len) + " bytes (cap " +
                            std::to_string(kMaxFramePayload) + ")");
  }
  payload->resize(len);
  if (len == 0) return Status::OK();
  st = ReadAll(fd, payload->data(), len, &eof_at_start, timeout_ms,
               &deadline);
  if (!st.ok()) return st;
  if (eof_at_start) {
    return Status::DataLoss("torn frame: connection closed after header");
  }
  return Status::OK();
}

Status WaitSocketReady(int fd, bool for_write, int timeout_ms) {
  const IoClock::time_point deadline =
      timeout_ms > 0 ? IoClock::now() + std::chrono::milliseconds(timeout_ms)
                     : kNoDeadline;
  return WaitReady(fd, for_write ? POLLOUT : POLLIN, deadline);
}

// --- incremental assembly ---------------------------------------------------

Status FrameAssembler::Ingest(const uint8_t* data, size_t len) {
  if (poisoned_) {
    return Status::DataLoss("stream poisoned by an earlier oversized frame");
  }
  size_t pos = 0;
  for (;;) {
    if (!in_payload_) {
      while (header_got_ < sizeof(header_) && pos < len) {
        header_[header_got_++] = data[pos++];
      }
      if (header_got_ < sizeof(header_)) return Status::OK();
      uint32_t declared = 0;
      for (int i = 0; i < 4; ++i) declared |= uint32_t(header_[i]) << (8 * i);
      if (declared > max_payload_) {
        poisoned_ = true;
        return Status::DataLoss("oversized frame: declared " +
                                std::to_string(declared) + " bytes (cap " +
                                std::to_string(max_payload_) + ")");
      }
      in_payload_ = true;
      payload_.clear();
      payload_.resize(declared);
      payload_got_ = 0;
    }
    const size_t take = std::min(payload_.size() - payload_got_, len - pos);
    if (take > 0) {
      std::memcpy(payload_.data() + payload_got_, data + pos, take);
      payload_got_ += take;
      pos += take;
    }
    if (payload_got_ < payload_.size()) return Status::OK();
    // Frame complete (a zero-length frame completes the instant its header
    // does, even at a chunk boundary).
    frames_.push_back(std::move(payload_));
    payload_ = {};
    payload_got_ = 0;
    in_payload_ = false;
    header_got_ = 0;
    if (pos >= len) return Status::OK();
  }
}

std::vector<uint8_t> FrameAssembler::PopFrame() {
  std::vector<uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

Status AppendFrame(std::vector<uint8_t>* out,
                   const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload over limit: " +
                                   std::to_string(payload.size()));
  }
  const uint32_t len = uint32_t(payload.size());
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(len >> (8 * i)));
  out->insert(out->end(), payload.begin(), payload.end());
  return Status::OK();
}

}  // namespace priview::serve
