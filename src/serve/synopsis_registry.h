// SynopsisRegistry: hosts multiple named synopses (dataset x epsilon x
// design) behind one process, with atomic hot-swap. The unit of hosting is
// a HostedSynopsis — the synopsis, the QueryEngine bound to it (with its
// marginal cache), and the LoadReport describing how intact the on-disk
// artifact was. Queries run against a shared_ptr acquired from the
// registry, so an in-flight query holds its engine alive across a
// concurrent swap and never observes a torn replacement: the swap is a
// single shared_ptr exchange under the registry mutex, and the old hosted
// synopsis is destroyed only when the last in-flight reference drops.
//
// Epochs: every successful install gets a registry-global, monotonically
// increasing epoch. Responses carry the answering epoch so an analyst (or
// a test) can tell exactly which release produced an answer across a swap.
// Store-driven installs pass their durable manifest seq as the epoch
// (InstallAtEpoch), so epochs stay monotonic across process restarts; the
// auto-assigned counter always stays above any explicit epoch seen.
//
// History: with set_history_depth(n > 1) the registry retains up to n
// releases per name (the current one plus its predecessors), the substrate
// for time-series queries — AcquireSeries pins the last N epochs the same
// way Acquire pins one.
#ifndef PRIVIEW_SERVE_SYNOPSIS_REGISTRY_H_
#define PRIVIEW_SERVE_SYNOPSIS_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "core/serialization.h"
#include "core/synopsis.h"

namespace priview::serve {

/// One hosted release: the synopsis, its engine, and its provenance. The
/// engine points into the synopsis member, so the object is pinned
/// (non-copyable, non-movable) and always heap-allocated via shared_ptr.
class HostedSynopsis {
 public:
  HostedSynopsis(std::string name, PriViewSynopsis synopsis,
                 const QueryEngineOptions& engine_options, LoadReport report,
                 uint64_t epoch, int64_t install_unix_ms)
      : name_(std::move(name)),
        synopsis_(std::move(synopsis)),
        engine_(&synopsis_, engine_options),
        report_(std::move(report)),
        epoch_(epoch),
        install_unix_ms_(install_unix_ms) {}
  HostedSynopsis(const HostedSynopsis&) = delete;
  HostedSynopsis& operator=(const HostedSynopsis&) = delete;

  const std::string& name() const { return name_; }
  const PriViewSynopsis& synopsis() const { return synopsis_; }
  const QueryEngine& engine() const { return engine_; }
  const LoadReport& load_report() const { return report_; }
  uint64_t epoch() const { return epoch_; }
  /// Wall-clock install time (unix epoch milliseconds).
  int64_t install_unix_ms() const { return install_unix_ms_; }

 private:
  std::string name_;
  PriViewSynopsis synopsis_;
  QueryEngine engine_;
  LoadReport report_;
  uint64_t epoch_;
  int64_t install_unix_ms_;
};

/// Summary row for the list request (and logs).
struct SynopsisInfo {
  std::string name;
  int d = 0;
  size_t views = 0;
  double epsilon = 0.0;
  uint64_t epoch = 0;
  int64_t install_unix_ms = 0;
  bool fully_intact = true;
};

class SynopsisRegistry {
 public:
  SynopsisRegistry() = default;
  SynopsisRegistry(const SynopsisRegistry&) = delete;
  SynopsisRegistry& operator=(const SynopsisRegistry&) = delete;

  /// Installs (or hot-swaps) `name` to host `synopsis`. Validates the
  /// synopsis the way QueryEngine::Create does (non-empty views, d >= 1)
  /// before touching the map, so a failed install never disturbs the
  /// currently served release. Under the "serve/swap-race" failpoint the
  /// swap reports losing a concurrent compare-and-swap race with
  /// FailedPrecondition — the previous release stays live and the caller
  /// retries.
  Status Install(const std::string& name, PriViewSynopsis synopsis,
                 const QueryEngineOptions& engine_options = {},
                 LoadReport report = {});

  /// Install with a caller-chosen epoch — the durable store seq, so
  /// registry epochs survive restarts. `epoch` must be positive and
  /// strictly greater than the epoch currently hosted under `name`
  /// (FailedPrecondition otherwise: per-name epochs never move backward).
  /// The auto-assign counter is floored above `epoch` afterwards.
  Status InstallAtEpoch(const std::string& name, PriViewSynopsis synopsis,
                        uint64_t epoch,
                        const QueryEngineOptions& engine_options = {},
                        LoadReport report = {});

  /// Loads the v2 (or legacy v1) serialized synopsis at `path` and
  /// installs it under `name`, surfacing the LoadReport: with
  /// read_options.recover set, a partially damaged file still installs and
  /// the report (also returned on success) says what was dropped.
  StatusOr<LoadReport> InstallFromFile(
      const std::string& name, const std::string& path,
      const ReadOptions& read_options = {},
      const QueryEngineOptions& engine_options = {});

  /// The hosted synopsis serving `name`, refcounted: callers keep the
  /// shared_ptr for the duration of their query and the release cannot be
  /// torn down under them by a concurrent swap or Remove.
  StatusOr<std::shared_ptr<const HostedSynopsis>> Acquire(
      const std::string& name) const;

  /// The last min(last_n, retained) releases of `name`, newest first
  /// (index 0 is the currently served epoch), each pinned like Acquire.
  /// With the default history depth of 1 this is just the current release.
  StatusOr<std::vector<std::shared_ptr<const HostedSynopsis>>> AcquireSeries(
      const std::string& name, size_t last_n) const;

  /// Removes `name` (and its retained history) from the registry.
  /// In-flight queries holding an acquired shared_ptr finish normally.
  /// NotFound if absent.
  Status Remove(const std::string& name);

  /// Retains up to `depth` >= 1 releases per name (current + that many
  /// predecessors minus one). Default 1: hot-swap frees the old release
  /// as soon as in-flight queries drain, exactly the pre-history behavior.
  void set_history_depth(size_t depth);
  size_t history_depth() const;

  /// Raises the auto-assign epoch floor so the next auto-assigned epoch is
  /// at least `epoch`. Recovery calls this with the manifest's last
  /// durable seq + 1 so fresh in-memory installs never reuse an epoch a
  /// previous incarnation already published.
  void EnsureEpochAtLeast(uint64_t epoch);

  std::vector<SynopsisInfo> List() const;
  size_t size() const;
  /// Number of successful installs (swaps included) since construction.
  uint64_t install_count() const;

 private:
  Status InstallLocked(const std::string& name, PriViewSynopsis synopsis,
                       uint64_t explicit_epoch,
                       const QueryEngineOptions& engine_options,
                       LoadReport report);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const HostedSynopsis>> hosted_;
  /// Per-name retained releases, oldest -> newest; the back entry is the
  /// same shared_ptr as hosted_[name]. Capped at history_depth_.
  std::map<std::string, std::deque<std::shared_ptr<const HostedSynopsis>>>
      history_;
  size_t history_depth_ = 1;
  uint64_t next_epoch_ = 1;
  uint64_t install_count_ = 0;
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_SYNOPSIS_REGISTRY_H_
