#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/query_engine.h"
#include "obs/tracer.h"
#include "serve/wire_protocol.h"

namespace priview::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

// Slow-span details are request-derived (query scopes, degradation
// notes); a newline in one would inject arbitrary lines — including fake
// series — into the Prometheus exposition body. Comments must stay one
// line.
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

PriViewServer::PriViewServer(const ServerOptions& options)
    : options_(options),
      broker_(std::make_unique<RequestBroker>(&registry_, &metrics_,
                                              options.broker)) {
  registry_.set_history_depth(options.history_depth == 0
                                  ? size_t{1}
                                  : options.history_depth);
  // Queue depth is owned by the broker; pull it at scrape time. The
  // callback outlives nothing: registry, broker and metrics share this
  // object's lifetime.
  metrics_.registry().RegisterCallbackGauge(
      "priview_broker_queue_depth",
      "Requests admitted but not yet dispatched",
      [this] { return static_cast<int64_t>(broker_->QueueDepth()); });
  // Supervisor state, pulled live at scrape time (the supervisor object
  // is replaced across Start cycles, hence the indirection through the
  // unique_ptr rather than a captured raw pointer).
  metrics_.registry().RegisterCallbackGauge(
      "priview_serve_open_connections",
      "Connections currently owned by the supervisor", [this] {
        const ConnectionSupervisor* s = supervisor_.get();
        return s ? static_cast<int64_t>(s->open_connections()) : 0;
      });
  metrics_.registry().RegisterCallbackGauge(
      "priview_serve_inflight_requests",
      "Requests currently executing on supervisor handler threads", [this] {
        const ConnectionSupervisor* s = supervisor_.get();
        return s ? static_cast<int64_t>(s->inflight_requests()) : 0;
      });
  metrics_.registry().RegisterCallbackGauge(
      "priview_serve_overload_shedding",
      "1 while adaptive overload shedding is rejecting new accepts", [this] {
        const ConnectionSupervisor* s = supervisor_.get();
        return s != nullptr && s->shedding() ? 1 : 0;
      });
}

PriViewServer::~PriViewServer() { Stop(); }

Status PriViewServer::BindUnixListener(int* fd_out) {
  *fd_out = -1;
  if (options_.socket_path.empty()) {
    // Legal only for a TCP-only server.
    if (options_.tcp_port < 0) {
      return Status::InvalidArgument("no socket path and no TCP port");
    }
    return Status::OK();
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" +
                                   options_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  // A stale socket file from a dead server would make bind fail; serving
  // anew is always the right call for a fresh Start.
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IOError("bind(" + options_.socket_path +
                        "): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 512) < 0) {
    const Status st =
        Status::IOError("listen(): " + std::string(std::strerror(errno)));
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return st;
  }
  *fd_out = fd;
  return Status::OK();
}

Status PriViewServer::BindTcpListener(int* fd_out) {
  *fd_out = -1;
  if (options_.tcp_port < 0) return Status::OK();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
  if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad tcp host: '" + options_.tcp_host +
                                   "'");
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket(tcp): " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::IOError(
        "bind(" + options_.tcp_host + ":" + std::to_string(options_.tcp_port) +
        "): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 512) < 0) {
    const Status st =
        Status::IOError("listen(tcp): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    bound_tcp_port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);
  }
  *fd_out = fd;
  return Status::OK();
}

Status PriViewServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");

  int unix_fd = -1;
  Status st = BindUnixListener(&unix_fd);
  if (!st.ok()) return st;
  int tcp_fd = -1;
  st = BindTcpListener(&tcp_fd);
  if (!st.ok()) {
    if (unix_fd >= 0) {
      ::close(unix_fd);
      ::unlink(options_.socket_path.c_str());
    }
    return st;
  }
  if (::pipe(drain_pipe_) != 0) {
    st = Status::IOError("pipe(): " + std::string(std::strerror(errno)));
    if (unix_fd >= 0) {
      ::close(unix_fd);
      ::unlink(options_.socket_path.c_str());
    }
    if (tcp_fd >= 0) ::close(tcp_fd);
    return st;
  }

  // ServerOptions.io_timeout_ms is the authoritative per-frame deadline;
  // the supervisor struct carries everything else.
  SupervisorOptions sup = options_.supervisor;
  sup.io_timeout_ms = options_.io_timeout_ms;
  supervisor_ = std::make_unique<ConnectionSupervisor>(
      sup, &metrics_, [this](std::vector<uint8_t> payload) {
        return HandlePayload(std::move(payload));
      });

  running_ = true;
  draining_.store(false, std::memory_order_relaxed);
  watcher_stop_.store(false, std::memory_order_relaxed);
  broker_->Start();
  st = supervisor_->Start(unix_fd, tcp_fd);
  if (!st.ok()) {
    running_ = false;
    broker_->Stop();
    if (unix_fd >= 0) {
      ::close(unix_fd);
      ::unlink(options_.socket_path.c_str());
    }
    if (tcp_fd >= 0) ::close(tcp_fd);
    bound_tcp_port_.store(-1, std::memory_order_relaxed);
    for (int& pipe_fd : drain_pipe_) {
      if (pipe_fd >= 0) ::close(pipe_fd);
      pipe_fd = -1;
    }
    return st;
  }
  drain_watcher_ = std::thread(&PriViewServer::DrainWatcherLoop, this);
  return Status::OK();
}

void PriViewServer::Stop() { (void)Shutdown(/*graceful=*/false); }

size_t PriViewServer::Drain() { return Shutdown(/*graceful=*/true); }

size_t PriViewServer::Shutdown(bool graceful) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_running = running_;
    running_ = false;
  }
  size_t left = 0;
  if (was_running) {
    if (graceful) {
      // Ordering is the drain contract: readiness flips first (health
      // probes on live connections report not-ready), the listeners close
      // second (new connects refused), already-admitted work finishes
      // third, responses flush fourth, stragglers are evicted last.
      draining_.store(true, std::memory_order_relaxed);
      supervisor_->CloseListeners();
      // New Asks on live connections are rejected by the broker with
      // (retryable) Unavailable meanwhile.
      left = broker_->Drain(options_.drain_grace);
      metrics_.RecordDrain(left);
      // Let in-flight handler jobs complete and their egress reach the
      // peers; whatever is still stuck at the deadline gets evicted as a
      // shutdown straggler by Stop below.
      supervisor_->Quiesce(options_.drain_grace);
    } else {
      // Fail queued work fast so handler threads blocked in Ask unblock
      // with a Status instead of waiting out their deadlines.
      broker_->Stop();
    }
    supervisor_->Stop();
    bound_tcp_port_.store(-1, std::memory_order_relaxed);
    if (!options_.socket_path.empty()) {
      ::unlink(options_.socket_path.c_str());
    }
  }
  watcher_stop_.store(true, std::memory_order_relaxed);
  if (drain_watcher_.joinable() &&
      drain_watcher_.get_id() != std::this_thread::get_id()) {
    // A signal-driven drain runs Shutdown *on* the watcher thread; it must
    // not join itself — the thread exits right after this returns and the
    // destructor's Stop() collects it.
    drain_watcher_.join();
    for (int& pipe_fd : drain_pipe_) {
      if (pipe_fd >= 0) ::close(pipe_fd);
      pipe_fd = -1;
    }
  }
  return left;
}

void PriViewServer::RequestDrain() {
  // Async-signal-safe: one write(2), nothing else. The watcher thread
  // turns the byte into a Drain() on a normal thread context.
  if (drain_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
  }
}

void PriViewServer::DrainWatcherLoop() {
  const int pipe_fd = drain_pipe_[0];
  for (;;) {
    pollfd pfd{pipe_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (watcher_stop_.load(std::memory_order_relaxed)) return;
    if (ready > 0 && (pfd.revents & POLLIN)) {
      char buf[16];
      (void)::read(pipe_fd, buf, sizeof(buf));
      (void)Shutdown(/*graceful=*/true);
      return;
    }
  }
}

bool PriViewServer::Ready() const {
  return !draining_.load(std::memory_order_relaxed) &&
         store_recovered_.load(std::memory_order_relaxed) &&
         broker_->accepting() && registry_.size() > 0;
}

std::vector<uint8_t> PriViewServer::HandlePayload(std::vector<uint8_t> payload) {
  StatusOr<WireRequest> request = DecodeRequest(payload);
  if (!request.ok()) {
    // The frame boundary is intact, so the connection survives a
    // malformed payload; the analyst just gets the error.
    metrics_.RecordFrameError();
    return EncodeResponse(MakeErrorResponse(request.status()));
  }
  return HandleRequest(request.value());
}

std::vector<uint8_t> PriViewServer::HandleRequest(const WireRequest& request) {
  const Clock::time_point start = Clock::now();
  const auto deadline =
      start + (request.deadline_ms > 0
                   ? std::chrono::milliseconds(request.deadline_ms)
                   : broker_->options().default_deadline);

  // Fetches the scope every data request is built on, through the broker
  // (admission, coalescing, degradation all apply).
  auto ask = [&](AttrSet scope) -> StatusOr<ServedAnswer> {
    StatusOr<ServedAnswer> answer =
        broker_->Ask(request.synopsis, scope, deadline);
    if (!answer.ok() &&
        answer.status().code() == StatusCode::kFailedPrecondition) {
      // The only FailedPrecondition Ask can produce is a stopped broker —
      // lifecycle a remote caller cannot observe or misuse. Over the wire
      // the verdict is the retryable one: the server is going away (or
      // restarting) and the request deserves a redial, not a hard fail.
      return Status::Unavailable("server shutting down; retry later");
    }
    return answer;
  };
  auto error = [&](const Status& status) {
    return EncodeResponse(MakeErrorResponse(status));
  };

  switch (request.type) {
    case MessageType::kMarginal: {
      StatusOr<ServedAnswer> answer = ask(AttrSet(request.target_mask));
      if (!answer.ok()) return error(answer.status());
      const ServedAnswer& served = answer.value();
      return EncodeResponse(MakeTableResponse(served.table,
                                              uint8_t(served.tier),
                                              served.coalesced, served.epoch));
    }
    case MessageType::kConjunction: {
      const AttrSet attrs(request.target_mask);
      if (attrs.size() < 64 &&
          request.assignment >= (uint64_t{1} << attrs.size())) {
        return error(Status::OutOfRange("assignment out of range for scope " +
                                        attrs.ToString()));
      }
      StatusOr<ServedAnswer> answer = ask(attrs);
      if (!answer.ok()) return error(answer.status());
      WireResponse response;
      response.type = MessageType::kValue;
      response.tier = uint8_t(answer.value().tier);
      response.coalesced = answer.value().coalesced ? 1 : 0;
      response.epoch = answer.value().epoch;
      response.value = answer.value().table.At(request.assignment);
      metrics_.RecordLatency(RequestKind::kConjunction, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kRollUp:
    case MessageType::kSlice:
    case MessageType::kDice: {
      const AttrSet scope(request.target_mask);
      // Validate the cube operation before asking, so an impossible
      // request never costs a reconstruction.
      if (request.type == MessageType::kRollUp &&
          !AttrSet(request.aux_mask).IsSubsetOf(scope)) {
        return error(Status::InvalidArgument(
            "roll-up keep set not contained in the cube scope"));
      }
      if (request.type == MessageType::kSlice &&
          (!scope.Contains(request.attr) || request.value > 1)) {
        return error(
            Status::InvalidArgument("slice attribute/value invalid for scope " +
                                    scope.ToString()));
      }
      if (request.type == MessageType::kDice) {
        const AttrSet fixed(request.aux_mask);
        if (!fixed.IsSubsetOf(scope) ||
            (fixed.size() < 64 &&
             request.assignment >= (uint64_t{1} << fixed.size()))) {
          return error(Status::InvalidArgument(
              "dice fixed-set/values invalid for scope " + scope.ToString()));
        }
      }
      StatusOr<ServedAnswer> answer = ask(scope);
      if (!answer.ok()) return error(answer.status());
      const ServedAnswer& served = answer.value();
      MarginalTable result;
      switch (request.type) {
        case MessageType::kRollUp:
          result = cube::RollUp(served.table, AttrSet(request.aux_mask));
          break;
        case MessageType::kSlice:
          result = cube::Slice(served.table, request.attr, request.value);
          break;
        default:
          result = cube::Dice(served.table, AttrSet(request.aux_mask),
                              request.assignment);
          break;
      }
      metrics_.RecordLatency(RequestKind::kCube, MicrosSince(start));
      return EncodeResponse(MakeTableResponse(
          result, uint8_t(served.tier), served.coalesced, served.epoch));
    }
    case MessageType::kStats: {
      WireResponse response;
      response.type = MessageType::kText;
      response.text = metrics_.TakeSnapshot().ToJson();
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kMetrics: {
      WireResponse response;
      response.type = MessageType::kText;
      // This server's instruments first, then the process-wide registry
      // (publish-phase span histograms, query path, solver, parallel
      // pool). Two renders, one scrape payload.
      response.text = metrics_.registry().RenderPrometheus();
      response.text += obs::MetricsRegistry::Global().RenderPrometheus();
      // Slow-span log as exposition comments: human-greppable in the same
      // scrape without inventing series per entry.
      const obs::Tracer& tracer = obs::Tracer::Global();
      if (tracer.slow_threshold_us() > 0) {
        for (const obs::SlowSpanEntry& entry : tracer.SlowEntries()) {
          char line[256];
          std::snprintf(line, sizeof(line),
                        "# slow-span %s duration_us=%llu depth=%d %s\n",
                        entry.name.c_str(),
                        (unsigned long long)entry.duration_us, entry.depth,
                        OneLine(entry.detail).c_str());
          response.text += line;
        }
      }
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kHealth: {
      // Answered inline, never through the broker: the probe must work
      // while draining, recovering, or hosting nothing — exactly the
      // states an orchestrator needs to see. Any response at all is
      // liveness; the ready bit is the readiness gate.
      WireResponse response;
      response.type = MessageType::kText;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "ready=%d draining=%d accepting=%d store_recovered=%d "
                    "synopses=%zu",
                    Ready() ? 1 : 0, draining() ? 1 : 0,
                    broker_->accepting() ? 1 : 0,
                    store_recovered_.load(std::memory_order_relaxed) ? 1 : 0,
                    registry_.size());
      response.text = line;
      metrics_.RecordHealthProbe();
      return EncodeResponse(response);
    }
    case MessageType::kList: {
      WireResponse response;
      response.type = MessageType::kText;
      for (const SynopsisInfo& info : registry_.List()) {
        char line[192];
        std::snprintf(line, sizeof(line),
                      "%s d=%d views=%zu eps=%.3f epoch=%llu intact=%d\n",
                      info.name.c_str(), info.d, info.views, info.epsilon,
                      (unsigned long long)info.epoch,
                      info.fully_intact ? 1 : 0);
        response.text += line;
      }
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kSeries: {
      StatusOr<ServedSeries> answer = broker_->AskSeries(
          request.synopsis, AttrSet(request.target_mask), request.last_n,
          static_cast<SeriesMode>(request.series_mode), deadline);
      if (!answer.ok() &&
          answer.status().code() == StatusCode::kFailedPrecondition) {
        // Same mapping as ask(): a stopped broker is server lifecycle, and
        // over the wire that is a retryable condition.
        return error(Status::Unavailable("server shutting down; retry later"));
      }
      if (!answer.ok()) return error(answer.status());
      const ServedSeries& served = answer.value();
      WireResponse response;
      response.type = MessageType::kTableSeries;
      response.tier = uint8_t(served.tier);
      response.coalesced = served.coalesced ? 1 : 0;
      response.series.reserve(served.points.size());
      for (const SeriesPoint& point : served.points) {
        SeriesEntry entry;
        entry.epoch = point.epoch;
        entry.attrs_mask = point.table.attrs().mask();
        entry.cells = point.table.cells();
        response.series.push_back(std::move(entry));
      }
      return EncodeResponse(response);
    }
    case MessageType::kListSynopses: {
      // Answered inline from the registry, like kList: enumerating the
      // catalog must work under deadline pressure and costs no solve.
      WireResponse response;
      response.type = MessageType::kSynopsisList;
      for (const SynopsisInfo& info : registry_.List()) {
        SynopsisEntry entry;
        entry.name = info.name;
        entry.epoch = info.epoch;
        entry.install_unix_ms = static_cast<uint64_t>(info.install_unix_ms);
        entry.d = static_cast<uint16_t>(info.d);
        entry.views = static_cast<uint32_t>(info.views);
        entry.epsilon = info.epsilon;
        entry.fully_intact = info.fully_intact ? 1 : 0;
        response.synopses.push_back(std::move(entry));
      }
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    default:
      return error(Status::InvalidArgument("unhandled request type"));
  }
}

namespace {

std::atomic<PriViewServer*> g_sigterm_server{nullptr};

void SigtermToDrain(int /*signo*/) {
  PriViewServer* server = g_sigterm_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestDrain();
}

}  // namespace

Status InstallSigtermDrain(PriViewServer* server) {
  g_sigterm_server.store(server, std::memory_order_relaxed);
  struct sigaction action {};
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  action.sa_handler = server != nullptr ? &SigtermToDrain : SIG_DFL;
  if (::sigaction(SIGTERM, &action, nullptr) != 0) {
    return Status::IOError("sigaction(SIGTERM): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace priview::serve
