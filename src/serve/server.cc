#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/query_engine.h"
#include "obs/tracer.h"
#include "serve/wire_protocol.h"

namespace priview::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

// Slow-span details are request-derived (query scopes, degradation
// notes); a newline in one would inject arbitrary lines — including fake
// series — into the Prometheus exposition body. Comments must stay one
// line.
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

PriViewServer::PriViewServer(const ServerOptions& options)
    : options_(options),
      broker_(std::make_unique<RequestBroker>(&registry_, &metrics_,
                                              options.broker)) {
  // Queue depth is owned by the broker; pull it at scrape time. The
  // callback outlives nothing: registry, broker and metrics share this
  // object's lifetime.
  metrics_.registry().RegisterCallbackGauge(
      "priview_broker_queue_depth",
      "Requests admitted but not yet dispatched",
      [this] { return static_cast<int64_t>(broker_->QueueDepth()); });
}

PriViewServer::~PriViewServer() { Stop(); }

Status PriViewServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" +
                                   options_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  // A stale socket file from a dead server would make bind fail; serving
  // anew is always the right call for a fresh Start.
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IOError("bind(" + options_.socket_path +
                        "): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st =
        Status::IOError("listen(): " + std::string(std::strerror(errno)));
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return st;
  }
  listen_fd_ = fd;
  running_ = true;
  broker_->Start();
  accept_thread_ = std::thread(&PriViewServer::AcceptLoop, this);
  return Status::OK();
}

void PriViewServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  // Fail queued work fast so connection handlers blocked in Ask unblock
  // with a Status instead of waiting out their deadlines.
  broker_->Stop();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::unique_ptr<Connection>& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::unique_ptr<Connection>& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  ::unlink(options_.socket_path.c_str());
}

void PriViewServer::AcceptLoop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return;
    }
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone (Stop) or unrecoverable
    }
    metrics_.RecordConnectionOpened();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) {
        ::close(fd);
        metrics_.RecordConnectionClosed();
        return;
      }
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw->fd); });
  }
}

void PriViewServer::ServeConnection(int fd) {
  // Non-blocking: every read/write goes through the frame layer's
  // poll-based readiness wait, where the io deadline is enforceable. On a
  // blocking fd a peer stalled mid-frame would park this thread in the
  // kernel, outside any timeout's reach.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  std::vector<uint8_t> payload;
  for (;;) {
    bool clean_eof = false;
    const Status read =
        ReadFrame(fd, &payload, &clean_eof, options_.io_timeout_ms);
    if (!read.ok()) {
      // Torn or oversized inbound frame: the stream cannot be resynced.
      metrics_.RecordFrameError();
      break;
    }
    if (clean_eof) break;

    std::vector<uint8_t> response_bytes;
    StatusOr<WireRequest> request = DecodeRequest(payload);
    if (!request.ok()) {
      // The frame boundary is intact, so the connection survives a
      // malformed payload; the analyst just gets the error.
      metrics_.RecordFrameError();
      response_bytes = EncodeResponse(MakeErrorResponse(request.status()));
    } else {
      response_bytes = HandleRequest(request.value());
    }
    if (!WriteFrame(fd, response_bytes, options_.io_timeout_ms).ok()) {
      metrics_.RecordFrameError();
      break;
    }
  }
  ::close(fd);
  metrics_.RecordConnectionClosed();
}

std::vector<uint8_t> PriViewServer::HandleRequest(const WireRequest& request) {
  const Clock::time_point start = Clock::now();
  const auto deadline =
      start + (request.deadline_ms > 0
                   ? std::chrono::milliseconds(request.deadline_ms)
                   : broker_->options().default_deadline);

  // Fetches the scope every data request is built on, through the broker
  // (admission, coalescing, degradation all apply).
  auto ask = [&](AttrSet scope) {
    return broker_->Ask(request.synopsis, scope, deadline);
  };
  auto error = [&](const Status& status) {
    return EncodeResponse(MakeErrorResponse(status));
  };

  switch (request.type) {
    case MessageType::kMarginal: {
      StatusOr<ServedAnswer> answer = ask(AttrSet(request.target_mask));
      if (!answer.ok()) return error(answer.status());
      const ServedAnswer& served = answer.value();
      return EncodeResponse(MakeTableResponse(served.table,
                                              uint8_t(served.tier),
                                              served.coalesced, served.epoch));
    }
    case MessageType::kConjunction: {
      const AttrSet attrs(request.target_mask);
      if (attrs.size() < 64 &&
          request.assignment >= (uint64_t{1} << attrs.size())) {
        return error(Status::OutOfRange("assignment out of range for scope " +
                                        attrs.ToString()));
      }
      StatusOr<ServedAnswer> answer = ask(attrs);
      if (!answer.ok()) return error(answer.status());
      WireResponse response;
      response.type = MessageType::kValue;
      response.tier = uint8_t(answer.value().tier);
      response.coalesced = answer.value().coalesced ? 1 : 0;
      response.epoch = answer.value().epoch;
      response.value = answer.value().table.At(request.assignment);
      metrics_.RecordLatency(RequestKind::kConjunction, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kRollUp:
    case MessageType::kSlice:
    case MessageType::kDice: {
      const AttrSet scope(request.target_mask);
      // Validate the cube operation before asking, so an impossible
      // request never costs a reconstruction.
      if (request.type == MessageType::kRollUp &&
          !AttrSet(request.aux_mask).IsSubsetOf(scope)) {
        return error(Status::InvalidArgument(
            "roll-up keep set not contained in the cube scope"));
      }
      if (request.type == MessageType::kSlice &&
          (!scope.Contains(request.attr) || request.value > 1)) {
        return error(
            Status::InvalidArgument("slice attribute/value invalid for scope " +
                                    scope.ToString()));
      }
      if (request.type == MessageType::kDice) {
        const AttrSet fixed(request.aux_mask);
        if (!fixed.IsSubsetOf(scope) ||
            (fixed.size() < 64 &&
             request.assignment >= (uint64_t{1} << fixed.size()))) {
          return error(Status::InvalidArgument(
              "dice fixed-set/values invalid for scope " + scope.ToString()));
        }
      }
      StatusOr<ServedAnswer> answer = ask(scope);
      if (!answer.ok()) return error(answer.status());
      const ServedAnswer& served = answer.value();
      MarginalTable result;
      switch (request.type) {
        case MessageType::kRollUp:
          result = cube::RollUp(served.table, AttrSet(request.aux_mask));
          break;
        case MessageType::kSlice:
          result = cube::Slice(served.table, request.attr, request.value);
          break;
        default:
          result = cube::Dice(served.table, AttrSet(request.aux_mask),
                              request.assignment);
          break;
      }
      metrics_.RecordLatency(RequestKind::kCube, MicrosSince(start));
      return EncodeResponse(MakeTableResponse(
          result, uint8_t(served.tier), served.coalesced, served.epoch));
    }
    case MessageType::kStats: {
      WireResponse response;
      response.type = MessageType::kText;
      response.text = metrics_.TakeSnapshot().ToJson();
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kMetrics: {
      WireResponse response;
      response.type = MessageType::kText;
      // This server's instruments first, then the process-wide registry
      // (publish-phase span histograms, query path, solver, parallel
      // pool). Two renders, one scrape payload.
      response.text = metrics_.registry().RenderPrometheus();
      response.text += obs::MetricsRegistry::Global().RenderPrometheus();
      // Slow-span log as exposition comments: human-greppable in the same
      // scrape without inventing series per entry.
      const obs::Tracer& tracer = obs::Tracer::Global();
      if (tracer.slow_threshold_us() > 0) {
        for (const obs::SlowSpanEntry& entry : tracer.SlowEntries()) {
          char line[256];
          std::snprintf(line, sizeof(line),
                        "# slow-span %s duration_us=%llu depth=%d %s\n",
                        entry.name.c_str(),
                        (unsigned long long)entry.duration_us, entry.depth,
                        OneLine(entry.detail).c_str());
          response.text += line;
        }
      }
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    case MessageType::kList: {
      WireResponse response;
      response.type = MessageType::kText;
      for (const SynopsisInfo& info : registry_.List()) {
        char line[192];
        std::snprintf(line, sizeof(line),
                      "%s d=%d views=%zu eps=%.3f epoch=%llu intact=%d\n",
                      info.name.c_str(), info.d, info.views, info.epsilon,
                      (unsigned long long)info.epoch,
                      info.fully_intact ? 1 : 0);
        response.text += line;
      }
      metrics_.RecordLatency(RequestKind::kStats, MicrosSince(start));
      return EncodeResponse(response);
    }
    default:
      return error(Status::InvalidArgument("unhandled request type"));
  }
}

}  // namespace priview::serve
