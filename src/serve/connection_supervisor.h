// ConnectionSupervisor: the epoll transport under PriViewServer.
//
// One event-loop thread owns every connection fd, the (non-blocking) Unix
// and TCP listeners, and a wakeup eventfd; a small handler pool runs the
// request callback (which blocks in the RequestBroker) so the loop itself
// never blocks on anything but epoll_wait. This replaces the old
// one-thread-per-connection model: thousands of idle, slow or outright
// hostile peers cost fds and buffer bytes, never threads.
//
// Per-connection state machine:
//
//   accept -> [admission: caps / overload shed / EMFILE shed]
//   readable -> FrameAssembler ingests bytes -> completed frames queue as
//     pending requests -> dispatched to the handler pool one at a time
//     (responses stay in request order; a strict request/response client
//     never waits on another request of its own)
//   handler completion -> response framed into the connection's bounded
//     egress buffer -> writable -> drained to the socket
//   eviction -> fd closed, cause counted (see EvictionCause)
//
// Robustness policies, all deadline- or cap-driven:
//   - Slowloris: a frame that starts and then stalls past io_timeout_ms is
//     evicted (kFrameStall). Idle connections with no frame in flight are
//     healthy and unpoliced unless idle_timeout_ms is set.
//   - Half-open peers: with idle_timeout_ms > 0, a connection with no
//     completed traffic for that long is evicted (kIdle).
//   - Slow readers: responses queue in a bounded egress buffer
//     (max_egress_bytes); a peer that stops draining overflows it and is
//     evicted (kEgressOverflow). A non-empty egress that makes no write
//     progress within io_timeout_ms is a stall, evicted the same way a
//     stalled read is.
//   - Pipeline abuse: more than max_pipelined_frames requests outstanding
//     on one connection is eviction (kPipelineOverflow).
//   - Admission caps: max_connections globally and (for TCP peers)
//     max_connections_per_ip; over-cap accepts are closed immediately and
//     counted as shed, never queued.
//   - EMFILE: accept(2) failing with EMFILE/ENFILE is handled by closing a
//     pre-allocated spare fd, accepting the pending connection, closing
//     it (shed), and re-acquiring the spare — the listener sheds and
//     continues instead of spinning on a hot, un-acceptable backlog.
//   - Adaptive overload shedding: every sweep the supervisor computes the
//     broker queue-wait p99 over the *last window* (a delta of histogram
//     snapshots, not the lifetime distribution); past
//     shed_queue_wait_p99_us, new accepts are shed (kOverload) until the
//     window p99 recovers. Rejecting at accept is the cheapest possible
//     "try later" — no frame parse, no broker queueing.
//
// Failpoints (chaos drills): "serve/accept-emfile" forces the EMFILE shed
// path, "serve/half-open" treats a fresh accept as half-open,
// "serve/peer-stall" treats a readable peer as stalled mid-frame, and
// "serve/slow-reader" treats a completion as an egress overflow.
#ifndef PRIVIEW_SERVE_CONNECTION_SUPERVISOR_H_
#define PRIVIEW_SERVE_CONNECTION_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/server_metrics.h"
#include "serve/wire_protocol.h"

namespace priview::serve {

struct SupervisorOptions {
  /// Per-frame stall deadline (read side: frame started but not finished;
  /// write side: non-empty egress making no progress). <= 0 disables.
  int io_timeout_ms = kDefaultIoTimeoutMs;
  /// Evict connections with no completed traffic for this long — the
  /// half-open defense. 0 keeps today's contract: idle is healthy.
  int idle_timeout_ms = 0;
  /// Global cap on concurrently open connections; accepts past it shed.
  size_t max_connections = 8192;
  /// Per-peer-IP cap for TCP listeners (Unix-socket peers are exempt:
  /// they are local and unattributable). 0 = unlimited.
  size_t max_connections_per_ip = 0;
  /// Bound on one connection's buffered (framed, un-sent) responses.
  size_t max_egress_bytes = 4u << 20;
  /// Bound on requests outstanding (pending + dispatched) per connection.
  size_t max_pipelined_frames = 16;
  /// Worker threads running the request handler (each blocks in the
  /// broker, so this is the in-flight request concurrency).
  size_t handler_threads = 16;
  /// Adaptive shed threshold on the windowed broker queue-wait p99, in
  /// microseconds. 0 disables overload shedding.
  uint64_t shed_queue_wait_p99_us = 0;
};

class ConnectionSupervisor {
 public:
  /// Turns one request payload into one response payload. Runs on a
  /// handler thread; may block (the broker applies its own deadlines).
  /// Must never throw; every failure is an encoded error response.
  using Handler = std::function<std::vector<uint8_t>(std::vector<uint8_t>)>;

  ConnectionSupervisor(const SupervisorOptions& options,
                       ServerMetrics* metrics, Handler handler);
  ~ConnectionSupervisor();
  ConnectionSupervisor(const ConnectionSupervisor&) = delete;
  ConnectionSupervisor& operator=(const ConnectionSupervisor&) = delete;

  /// Takes ownership of the listener fds (either may be -1) and starts
  /// the event loop + handler pool. The fds must already be non-blocking
  /// listening sockets.
  Status Start(int unix_listen_fd, int tcp_listen_fd);

  /// Drain step 1: close the listeners (new connects are refused by the
  /// kernel) but keep serving live connections. Safe to call from any
  /// thread; idempotent.
  void CloseListeners();

  /// Waits until no handler job is in flight and every egress buffer has
  /// drained, or `timeout` passes. True on quiescence — the drain path
  /// uses this to let responses of already-admitted work reach their
  /// clients before the final eviction.
  bool Quiesce(std::chrono::milliseconds timeout);

  /// Evicts every connection (kShutdown), joins the loop and the handler
  /// pool. Idempotent.
  void Stop();

  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  size_t inflight_requests() const {
    return inflight_jobs_.load(std::memory_order_relaxed);
  }
  uint64_t total_egress_bytes() const {
    return total_egress_bytes_.load(std::memory_order_relaxed);
  }
  /// True while overload shedding is rejecting new accepts.
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    /// IPv4 peer address for per-IP accounting; 0 for Unix-socket peers.
    uint32_t peer_ip = 0;
    FrameAssembler assembler;
    /// Completed frames waiting for their turn on the handler pool.
    std::deque<std::vector<uint8_t>> pending;
    /// One request at a time per connection keeps responses in order.
    bool request_inflight = false;
    /// Framed responses not yet written; egress_off is the sent prefix.
    std::vector<uint8_t> egress;
    size_t egress_off = 0;
    bool want_write = false;
    /// Peer half-closed its write side; read interest is dropped (a
    /// level-triggered EOF would otherwise spin the loop) and the conn
    /// closes once in-flight work and egress drain.
    bool read_eof = false;
    using Clock = std::chrono::steady_clock;
    /// Armed when a frame starts; cleared when the assembler leaves
    /// mid-frame state. Expiry = slowloris eviction.
    Clock::time_point frame_deadline{};
    /// Armed while egress is non-empty; pushed forward on every write
    /// that makes progress. Expiry = slow-reader stall eviction.
    Clock::time_point write_deadline{};
    /// Last time any byte moved or a response completed; drives the
    /// half-open idle eviction.
    Clock::time_point last_activity{};
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> response;
  };
  struct Job {
    uint64_t conn_id = 0;
    std::vector<uint8_t> payload;
  };

  void LoopThread();
  void HandlerThread();
  void HandleAccept(int listen_fd, bool is_tcp);
  void HandleReadable(Conn* conn);
  void HandleWritable(Conn* conn);
  void DrainCompletions();
  void DispatchNext(Conn* conn);
  /// Appends one framed response; true if the egress bound held.
  bool EnqueueResponse(Conn* conn, const std::vector<uint8_t>& payload);
  void Evict(Conn* conn, EvictionCause cause);
  void CloseConn(Conn* conn);
  void SweepDeadlines();
  void UpdateSheddingWindow();
  void UpdateEpollInterest(Conn* conn);
  void WakeLoop();

  const SupervisorOptions options_;
  ServerMetrics* const metrics_;
  const Handler handler_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  /// Atomic because CloseListeners (drain thread) nulls them while the
  /// loop thread may be between its listeners_closed_ check and the
  /// accept; a stale fd value just yields EBADF, handled as
  /// listener-gone, but the read itself must be race-free.
  std::atomic<int> unix_listen_fd_{-1};
  std::atomic<int> tcp_listen_fd_{-1};
  /// Pre-allocated fd released to make room for the EMFILE shed-accept.
  int spare_fd_ = -1;

  std::thread loop_thread_;
  std::vector<std::thread> handler_pool_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> listeners_closed_{false};
  bool started_ = false;
  bool stopped_ = false;
  /// Serializes Start/Stop/CloseListeners against each other.
  std::mutex lifecycle_mu_;

  /// Loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::unordered_map<uint32_t, size_t> per_ip_;
  uint64_t next_conn_id_ = 16;  // ids 0..15 reserved for listeners/wakeups
  std::chrono::steady_clock::time_point last_sweep_{};
  std::chrono::steady_clock::time_point last_shed_eval_{};
  obs::Histogram::Snapshot last_queue_wait_snapshot_{};

  /// Handler pool plumbing.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  /// Cross-thread observability.
  std::atomic<size_t> open_connections_{0};
  std::atomic<size_t> inflight_jobs_{0};
  std::atomic<uint64_t> total_egress_bytes_{0};
  std::atomic<bool> shedding_{false};
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_CONNECTION_SUPERVISOR_H_
