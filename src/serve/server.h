// PriViewServer: the process boundary. Listens on a Unix-domain stream
// socket (and optionally a TCP endpoint), speaks the serve/wire_protocol
// framing, and routes every data request through the RequestBroker
// (admission control, coalescing, deadline degradation) against the
// SynopsisRegistry.
//
// Transport is the epoll ConnectionSupervisor: one event-loop thread owns
// every connection, a fixed handler pool runs requests, and adversarial
// peers (slowloris, half-open, slow readers, pipeline abusers) are evicted
// by deadline or cap instead of parking threads. A malformed or torn frame
// kills only its own connection, never the process.
//
// Request handling:
//   marginal            broker Ask -> table response
//   conjunction         broker Ask(attrs) -> cell lookup -> value response
//   roll-up/slice/dice  broker Ask(cube scope) -> cube algebra on the
//                       answered table -> table response (so the cube ops
//                       inherit coalescing: concurrent slices of the same
//                       cube share one reconstruction)
//   stats               ServerMetrics snapshot as JSON -> text response
//   list                registry contents -> text response
//
// The registry stays exposed so the owning process can hot-swap releases
// while the server is accepting queries; in-flight requests hold their
// engine via the registry's refcount and finish on the release they
// started on.
#ifndef PRIVIEW_SERVE_SERVER_H_
#define PRIVIEW_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/connection_supervisor.h"
#include "serve/request_broker.h"
#include "serve/server_metrics.h"
#include "serve/synopsis_registry.h"
#include "serve/wire_protocol.h"

namespace priview::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain socket (bound at Start; unlinked
  /// at Stop). Must fit sockaddr_un (~107 bytes). May be empty when a TCP
  /// endpoint is configured (TCP-only server).
  std::string socket_path;
  /// TCP listen port: -1 disables the TCP endpoint (Unix socket only),
  /// 0 binds an ephemeral port (read it back via bound_tcp_port()), > 0
  /// binds that port. The endpoint speaks the same wire protocol.
  int tcp_port = -1;
  /// Interface the TCP endpoint binds. Loopback by default — exposing the
  /// server beyond the host is a deliberate operator decision.
  std::string tcp_host = "127.0.0.1";
  BrokerOptions broker;
  /// Per-frame io deadline on connection sockets: a frame that has
  /// started (or a response being written) must make progress within this
  /// budget or the connection is evicted, so a peer that dies mid-frame
  /// cannot stall the server. Idle connections (no frame in flight) are
  /// not policed. <= 0 disables the deadline. Authoritative — it
  /// overrides supervisor.io_timeout_ms.
  int io_timeout_ms = kDefaultIoTimeoutMs;
  /// Transport policies: connection caps, per-IP caps, egress bounds,
  /// pipelining bound, handler pool size, overload shedding.
  SupervisorOptions supervisor;
  /// How long Drain() lets already-admitted broker work finish before
  /// closing connections. <= 0 falls back to broker.stop_grace.
  std::chrono::milliseconds drain_grace{5000};
  /// Epochs of each synopsis the registry keeps resident for time-series
  /// queries (kSeries). 1 = current epoch only (series of depth 1 still
  /// answer); raising it trades memory for lookback depth.
  size_t history_depth = 1;
};

class PriViewServer {
 public:
  explicit PriViewServer(const ServerOptions& options);
  ~PriViewServer();
  PriViewServer(const PriViewServer&) = delete;
  PriViewServer& operator=(const PriViewServer&) = delete;

  /// Binds the listeners, starts the broker dispatcher, the connection
  /// supervisor and the drain watcher (the thread behind RequestDrain /
  /// SIGTERM).
  Status Start();
  /// Hard stop: fails queued broker work, evicts live connections, joins
  /// every thread, unlinks the socket. Idempotent.
  void Stop();
  /// Graceful shutdown: stop accepting new connections and requests, let
  /// already-admitted broker work finish within options().drain_grace and
  /// its responses flush to their clients, then evict stragglers and stop.
  /// Returns how many requests were still queued or in flight when the
  /// grace expired (also exported as the priview_drain_inflight_at_close
  /// gauge). Idempotent with Stop — whichever runs first wins.
  size_t Drain();

  /// Async-signal-safe drain trigger: writes one byte to a self-pipe that
  /// the watcher thread (started by Start) turns into a Drain() call.
  /// Callable from a signal handler.
  void RequestDrain();

  /// Readiness for the kHealth probe: accepting work, the registry hosts
  /// at least one synopsis, and the backing store (if any) recovered.
  /// Liveness is implied by any response at all.
  bool Ready() const;
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  /// Owning processes that recover a SynopsisStore into registry() report
  /// the outcome here; readiness stays false after a failed recovery.
  /// Defaults to true for store-less servers.
  void SetStoreRecovered(bool recovered) {
    store_recovered_.store(recovered, std::memory_order_relaxed);
  }

  /// Port the TCP endpoint actually bound (resolves tcp_port = 0), or -1
  /// when the endpoint is disabled or the server is stopped.
  int bound_tcp_port() const {
    return bound_tcp_port_.load(std::memory_order_relaxed);
  }

  /// Host / hot-swap synopses through this (thread-safe, live during
  /// serving).
  SynopsisRegistry& registry() { return registry_; }
  ServerMetrics& metrics() { return metrics_; }
  RequestBroker& broker() { return *broker_; }
  /// Live transport state (open connections, inflight, shedding).
  const ConnectionSupervisor* supervisor() const { return supervisor_.get(); }

 private:
  void DrainWatcherLoop();
  /// The single shutdown funnel behind Stop and Drain; serialized by
  /// lifecycle_mu_ so a signal-driven drain and a destructor Stop cannot
  /// tear down the same threads twice.
  size_t Shutdown(bool graceful);
  /// Builds the response for one decoded request (never throws; every
  /// failure is an error response).
  std::vector<uint8_t> HandleRequest(const WireRequest& request);
  /// Supervisor handler: frame payload in, framed-able response out.
  std::vector<uint8_t> HandlePayload(std::vector<uint8_t> payload);
  Status BindUnixListener(int* fd_out);
  Status BindTcpListener(int* fd_out);

  const ServerOptions options_;
  SynopsisRegistry registry_;
  ServerMetrics metrics_;
  std::unique_ptr<RequestBroker> broker_;
  std::unique_ptr<ConnectionSupervisor> supervisor_;

  std::mutex mu_;
  bool running_ = false;
  std::atomic<int> bound_tcp_port_{-1};

  /// Serializes Shutdown bodies (signal-driven Drain vs destructor Stop).
  std::mutex lifecycle_mu_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> store_recovered_{true};
  /// Self-pipe: RequestDrain writes, the watcher thread reads.
  int drain_pipe_[2] = {-1, -1};
  std::thread drain_watcher_;
  std::atomic<bool> watcher_stop_{false};
};

/// Installs a SIGTERM handler that calls `server->RequestDrain()` — the
/// standard "finish what you admitted, then exit" orchestration contract.
/// One server per process: installing for a second server replaces the
/// first. Pass nullptr to uninstall (restores SIG_DFL).
Status InstallSigtermDrain(PriViewServer* server);

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_SERVER_H_
