// RequestBroker: the admission-controlled execution path between the
// connection handlers and the query engines.
//
// Lifecycle of a request (Ask):
//   1. Admission — a request whose deadline has already passed is rejected
//      up front with DeadlineExceeded (counted separately from queue-full
//      rejections: a client clock bug must not read as overload); then the
//      bounded queue either accepts the request or rejects it immediately
//      with ResourceExhausted (backpressure; the caller is never blocked
//      behind an unbounded backlog). The "serve/queue-full" failpoint
//      forces the full-queue path for chaos drills.
//   2. Batching + coalescing — the dispatcher thread drains the whole
//      queue each wake-up. Within a batch, requests for the same synopsis
//      are grouped and their targets coalesced: a duplicate target, or a
//      target contained in another pending target, shares the superset's
//      single reconstruction and is answered by cube roll-up. Concurrent
//      analysts asking overlapping questions cost one solve.
//   3. Execution — the surviving distinct targets run through
//      QueryEngine::AnswerBatch, which reconstructs concurrently on the
//      src/common/parallel pool and populates the read-side cache.
//   4. Deadlines + degradation — a request whose deadline has already
//      passed at dispatch time is failed with DeadlineExceeded (never
//      silently answered late). When the *remaining* budget at dispatch is
//      below the degradation thresholds the broker downgrades the whole
//      group along the PR 1 fallback chain — full requested-method solve,
//      then the cheaper least-norm solve, then cache roll-up only (a
//      cache miss at that tier is DeadlineExceeded: there is no time left
//      to solve). Every answer records the tier that produced it.
//
// Start() spawns the dispatcher; requests submitted before Start() queue
// up (tests use this to stage deterministic batches). Stop() fails the
// queue with retryable Unavailable (the work was admitted; the service
// went away) and joins; only *new* Asks on a stopped broker get
// FailedPrecondition. Ask() never blocks past the request deadline plus a
// small completion grace.
#ifndef PRIVIEW_SERVE_REQUEST_BROKER_H_
#define PRIVIEW_SERVE_REQUEST_BROKER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include <vector>

#include "common/status.h"
#include "serve/server_metrics.h"
#include "serve/synopsis_registry.h"
#include "serve/wire_protocol.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview::serve {

struct BrokerOptions {
  /// Maximum queued (admitted, not yet dispatched) requests; admission
  /// past this rejects with ResourceExhausted.
  size_t queue_capacity = 256;
  /// Deadline applied when Ask is called without one.
  std::chrono::milliseconds default_deadline{1000};
  /// Share reconstructions between duplicate / sub-marginal targets in a
  /// batch. Off, every request solves (or cache-hits) independently —
  /// kept as a knob so bench_serve can measure the win.
  bool coalesce = true;
  /// Remaining-deadline threshold below which the group downgrades to the
  /// least-norm solver.
  std::chrono::milliseconds least_norm_below{50};
  /// Remaining-deadline threshold below which only the cache may answer.
  std::chrono::milliseconds cache_only_below{5};
  /// How long past its deadline an Ask caller keeps waiting for the
  /// dispatcher's verdict (it may be mid-solve on the caller's behalf), and
  /// how long Drain waits for in-flight work by default. Bounded so Ask
  /// can never hang on a wedged dispatcher.
  std::chrono::milliseconds stop_grace{5000};
};

/// A broker answer: the table plus how it was produced.
struct ServedAnswer {
  MarginalTable table;
  ServeTier tier = ServeTier::kFull;
  /// True when this request shared another pending request's
  /// reconstruction (exact duplicate or sub-marginal roll-up).
  bool coalesced = false;
  /// Epoch of the hosted synopsis that answered (registry install epoch).
  uint64_t epoch = 0;
};

/// One epoch's table inside a ServedSeries.
struct SeriesPoint {
  uint64_t epoch = 0;
  MarginalTable table;
};

/// A broker time-series answer: one point per retained epoch of the named
/// synopsis, newest first. Under SeriesMode::kLevels each point is that
/// epoch's marginal on the requested target; under kDeltas point 0 is the
/// current marginal and every later point is (current - that epoch)
/// cellwise, tagged with the older epoch.
struct ServedSeries {
  std::vector<SeriesPoint> points;
  ServeTier tier = ServeTier::kFull;
  /// True when this request shared another identical pending series
  /// request's computation (same synopsis, target, depth and mode).
  bool coalesced = false;
};

class RequestBroker {
 public:
  RequestBroker(SynopsisRegistry* registry, ServerMetrics* metrics,
                const BrokerOptions& options = {});
  ~RequestBroker();
  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  /// Spawns the dispatcher thread (idempotent).
  void Start();
  /// Stops the dispatcher and fails everything still queued with
  /// retryable Unavailable (admitted work failed by the stop is the
  /// service's fault, not the caller's). Idempotent.
  void Stop();

  /// Graceful shutdown: stops admitting (new Asks are rejected with
  /// Unavailable — retryable, unlike the FailedPrecondition a *new* Ask
  /// gets after the stop), lets
  /// already-admitted work dispatch and finish for up to `grace`, then
  /// Stops. Returns how many requests were still queued or in flight when
  /// the grace expired (0 = everything admitted before the drain
  /// completed). A zero grace uses options().stop_grace.
  size_t Drain(std::chrono::milliseconds grace = std::chrono::milliseconds{0});

  /// True while the broker accepts new work (started, not stopping or
  /// draining) — the readiness half of the health probe.
  bool accepting() const;

  /// Admission-controlled marginal query against the named synopsis.
  /// Blocks the calling thread until the answer, a rejection, or the
  /// deadline. See the file comment for the lifecycle.
  StatusOr<ServedAnswer> Ask(const std::string& synopsis, AttrSet target);
  StatusOr<ServedAnswer> Ask(const std::string& synopsis, AttrSet target,
                             std::chrono::steady_clock::time_point deadline);

  /// Admission-controlled time-series query: the target marginal across up
  /// to `last_n` retained epochs of the named synopsis (clamped to what the
  /// registry's history actually holds), newest first. Rides the same
  /// queue, batching, deadline shedding and degradation tiers as Ask;
  /// identical pending series requests in a batch share one computation.
  StatusOr<ServedSeries> AskSeries(const std::string& synopsis, AttrSet target,
                                   uint32_t last_n, SeriesMode mode);
  StatusOr<ServedSeries> AskSeries(
      const std::string& synopsis, AttrSet target, uint32_t last_n,
      SeriesMode mode, std::chrono::steady_clock::time_point deadline);

  /// Requests admitted but not yet completed: still queued OR swapped into
  /// the dispatcher's in-flight batch. Counting only the queue would read
  /// 0 for the whole time a batch is processing (the dispatcher drains the
  /// queue in one swap), which is exactly when the backlog gauge matters.
  size_t QueueDepth() const;

  const BrokerOptions& options() const { return options_; }

 private:
  struct Pending;

  /// Shared admission gate: stopped / draining / queue-full checks, then
  /// the queue push and dispatcher wake-up.
  Status Admit(std::unique_ptr<Pending> pending);
  void DispatchLoop();
  void ProcessBatch(std::deque<std::unique_ptr<Pending>> batch);

  SynopsisRegistry* const registry_;
  ServerMetrics* const metrics_;
  const BrokerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Signalled whenever queued/in-flight work finishes (Drain waits here).
  std::condition_variable drain_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool running_ = false;
  bool stopping_ = false;
  bool draining_ = false;
  /// Requests swapped out of the queue and currently being processed.
  size_t inflight_ = 0;
  std::thread dispatcher_;
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_REQUEST_BROKER_H_
