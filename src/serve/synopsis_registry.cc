#include "serve/synopsis_registry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"

namespace priview::serve {

namespace {

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status SynopsisRegistry::Install(const std::string& name,
                                 PriViewSynopsis synopsis,
                                 const QueryEngineOptions& engine_options,
                                 LoadReport report) {
  std::lock_guard<std::mutex> lock(mu_);
  return InstallLocked(name, std::move(synopsis), /*explicit_epoch=*/0,
                       engine_options, std::move(report));
}

Status SynopsisRegistry::InstallAtEpoch(const std::string& name,
                                        PriViewSynopsis synopsis,
                                        uint64_t epoch,
                                        const QueryEngineOptions& engine_options,
                                        LoadReport report) {
  if (epoch == 0) {
    return Status::InvalidArgument("explicit epoch must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return InstallLocked(name, std::move(synopsis), epoch, engine_options,
                       std::move(report));
}

Status SynopsisRegistry::InstallLocked(const std::string& name,
                                       PriViewSynopsis synopsis,
                                       uint64_t explicit_epoch,
                                       const QueryEngineOptions& engine_options,
                                       LoadReport report) {
  if (name.empty()) {
    return Status::InvalidArgument("synopsis name must be non-empty");
  }
  if (synopsis.views().empty() || synopsis.d() < 1) {
    return Status::FailedPrecondition("synopsis '" + name +
                                      "' has no views to serve from");
  }
  if (explicit_epoch != 0) {
    auto it = hosted_.find(name);
    if (it != hosted_.end() && it->second->epoch() >= explicit_epoch) {
      return Status::FailedPrecondition(
          "epoch for '" + name + "' would move backward: hosting " +
          std::to_string(it->second->epoch()) + ", asked to install " +
          std::to_string(explicit_epoch));
    }
  }
  if (PRIVIEW_FAILPOINT("serve/swap-race")) {
    return Status::FailedPrecondition(
        "injected: serve/swap-race — hot-swap of '" + name +
        "' lost a concurrent swap; previous release still live, retry");
  }
  const uint64_t epoch =
      explicit_epoch != 0 ? explicit_epoch : next_epoch_++;
  if (next_epoch_ <= epoch) next_epoch_ = epoch + 1;
  // The swap is this one shared_ptr assignment: readers that Acquire()d
  // the old release keep it alive through their queries; new Acquires see
  // the new release atomically.
  auto hosted = std::make_shared<HostedSynopsis>(
      name, std::move(synopsis), engine_options, std::move(report), epoch,
      NowUnixMs());
  hosted_[name] = hosted;
  std::deque<std::shared_ptr<const HostedSynopsis>>& series = history_[name];
  series.push_back(std::move(hosted));
  while (series.size() > history_depth_) series.pop_front();
  ++install_count_;
  return Status::OK();
}

StatusOr<LoadReport> SynopsisRegistry::InstallFromFile(
    const std::string& name, const std::string& path,
    const ReadOptions& read_options, const QueryEngineOptions& engine_options) {
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded = LoadSynopsis(path, read_options, &report);
  if (!loaded.ok()) return loaded.status();
  const Status installed =
      Install(name, std::move(loaded).value(), engine_options, report);
  if (!installed.ok()) return installed;
  return report;
}

StatusOr<std::shared_ptr<const HostedSynopsis>> SynopsisRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosted_.find(name);
  if (it == hosted_.end()) {
    return Status::NotFound("no synopsis named '" + name + "'");
  }
  return it->second;
}

StatusOr<std::vector<std::shared_ptr<const HostedSynopsis>>>
SynopsisRegistry::AcquireSeries(const std::string& name,
                                size_t last_n) const {
  if (last_n == 0) {
    return Status::InvalidArgument("series length must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_.find(name);
  if (it == history_.end() || it->second.empty()) {
    return Status::NotFound("no synopsis named '" + name + "'");
  }
  const std::deque<std::shared_ptr<const HostedSynopsis>>& series = it->second;
  std::vector<std::shared_ptr<const HostedSynopsis>> out;
  const size_t n = std::min(last_n, series.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(series[series.size() - 1 - i]);  // newest first
  }
  return out;
}

Status SynopsisRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hosted_.erase(name) == 0) {
    return Status::NotFound("no synopsis named '" + name + "'");
  }
  history_.erase(name);
  return Status::OK();
}

void SynopsisRegistry::set_history_depth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  history_depth_ = depth < 1 ? 1 : depth;
  for (auto& [name, series] : history_) {
    while (series.size() > history_depth_) series.pop_front();
  }
}

size_t SynopsisRegistry::history_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_depth_;
}

void SynopsisRegistry::EnsureEpochAtLeast(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_epoch_ < epoch) next_epoch_ = epoch;
}

std::vector<SynopsisInfo> SynopsisRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SynopsisInfo> out;
  out.reserve(hosted_.size());
  for (const auto& [name, hosted] : hosted_) {
    SynopsisInfo info;
    info.name = name;
    info.d = hosted->synopsis().d();
    info.views = hosted->synopsis().views().size();
    info.epsilon = hosted->synopsis().options().epsilon;
    info.epoch = hosted->epoch();
    info.install_unix_ms = hosted->install_unix_ms();
    info.fully_intact = hosted->load_report().fully_intact();
    out.push_back(std::move(info));
  }
  return out;
}

size_t SynopsisRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hosted_.size();
}

uint64_t SynopsisRegistry::install_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return install_count_;
}

}  // namespace priview::serve
