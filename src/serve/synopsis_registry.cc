#include "serve/synopsis_registry.h"

#include <utility>

#include "common/failpoint.h"

namespace priview::serve {

Status SynopsisRegistry::Install(const std::string& name,
                                 PriViewSynopsis synopsis,
                                 const QueryEngineOptions& engine_options,
                                 LoadReport report) {
  if (name.empty()) {
    return Status::InvalidArgument("synopsis name must be non-empty");
  }
  if (synopsis.views().empty() || synopsis.d() < 1) {
    return Status::FailedPrecondition("synopsis '" + name +
                                      "' has no views to serve from");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (PRIVIEW_FAILPOINT("serve/swap-race")) {
    return Status::FailedPrecondition(
        "injected: serve/swap-race — hot-swap of '" + name +
        "' lost a concurrent swap; previous release still live, retry");
  }
  const uint64_t epoch = next_epoch_++;
  // The swap is this one shared_ptr assignment: readers that Acquire()d
  // the old release keep it alive through their queries; new Acquires see
  // the new release atomically.
  hosted_[name] = std::make_shared<HostedSynopsis>(
      name, std::move(synopsis), engine_options, std::move(report), epoch);
  ++install_count_;
  return Status::OK();
}

StatusOr<LoadReport> SynopsisRegistry::InstallFromFile(
    const std::string& name, const std::string& path,
    const ReadOptions& read_options, const QueryEngineOptions& engine_options) {
  LoadReport report;
  StatusOr<PriViewSynopsis> loaded = LoadSynopsis(path, read_options, &report);
  if (!loaded.ok()) return loaded.status();
  const Status installed =
      Install(name, std::move(loaded).value(), engine_options, report);
  if (!installed.ok()) return installed;
  return report;
}

StatusOr<std::shared_ptr<const HostedSynopsis>> SynopsisRegistry::Acquire(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hosted_.find(name);
  if (it == hosted_.end()) {
    return Status::NotFound("no synopsis named '" + name + "'");
  }
  return it->second;
}

Status SynopsisRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hosted_.erase(name) == 0) {
    return Status::NotFound("no synopsis named '" + name + "'");
  }
  return Status::OK();
}

std::vector<SynopsisInfo> SynopsisRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SynopsisInfo> out;
  out.reserve(hosted_.size());
  for (const auto& [name, hosted] : hosted_) {
    SynopsisInfo info;
    info.name = name;
    info.d = hosted->synopsis().d();
    info.views = hosted->synopsis().views().size();
    info.epsilon = hosted->synopsis().options().epsilon;
    info.epoch = hosted->epoch();
    info.fully_intact = hosted->load_report().fully_intact();
    out.push_back(std::move(info));
  }
  return out;
}

size_t SynopsisRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hosted_.size();
}

uint64_t SynopsisRegistry::install_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return install_count_;
}

}  // namespace priview::serve
