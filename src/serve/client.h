// Blocking client for the PriView query server: connects to the server's
// Unix-domain socket and exposes the wire protocol as a typed API. One
// request in flight per client (the protocol is strict request/response);
// analysts wanting concurrency open one client per thread — connections
// are cheap and the server is one thread per connection.
//
// Resilience (opt-in via ClientOptions):
//   - Connect is non-blocking with a deadline: a peer that accepts but
//     never completes the handshake yields DeadlineExceeded instead of
//     parking the thread in connect(2); nothing listening is Unavailable.
//   - With enable_retries set, every *idempotent* request (today: all of
//     them — see IsIdempotentRequest) survives transport damage and
//     retryable server errors (Unavailable from a draining broker,
//     injected IO faults) by reconnecting and retrying under a
//     common/retry RetryPolicy: capped exponential backoff, deterministic
//     seeded jitter, bounded attempts. ResourceExhausted (admission shed)
//     and other deterministic failures are NEVER retried.
//
// Every method returns Status: server-side errors (unknown synopsis,
// invalid scope, admission rejection, deadline) arrive as the error
// response's code + message; transport damage (torn frame, oversized
// frame, closed socket) is IOError/DataLoss, after which the connection
// is closed — with retries off the client must be reconnected by the
// caller, with retries on the next call reconnects itself.
#ifndef PRIVIEW_SERVE_CLIENT_H_
#define PRIVIEW_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "serve/server_metrics.h"
#include "serve/wire_protocol.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview::serve {

/// Retry defaults tuned for a serving fleet: decorrelated jitter, so a
/// thousand clients cut off by one server restart do not re-dial in
/// lockstep waves (proportional jitter keeps retries clustered around the
/// same exponential schedule; decorrelated spreads each client across the
/// whole backoff range independently).
RetryOptions DefaultClientRetryOptions();

struct ClientOptions {
  std::string socket_path;
  /// TCP endpoint; used instead of socket_path when tcp_port > 0. Speaks
  /// the identical wire protocol (TCP_NODELAY is set — frames are small
  /// and latency-bound).
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;
  /// Deadline for establishing one connection (non-blocking connect +
  /// readiness wait). <= 0 waits forever (not recommended).
  int connect_timeout_ms = 5000;
  /// Per-frame io deadline once a frame has started (see wire_protocol).
  int io_timeout_ms = kDefaultIoTimeoutMs;
  /// Retry idempotent requests across transport failures and retryable
  /// server errors, reconnecting as needed. Off by default: the caller
  /// owns failure handling unless they opt in.
  bool enable_retries = false;
  RetryOptions retry = DefaultClientRetryOptions();
};

/// A table answer plus the serving metadata the wire carries.
struct ClientTable {
  MarginalTable table;
  ServeTier tier = ServeTier::kFull;
  bool coalesced = false;
  uint64_t epoch = 0;
};

/// A scalar answer plus the serving metadata.
struct ClientValue {
  double value = 0.0;
  ServeTier tier = ServeTier::kFull;
  bool coalesced = false;
  uint64_t epoch = 0;
};

/// One epoch's table inside a ClientSeries (newest first).
struct ClientSeriesPoint {
  uint64_t epoch = 0;
  MarginalTable table;
};

/// A time-series answer: one point per retained epoch of the synopsis,
/// newest first, plus the serving metadata. Under Series() each point is
/// that epoch's marginal; under TrendDeltas() point 0 is the current
/// marginal and every later point is (current - that epoch) cellwise.
struct ClientSeries {
  std::vector<ClientSeriesPoint> points;
  ServeTier tier = ServeTier::kFull;
  bool coalesced = false;
};

/// One hosted release from ListSynopses (the typed kSynopsisList catalog,
/// unlike List()'s human-oriented text lines).
struct SynopsisListing {
  std::string name;
  uint64_t epoch = 0;
  uint64_t install_unix_ms = 0;
  int d = 0;
  size_t views = 0;
  double epsilon = 0.0;
  bool fully_intact = true;
};

/// Parsed kHealth response. `ready` is the orchestration gate; the rest
/// explains why it is (or is not) set.
struct HealthReport {
  bool ready = false;
  bool draining = false;
  bool accepting = false;
  bool store_recovered = false;
  size_t synopses = 0;
  /// The raw "key=value ..." wire text, for logs.
  std::string raw;
};

class PriViewClient {
 public:
  /// Connects with full options. With enable_retries the connect itself
  /// is retried (DeadlineExceeded and Unavailable are retryable in the
  /// connect phase — the server may be restarting).
  static StatusOr<PriViewClient> Connect(const ClientOptions& options);
  /// Convenience overload: default options (no retries), matching the
  /// pre-resilience behavior apart from the bounded connect.
  static StatusOr<PriViewClient> Connect(const std::string& socket_path);

  PriViewClient(PriViewClient&& other) noexcept;
  PriViewClient& operator=(PriViewClient&& other) noexcept;
  PriViewClient(const PriViewClient&) = delete;
  PriViewClient& operator=(const PriViewClient&) = delete;
  ~PriViewClient();

  /// The reconstructed marginal over `target` from the named synopsis.
  /// `deadline_ms` = 0 uses the server's default deadline.
  StatusOr<ClientTable> Marginal(const std::string& synopsis, AttrSet target,
                                 uint32_t deadline_ms = 0);

  /// Conjunction count: the cell of the marginal over `attrs` at
  /// `assignment` (compact cell-index convention).
  StatusOr<ClientValue> Conjunction(const std::string& synopsis, AttrSet attrs,
                                    uint64_t assignment,
                                    uint32_t deadline_ms = 0);

  /// Cube algebra, computed server-side on the reconstructed cube.
  StatusOr<ClientTable> RollUp(const std::string& synopsis, AttrSet cube,
                               AttrSet keep, uint32_t deadline_ms = 0);
  StatusOr<ClientTable> Slice(const std::string& synopsis, AttrSet cube,
                              int attr, int value, uint32_t deadline_ms = 0);
  StatusOr<ClientTable> Dice(const std::string& synopsis, AttrSet cube,
                             AttrSet fixed, uint64_t values,
                             uint32_t deadline_ms = 0);

  /// Windowed time series: the target marginal across up to `last_n`
  /// retained epochs of the synopsis (clamped to the server's retained
  /// history), newest first.
  StatusOr<ClientSeries> Series(const std::string& synopsis, AttrSet target,
                                uint32_t last_n, uint32_t deadline_ms = 0);
  /// Trend deltas: point 0 is the current marginal; every later point is
  /// (current - that epoch) cellwise, tagged with the older epoch — how
  /// much the marginal has moved since each retained release.
  StatusOr<ClientSeries> TrendDeltas(const std::string& synopsis,
                                     AttrSet target, uint32_t last_n,
                                     uint32_t deadline_ms = 0);
  /// The typed release catalog: name, epoch and install time per hosted
  /// synopsis.
  StatusOr<std::vector<SynopsisListing>> ListSynopses();

  /// Server metrics snapshot as JSON.
  StatusOr<std::string> Stats();
  /// Full metrics scrape in Prometheus text-exposition format: the
  /// server's per-instance instruments (request lifecycle, latency,
  /// broker queue wait / coalesce width / dispatch) followed by the
  /// process-wide registry (publish pipeline spans, query path, solver,
  /// parallel pool) and the slow-span log as comment lines.
  StatusOr<std::string> Metrics();
  /// Hosted synopses, one "name d=... views=... eps=... epoch=..." line
  /// each.
  StatusOr<std::string> List();
  /// Readiness/liveness probe. Any OK return means the server is live;
  /// report.ready is the readiness gate. Served without touching the
  /// broker, so it works on a draining or still-recovering server.
  StatusOr<HealthReport> Health();

  void Close();
  bool connected() const { return fd_ >= 0; }
  const ClientOptions& options() const { return options_; }

 private:
  PriViewClient(int fd, ClientOptions options);

  /// Reconnects if the connection was lost (retry-enabled clients only
  /// reach this disconnected; legacy clients fail FailedPrecondition).
  Status EnsureConnected();
  /// One request/response round trip on the current connection; closes it
  /// on transport damage.
  StatusOr<WireResponse> RoundTripOnce(const WireRequest& request);
  /// The retry loop around RoundTripOnce (straight pass-through when
  /// retries are disabled or the request is not idempotent).
  StatusOr<WireResponse> RoundTrip(const WireRequest& request);
  StatusOr<ClientTable> TableRequest(const WireRequest& request);
  StatusOr<std::string> TextRequest(MessageType type);
  StatusOr<ClientSeries> SeriesRequest(const std::string& synopsis,
                                       AttrSet target, uint32_t last_n,
                                       SeriesMode mode, uint32_t deadline_ms);

  int fd_ = -1;
  ClientOptions options_;
  RetryPolicy retry_policy_;
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_CLIENT_H_
