// Blocking client for the PriView query server: connects to the server's
// Unix-domain socket and exposes the wire protocol as a typed API. One
// request in flight per client (the protocol is strict request/response);
// analysts wanting concurrency open one client per thread — connections
// are cheap and the server is one thread per connection.
//
// Every method returns Status: server-side errors (unknown synopsis,
// invalid scope, admission rejection, deadline) arrive as the error
// response's code + message; transport damage (torn frame, oversized
// frame, closed socket) is IOError/DataLoss, after which the client is
// dead and must be reconnected.
#ifndef PRIVIEW_SERVE_CLIENT_H_
#define PRIVIEW_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/server_metrics.h"
#include "serve/wire_protocol.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview::serve {

/// A table answer plus the serving metadata the wire carries.
struct ClientTable {
  MarginalTable table;
  ServeTier tier = ServeTier::kFull;
  bool coalesced = false;
  uint64_t epoch = 0;
};

/// A scalar answer plus the serving metadata.
struct ClientValue {
  double value = 0.0;
  ServeTier tier = ServeTier::kFull;
  bool coalesced = false;
  uint64_t epoch = 0;
};

class PriViewClient {
 public:
  /// Connects to the server socket. IOError if nothing is listening.
  static StatusOr<PriViewClient> Connect(const std::string& socket_path);

  PriViewClient(PriViewClient&& other) noexcept;
  PriViewClient& operator=(PriViewClient&& other) noexcept;
  PriViewClient(const PriViewClient&) = delete;
  PriViewClient& operator=(const PriViewClient&) = delete;
  ~PriViewClient();

  /// The reconstructed marginal over `target` from the named synopsis.
  /// `deadline_ms` = 0 uses the server's default deadline.
  StatusOr<ClientTable> Marginal(const std::string& synopsis, AttrSet target,
                                 uint32_t deadline_ms = 0);

  /// Conjunction count: the cell of the marginal over `attrs` at
  /// `assignment` (compact cell-index convention).
  StatusOr<ClientValue> Conjunction(const std::string& synopsis, AttrSet attrs,
                                    uint64_t assignment,
                                    uint32_t deadline_ms = 0);

  /// Cube algebra, computed server-side on the reconstructed cube.
  StatusOr<ClientTable> RollUp(const std::string& synopsis, AttrSet cube,
                               AttrSet keep, uint32_t deadline_ms = 0);
  StatusOr<ClientTable> Slice(const std::string& synopsis, AttrSet cube,
                              int attr, int value, uint32_t deadline_ms = 0);
  StatusOr<ClientTable> Dice(const std::string& synopsis, AttrSet cube,
                             AttrSet fixed, uint64_t values,
                             uint32_t deadline_ms = 0);

  /// Server metrics snapshot as JSON.
  StatusOr<std::string> Stats();
  /// Full metrics scrape in Prometheus text-exposition format: the
  /// server's per-instance instruments (request lifecycle, latency,
  /// broker queue wait / coalesce width / dispatch) followed by the
  /// process-wide registry (publish pipeline spans, query path, solver,
  /// parallel pool) and the slow-span log as comment lines.
  StatusOr<std::string> Metrics();
  /// Hosted synopses, one "name d=... views=... eps=... epoch=..." line
  /// each.
  StatusOr<std::string> List();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit PriViewClient(int fd) : fd_(fd) {}

  /// One request/response round trip.
  StatusOr<WireResponse> RoundTrip(const WireRequest& request);
  StatusOr<ClientTable> TableRequest(const WireRequest& request);

  int fd_ = -1;
};

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_CLIENT_H_
