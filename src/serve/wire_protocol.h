// Compact binary wire protocol for the query server: length-prefixed
// frames over a Unix-domain stream socket.
//
// Frame:   uint32 LE payload length, then that many payload bytes. The
//          payload cap (kMaxFramePayload) bounds a 20-attribute table
//          response with headroom; an oversized declared length is DataLoss
//          and the connection is closed (there is no way to resync a
//          stream after a liar header).
// Payload: one message. Byte 0 is the MessageType; all integers are
//          little-endian, doubles are IEEE-754 bit patterns (memcpy'd), and
//          strings are uint16 length + bytes.
//
//   request            payload after the type byte
//   ----------------   -------------------------------------------------
//   kMarginal          name, u64 target mask, u32 deadline_ms
//   kConjunction       name, u64 attrs mask, u64 assignment, u32 deadline_ms
//   kRollUp            name, u64 cube mask, u64 keep mask, u32 deadline_ms
//   kSlice             name, u64 cube mask, u8 attr, u8 value, u32 deadline_ms
//   kDice              name, u64 cube mask, u64 fixed mask, u64 values,
//                      u32 deadline_ms
//   kStats             (empty)
//   kList              (empty)
//   kMetrics           (empty) — Prometheus text exposition via kText
//   kHealth            (empty) — readiness/liveness probe via kText; the
//                      server answers this without touching the broker, so
//                      it works while draining or before recovery finishes
//   kSeries            name, u64 target mask, u32 last_n, u8 mode
//                      (0 = per-epoch marginals, 1 = trend deltas:
//                      current minus each older epoch), u32 deadline_ms
//   kListSynopses      (empty) — name/epoch/install-time per release via
//                      kSynopsisList
//
//   response           payload after the type byte
//   ----------------   -------------------------------------------------
//   kTable             u8 tier, u8 coalesced, u64 epoch, u64 attrs mask,
//                      u32 cell count, doubles
//   kValue             u8 tier, u8 coalesced, u64 epoch, double
//   kText              string
//   kError             i32 status code, string message
//   kTableSeries       u8 tier, u8 coalesced, u32 entry count, then per
//                      entry (newest first): u64 epoch, u64 attrs mask,
//                      u32 cell count, doubles
//   kSynopsisList      u32 count, then per entry: name, u64 epoch,
//                      u64 install unix ms, u16 d, u32 views, f64 epsilon,
//                      u8 fully_intact
//
// deadline_ms is relative (milliseconds from server receipt); 0 means the
// broker default. Failure modes are first-class: a torn frame (peer died
// mid-write, or the "serve/io-torn-frame" failpoint) and an oversized
// frame both surface as DataLoss on the reader, never a hang on a closed
// connection and never a crash.
#ifndef PRIVIEW_SERVE_WIRE_PROTOCOL_H_
#define PRIVIEW_SERVE_WIRE_PROTOCOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview::serve {

inline constexpr size_t kMaxFramePayload = 1u << 20;  // 1 MiB

/// Default bound on how long one frame, once started, may stall waiting
/// for socket readiness before the frame call gives up with
/// DeadlineExceeded. Generous — it exists to free handler threads from
/// peers that die mid-frame, not to police slow-but-live clients.
inline constexpr int kDefaultIoTimeoutMs = 30'000;

enum class MessageType : uint8_t {
  // Requests.
  kMarginal = 1,
  kConjunction = 2,
  kRollUp = 3,
  kSlice = 4,
  kDice = 5,
  kStats = 6,
  kList = 7,
  kMetrics = 8,
  kHealth = 9,
  kSeries = 10,
  kListSynopses = 11,
  // Responses.
  kTable = 64,
  kValue = 65,
  kText = 66,
  kError = 67,
  kTableSeries = 68,
  kSynopsisList = 69,
};

/// kSeries request modes.
enum class SeriesMode : uint8_t {
  /// One marginal per retained epoch, newest first.
  kLevels = 0,
  /// Trend deltas: entry 0 is the current epoch's marginal; every later
  /// entry is (current - that epoch) cellwise, tagged with the older
  /// epoch — "how much has this marginal moved since epoch e".
  kDeltas = 1,
};

/// A decoded request. Fields are per-type (see the table above); unused
/// fields stay zero.
struct WireRequest {
  MessageType type = MessageType::kMarginal;
  std::string synopsis;
  uint64_t target_mask = 0;  // marginal target / conjunction attrs / cube scope
  uint64_t aux_mask = 0;     // rollup keep / dice fixed
  uint64_t assignment = 0;   // conjunction assignment / dice values
  uint8_t attr = 0;          // slice attribute
  uint8_t value = 0;         // slice value
  uint32_t last_n = 0;       // series: epochs requested
  uint8_t series_mode = 0;   // series: SeriesMode
  uint32_t deadline_ms = 0;  // 0 = broker default
};

/// One epoch's table inside a kTableSeries response.
struct SeriesEntry {
  uint64_t epoch = 0;
  uint64_t attrs_mask = 0;
  std::vector<double> cells;
};

/// One registered release inside a kSynopsisList response.
struct SynopsisEntry {
  std::string name;
  uint64_t epoch = 0;
  uint64_t install_unix_ms = 0;
  uint16_t d = 0;
  uint32_t views = 0;
  double epsilon = 0.0;
  uint8_t fully_intact = 1;
};

/// A decoded response.
struct WireResponse {
  MessageType type = MessageType::kError;
  // kTable / kValue / kTableSeries serving metadata.
  uint8_t tier = 0;
  uint8_t coalesced = 0;
  uint64_t epoch = 0;
  // kTable payload.
  uint64_t table_attrs_mask = 0;
  std::vector<double> cells;
  // kValue payload.
  double value = 0.0;
  // kText payload.
  std::string text;
  // kError payload.
  int32_t code = 0;
  std::string message;
  // kTableSeries payload (newest first).
  std::vector<SeriesEntry> series;
  // kSynopsisList payload.
  std::vector<SynopsisEntry> synopses;

  /// Reassembles the kTable payload as a MarginalTable. InvalidArgument
  /// when the cell count does not match 2^|attrs| (a malformed or hostile
  /// response must not CHECK-abort the client).
  StatusOr<MarginalTable> ToTable() const;
  /// The kError payload as a Status (code clamped into the known range).
  Status ToStatus() const;
};

/// True for request types that are safe to retry after an ambiguous
/// transport failure (the request may or may not have executed). Every
/// current request is a read against an immutable release, so all are
/// idempotent today — but retry machinery must consult this rather than
/// assume, so a future mutating request type fails closed.
bool IsIdempotentRequest(MessageType type);

std::vector<uint8_t> EncodeRequest(const WireRequest& request);
StatusOr<WireRequest> DecodeRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeResponse(const WireResponse& response);
StatusOr<WireResponse> DecodeResponse(const std::vector<uint8_t>& payload);

/// Convenience builders for the common responses.
WireResponse MakeErrorResponse(const Status& status);
WireResponse MakeTableResponse(const MarginalTable& table, uint8_t tier,
                               bool coalesced, uint64_t epoch);

/// Writes one frame (header + payload) to `fd`, retrying short writes and
/// EINTR, and waiting out EAGAIN/EWOULDBLOCK (the fd may be non-blocking).
/// The whole frame must go out within `timeout_ms` of the call (counting
/// only readiness waits on a non-blocking fd; <= 0 waits forever) —
/// a peer that stops draining yields DeadlineExceeded instead of parking
/// the thread. The "serve/io-torn-frame" failpoint aborts the write
/// mid-payload and reports IOError — the caller must treat the connection
/// as dead.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload,
                  int timeout_ms = kDefaultIoTimeoutMs);

/// Reads one frame from `fd`. A clean close at a frame boundary sets
/// `*clean_eof` and returns OK with an empty payload; EOF mid-frame is
/// DataLoss ("torn frame"), a declared length over kMaxFramePayload is
/// DataLoss ("oversized frame"), and read errors are IOError. A
/// non-blocking fd is handled by polling for readiness on
/// EAGAIN/EWOULDBLOCK rather than spinning, so both frame calls are
/// correct regardless of the fd's O_NONBLOCK state. Waiting for a frame
/// to *begin* is unbounded (idle connections are healthy); once the first
/// byte arrives the rest of the frame must land within `timeout_ms`
/// (<= 0 waits forever) or the read fails DeadlineExceeded — a peer that
/// stalls or trickles mid-frame cannot park the reader thread forever.
/// The deadline is enforceable only on a non-blocking fd (a blocking fd
/// parks in the kernel, outside poll's reach).
Status ReadFrame(int fd, std::vector<uint8_t>* payload, bool* clean_eof,
                 int timeout_ms = kDefaultIoTimeoutMs);

/// Waits until `fd` is readable (`for_write` false) or writable (true), or
/// `timeout_ms` elapses (<= 0 waits forever). DeadlineExceeded on timeout;
/// IOError when poll reports POLLERR/POLLNVAL. The building block behind
/// the frame calls, exported for the client's non-blocking connect.
Status WaitSocketReady(int fd, bool for_write, int timeout_ms);

/// Incremental frame parser for event-loop readers: bytes go in as they
/// arrive off a non-blocking socket, completed payloads come out in order.
/// The blocking ReadFrame above pulls bytes; this is the push-side dual
/// that a connection state machine owns — it never blocks, never reads a
/// socket itself, and carries partial state (a half-received header or
/// payload) across Ingest calls.
///
/// Failure model matches ReadFrame: a declared length over the payload cap
/// is DataLoss and poisons the assembler (there is no way to resync a
/// stream after a liar header — every later Ingest returns the same
/// DataLoss and the connection must be dropped). Torn frames are the
/// caller's to detect: EOF while mid_frame() is a torn frame.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consumes `len` bytes of stream. Completed frames queue up internally
  /// (drain with HasFrame/PopFrame). DataLoss on an oversized declared
  /// length, after which the assembler is poisoned.
  Status Ingest(const uint8_t* data, size_t len);

  bool HasFrame() const { return !frames_.empty(); }
  /// Oldest completed frame payload (may be empty for a zero-length
  /// frame). Undefined when !HasFrame().
  std::vector<uint8_t> PopFrame();
  size_t frame_count() const { return frames_.size(); }

  /// True when a frame has started (>= 1 header byte consumed) but has not
  /// completed — the signal that arms the per-frame stall deadline, and
  /// the torn-frame verdict if EOF arrives now.
  bool mid_frame() const { return header_got_ > 0 || in_payload_; }
  bool poisoned() const { return poisoned_; }

 private:
  size_t max_payload_;
  uint8_t header_[4];
  size_t header_got_ = 0;
  bool in_payload_ = false;
  std::vector<uint8_t> payload_;
  size_t payload_got_ = 0;
  std::deque<std::vector<uint8_t>> frames_;
  bool poisoned_ = false;
};

/// Appends one length-prefixed frame (header + payload) to `out` — the
/// egress-buffer dual of WriteFrame. InvalidArgument when the payload is
/// over the cap (nothing is appended).
Status AppendFrame(std::vector<uint8_t>* out,
                   const std::vector<uint8_t>& payload);

}  // namespace priview::serve

#endif  // PRIVIEW_SERVE_WIRE_PROTOCOL_H_
