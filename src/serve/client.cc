#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics_registry.h"

namespace priview::serve {

namespace {

obs::Counter* RetriesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_client_retries_total", {},
      "Client request attempts beyond the first (granted retries)");
  return c;
}

obs::Counter* ReconnectsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_client_reconnects_total", {},
      "Client reconnects after a lost connection");
  return c;
}

/// Human-readable target for error messages.
std::string Endpoint(const ClientOptions& options) {
  if (options.tcp_port > 0) {
    return options.tcp_host + ":" + std::to_string(options.tcp_port);
  }
  return options.socket_path;
}

/// Non-blocking connect with a deadline, over the Unix socket or (when
/// tcp_port > 0) the TCP endpoint. Classification matters to the retry
/// layer: nothing listening (ECONNREFUSED/ENOENT) is Unavailable
/// (retryable — the server may be restarting); a handshake that never
/// completes is DeadlineExceeded (retryable only in this connect phase);
/// anything else is IOError.
StatusOr<int> ConnectFd(const ClientOptions& options) {
  const bool tcp = options.tcp_port > 0;
  sockaddr_un unix_addr{};
  sockaddr_in tcp_addr{};
  sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  if (tcp) {
    tcp_addr.sin_family = AF_INET;
    tcp_addr.sin_port = htons(static_cast<uint16_t>(options.tcp_port));
    if (::inet_pton(AF_INET, options.tcp_host.c_str(), &tcp_addr.sin_addr) !=
        1) {
      return Status::InvalidArgument("bad tcp host: '" + options.tcp_host +
                                     "'");
    }
    addr = reinterpret_cast<sockaddr*>(&tcp_addr);
    addr_len = sizeof(tcp_addr);
  } else {
    unix_addr.sun_family = AF_UNIX;
    if (options.socket_path.empty() ||
        options.socket_path.size() >= sizeof(unix_addr.sun_path)) {
      return Status::InvalidArgument("bad socket path: '" +
                                     options.socket_path + "'");
    }
    std::memcpy(unix_addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    addr = reinterpret_cast<sockaddr*>(&unix_addr);
    addr_len = sizeof(unix_addr);
  }
  const int fd = ::socket(tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  if (tcp) {
    // Frames are small and latency-bound; Nagle would serialize the
    // request/response pattern against delayed ACKs.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  // Non-blocking from the start: the connect cannot park the thread, and
  // the frame layer's poll-based waits handle the fd from here on.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  if (::connect(fd, addr, addr_len) == 0) {
    return fd;
  }
  if (errno == EINPROGRESS || errno == EAGAIN) {
    // EAGAIN on a Unix socket: the backlog is full — readiness-wait and
    // let SO_ERROR deliver the verdict, same as EINPROGRESS.
    const Status ready =
        WaitSocketReady(fd, /*for_write=*/true, options.connect_timeout_ms);
    if (!ready.ok()) {
      ::close(fd);
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        return Status::DeadlineExceeded("connect(" + Endpoint(options) +
                                        ") timed out");
      }
      return Status::Unavailable("connect(" + Endpoint(options) +
                                 "): " + ready.message());
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      const int err = so_error != 0 ? so_error : errno;
      ::close(fd);
      return Status::Unavailable("connect(" + Endpoint(options) +
                                 "): " + std::strerror(err));
    }
    return fd;
  }
  const int err = errno;
  ::close(fd);
  if (err == ECONNREFUSED || err == ENOENT) {
    return Status::Unavailable("connect(" + Endpoint(options) +
                               "): " + std::strerror(err));
  }
  return Status::IOError("connect(" + Endpoint(options) +
                         "): " + std::strerror(err));
}

bool ParseHealthFlag(const std::string& raw, const std::string& key,
                     uint64_t* value) {
  const size_t pos = raw.find(key + "=");
  if (pos != 0 && (pos == std::string::npos || raw[pos - 1] != ' ')) {
    return false;
  }
  *value = std::strtoull(raw.c_str() + pos + key.size() + 1, nullptr, 10);
  return true;
}

}  // namespace

RetryOptions DefaultClientRetryOptions() {
  RetryOptions options;
  options.jitter_mode = JitterMode::kDecorrelated;
  return options;
}

StatusOr<PriViewClient> PriViewClient::Connect(const ClientOptions& options) {
  RetryPolicy policy(options.retry);
  RetryController call = policy.NewCall();
  for (;;) {
    call.BeginAttempt();
    StatusOr<int> fd = ConnectFd(options);
    if (fd.ok()) return PriViewClient(fd.value(), options);
    if (!options.enable_retries ||
        !call.ShouldRetry(fd.status(), /*connect_phase=*/true)) {
      return fd.status();
    }
    RetriesCounter()->Increment();
    std::this_thread::sleep_for(call.NextBackoff());
  }
}

StatusOr<PriViewClient> PriViewClient::Connect(const std::string& socket_path) {
  ClientOptions options;
  options.socket_path = socket_path;
  return Connect(options);
}

PriViewClient::PriViewClient(int fd, ClientOptions options)
    : fd_(fd), options_(std::move(options)), retry_policy_(options_.retry) {}

PriViewClient::PriViewClient(PriViewClient&& other) noexcept
    : fd_(other.fd_),
      options_(std::move(other.options_)),
      retry_policy_(std::move(other.retry_policy_)) {
  other.fd_ = -1;
}

PriViewClient& PriViewClient::operator=(PriViewClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    options_ = std::move(other.options_);
    retry_policy_ = std::move(other.retry_policy_);
    other.fd_ = -1;
  }
  return *this;
}

PriViewClient::~PriViewClient() { Close(); }

void PriViewClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PriViewClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  if (!options_.enable_retries) {
    return Status::FailedPrecondition("client not connected");
  }
  StatusOr<int> fd = ConnectFd(options_);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  ReconnectsCounter()->Increment();
  return Status::OK();
}

StatusOr<WireResponse> PriViewClient::RoundTripOnce(
    const WireRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Status st = WriteFrame(fd_, EncodeRequest(request), options_.io_timeout_ms);
  if (!st.ok()) {
    Close();
    return st;
  }
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  st = ReadFrame(fd_, &payload, &clean_eof, options_.io_timeout_ms);
  if (!st.ok()) {
    Close();
    return st;
  }
  if (clean_eof) {
    Close();
    // The server closed between request and response (e.g. a restart):
    // ambiguous for a non-idempotent request, harmless for ours — and
    // Unavailable tells the retry layer to try the new incarnation.
    return Status::Unavailable("server closed the connection");
  }
  StatusOr<WireResponse> response = DecodeResponse(payload);
  if (!response.ok()) Close();  // framing is suspect; do not reuse
  return response;
}

StatusOr<WireResponse> PriViewClient::RoundTrip(const WireRequest& request) {
  if (!options_.enable_retries || !retry_policy_.enabled() ||
      !IsIdempotentRequest(request.type)) {
    const Status st = EnsureConnected();
    if (!st.ok()) return st;
    return RoundTripOnce(request);
  }
  RetryController call = retry_policy_.NewCall();
  for (;;) {
    call.BeginAttempt();
    Status attempt_status;
    bool connect_phase = false;
    StatusOr<WireResponse> response = Status::OK();
    const Status conn = EnsureConnected();
    if (!conn.ok()) {
      attempt_status = conn;
      connect_phase = true;
    } else {
      response = RoundTripOnce(request);
      if (response.ok()) {
        if (response.value().type != MessageType::kError) return response;
        // A decoded error response: the connection is healthy, but the
        // server may be in a transient state (draining broker ->
        // Unavailable). Only the retryable codes loop; everything else —
        // including ResourceExhausted shed — is the caller's answer.
        attempt_status = response.value().ToStatus();
        if (!IsRetryableStatus(attempt_status)) return response;
      } else {
        attempt_status = response.status();
      }
    }
    if (!call.ShouldRetry(attempt_status, connect_phase)) {
      if (conn.ok() && response.ok()) return response;
      return attempt_status;
    }
    RetriesCounter()->Increment();
    std::this_thread::sleep_for(call.NextBackoff());
  }
}

StatusOr<ClientTable> PriViewClient::TableRequest(const WireRequest& request) {
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const WireResponse& wire = response.value();
  if (wire.type == MessageType::kError) return wire.ToStatus();
  StatusOr<MarginalTable> table = wire.ToTable();
  if (!table.ok()) return table.status();
  ClientTable out;
  out.table = std::move(table).value();
  out.tier = wire.tier < kServeTierCount ? ServeTier(wire.tier)
                                         : ServeTier::kFull;
  out.coalesced = wire.coalesced != 0;
  out.epoch = wire.epoch;
  return out;
}

StatusOr<std::string> PriViewClient::TextRequest(MessageType type) {
  WireRequest request;
  request.type = type;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response.value().type == MessageType::kError) {
    return response.value().ToStatus();
  }
  if (response.value().type != MessageType::kText) {
    return Status::DataLoss("expected a text response");
  }
  return response.value().text;
}

StatusOr<ClientTable> PriViewClient::Marginal(const std::string& synopsis,
                                              AttrSet target,
                                              uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kMarginal;
  request.synopsis = synopsis;
  request.target_mask = target.mask();
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientValue> PriViewClient::Conjunction(const std::string& synopsis,
                                                 AttrSet attrs,
                                                 uint64_t assignment,
                                                 uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kConjunction;
  request.synopsis = synopsis;
  request.target_mask = attrs.mask();
  request.assignment = assignment;
  request.deadline_ms = deadline_ms;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const WireResponse& wire = response.value();
  if (wire.type == MessageType::kError) return wire.ToStatus();
  if (wire.type != MessageType::kValue) {
    return Status::DataLoss("expected a value response");
  }
  ClientValue out;
  out.value = wire.value;
  out.tier = wire.tier < kServeTierCount ? ServeTier(wire.tier)
                                         : ServeTier::kFull;
  out.coalesced = wire.coalesced != 0;
  out.epoch = wire.epoch;
  return out;
}

StatusOr<ClientTable> PriViewClient::RollUp(const std::string& synopsis,
                                            AttrSet cube, AttrSet keep,
                                            uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kRollUp;
  request.synopsis = synopsis;
  request.target_mask = cube.mask();
  request.aux_mask = keep.mask();
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientTable> PriViewClient::Slice(const std::string& synopsis,
                                           AttrSet cube, int attr, int value,
                                           uint32_t deadline_ms) {
  if (attr < 0 || attr >= 64 || value < 0 || value > 1) {
    return Status::InvalidArgument("slice attr/value out of range");
  }
  WireRequest request;
  request.type = MessageType::kSlice;
  request.synopsis = synopsis;
  request.target_mask = cube.mask();
  request.attr = uint8_t(attr);
  request.value = uint8_t(value);
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientTable> PriViewClient::Dice(const std::string& synopsis,
                                          AttrSet cube, AttrSet fixed,
                                          uint64_t values,
                                          uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kDice;
  request.synopsis = synopsis;
  request.target_mask = cube.mask();
  request.aux_mask = fixed.mask();
  request.assignment = values;
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientSeries> PriViewClient::SeriesRequest(const std::string& synopsis,
                                                    AttrSet target,
                                                    uint32_t last_n,
                                                    SeriesMode mode,
                                                    uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kSeries;
  request.synopsis = synopsis;
  request.target_mask = target.mask();
  request.last_n = last_n;
  request.series_mode = static_cast<uint8_t>(mode);
  request.deadline_ms = deadline_ms;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const WireResponse& wire = response.value();
  if (wire.type == MessageType::kError) return wire.ToStatus();
  if (wire.type != MessageType::kTableSeries) {
    return Status::DataLoss("expected a table-series response");
  }
  ClientSeries out;
  out.tier = wire.tier < kServeTierCount ? ServeTier(wire.tier)
                                         : ServeTier::kFull;
  out.coalesced = wire.coalesced != 0;
  out.points.reserve(wire.series.size());
  for (const SeriesEntry& entry : wire.series) {
    const AttrSet attrs(entry.attrs_mask);
    // Same contract as ToTable: a malformed or hostile response must not
    // CHECK-abort the client.
    if (attrs.size() > 30 ||
        entry.cells.size() != (size_t{1} << attrs.size())) {
      return Status::DataLoss("series entry cell count does not match scope " +
                              attrs.ToString());
    }
    ClientSeriesPoint point;
    point.epoch = entry.epoch;
    point.table = MarginalTable(attrs, entry.cells);
    out.points.push_back(std::move(point));
  }
  return out;
}

StatusOr<ClientSeries> PriViewClient::Series(const std::string& synopsis,
                                             AttrSet target, uint32_t last_n,
                                             uint32_t deadline_ms) {
  return SeriesRequest(synopsis, target, last_n, SeriesMode::kLevels,
                       deadline_ms);
}

StatusOr<ClientSeries> PriViewClient::TrendDeltas(const std::string& synopsis,
                                                  AttrSet target,
                                                  uint32_t last_n,
                                                  uint32_t deadline_ms) {
  return SeriesRequest(synopsis, target, last_n, SeriesMode::kDeltas,
                       deadline_ms);
}

StatusOr<std::vector<SynopsisListing>> PriViewClient::ListSynopses() {
  WireRequest request;
  request.type = MessageType::kListSynopses;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const WireResponse& wire = response.value();
  if (wire.type == MessageType::kError) return wire.ToStatus();
  if (wire.type != MessageType::kSynopsisList) {
    return Status::DataLoss("expected a synopsis-list response");
  }
  std::vector<SynopsisListing> out;
  out.reserve(wire.synopses.size());
  for (const SynopsisEntry& entry : wire.synopses) {
    SynopsisListing listing;
    listing.name = entry.name;
    listing.epoch = entry.epoch;
    listing.install_unix_ms = entry.install_unix_ms;
    listing.d = entry.d;
    listing.views = entry.views;
    listing.epsilon = entry.epsilon;
    listing.fully_intact = entry.fully_intact != 0;
    out.push_back(std::move(listing));
  }
  return out;
}

StatusOr<std::string> PriViewClient::Stats() {
  return TextRequest(MessageType::kStats);
}

StatusOr<std::string> PriViewClient::Metrics() {
  return TextRequest(MessageType::kMetrics);
}

StatusOr<std::string> PriViewClient::List() {
  return TextRequest(MessageType::kList);
}

StatusOr<HealthReport> PriViewClient::Health() {
  StatusOr<std::string> text = TextRequest(MessageType::kHealth);
  if (!text.ok()) return text.status();
  HealthReport report;
  report.raw = text.value();
  uint64_t v = 0;
  if (ParseHealthFlag(report.raw, "ready", &v)) report.ready = v != 0;
  if (ParseHealthFlag(report.raw, "draining", &v)) report.draining = v != 0;
  if (ParseHealthFlag(report.raw, "accepting", &v)) report.accepting = v != 0;
  if (ParseHealthFlag(report.raw, "store_recovered", &v)) {
    report.store_recovered = v != 0;
  }
  if (ParseHealthFlag(report.raw, "synopses", &v)) {
    report.synopses = static_cast<size_t>(v);
  }
  return report;
}

}  // namespace priview::serve
