#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace priview::serve {

StatusOr<PriViewClient> PriViewClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IOError("connect(" + socket_path +
                        "): " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return PriViewClient(fd);
}

PriViewClient::PriViewClient(PriViewClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

PriViewClient& PriViewClient::operator=(PriViewClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

PriViewClient::~PriViewClient() { Close(); }

void PriViewClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<WireResponse> PriViewClient::RoundTrip(const WireRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Status st = WriteFrame(fd_, EncodeRequest(request));
  if (!st.ok()) {
    Close();
    return st;
  }
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  st = ReadFrame(fd_, &payload, &clean_eof);
  if (!st.ok()) {
    Close();
    return st;
  }
  if (clean_eof) {
    Close();
    return Status::IOError("server closed the connection");
  }
  StatusOr<WireResponse> response = DecodeResponse(payload);
  if (!response.ok()) Close();  // framing is suspect; do not reuse
  return response;
}

StatusOr<ClientTable> PriViewClient::TableRequest(const WireRequest& request) {
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const WireResponse& wire = response.value();
  if (wire.type == MessageType::kError) return wire.ToStatus();
  StatusOr<MarginalTable> table = wire.ToTable();
  if (!table.ok()) return table.status();
  ClientTable out;
  out.table = std::move(table).value();
  out.tier = wire.tier < kServeTierCount ? ServeTier(wire.tier)
                                         : ServeTier::kFull;
  out.coalesced = wire.coalesced != 0;
  out.epoch = wire.epoch;
  return out;
}

StatusOr<ClientTable> PriViewClient::Marginal(const std::string& synopsis,
                                              AttrSet target,
                                              uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kMarginal;
  request.synopsis = synopsis;
  request.target_mask = target.mask();
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientValue> PriViewClient::Conjunction(const std::string& synopsis,
                                                 AttrSet attrs,
                                                 uint64_t assignment,
                                                 uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kConjunction;
  request.synopsis = synopsis;
  request.target_mask = attrs.mask();
  request.assignment = assignment;
  request.deadline_ms = deadline_ms;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const WireResponse& wire = response.value();
  if (wire.type == MessageType::kError) return wire.ToStatus();
  if (wire.type != MessageType::kValue) {
    return Status::DataLoss("expected a value response");
  }
  ClientValue out;
  out.value = wire.value;
  out.tier = wire.tier < kServeTierCount ? ServeTier(wire.tier)
                                         : ServeTier::kFull;
  out.coalesced = wire.coalesced != 0;
  out.epoch = wire.epoch;
  return out;
}

StatusOr<ClientTable> PriViewClient::RollUp(const std::string& synopsis,
                                            AttrSet cube, AttrSet keep,
                                            uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kRollUp;
  request.synopsis = synopsis;
  request.target_mask = cube.mask();
  request.aux_mask = keep.mask();
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientTable> PriViewClient::Slice(const std::string& synopsis,
                                           AttrSet cube, int attr, int value,
                                           uint32_t deadline_ms) {
  if (attr < 0 || attr >= 64 || value < 0 || value > 1) {
    return Status::InvalidArgument("slice attr/value out of range");
  }
  WireRequest request;
  request.type = MessageType::kSlice;
  request.synopsis = synopsis;
  request.target_mask = cube.mask();
  request.attr = uint8_t(attr);
  request.value = uint8_t(value);
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<ClientTable> PriViewClient::Dice(const std::string& synopsis,
                                          AttrSet cube, AttrSet fixed,
                                          uint64_t values,
                                          uint32_t deadline_ms) {
  WireRequest request;
  request.type = MessageType::kDice;
  request.synopsis = synopsis;
  request.target_mask = cube.mask();
  request.aux_mask = fixed.mask();
  request.assignment = values;
  request.deadline_ms = deadline_ms;
  return TableRequest(request);
}

StatusOr<std::string> PriViewClient::Stats() {
  WireRequest request;
  request.type = MessageType::kStats;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response.value().type == MessageType::kError) {
    return response.value().ToStatus();
  }
  if (response.value().type != MessageType::kText) {
    return Status::DataLoss("expected a text response");
  }
  return response.value().text;
}

StatusOr<std::string> PriViewClient::Metrics() {
  WireRequest request;
  request.type = MessageType::kMetrics;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response.value().type == MessageType::kError) {
    return response.value().ToStatus();
  }
  if (response.value().type != MessageType::kText) {
    return Status::DataLoss("expected a text response");
  }
  return response.value().text;
}

StatusOr<std::string> PriViewClient::List() {
  WireRequest request;
  request.type = MessageType::kList;
  StatusOr<WireResponse> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response.value().type == MessageType::kError) {
    return response.value().ToStatus();
  }
  if (response.value().type != MessageType::kText) {
    return Status::DataLoss("expected a text response");
  }
  return response.value().text;
}

}  // namespace priview::serve
