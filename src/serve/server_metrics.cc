#include "serve/server_metrics.h"

#include <bit>
#include <cstdio>

namespace priview::serve {

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kMarginal:
      return "marginal";
    case RequestKind::kConjunction:
      return "conjunction";
    case RequestKind::kCube:
      return "cube";
    case RequestKind::kStats:
      return "stats";
  }
  return "unknown";
}

const char* ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFull:
      return "full";
    case ServeTier::kLeastNorm:
      return "least-norm";
    case ServeTier::kCacheRollUp:
      return "cache-rollup";
  }
  return "unknown";
}

namespace {

// Bucket i covers [2^i, 2^(i+1)) microseconds; bucket 0 also takes 0 us.
int BucketFor(uint64_t micros) {
  if (micros < 2) return 0;
  const int b = std::bit_width(micros) - 1;
  return b >= ServerMetrics::kLatencyBuckets
             ? ServerMetrics::kLatencyBuckets - 1
             : b;
}

double BucketUpperBoundMs(int bucket) {
  return static_cast<double>(uint64_t{1} << (bucket + 1)) / 1000.0;
}

}  // namespace

void ServerMetrics::RecordLatency(RequestKind kind, uint64_t micros) {
  Add(&latency_counts_[static_cast<int>(kind)][BucketFor(micros)]);
}

ServerMetrics::Snapshot ServerMetrics::TakeSnapshot() const {
  Snapshot s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  for (int t = 0; t < kServeTierCount; ++t) {
    s.served_by_tier[t] = served_by_tier_[t].load(std::memory_order_relaxed);
  }
  s.connections_opened = connections_opened_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  for (int k = 0; k < kRequestKindCount; ++k) {
    for (int b = 0; b < kLatencyBuckets; ++b) {
      s.latency_counts[k][b] =
          latency_counts_[k][b].load(std::memory_order_relaxed);
      s.latency_totals[k] += s.latency_counts[k][b];
    }
  }
  return s;
}

double ServerMetrics::Snapshot::CoalescingHitRate() const {
  return admitted == 0
             ? 0.0
             : static_cast<double>(coalesced) / static_cast<double>(admitted);
}

double ServerMetrics::Snapshot::LatencyPercentileMs(RequestKind kind,
                                                    double p) const {
  const int k = static_cast<int>(kind);
  const uint64_t total = latency_totals[k];
  if (total == 0 || !(p > 0.0)) return 0.0;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    cumulative += latency_counts[k][b];
    if (static_cast<double>(cumulative) >= rank) return BucketUpperBoundMs(b);
  }
  return BucketUpperBoundMs(kLatencyBuckets - 1);
}

std::string ServerMetrics::Snapshot::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests: admitted=%llu rejected=%llu coalesced=%llu "
                "deadline_expired=%llu\n",
                (unsigned long long)admitted, (unsigned long long)rejected,
                (unsigned long long)coalesced,
                (unsigned long long)deadline_expired);
  out += line;
  out += "served_by_tier:";
  for (int t = 0; t < kServeTierCount; ++t) {
    std::snprintf(line, sizeof(line), " %s=%llu",
                  ServeTierName(static_cast<ServeTier>(t)),
                  (unsigned long long)served_by_tier[t]);
    out += line;
  }
  out += "\n";
  std::snprintf(line, sizeof(line),
                "connections: opened=%llu closed=%llu frame_errors=%llu\n",
                (unsigned long long)connections_opened,
                (unsigned long long)connections_closed,
                (unsigned long long)frame_errors);
  out += line;
  for (int k = 0; k < kRequestKindCount; ++k) {
    if (latency_totals[k] == 0) continue;
    const RequestKind kind = static_cast<RequestKind>(k);
    std::snprintf(line, sizeof(line),
                  "latency[%s]: n=%llu p50<=%.3fms p99<=%.3fms\n",
                  RequestKindName(kind), (unsigned long long)latency_totals[k],
                  LatencyPercentileMs(kind, 0.5),
                  LatencyPercentileMs(kind, 0.99));
    out += line;
  }
  return out;
}

std::string ServerMetrics::Snapshot::ToJson() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"admitted\": %llu, \"rejected\": %llu, \"coalesced\": %llu, "
                "\"deadline_expired\": %llu, \"coalescing_hit_rate\": %.4f",
                (unsigned long long)admitted, (unsigned long long)rejected,
                (unsigned long long)coalesced,
                (unsigned long long)deadline_expired, CoalescingHitRate());
  out += buf;
  for (int t = 0; t < kServeTierCount; ++t) {
    std::snprintf(buf, sizeof(buf), ", \"served_%s\": %llu",
                  ServeTierName(static_cast<ServeTier>(t)),
                  (unsigned long long)served_by_tier[t]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ", \"connections_opened\": %llu, \"connections_closed\": %llu"
                ", \"frame_errors\": %llu",
                (unsigned long long)connections_opened,
                (unsigned long long)connections_closed,
                (unsigned long long)frame_errors);
  out += buf;
  for (int k = 0; k < kRequestKindCount; ++k) {
    const RequestKind kind = static_cast<RequestKind>(k);
    std::snprintf(buf, sizeof(buf),
                  ", \"%s_n\": %llu, \"%s_p50_ms\": %.4f, \"%s_p99_ms\": %.4f",
                  RequestKindName(kind), (unsigned long long)latency_totals[k],
                  RequestKindName(kind), LatencyPercentileMs(kind, 0.5),
                  RequestKindName(kind), LatencyPercentileMs(kind, 0.99));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace priview::serve
