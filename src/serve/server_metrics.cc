#include "serve/server_metrics.h"

#include <cstdio>

namespace priview::serve {

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kMarginal:
      return "marginal";
    case RequestKind::kConjunction:
      return "conjunction";
    case RequestKind::kCube:
      return "cube";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kSeries:
      return "series";
  }
  return "unknown";
}

const char* ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFull:
      return "full";
    case ServeTier::kLeastNorm:
      return "least-norm";
    case ServeTier::kCacheRollUp:
      return "cache-rollup";
  }
  return "unknown";
}

const char* EvictionCauseName(EvictionCause cause) {
  switch (cause) {
    case EvictionCause::kFrameStall:
      return "frame-stall";
    case EvictionCause::kIdle:
      return "idle";
    case EvictionCause::kEgressOverflow:
      return "egress-overflow";
    case EvictionCause::kPipelineOverflow:
      return "pipeline-overflow";
    case EvictionCause::kProtocolError:
      return "protocol-error";
    case EvictionCause::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* ShedCauseName(ShedCause cause) {
  switch (cause) {
    case ShedCause::kConnCap:
      return "conn-cap";
    case ShedCause::kIpCap:
      return "ip-cap";
    case ShedCause::kEmfile:
      return "emfile";
    case ShedCause::kOverload:
      return "overload";
  }
  return "unknown";
}

namespace {

double BucketUpperBoundMs(int bucket) {
  return static_cast<double>(uint64_t{1} << (bucket + 1)) / 1000.0;
}

}  // namespace

ServerMetrics::ServerMetrics() {
  admitted_ = registry_.GetCounter("priview_serve_requests_total",
                                   {{"event", "admitted"}},
                                   "Request lifecycle events by outcome");
  rejected_ = registry_.GetCounter("priview_serve_requests_total",
                                   {{"event", "rejected"}});
  expired_at_admission_ = registry_.GetCounter(
      "priview_serve_requests_total", {{"event", "expired_at_admission"}});
  coalesced_ = registry_.GetCounter("priview_serve_requests_total",
                                    {{"event", "coalesced"}});
  deadline_expired_ = registry_.GetCounter("priview_serve_requests_total",
                                           {{"event", "deadline_expired"}});
  for (int t = 0; t < kServeTierCount; ++t) {
    served_by_tier_[t] = registry_.GetCounter(
        "priview_serve_served_total",
        {{"tier", ServeTierName(static_cast<ServeTier>(t))}},
        "Answered requests by degradation tier");
  }
  connections_opened_ =
      registry_.GetCounter("priview_serve_connections_total",
                           {{"event", "opened"}}, "Connection lifecycle");
  connections_closed_ = registry_.GetCounter("priview_serve_connections_total",
                                             {{"event", "closed"}});
  frame_errors_ =
      registry_.GetCounter("priview_serve_frame_errors_total", {},
                           "Malformed or unreadable wire frames seen");
  for (int c = 0; c < kEvictionCauseCount; ++c) {
    evictions_[c] = registry_.GetCounter(
        "priview_serve_evictions_total",
        {{"cause", EvictionCauseName(static_cast<EvictionCause>(c))}},
        "Connections force-closed by the supervisor, by cause");
  }
  for (int c = 0; c < kShedCauseCount; ++c) {
    shed_accepts_[c] = registry_.GetCounter(
        "priview_serve_accepts_shed_total",
        {{"cause", ShedCauseName(static_cast<ShedCause>(c))}},
        "Accepted connections closed at admission, by cause");
  }
  egress_hwm_bytes_ = registry_.GetGauge(
      "priview_serve_egress_buffer_hwm_bytes", {},
      "High-water mark of any connection's bounded egress buffer, bytes");
  drains_ = registry_.GetCounter("priview_serve_drains_total", {},
                                 "Graceful drains completed");
  drain_inflight_at_close_ = registry_.GetGauge(
      "priview_drain_inflight_at_close", {},
      "Requests still queued or in flight when the last drain's grace "
      "expired (0 = clean drain)");
  health_probes_ = registry_.GetCounter("priview_serve_health_probes_total",
                                        {}, "Health requests answered");
  for (int k = 0; k < kRequestKindCount; ++k) {
    latency_us_[k] = registry_.GetHistogram(
        "priview_serve_request_latency_us",
        {{"kind", RequestKindName(static_cast<RequestKind>(k))}},
        "End-to-end request latency (admission to response), microseconds");
  }
  queue_wait_us_ = registry_.GetHistogram(
      "priview_broker_queue_wait_us", {},
      "Time a request waited in the admission queue, microseconds");
  coalesce_width_ = registry_.GetHistogram(
      "priview_broker_coalesce_width", {},
      "Distinct scopes per dispatched batch after coalescing");
  dispatch_latency_us_ = registry_.GetHistogram(
      "priview_broker_dispatch_latency_us", {},
      "Wall time of one broker batch dispatch, microseconds");
}

ServerMetrics::Snapshot ServerMetrics::TakeSnapshot() const {
  Snapshot s;
  s.admitted = admitted_->value();
  s.rejected = rejected_->value();
  s.expired_at_admission = expired_at_admission_->value();
  s.coalesced = coalesced_->value();
  s.deadline_expired = deadline_expired_->value();
  for (int t = 0; t < kServeTierCount; ++t) {
    s.served_by_tier[t] = served_by_tier_[t]->value();
  }
  s.connections_opened = connections_opened_->value();
  s.connections_closed = connections_closed_->value();
  s.frame_errors = frame_errors_->value();
  for (int c = 0; c < kEvictionCauseCount; ++c) {
    s.evictions[c] = evictions_[c]->value();
  }
  for (int c = 0; c < kShedCauseCount; ++c) {
    s.shed_accepts[c] = shed_accepts_[c]->value();
  }
  for (int k = 0; k < kRequestKindCount; ++k) {
    const obs::Histogram::Snapshot h = latency_us_[k]->TakeSnapshot();
    for (int b = 0; b < kLatencyBuckets; ++b) {
      s.latency_counts[k][b] = h.counts[b];
    }
    s.latency_totals[k] = h.total;
  }
  return s;
}

uint64_t ServerMetrics::Snapshot::TotalEvictions() const {
  uint64_t total = 0;
  for (int c = 0; c < kEvictionCauseCount; ++c) total += evictions[c];
  return total;
}

uint64_t ServerMetrics::Snapshot::TotalShedAccepts() const {
  uint64_t total = 0;
  for (int c = 0; c < kShedCauseCount; ++c) total += shed_accepts[c];
  return total;
}

double ServerMetrics::Snapshot::CoalescingHitRate() const {
  return admitted == 0
             ? 0.0
             : static_cast<double>(coalesced) / static_cast<double>(admitted);
}

double ServerMetrics::Snapshot::LatencyPercentileMs(RequestKind kind,
                                                    double p) const {
  const int k = static_cast<int>(kind);
  const uint64_t total = latency_totals[k];
  if (total == 0 || !(p > 0.0)) return 0.0;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int b = 0; b < kLatencyBuckets; ++b) {
    cumulative += latency_counts[k][b];
    if (static_cast<double>(cumulative) >= rank) return BucketUpperBoundMs(b);
  }
  return BucketUpperBoundMs(kLatencyBuckets - 1);
}

std::string ServerMetrics::Snapshot::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests: admitted=%llu rejected=%llu "
                "expired_at_admission=%llu coalesced=%llu "
                "deadline_expired=%llu\n",
                (unsigned long long)admitted, (unsigned long long)rejected,
                (unsigned long long)expired_at_admission,
                (unsigned long long)coalesced,
                (unsigned long long)deadline_expired);
  out += line;
  out += "served_by_tier:";
  for (int t = 0; t < kServeTierCount; ++t) {
    std::snprintf(line, sizeof(line), " %s=%llu",
                  ServeTierName(static_cast<ServeTier>(t)),
                  (unsigned long long)served_by_tier[t]);
    out += line;
  }
  out += "\n";
  std::snprintf(line, sizeof(line),
                "connections: opened=%llu closed=%llu frame_errors=%llu "
                "evicted=%llu shed=%llu\n",
                (unsigned long long)connections_opened,
                (unsigned long long)connections_closed,
                (unsigned long long)frame_errors,
                (unsigned long long)TotalEvictions(),
                (unsigned long long)TotalShedAccepts());
  out += line;
  for (int k = 0; k < kRequestKindCount; ++k) {
    if (latency_totals[k] == 0) continue;
    const RequestKind kind = static_cast<RequestKind>(k);
    std::snprintf(line, sizeof(line),
                  "latency[%s]: n=%llu p50<=%.3fms p99<=%.3fms\n",
                  RequestKindName(kind), (unsigned long long)latency_totals[k],
                  LatencyPercentileMs(kind, 0.5),
                  LatencyPercentileMs(kind, 0.99));
    out += line;
  }
  return out;
}

std::string ServerMetrics::Snapshot::ToJson() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"admitted\": %llu, \"rejected\": %llu, "
                "\"expired_at_admission\": %llu, \"coalesced\": %llu, "
                "\"deadline_expired\": %llu, \"coalescing_hit_rate\": %.4f",
                (unsigned long long)admitted, (unsigned long long)rejected,
                (unsigned long long)expired_at_admission,
                (unsigned long long)coalesced,
                (unsigned long long)deadline_expired, CoalescingHitRate());
  out += buf;
  for (int t = 0; t < kServeTierCount; ++t) {
    std::snprintf(buf, sizeof(buf), ", \"served_%s\": %llu",
                  ServeTierName(static_cast<ServeTier>(t)),
                  (unsigned long long)served_by_tier[t]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ", \"connections_opened\": %llu, \"connections_closed\": %llu"
                ", \"frame_errors\": %llu, \"evictions\": %llu"
                ", \"shed_accepts\": %llu",
                (unsigned long long)connections_opened,
                (unsigned long long)connections_closed,
                (unsigned long long)frame_errors,
                (unsigned long long)TotalEvictions(),
                (unsigned long long)TotalShedAccepts());
  out += buf;
  for (int k = 0; k < kRequestKindCount; ++k) {
    const RequestKind kind = static_cast<RequestKind>(k);
    std::snprintf(buf, sizeof(buf),
                  ", \"%s_n\": %llu, \"%s_p50_ms\": %.4f, \"%s_p99_ms\": %.4f",
                  RequestKindName(kind), (unsigned long long)latency_totals[k],
                  RequestKindName(kind), LatencyPercentileMs(kind, 0.5),
                  RequestKindName(kind), LatencyPercentileMs(kind, 0.99));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace priview::serve
