// The Fourier method of Barak et al. (PODS'07), §3.3: release noisy Fourier
// coefficients f_S for every |S| <= k, with per-coefficient noise
// Lap(m/epsilon) where m = Σ_{j<=k} C(d,j) is the number of released
// coefficients. A queried k-way marginal is rebuilt from the 2^k
// coefficients with S inside the query scope.
//
// Coefficients are materialized lazily and cached BY GLOBAL SUBSET, so two
// queries sharing a subset S see the same noisy f_S — this preserves the
// method's hallmark cross-marginal consistency. Exact coefficients come
// from a WHT of the query's true marginal (identical to counting parities
// over the records, but O(N + k 2^k) per query instead of O(N 2^k)).
//
// FourierLpMechanism adds the paper's LP post-processing: fit a
// non-negative full contingency table minimizing the largest coefficient
// violation, then answer from that table. Feasible for small d only.
#ifndef PRIVIEW_BASELINES_FOURIER_H_
#define PRIVIEW_BASELINES_FOURIER_H_

#include <map>
#include <memory>

#include "baselines/mechanism.h"
#include "table/contingency_table.h"

namespace priview {

class FourierMechanism : public MarginalMechanism {
 public:
  /// If `clamp` is true, applies §5.2's clamp-and-redistribute to answers.
  explicit FourierMechanism(bool clamp = true) : clamp_(clamp) {}

  std::string Name() const override { return "Fourier"; }

  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

  /// The noisy coefficient for a global attribute subset (|S| <= k),
  /// drawing and caching it on first use.
  double NoisyCoefficient(AttrSet subset, double exact_value);

 private:
  const Dataset* data_ = nullptr;
  bool clamp_;
  int k_ = 0;
  double coefficient_scale_ = 0.0;  // m / epsilon
  Rng rng_;
  std::map<AttrSet, double> coefficients_;
};

class FourierLpMechanism : public MarginalMechanism {
 public:
  std::string Name() const override { return "FourierLP"; }

  /// Releases all m coefficients, then solves the LP for a non-negative
  /// full table. Requires small d (the 2^d-variable LP; checked).
  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

 private:
  std::unique_ptr<ContingencyTable> fitted_;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_FOURIER_H_
