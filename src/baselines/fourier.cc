#include "baselines/fourier.h"

#include <cmath>

#include "baselines/direct.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/combinatorics.h"
#include "fourier/wht.h"
#include "opt/simplex.h"

namespace priview {

void FourierMechanism::Fit(const Dataset& data, double epsilon, int k,
                           Rng* rng) {
  PRIVIEW_CHECK(epsilon > 0.0 && k >= 1 && k <= data.d());
  data_ = &data;
  k_ = k;
  const double m = BinomialPrefixSum(data.d(), k);
  coefficient_scale_ = m / epsilon;
  rng_ = rng->Fork();
  coefficients_.clear();
}

double FourierMechanism::NoisyCoefficient(AttrSet subset,
                                          double exact_value) {
  auto it = coefficients_.find(subset);
  if (it != coefficients_.end()) return it->second;
  const double noisy = exact_value + rng_.Laplace(coefficient_scale_);
  coefficients_.emplace(subset, noisy);
  return noisy;
}

MarginalTable FourierMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(data_ != nullptr);
  PRIVIEW_CHECK(target.size() <= k_);
  const MarginalTable truth = data_->CountMarginal(target);
  std::vector<double> exact = FourierCoefficients(truth);
  std::vector<double> noisy(exact.size());
  for (uint64_t s = 0; s < exact.size(); ++s) {
    // Local subset mask -> global attribute subset, so coefficients are
    // shared across overlapping queries.
    const AttrSet global(DepositBits(s, target.mask()));
    noisy[s] = NoisyCoefficient(global, exact[s]);
  }
  MarginalTable table = TableFromCoefficients(target, std::move(noisy));
  if (clamp_) ClampAndRedistribute(&table);
  return table;
}

void FourierLpMechanism::Fit(const Dataset& data, double epsilon, int k,
                             Rng* rng) {
  const int d = data.d();
  PRIVIEW_CHECK(d <= 12);  // 2^d LP variables
  PRIVIEW_CHECK(epsilon > 0.0 && k >= 1 && k <= d);

  // All coefficients f_S for |S| <= k, via one full-table WHT.
  const ContingencyTable exact = ContingencyTable::FromDataset(data);
  std::vector<double> coeffs = exact.cells();
  Wht(&coeffs);
  const double m = BinomialPrefixSum(d, k);
  const double scale = m / epsilon;

  const int num_cells = 1 << d;
  // Noisy release of the retained coefficients (the private step).
  std::vector<double> noisy(num_cells, 0.0);
  std::vector<bool> retained(num_cells, false);
  for (int s = 0; s < num_cells; ++s) {
    if (PopCount(static_cast<uint64_t>(s)) > k) continue;
    retained[s] = true;
    noisy[s] = coeffs[s] + rng->Laplace(scale);
  }

  LpProblem lp;
  lp.num_vars = num_cells + 1;  // table cells + tau
  lp.objective.assign(lp.num_vars, 0.0);
  lp.objective[num_cells] = 1.0;

  for (int s = 0; s < num_cells; ++s) {
    if (!retained[s]) continue;
    // f_S(h) = sum_x (-1)^{popcount(x & S)} h(x); |f_S(h) - noisy| <= tau.
    std::vector<double> upper(lp.num_vars, 0.0);
    for (int x = 0; x < num_cells; ++x) {
      upper[x] = (PopCount(static_cast<uint64_t>(x & s)) % 2 == 0) ? 1.0
                                                                   : -1.0;
    }
    upper[num_cells] = -1.0;
    std::vector<double> lower(lp.num_vars, 0.0);
    for (int x = 0; x < num_cells; ++x) lower[x] = -upper[x];
    lower[num_cells] = -1.0;
    lp.AddLe(std::move(upper), noisy[s]);
    lp.AddLe(std::move(lower), -noisy[s]);
  }

  LpOptions options;
  options.max_pivots = 2000000;
  const LpResult solution = SolveLp(lp, options);
  fitted_ = std::make_unique<ContingencyTable>(d);
  if (solution.status == LpStatus::kOptimal) {
    for (int x = 0; x < num_cells; ++x) fitted_->At(x) = solution.x[x];
  } else {
    // Iteration-limit fallback: rebuild from the noisy coefficients
    // directly (the plain Fourier answer) and clamp.
    std::vector<double> cells = noisy;
    Wht(&cells);
    for (int x = 0; x < num_cells; ++x) {
      fitted_->At(x) = std::max(cells[x] / num_cells, 0.0);
    }
  }
}

MarginalTable FourierLpMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(fitted_ != nullptr);
  return fitted_->MarginalOf(target);
}

}  // namespace priview
