// MWEM — Multiplicative Weights / Exponential Mechanism (Hardt, Ligett,
// McSherry, NIPS'12), §3.6. Maintains a full contingency-table estimate;
// each of T rounds spends half its budget selecting the worst-answered
// k-way marginal via the exponential mechanism and half measuring it with
// Laplace noise, then applies multiplicative-weights updates. We implement
// the *improved* variant the paper compares against: 100 update sweeps over
// all measurements per round, and answers from the final distribution.
// Requires small d (2^d state).
#ifndef PRIVIEW_BASELINES_MWEM_H_
#define PRIVIEW_BASELINES_MWEM_H_

#include <memory>
#include <vector>

#include "baselines/mechanism.h"
#include "table/contingency_table.h"

namespace priview {

struct MwemOptions {
  /// Rounds; the paper uses ceil(4 log2 d) + 2 (= 15 at d = 9). 0 means
  /// derive from d with that formula.
  int rounds = 0;
  /// Multiplicative-update sweeps over past measurements per round.
  int update_sweeps = 100;
};

class MwemMechanism : public MarginalMechanism {
 public:
  explicit MwemMechanism(MwemOptions options = {}) : options_(options) {}

  std::string Name() const override { return "MWEM"; }

  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

  /// Rounds actually used in the last Fit.
  int rounds_used() const { return rounds_used_; }

 private:
  MwemOptions options_;
  int rounds_used_ = 0;
  std::unique_ptr<ContingencyTable> estimate_;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_MWEM_H_
