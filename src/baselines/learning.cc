#include "baselines/learning.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "common/combinatorics.h"
#include "fourier/wht.h"

namespace priview {

LearningMechanism::LearningMechanism(double gamma, bool add_noise)
    : gamma_(gamma), add_noise_(add_noise) {
  PRIVIEW_CHECK(gamma > 0.0 && gamma < 1.0);
}

std::string LearningMechanism::Name() const {
  const int inv = static_cast<int>(std::lround(1.0 / gamma_));
  std::string name = "Learning(1/" + std::to_string(inv) + ")";
  if (!add_noise_) name += "*";
  return name;
}

void LearningMechanism::Fit(const Dataset& data, double epsilon, int k,
                            Rng* rng) {
  PRIVIEW_CHECK(epsilon > 0.0 && k >= 1 && k <= data.d());
  data_ = &data;
  k_ = k;
  // Degree sqrt(k) log(1/gamma), capped below k so truncation error never
  // vanishes (the exact expansion would not be a "learning" shortcut).
  degree_ = static_cast<int>(
      std::lround(std::sqrt(static_cast<double>(k)) * std::log2(1.0 / gamma_)));
  degree_ = std::clamp(degree_, 1, std::max(1, k - 1));
  // Released coefficients: all parities up to the degree; noise amplified
  // by the polynomial coefficient growth ~1/gamma.
  const double m = BinomialPrefixSum(data.d(), degree_);
  coefficient_scale_ = m * (1.0 / gamma_) / epsilon;
  rng_ = rng->Fork();
  coefficients_.clear();
}

MarginalTable LearningMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(data_ != nullptr);
  PRIVIEW_CHECK(target.size() <= k_);
  const MarginalTable truth = data_->CountMarginal(target);
  std::vector<double> exact = FourierCoefficients(truth);
  std::vector<double> approx(exact.size(), 0.0);
  for (uint64_t s = 0; s < exact.size(); ++s) {
    if (PopCount(s) > degree_) continue;  // truncation
    double value = exact[s];
    if (add_noise_) {
      const AttrSet global(DepositBits(s, target.mask()));
      auto it = coefficients_.find(global);
      if (it == coefficients_.end()) {
        value += rng_.Laplace(coefficient_scale_);
        coefficients_.emplace(global, value);
      } else {
        value = it->second;
      }
    }
    approx[s] = value;
  }
  return TableFromCoefficients(target, std::move(approx));
}

}  // namespace priview
