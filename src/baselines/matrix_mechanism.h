// The Matrix Mechanism (Li et al., PODS'10), §3.5. The exact strategy
// optimization is an SDP the paper itself deems unfeasible, so — like the
// paper, which "plots the expected error variance by examining the strategy
// matrix" of approximations — we evaluate the closed-form expected error
//     ESE(W, A) = (2/eps^2) * ΔA^2 * ||W A^+||_F^2
// for a family of candidate strategies (identity/Flat, the workload itself,
// and the Fourier basis, which are the fixed points the published
// approximations gravitate to) and report the best. See DESIGN.md for the
// substitution note.
#ifndef PRIVIEW_BASELINES_MATRIX_MECHANISM_H_
#define PRIVIEW_BASELINES_MATRIX_MECHANISM_H_

#include <string>
#include <vector>

namespace priview {

struct StrategyEvaluation {
  std::string strategy;
  /// Expected squared error summed over one k-way marginal's 2^k cells.
  double expected_marginal_ese = 0.0;
};

struct MatrixMechanismResult {
  std::vector<StrategyEvaluation> evaluations;
  /// The best (lowest-error) evaluation.
  StrategyEvaluation best;
};

/// Evaluates the mechanism for the workload of all k-way marginal cell
/// queries over a d-dimensional binary domain. Requires small d (dense
/// 2^d x 2^d algebra; checked d <= 12).
MatrixMechanismResult EvaluateMatrixMechanism(int d, int k, double epsilon);

}  // namespace priview

#endif  // PRIVIEW_BASELINES_MATRIX_MECHANISM_H_
