#include "baselines/mwem.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "common/combinatorics.h"
#include "dp/mechanisms.h"

namespace priview {
namespace {

// L1 distance between a true marginal and the estimate's marginal.
double MarginalL1Error(const MarginalTable& truth,
                       const MarginalTable& estimate) {
  double sum = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    sum += std::fabs(truth.At(i) - estimate.At(i));
  }
  return sum;
}

}  // namespace

void MwemMechanism::Fit(const Dataset& data, double epsilon, int k,
                        Rng* rng) {
  const int d = data.d();
  PRIVIEW_CHECK(d <= 20);
  PRIVIEW_CHECK(epsilon > 0.0 && k >= 1 && k <= d);

  rounds_used_ = options_.rounds > 0
                     ? options_.rounds
                     : static_cast<int>(
                           std::ceil(4.0 * std::log2(static_cast<double>(d)))) +
                           2;
  const double round_epsilon = epsilon / rounds_used_;
  const double n = static_cast<double>(data.size());

  // Candidate query set: all k-way marginals; true answers precomputed.
  std::vector<AttrSet> candidates;
  ForEachSubsetMask(d, k, [&](uint64_t mask) {
    candidates.push_back(AttrSet(mask));
  });
  std::vector<MarginalTable> truths;
  truths.reserve(candidates.size());
  for (AttrSet q : candidates) truths.push_back(data.CountMarginal(q));

  // Uniform initial estimate with (publicly known) total n.
  estimate_ = std::make_unique<ContingencyTable>(d);
  const size_t num_cells = estimate_->size();
  for (double& c : estimate_->cells()) {
    c = n / static_cast<double>(num_cells);
  }

  struct Measurement {
    AttrSet attrs;
    std::vector<double> noisy;
  };
  std::vector<Measurement> measurements;

  for (int round = 0; round < rounds_used_; ++round) {
    // Selection: exponential mechanism on the L1 error scores. One record
    // changes a marginal's L1 error by at most 1, so sensitivity 2 covers
    // the pairwise score differences conservatively.
    std::vector<double> scores(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] =
          MarginalL1Error(truths[i], estimate_->MarginalOf(candidates[i]));
    }
    const int chosen = ExponentialMechanism(scores, round_epsilon / 2.0,
                                            /*sensitivity=*/2.0, rng);

    // Measurement: the whole marginal has L1 sensitivity 1 (a record lands
    // in exactly one cell), so per-cell Laplace with scale 2/round_epsilon.
    Measurement m;
    m.attrs = candidates[chosen];
    m.noisy = truths[chosen].cells();
    const double scale = 2.0 / round_epsilon;
    for (double& v : m.noisy) v += rng->Laplace(scale);
    measurements.push_back(std::move(m));

    // Multiplicative-weights sweeps over all measurements so far.
    for (int sweep = 0; sweep < options_.update_sweeps; ++sweep) {
      for (const Measurement& meas : measurements) {
        const MarginalTable current = estimate_->MarginalOf(meas.attrs);
        const uint64_t mask = meas.attrs.mask();
        double total = 0.0;
        for (uint64_t x = 0; x < num_cells; ++x) {
          const uint64_t cell = ExtractBits(x, mask);
          const double err = meas.noisy[cell] - current.At(cell);
          estimate_->At(x) *= std::exp(err / (2.0 * n));
          total += estimate_->At(x);
        }
        // Renormalize to the known total.
        if (total > 0.0) {
          const double rescale = n / total;
          for (double& c : estimate_->cells()) c *= rescale;
        }
      }
    }
  }
}

MarginalTable MwemMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(estimate_ != nullptr);
  return estimate_->MarginalOf(target);
}

}  // namespace priview
