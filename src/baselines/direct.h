// The Direct method (§3.2): notionally publishes every k-way marginal with
// Lap(C(d,k)/epsilon) noise per cell. Queried marginals are materialized
// lazily and cached so repeated queries see the same noise — exactly
// equivalent to the up-front release. Following §5.2, answers are optimized
// by zeroing negative cells and redistributing the created excess evenly
// over all cells.
#ifndef PRIVIEW_BASELINES_DIRECT_H_
#define PRIVIEW_BASELINES_DIRECT_H_

#include <map>

#include "baselines/mechanism.h"

namespace priview {

class DirectMechanism : public MarginalMechanism {
 public:
  std::string Name() const override { return "Direct"; }

  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

 private:
  const Dataset* data_ = nullptr;
  double per_cell_scale_ = 0.0;  // C(d,k) / epsilon
  Rng rng_;
  std::map<AttrSet, MarginalTable> cache_;
};

/// §5.2's post-processing for Direct and Fourier: clamp negative cells to
/// zero, then subtract the created excess divided by the cell count from
/// every cell (single pass).
void ClampAndRedistribute(MarginalTable* table);

}  // namespace priview

#endif  // PRIVIEW_BASELINES_DIRECT_H_
