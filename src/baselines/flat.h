// The Flat method (§3.1): one noisy full contingency table with Lap(1/eps)
// per cell; marginals are computed by summation. Only feasible for small d
// (the paper runs it on d = 9 and reports its analytic ESE elsewhere).
#ifndef PRIVIEW_BASELINES_FLAT_H_
#define PRIVIEW_BASELINES_FLAT_H_

#include <memory>

#include "baselines/mechanism.h"
#include "table/contingency_table.h"

namespace priview {

class FlatMechanism : public MarginalMechanism {
 public:
  std::string Name() const override { return "Flat"; }

  /// Requires data.d() small enough for a 2^d table (checked).
  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

 private:
  std::unique_ptr<ContingencyTable> noisy_;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_FLAT_H_
