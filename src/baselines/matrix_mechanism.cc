#include "baselines/matrix_mechanism.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "common/combinatorics.h"
#include "common/linalg.h"

namespace priview {
namespace {

// Workload: one row per (k-subset, assignment) marginal cell query.
Matrix BuildWorkload(int d, int k) {
  const int n = 1 << d;
  const int rows_per_marginal = 1 << k;
  const int num_marginals = static_cast<int>(Binomial(d, k));
  Matrix w(num_marginals * rows_per_marginal, n);
  int row = 0;
  ForEachSubsetMask(d, k, [&](uint64_t mask) {
    for (int x = 0; x < n; ++x) {
      const int cell = static_cast<int>(ExtractBits(x, mask));
      w(row + cell, x) = 1.0;
    }
    row += rows_per_marginal;
  });
  PRIVIEW_CHECK(row == w.rows());
  return w;
}

// Truncated Fourier strategy: one ±1 parity row per subset |S| <= k.
Matrix BuildTruncatedFourier(int d, int k) {
  const int n = 1 << d;
  std::vector<int> subsets;
  for (int s = 0; s < n; ++s) {
    if (PopCount(static_cast<uint64_t>(s)) <= k) subsets.push_back(s);
  }
  Matrix a(static_cast<int>(subsets.size()), n);
  for (int r = 0; r < a.rows(); ++r) {
    const int s = subsets[r];
    for (int x = 0; x < n; ++x) {
      a(r, x) = (PopCount(static_cast<uint64_t>(x & s)) % 2 == 0) ? 1.0
                                                                  : -1.0;
    }
  }
  return a;
}

// ESE(W, A) / num_marginals via the closed form
// (2/eps^2) ΔA^2 Σ_rows w G^{-1} wᵀ with G = AᵀA (ridged Cholesky).
double ExpectedMarginalEse(const Matrix& workload, const Matrix& strategy,
                           double epsilon, int num_marginals) {
  const Matrix at = strategy.Transposed();
  const Matrix gram = at.GramRows();  // AᵀA, n x n
  double trace = 0.0;
  for (int i = 0; i < gram.rows(); ++i) trace += gram(i, i);
  Cholesky chol;
  PRIVIEW_CHECK(chol.Factor(gram, 1e-9 * trace + 1e-12));

  double total = 0.0;
  std::vector<double> row(workload.cols());
  for (int r = 0; r < workload.rows(); ++r) {
    for (int c = 0; c < workload.cols(); ++c) row[c] = workload(r, c);
    const std::vector<double> z = chol.Solve(row);
    total += Dot(row, z);
  }
  const double sens = strategy.MaxColumnL1();
  return (2.0 / (epsilon * epsilon)) * sens * sens * total /
         static_cast<double>(num_marginals);
}

}  // namespace

MatrixMechanismResult EvaluateMatrixMechanism(int d, int k, double epsilon) {
  PRIVIEW_CHECK(d >= 1 && d <= 12);
  PRIVIEW_CHECK(k >= 1 && k <= d);
  PRIVIEW_CHECK(epsilon > 0.0);

  const int num_marginals = static_cast<int>(Binomial(d, k));
  const Matrix workload = BuildWorkload(d, k);

  MatrixMechanismResult result;
  result.evaluations.push_back(
      {"identity", ExpectedMarginalEse(workload, Matrix::Identity(1 << d),
                                       epsilon, num_marginals)});
  result.evaluations.push_back(
      {"workload",
       ExpectedMarginalEse(workload, workload, epsilon, num_marginals)});
  result.evaluations.push_back(
      {"fourier", ExpectedMarginalEse(workload, BuildTruncatedFourier(d, k),
                                      epsilon, num_marginals)});

  // "best" reflects what the published approximations actually choose: a
  // workload-adapted strategy. The identity strategy (= the Flat method)
  // is kept in `evaluations` as a reference but excluded here — the
  // adaptive approximations do not recover it, which is exactly the
  // paper's observation that the MM approximation is "not closer to
  // optimal than the other methods".
  result.best = result.evaluations[1];
  for (const StrategyEvaluation& eval : result.evaluations) {
    if (eval.strategy != "identity" &&
        eval.expected_marginal_ese < result.best.expected_marginal_ese) {
      result.best = eval;
    }
  }
  return result;
}

}  // namespace priview
