#include "baselines/uniform.h"

namespace priview {

void UniformMechanism::Fit(const Dataset& data, double /*epsilon*/,
                           int /*k*/, Rng* /*rng*/) {
  n_ = static_cast<double>(data.size());
}

MarginalTable UniformMechanism::Query(AttrSet target) {
  MarginalTable out(target);
  const double per_cell = n_ / static_cast<double>(out.size());
  for (double& c : out.cells()) c = per_cell;
  return out;
}

}  // namespace priview
