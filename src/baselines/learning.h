// Learning-based marginal release in the style of Thaler–Ullman–Vadhan
// (ICALP'12), §3.7. That line of work answers k-way conjunction queries by
// learning a low-degree polynomial approximation of the database's query
// function; the degree grows like sqrt(k)·log(1/gamma) where gamma is the
// accuracy parameter, and the polynomial's coefficient magnitudes grow with
// 1/gamma, amplifying the injected noise.
//
// Our reproduction (documented in DESIGN.md): answer a k-way marginal from
// the degree-t truncation of its parity (Fourier) expansion, t =
// round(sqrt(k)·log2(1/gamma)) capped at k-1, with per-coefficient Laplace
// noise scaled by the released-coefficient count times the 1/gamma
// amplification. This keeps both error sources of the original — truncation
// (approximation) error that shrinks as gamma decreases, and noise that
// grows — and reproduces the paper's Learning1/2/3 profile, including the
// noise-free reference (green stars in Fig. 1).
#ifndef PRIVIEW_BASELINES_LEARNING_H_
#define PRIVIEW_BASELINES_LEARNING_H_

#include <map>

#include "baselines/mechanism.h"

namespace priview {

class LearningMechanism : public MarginalMechanism {
 public:
  /// gamma in (0, 1): the accuracy parameter. `add_noise` false gives the
  /// approximation-error-only reference curve.
  explicit LearningMechanism(double gamma, bool add_noise = true);

  std::string Name() const override;

  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

  /// The truncation degree used for the current (k, gamma).
  int degree() const { return degree_; }

 private:
  double gamma_;
  bool add_noise_;
  const Dataset* data_ = nullptr;
  int k_ = 0;
  int degree_ = 0;
  double coefficient_scale_ = 0.0;
  Rng rng_;
  std::map<AttrSet, double> coefficients_;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_LEARNING_H_
