// The DataCube method of Ding et al. (SIGMOD'11), §3.4: pick a set of
// cuboids (marginals) from the full 2^d lattice that covers the query
// marginals, minimizing the expected total squared error of answering
// every query from its cheapest covering cuboid under an evenly split
// budget. Published cuboids get Lap(|S|/eps) noise and are made mutually
// consistent (we reuse PriView's consistency machinery, which implements
// the same constrained-inference idea).
//
// The paper's §3.4 observation — "in the case of low-dimensional binary
// datasets, the principles in [8] will lead it to choose to publish the
// noisy version of the full contingency table, which is equivalent to the
// Flat method" — falls out of the greedy selection and is asserted in
// tests. The lattice traversal is Θ(2^d) per iteration, which is exactly
// why the method cannot scale past small d (the paper's §3.4 critique).
#ifndef PRIVIEW_BASELINES_DATACUBE_H_
#define PRIVIEW_BASELINES_DATACUBE_H_

#include <vector>

#include "baselines/mechanism.h"

namespace priview {

/// Expected total squared error of answering `queries` from the cuboid set
/// `selection` with an evenly split budget epsilon: each query is answered
/// from its smallest covering cuboid,
///   Σ_Q 2^{|C(Q)|} · 2 (|S|/eps)^2,
/// infinite (huge) if some query is uncovered.
double DataCubeExpectedError(const std::vector<AttrSet>& selection,
                             const std::vector<AttrSet>& queries,
                             double epsilon);

/// Greedy lattice selection: start from the full cuboid (which covers
/// everything) and repeatedly add the cuboid giving the largest decrease
/// in expected error; drop cuboids that became useless. Θ(2^d) per
/// iteration; requires d <= 14.
std::vector<AttrSet> SelectCuboids(int d,
                                   const std::vector<AttrSet>& queries,
                                   double epsilon);

class DataCubeMechanism : public MarginalMechanism {
 public:
  std::string Name() const override { return "DataCube"; }

  /// Uses the workload of all k-way marginals as the query set.
  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

  /// The cuboids chosen in the last Fit.
  const std::vector<AttrSet>& selection() const { return selection_; }

 private:
  std::vector<AttrSet> selection_;
  std::vector<MarginalTable> cuboids_;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_DATACUBE_H_
