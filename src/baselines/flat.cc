#include "baselines/flat.h"

#include "baselines/direct.h"
#include "common/check.h"
#include "dp/mechanisms.h"

namespace priview {

void FlatMechanism::Fit(const Dataset& data, double epsilon, int /*k*/,
                        Rng* rng) {
  PRIVIEW_CHECK(epsilon > 0.0);
  noisy_ = std::make_unique<ContingencyTable>(
      ContingencyTable::FromDataset(data));
  AddLaplaceNoise(noisy_.get(), /*sensitivity=*/1.0, epsilon, rng);
}

MarginalTable FlatMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(noisy_ != nullptr);
  MarginalTable table = noisy_->MarginalOf(target);
  ClampAndRedistribute(&table);
  return table;
}

}  // namespace priview
