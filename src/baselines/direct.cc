#include "baselines/direct.h"

#include "common/check.h"
#include "common/combinatorics.h"
#include "dp/mechanisms.h"

namespace priview {

void ClampAndRedistribute(MarginalTable* table) {
  const double before = table->Total();
  for (double& c : table->cells()) {
    if (c < 0.0) c = 0.0;
  }
  const double excess = table->Total() - before;
  if (excess > 0.0) {
    table->AddConstant(-excess / static_cast<double>(table->size()));
  }
}

void DirectMechanism::Fit(const Dataset& data, double epsilon, int k,
                          Rng* rng) {
  PRIVIEW_CHECK(epsilon > 0.0 && k >= 1 && k <= data.d());
  data_ = &data;
  per_cell_scale_ = BinomialDouble(data.d(), k) / epsilon;
  rng_ = rng->Fork();
  cache_.clear();
}

MarginalTable DirectMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(data_ != nullptr);
  auto it = cache_.find(target);
  if (it != cache_.end()) return it->second;

  MarginalTable table = data_->CountMarginal(target);
  for (double& c : table.cells()) c += rng_.Laplace(per_cell_scale_);
  ClampAndRedistribute(&table);
  cache_.emplace(target, table);
  return table;
}

}  // namespace priview
