// The Uniform reference: always answers a uniformly distributed marginal
// with the dataset's total mass. Any mechanism that does not beat this is
// returning noise (§5, "baseline comparison").
#ifndef PRIVIEW_BASELINES_UNIFORM_H_
#define PRIVIEW_BASELINES_UNIFORM_H_

#include "baselines/mechanism.h"

namespace priview {

class UniformMechanism : public MarginalMechanism {
 public:
  std::string Name() const override { return "Uniform"; }

  void Fit(const Dataset& data, double epsilon, int k, Rng* rng) override;

  MarginalTable Query(AttrSet target) override;

 private:
  double n_ = 0.0;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_UNIFORM_H_
