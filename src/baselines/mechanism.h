// Common interface for the competing mechanisms of §3. A mechanism is
// instantiated per (dataset, epsilon, k) combination — mirroring the paper,
// where each method spends its whole budget on the k-way marginal task —
// then answers marginal queries. Implementations may materialize noise
// lazily at query time (Direct, Fourier), which is equivalent to releasing
// everything up front: each noisy quantity is drawn once and cached.
#ifndef PRIVIEW_BASELINES_MECHANISM_H_
#define PRIVIEW_BASELINES_MECHANISM_H_

#include <string>

#include "common/rng.h"
#include "table/attr_set.h"
#include "table/dataset.h"
#include "table/marginal_table.h"

namespace priview {

/// A differentially private k-way-marginal release mechanism.
class MarginalMechanism {
 public:
  virtual ~MarginalMechanism() = default;

  virtual std::string Name() const = 0;

  /// Runs the private stage. The dataset reference must outlive the
  /// mechanism (lazy implementations read true marginals through it; all
  /// noise is accounted against epsilon regardless).
  virtual void Fit(const Dataset& data, double epsilon, int k, Rng* rng) = 0;

  /// Returns the mechanism's answer for the marginal over `target`.
  /// |target| must be <= the k given to Fit for budget accounting to hold.
  virtual MarginalTable Query(AttrSet target) = 0;
};

}  // namespace priview

#endif  // PRIVIEW_BASELINES_MECHANISM_H_
