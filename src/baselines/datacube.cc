#include "baselines/datacube.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/combinatorics.h"
#include "core/consistency.h"
#include "dp/mechanisms.h"

namespace priview {
namespace {

constexpr double kUncovered = std::numeric_limits<double>::infinity();

// Cost of answering one query from the best covering cuboid (before the
// budget factor): 2^{|C|} summed noise over the query's cells.
double BestCoverCost(const std::vector<AttrSet>& selection, AttrSet query) {
  double best = kUncovered;
  for (AttrSet cuboid : selection) {
    if (query.IsSubsetOf(cuboid)) {
      best = std::min(best, std::pow(2.0, cuboid.size()));
    }
  }
  return best;
}

}  // namespace

double DataCubeExpectedError(const std::vector<AttrSet>& selection,
                             const std::vector<AttrSet>& queries,
                             double epsilon) {
  PRIVIEW_CHECK(!selection.empty());
  const double w = static_cast<double>(selection.size());
  const double budget_factor = 2.0 * (w / epsilon) * (w / epsilon);
  double total = 0.0;
  for (AttrSet query : queries) {
    const double cost = BestCoverCost(selection, query);
    if (cost == kUncovered) return kUncovered;
    total += cost * budget_factor;
  }
  return total;
}

std::vector<AttrSet> SelectCuboids(int d,
                                   const std::vector<AttrSet>& queries,
                                   double epsilon) {
  PRIVIEW_CHECK(d >= 1 && d <= 14);
  PRIVIEW_CHECK(!queries.empty());

  // Start from the full cuboid — the only single cuboid guaranteed to
  // cover arbitrary queries.
  std::vector<AttrSet> selection = {AttrSet::Full(d)};
  double current = DataCubeExpectedError(selection, queries, epsilon);

  while (true) {
    // Greedy add: traverse the whole lattice (the Θ(2^d) step).
    std::vector<AttrSet> best_selection;
    double best_error = current;
    const uint64_t lattice = uint64_t{1} << d;
    for (uint64_t mask = 0; mask < lattice; ++mask) {
      const AttrSet candidate(mask);
      bool already = false;
      for (AttrSet s : selection) {
        if (s == candidate) already = true;
      }
      if (already) continue;
      std::vector<AttrSet> trial = selection;
      trial.push_back(candidate);
      // Adding may let us DROP cuboids no query uses anymore.
      for (size_t i = 0; i < trial.size();) {
        std::vector<AttrSet> without = trial;
        without.erase(without.begin() + i);
        if (!without.empty() &&
            DataCubeExpectedError(without, queries, epsilon) <=
                DataCubeExpectedError(trial, queries, epsilon)) {
          trial = std::move(without);
          i = 0;
        } else {
          ++i;
        }
      }
      const double err = DataCubeExpectedError(trial, queries, epsilon);
      if (err < best_error) {
        best_error = err;
        best_selection = std::move(trial);
      }
    }
    if (best_error >= current) break;
    selection = std::move(best_selection);
    current = best_error;
  }
  return selection;
}

void DataCubeMechanism::Fit(const Dataset& data, double epsilon, int k,
                            Rng* rng) {
  const int d = data.d();
  PRIVIEW_CHECK(d <= 14);
  PRIVIEW_CHECK(epsilon > 0.0 && k >= 1 && k <= d);

  std::vector<AttrSet> queries;
  ForEachSubsetMask(d, k, [&](uint64_t mask) {
    queries.push_back(AttrSet(mask));
  });
  selection_ = SelectCuboids(d, queries, epsilon);

  cuboids_.clear();
  const double w = static_cast<double>(selection_.size());
  for (AttrSet cuboid : selection_) {
    MarginalTable table = data.CountMarginal(cuboid);
    AddLaplaceNoise(&table, /*sensitivity=*/w, epsilon, rng);
    cuboids_.push_back(std::move(table));
  }
  if (cuboids_.size() > 1) MakeConsistent(&cuboids_);
}

MarginalTable DataCubeMechanism::Query(AttrSet target) {
  PRIVIEW_CHECK(!cuboids_.empty());
  // Smallest covering cuboid.
  const MarginalTable* best = nullptr;
  for (const MarginalTable& cuboid : cuboids_) {
    if (!target.IsSubsetOf(cuboid.attrs())) continue;
    if (best == nullptr || cuboid.arity() < best->arity()) best = &cuboid;
  }
  PRIVIEW_CHECK(best != nullptr);
  return best->Project(target);
}

}  // namespace priview
