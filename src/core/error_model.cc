#include "core/error_model.h"

#include <cmath>

#include "common/check.h"
#include "common/combinatorics.h"

namespace priview {

double UnitVariance(double epsilon) {
  PRIVIEW_CHECK(epsilon > 0.0);
  return 2.0 / (epsilon * epsilon);
}

double FlatEse(int d, double epsilon) {
  return std::pow(2.0, d) * UnitVariance(epsilon);
}

double DirectEse(int d, int k, double epsilon) {
  const double m = BinomialDouble(d, k);
  return std::pow(2.0, k) * m * m * UnitVariance(epsilon);
}

double FourierEse(int d, int k, double epsilon) {
  const double m = BinomialPrefixSum(d, k);
  return m * m * UnitVariance(epsilon);
}

double PriViewSingleViewEse(int ell, int w, double epsilon) {
  return std::pow(2.0, ell) * static_cast<double>(w) * w *
         UnitVariance(epsilon);
}

int DirectBeatsFlatThreshold(int k) {
  for (int d = k; d <= 4096; ++d) {
    if (DirectEse(d, k, 1.0) < FlatEse(d, 1.0)) return d;
  }
  return -1;
}

double ExpectedNormalizedL2(double ese, double n) {
  PRIVIEW_CHECK(n > 0.0);
  return std::sqrt(ese) / n;
}

}  // namespace priview
