#include "core/reconstruct.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "opt/ipf.h"
#include "opt/least_norm.h"
#include "opt/simplex.h"

namespace priview {

const char* ReconstructionMethodName(ReconstructionMethod method) {
  switch (method) {
    case ReconstructionMethod::kMaxEntropy:
      return "CME";
    case ReconstructionMethod::kLeastNorm:
      return "CLN";
    case ReconstructionMethod::kLinearProgram:
      return "LP";
  }
  return "?";
}

std::vector<MarginalConstraint> ConstraintsFor(
    const std::vector<MarginalTable>& views, AttrSet target) {
  std::vector<MarginalConstraint> constraints;
  for (const MarginalTable& view : views) {
    const AttrSet common = view.attrs().Intersect(target);
    if (common.empty()) continue;
    constraints.push_back({common, view.Project(common)});
  }
  return DeduplicateConstraints(std::move(constraints));
}

namespace {

// Average of the projections of every view fully covering `target`.
MarginalTable CoveredAnswer(const std::vector<MarginalTable>& views,
                            AttrSet target) {
  MarginalTable sum(target);
  int covering = 0;
  for (const MarginalTable& view : views) {
    if (!target.IsSubsetOf(view.attrs())) continue;
    const MarginalTable proj = view.Project(target);
    for (size_t a = 0; a < sum.size(); ++a) sum.At(a) += proj.At(a);
    ++covering;
  }
  PRIVIEW_CHECK(covering > 0);
  sum.Scale(1.0 / covering);
  return sum;
}

// Barak-style LP: minimize the largest constraint violation tau over
// non-negative tables. Works on raw (possibly inconsistent) views, so
// constraints cannot be merged by averaging — but two exact reductions
// keep the LP small:
//   * same-scope targets collapse: |proj - t_v| <= tau for all v is
//     equivalent to  max_v t_v - tau <= proj <= min_v t_v + tau;
//   * a sub-scope whose min/max targets equal the projection of a
//     super-scope's min/max targets is implied and can be dropped (always
//     the case after the consistency step, which is what makes CLP fast).
MarginalTable SolveLpReconstruction(const std::vector<MarginalTable>& views,
                                    AttrSet target, double total) {
  const int num_cells = 1 << target.size();

  // Per-scope cell-wise min/max over all views sharing the scope.
  struct ScopeBand {
    MarginalTable lo;  // min over views
    MarginalTable hi;  // max over views
  };
  std::map<AttrSet, ScopeBand> bands;
  for (const MarginalTable& view : views) {
    const AttrSet common = view.attrs().Intersect(target);
    if (common.empty()) continue;
    MarginalTable proj = view.Project(common);
    auto it = bands.find(common);
    if (it == bands.end()) {
      bands.emplace(common, ScopeBand{proj, proj});
    } else {
      for (size_t a = 0; a < proj.size(); ++a) {
        it->second.lo.At(a) = std::min(it->second.lo.At(a), proj.At(a));
        it->second.hi.At(a) = std::max(it->second.hi.At(a), proj.At(a));
      }
    }
  }
  if (bands.empty()) {
    return MarginalTable(target, total / num_cells);
  }

  // Drop scopes implied by a super-scope's band.
  const double tol = 1e-9 * std::max(1.0, total) + 1e-9;
  std::vector<std::pair<AttrSet, const ScopeBand*>> active;
  for (const auto& [scope, band] : bands) {
    bool implied = false;
    for (const auto& [other_scope, other_band] : bands) {
      if (scope == other_scope || !scope.IsSubsetOf(other_scope)) continue;
      const MarginalTable lo = other_band.lo.Project(scope);
      const MarginalTable hi = other_band.hi.Project(scope);
      if (lo.LinfDistanceTo(band.lo) <= tol &&
          hi.LinfDistanceTo(band.hi) <= tol) {
        implied = true;
        break;
      }
    }
    if (!implied) active.push_back({scope, &band});
  }

  // Variables: cells 0..num_cells-1, then tau.
  LpProblem lp;
  lp.num_vars = num_cells + 1;
  lp.objective.assign(lp.num_vars, 0.0);
  lp.objective[num_cells] = 1.0;

  MarginalTable probe(target);
  for (const auto& [scope, band] : active) {
    const uint64_t within = probe.CellIndexMaskFor(scope);
    for (size_t a = 0; a < band->lo.size(); ++a) {
      std::vector<double> row(lp.num_vars, 0.0);
      for (int cell = 0; cell < num_cells; ++cell) {
        if (ExtractBits(static_cast<uint64_t>(cell), within) == a) {
          row[cell] = 1.0;
        }
      }
      // proj - tau <= min_v t_v  and  -proj - tau <= -max_v t_v.
      std::vector<double> upper = row;
      upper[num_cells] = -1.0;
      lp.AddLe(std::move(upper), band->lo.At(a));
      std::vector<double> lower = row;
      for (int cell = 0; cell < num_cells; ++cell) lower[cell] = -row[cell];
      lower[num_cells] = -1.0;
      lp.AddLe(std::move(lower), -band->hi.At(a));
    }
  }

  const LpResult solution = SolveLp(lp);
  if (solution.status != LpStatus::kOptimal) {
    // Degenerate numerical failure: fall back to the max-entropy answer so
    // callers always get a usable table.
    return MaxEntropyIpf(target, total, ConstraintsFor(views, target)).table;
  }
  std::vector<double> cells(solution.x.begin(),
                            solution.x.begin() + num_cells);
  return MarginalTable(target, std::move(cells));
}

}  // namespace

MarginalTable ReconstructMarginal(const std::vector<MarginalTable>& views,
                                  AttrSet target, double total,
                                  ReconstructionMethod method) {
  for (const MarginalTable& view : views) {
    if (target.IsSubsetOf(view.attrs())) {
      return CoveredAnswer(views, target);
    }
  }
  switch (method) {
    case ReconstructionMethod::kMaxEntropy:
      return MaxEntropyIpf(target, total, ConstraintsFor(views, target))
          .table;
    case ReconstructionMethod::kLeastNorm:
      return LeastNormSolve(target, total, ConstraintsFor(views, target))
          .table;
    case ReconstructionMethod::kLinearProgram:
      return SolveLpReconstruction(views, target, total);
  }
  PRIVIEW_CHECK(false);
  return MarginalTable(target);
}

}  // namespace priview
