#include "core/reconstruct.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "common/arena.h"
#include "common/bits.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "obs/metrics_registry.h"
#include "opt/ipf.h"
#include "opt/least_norm.h"
#include "opt/simplex.h"

namespace priview {

const char* ReconstructionMethodName(ReconstructionMethod method) {
  switch (method) {
    case ReconstructionMethod::kMaxEntropy:
      return "CME";
    case ReconstructionMethod::kLeastNorm:
      return "CLN";
    case ReconstructionMethod::kLinearProgram:
      return "LP";
  }
  return "?";
}

std::string SolverDiagnostics::ToString() const {
  std::ostringstream out;
  out << "SolverDiagnostics{" << ReconstructionMethodName(requested) << "->"
      << (used_uniform_fallback ? "uniform" : ReconstructionMethodName(used));
  if (covered) out << ", covered";
  out << (converged ? ", converged" : ", NOT CONVERGED") << " in "
      << iterations << " iters, residual " << final_residual;
  if (fallbacks > 0) out << ", " << fallbacks << " fallback(s)";
  if (non_finite_cells > 0) out << ", " << non_finite_cells << " bad cells";
  out << "}";
  return out.str();
}

std::vector<MarginalConstraint> ConstraintsFor(
    const std::vector<MarginalTable>& views, AttrSet target) {
  // Dedupe scopes before projecting rather than after: with a covering
  // design most views intersect the target in a scope that is strictly
  // contained in some other view's scope, and DeduplicateConstraints
  // would discard those projections unread. Discover the distinct scopes
  // first, drop the dominated ones, and only project the views that
  // contribute to a surviving scope. Output is bit-identical to the old
  // project-everything-then-DeduplicateConstraints pipeline: per scope,
  // contributions accumulate in view order (first by copy, the rest by
  // cell-wise add, exactly the map emplace-then-add it replaces), the
  // average is the same single Scale(1/count), and constraints are
  // emitted in ascending scope order (the map's iteration order).
  std::vector<AttrSet> view_scope(views.size());
  std::vector<AttrSet> scopes;  // distinct non-empty scopes, ascending
  for (size_t v = 0; v < views.size(); ++v) {
    const AttrSet common = views[v].attrs().Intersect(target);
    view_scope[v] = common;
    if (common.empty()) continue;
    const auto pos = std::lower_bound(scopes.begin(), scopes.end(), common);
    if (pos == scopes.end() || *pos != common) scopes.insert(pos, common);
  }

  std::vector<MarginalConstraint> constraints;
  constraints.reserve(scopes.size());
  for (const AttrSet scope : scopes) {
    const bool dominated =
        std::any_of(scopes.begin(), scopes.end(), [scope](AttrSet other) {
          return scope != other && scope.IsSubsetOf(other);
        });
    if (dominated) continue;
    MarginalTable acc(scope);
    int count = 0;
    for (size_t v = 0; v < views.size(); ++v) {
      if (view_scope[v] != scope) continue;
      if (count == 0) {
        acc = views[v].Project(scope);
      } else {
        const MarginalTable proj = views[v].Project(scope);
        for (size_t i = 0; i < acc.size(); ++i) acc.At(i) += proj.At(i);
      }
      ++count;
    }
    if (count > 1) acc.Scale(1.0 / count);
    constraints.push_back({scope, std::move(acc)});
  }
  return constraints;
}

namespace {

int CountNonFinite(const MarginalTable& table) {
  int bad = 0;
  for (double cell : table.cells()) {
    if (!std::isfinite(cell)) ++bad;
  }
  return bad;
}

// Average of the projections of every view fully covering `target`.
MarginalTable CoveredAnswer(const std::vector<MarginalTable>& views,
                            AttrSet target) {
  MarginalTable sum(target);
  int covering = 0;
  for (const MarginalTable& view : views) {
    if (!target.IsSubsetOf(view.attrs())) continue;
    const MarginalTable proj = view.Project(target);
    for (size_t a = 0; a < sum.size(); ++a) sum.At(a) += proj.At(a);
    ++covering;
  }
  PRIVIEW_CHECK(covering > 0);
  sum.Scale(1.0 / covering);
  return sum;
}

// Barak-style LP: minimize the largest constraint violation tau over
// non-negative tables. Works on raw (possibly inconsistent) views, so
// constraints cannot be merged by averaging — but two exact reductions
// keep the LP small:
//   * same-scope targets collapse: |proj - t_v| <= tau for all v is
//     equivalent to  max_v t_v - tau <= proj <= min_v t_v + tau;
//   * a sub-scope whose min/max targets equal the projection of a
//     super-scope's min/max targets is implied and can be dropped (always
//     the case after the consistency step, which is what makes CLP fast).
// Sets *ok to false (leaving the uniform table) when the LP solver fails;
// the caller's fallback chain takes over from there.
MarginalTable SolveLpReconstruction(const std::vector<MarginalTable>& views,
                                    AttrSet target, double total, Arena& arena,
                                    bool* ok) {
  *ok = true;
  const int num_cells = 1 << target.size();

  // Per-scope cell-wise min/max over all views sharing the scope.
  struct ScopeBand {
    MarginalTable lo;  // min over views
    MarginalTable hi;  // max over views
  };
  std::map<AttrSet, ScopeBand> bands;
  for (const MarginalTable& view : views) {
    const AttrSet common = view.attrs().Intersect(target);
    if (common.empty()) continue;
    MarginalTable proj = view.Project(common);
    auto it = bands.find(common);
    if (it == bands.end()) {
      bands.emplace(common, ScopeBand{proj, proj});
    } else {
      for (size_t a = 0; a < proj.size(); ++a) {
        it->second.lo.At(a) = std::min(it->second.lo.At(a), proj.At(a));
        it->second.hi.At(a) = std::max(it->second.hi.At(a), proj.At(a));
      }
    }
  }
  if (bands.empty()) {
    return MarginalTable(target, total / num_cells);
  }

  // Drop scopes implied by a super-scope's band.
  const double tol = 1e-9 * std::max(1.0, total) + 1e-9;
  std::vector<std::pair<AttrSet, const ScopeBand*>> active;
  for (const auto& [scope, band] : bands) {
    bool implied = false;
    for (const auto& [other_scope, other_band] : bands) {
      if (scope == other_scope || !scope.IsSubsetOf(other_scope)) continue;
      const MarginalTable lo = other_band.lo.Project(scope);
      const MarginalTable hi = other_band.hi.Project(scope);
      if (lo.LinfDistanceTo(band.lo) <= tol &&
          hi.LinfDistanceTo(band.hi) <= tol) {
        implied = true;
        break;
      }
    }
    if (!implied) active.push_back({scope, &band});
  }

  // Variables: cells 0..num_cells-1, then tau.
  LpProblem lp;
  lp.num_vars = num_cells + 1;
  lp.objective.assign(lp.num_vars, 0.0);
  lp.objective[num_cells] = 1.0;

  MarginalTable probe(target);
  for (const auto& [scope, band] : active) {
    const uint64_t within = probe.CellIndexMaskFor(scope);
    for (size_t a = 0; a < band->lo.size(); ++a) {
      std::vector<double> row(lp.num_vars, 0.0);
      for (int cell = 0; cell < num_cells; ++cell) {
        if (ExtractBits(static_cast<uint64_t>(cell), within) == a) {
          row[cell] = 1.0;
        }
      }
      // proj - tau <= min_v t_v  and  -proj - tau <= -max_v t_v.
      std::vector<double> upper = row;
      upper[num_cells] = -1.0;
      lp.AddLe(std::move(upper), band->lo.At(a));
      std::vector<double> lower = row;
      for (int cell = 0; cell < num_cells; ++cell) lower[cell] = -row[cell];
      lower[num_cells] = -1.0;
      lp.AddLe(std::move(lower), -band->hi.At(a));
    }
  }

  const LpResult solution = SolveLp(lp, arena);
  if (solution.status != LpStatus::kOptimal) {
    *ok = false;
    return MarginalTable(target, total / num_cells);
  }
  std::vector<double> cells(solution.x.begin(),
                            solution.x.begin() + num_cells);
  return MarginalTable(target, std::move(cells));
}

// One solver attempt plus the facts the fallback chain decides on.
struct Attempt {
  MarginalTable table;
  bool converged = true;
  int iterations = 0;
  double final_residual = 0.0;
  bool solver_failed = false;  // LP infeasible / internal failure
};

Attempt RunSolver(ReconstructionMethod method,
                  const std::vector<MarginalTable>& views, AttrSet target,
                  double total,
                  const std::vector<MarginalConstraint>& constraints,
                  Arena& arena) {
  Attempt attempt;
  switch (method) {
    case ReconstructionMethod::kMaxEntropy: {
      IpfResult r = MaxEntropyIpf(target, total, constraints, arena);
      attempt.table = std::move(r.table);
      attempt.converged = r.converged;
      attempt.iterations = r.iterations;
      attempt.final_residual = r.final_residual;
      return attempt;
    }
    case ReconstructionMethod::kLeastNorm: {
      LeastNormResult r = LeastNormSolve(target, total, constraints, arena);
      attempt.table = std::move(r.table);
      attempt.converged = r.converged;
      attempt.iterations = r.iterations;
      return attempt;
    }
    case ReconstructionMethod::kLinearProgram: {
      bool ok = true;
      attempt.table = SolveLpReconstruction(views, target, total, arena, &ok);
      attempt.solver_failed = !ok;
      return attempt;
    }
  }
  attempt.solver_failed = true;
  attempt.table = MarginalTable(target);
  return attempt;
}

obs::Counter* SolveCounter(const char* method) {
  return obs::MetricsRegistry::Global().GetCounter(
      "priview_solver_solves_total", {{"method", method}},
      "Reconstruction solves by answering method");
}

// Attributes one finished reconstruction to the method that actually
// answered it, plus fallback and iteration accounting.
void CountSolve(const SolverDiagnostics& diag) {
  static obs::Counter* const covered = SolveCounter("covered");
  static obs::Counter* const cme = SolveCounter("CME");
  static obs::Counter* const cln = SolveCounter("CLN");
  static obs::Counter* const lp = SolveCounter("LP");
  static obs::Counter* const uniform = SolveCounter("uniform");
  static obs::Counter* const fallbacks =
      obs::MetricsRegistry::Global().GetCounter(
          "priview_solver_fallbacks_total", {},
          "Degradation-chain fallbacks taken during reconstruction");
  static obs::Histogram* const iterations =
      obs::MetricsRegistry::Global().GetHistogram(
          "priview_solver_iterations", {},
          "Iterations used by the answering solver");
  if (diag.covered) {
    covered->Increment();
  } else if (diag.used_uniform_fallback) {
    uniform->Increment();
  } else {
    switch (diag.used) {
      case ReconstructionMethod::kMaxEntropy:
        cme->Increment();
        break;
      case ReconstructionMethod::kLeastNorm:
        cln->Increment();
        break;
      case ReconstructionMethod::kLinearProgram:
        lp->Increment();
        break;
    }
  }
  if (diag.fallbacks > 0) {
    fallbacks->Increment(static_cast<uint64_t>(diag.fallbacks));
  }
  iterations->Observe(static_cast<uint64_t>(std::max(0, diag.iterations)));
}

// A solver output is junk when serving it would hand the analyst garbage:
// non-finite cells, a residual that blew past any plausible constraint
// scale, or an outright solver failure.
bool IsJunk(const Attempt& attempt, double total, int* non_finite_cells) {
  const int bad = CountNonFinite(attempt.table);
  *non_finite_cells += bad;
  if (bad > 0 || attempt.solver_failed) return true;
  if (!std::isfinite(attempt.final_residual)) return true;
  constexpr double kResidualBlowup = 10.0;
  return attempt.final_residual > kResidualBlowup * std::max(1.0, total);
}

// Rolls this lane's arena into the process-wide solver-arena metrics after
// a request cycle: the gauge tracks the max high-water mark across all
// lanes (CAS-max so concurrent lanes never regress it), the counter counts
// request-cycle resets.
void PublishArenaStats(const Arena& arena) {
  static obs::Gauge* const hwm = obs::MetricsRegistry::Global().GetGauge(
      "priview_solver_arena_hwm_bytes", {},
      "High-water mark of the solver request arenas (max across lanes)");
  static obs::Counter* const resets =
      obs::MetricsRegistry::Global().GetCounter(
          "priview_solver_arena_resets_total", {},
          "Solver request-arena recycles (one per reconstruction request)");
  static std::atomic<uint64_t> max_hwm{0};
  uint64_t hw = static_cast<uint64_t>(arena.high_water_bytes());
  uint64_t prev = max_hwm.load(std::memory_order_relaxed);
  while (prev < hw &&
         !max_hwm.compare_exchange_weak(prev, hw, std::memory_order_relaxed)) {
  }
  hwm->Set(static_cast<int64_t>(std::max(hw, prev)));
  resets->Increment();
}

}  // namespace

ReconstructionResult ReconstructMarginalWithDiagnostics(
    const std::vector<MarginalTable>& views, AttrSet target, double total,
    ReconstructionMethod method) {
  // This overload is the request entry point: it owns the calling lane's
  // thread-local arena for the duration of the request, so it (alone) may
  // Reset() it afterwards. Each AnswerBatch pool worker is its own lane
  // with its own arena.
  Arena& arena = ThreadLocalArena();
  ReconstructionResult result =
      ReconstructMarginalWithDiagnostics(views, target, total, method, arena);
  arena.Reset();
  PublishArenaStats(arena);
  return result;
}

ReconstructionResult ReconstructMarginalWithDiagnostics(
    const std::vector<MarginalTable>& views, AttrSet target, double total,
    ReconstructionMethod method, Arena& arena) {
  ReconstructionResult result;
  result.diagnostics.requested = method;

  // A corrupted synopsis can carry a non-finite total; the uniform
  // fallback and the solvers all normalize against it, so sanitize once.
  if (!std::isfinite(total) || total < 0.0) total = 0.0;

  bool covered = false;
  for (const MarginalTable& view : views) {
    if (target.IsSubsetOf(view.attrs())) {
      covered = true;
      break;
    }
  }
  if (covered) {
    MarginalTable answer = CoveredAnswer(views, target);
    const int bad = CountNonFinite(answer);
    if (bad == 0 && !PRIVIEW_FAILPOINT("reconstruct/primary-junk")) {
      result.diagnostics.covered = true;
      result.table = std::move(answer);
      CountSolve(result.diagnostics);
      return result;
    }
    // A covering view is damaged (NaN cells): fall through to the solver
    // chain, which works from the surviving finite constraints.
    result.diagnostics.non_finite_cells += bad;
    ++result.diagnostics.fallbacks;
  }

  std::vector<MarginalConstraint> constraints = ConstraintsFor(views, target);
  // Constraints with non-finite targets poison every solver; drop them and
  // let the chain answer from what is intact.
  const size_t before = constraints.size();
  constraints.erase(
      std::remove_if(constraints.begin(), constraints.end(),
                     [](const MarginalConstraint& c) {
                       return CountNonFinite(c.target) > 0;
                     }),
      constraints.end());
  result.diagnostics.non_finite_cells +=
      static_cast<int>(before - constraints.size());

  // The degradation chain: the requested solver first, then max-entropy,
  // then least-norm, then the uniform table as the last resort.
  std::vector<ReconstructionMethod> chain{method};
  for (ReconstructionMethod fallback :
       {ReconstructionMethod::kMaxEntropy, ReconstructionMethod::kLeastNorm}) {
    if (fallback != method) chain.push_back(fallback);
  }

  for (ReconstructionMethod candidate : chain) {
    Attempt attempt =
        RunSolver(candidate, views, target, total, constraints, arena);
    bool junk = IsJunk(attempt, total, &result.diagnostics.non_finite_cells);
    if (PRIVIEW_FAILPOINT("reconstruct/primary-junk")) junk = true;
    if (!junk) {
      result.diagnostics.used = candidate;
      result.diagnostics.converged = attempt.converged;
      result.diagnostics.iterations = attempt.iterations;
      result.diagnostics.final_residual = attempt.final_residual;
      result.table = std::move(attempt.table);
      CountSolve(result.diagnostics);
      return result;
    }
    ++result.diagnostics.fallbacks;
  }

  // Everything failed: the uniform table is always finite and integrates
  // to the (sanitized) total.
  result.diagnostics.used_uniform_fallback = true;
  result.diagnostics.converged = false;
  const double uniform =
      total / static_cast<double>(size_t{1} << target.size());
  result.table = MarginalTable(target, uniform);
  CountSolve(result.diagnostics);
  return result;
}

MarginalTable ReconstructMarginal(const std::vector<MarginalTable>& views,
                                  AttrSet target, double total,
                                  ReconstructionMethod method) {
  return ReconstructMarginalWithDiagnostics(views, target, total, method)
      .table;
}

}  // namespace priview
