// Analyst-side query layer over a PriView synopsis: conjunction counts,
// conditional probabilities, association measures, and the OLAP cube
// algebra (roll-up / slice / dice). Marginal tables "are essentially
// equivalent to OLAP cubes" (§1); this is that equivalence as an API.
// Everything here is post-processing of the synopsis — no privacy cost.
//
// Boundary policy: the Try* methods are the serving surface — they
// validate their inputs and return Status instead of aborting, so a bad
// request from an analyst can never take the process down. The plain
// methods are conveniences for pre-validated callers; on invalid input
// they return a benign NaN (never abort) and are annotated per method.
//
// Thread safety: every const method is safe to call concurrently from any
// number of threads (the synopsis is read-only and the marginal cache is
// internally synchronized). The engine itself must not be destroyed or
// moved while calls are in flight.
#ifndef PRIVIEW_CORE_QUERY_ENGINE_H_
#define PRIVIEW_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/marginal_cache.h"
#include "core/synopsis.h"

namespace priview {

/// Stateless helpers over marginal tables (the cube algebra).
namespace cube {

/// Aggregate away the dimensions outside `keep` (keep ⊆ cube.attrs()).
MarginalTable RollUp(const MarginalTable& table, AttrSet keep);

/// Sub-cube where `attr` (must be in the cube) is fixed to `value`
/// (0 or 1); the result's scope drops `attr`.
MarginalTable Slice(const MarginalTable& table, int attr, int value);

/// Sub-cube where every attribute in `fixed` is pinned to the bit given in
/// `values` (compact cell-index convention over `fixed`). The result's
/// scope is cube.attrs() minus fixed.
MarginalTable Dice(const MarginalTable& table, AttrSet fixed,
                   uint64_t values);

}  // namespace cube

/// Serving knobs for a QueryEngine.
struct QueryEngineOptions {
  ReconstructionMethod method = ReconstructionMethod::kMaxEntropy;
  /// Capacity of the read-side marginal cache (reconstructed tables, LRU,
  /// with sub-marginals rolled up from cached supersets). 0 disables it:
  /// every query runs the reconstruction solver.
  size_t cache_capacity = 64;
};

/// Read-side engine bound to a synopsis. The synopsis must outlive it.
class QueryEngine {
 public:
  /// Validating constructor for unvalidated callers: rejects a null or
  /// empty synopsis with a Status instead of aborting.
  static StatusOr<QueryEngine> Create(const PriViewSynopsis* synopsis,
                                      ReconstructionMethod method =
                                          ReconstructionMethod::kMaxEntropy);
  static StatusOr<QueryEngine> Create(const PriViewSynopsis* synopsis,
                                      const QueryEngineOptions& options);

  explicit QueryEngine(const PriViewSynopsis* synopsis,
                       ReconstructionMethod method =
                           ReconstructionMethod::kMaxEntropy);
  QueryEngine(const PriViewSynopsis* synopsis,
              const QueryEngineOptions& options);

  /// Estimated number of records whose attributes in `attrs` equal
  /// `assignment` (compact cell-index convention) — a conjunction count.
  /// Invalid input → NaN.
  double ConjunctionCount(AttrSet attrs, uint64_t assignment) const;
  StatusOr<double> TryConjunctionCount(AttrSet attrs,
                                       uint64_t assignment) const;

  /// Estimated P(attributes of `attrs` = assignment). Invalid input → NaN.
  double Probability(AttrSet attrs, uint64_t assignment) const;
  StatusOr<double> TryProbability(AttrSet attrs, uint64_t assignment) const;

  /// Estimated P(target_attr = 1 | attrs = assignment). Returns 0.5 when
  /// the condition has (estimated) zero or near-zero support — tiny
  /// reconstructed support is noise, not evidence. Negative reconstructed
  /// cells are clamped to zero before dividing. Invalid input → NaN.
  double ConditionalProbability(int target_attr, AttrSet attrs,
                                uint64_t assignment) const;
  StatusOr<double> TryConditionalProbability(int target_attr, AttrSet attrs,
                                             uint64_t assignment) const;

  /// Lift of a = 1 and b = 1 co-occurring: P(ab) / (P(a) P(b)); 1 means
  /// independent. Returns 0 when either attribute has zero or near-zero
  /// support (negative cells clamped first). Invalid input → NaN.
  double Lift(int a, int b) const;
  StatusOr<double> TryLift(int a, int b) const;

  /// Mutual information (nats) between two attributes under the synopsis
  /// distribution. Invalid input → NaN.
  double MutualInformation(int a, int b) const;
  StatusOr<double> TryMutualInformation(int a, int b) const;

  /// The reconstructed marginal over `target`, served through the cache:
  /// an exact cached table, a roll-up of a cached superset, or a fresh
  /// reconstruction (which is then cached). This is the single-query
  /// serving entry point.
  StatusOr<MarginalTable> TryMarginal(AttrSet target) const;

  /// Answers a batch of marginal queries. Targets already in the cache
  /// (exactly or by roll-up) are served from it; the remaining distinct
  /// targets are reconstructed concurrently on the thread pool and then
  /// cached. result[i] corresponds to targets[i]; an invalid scope yields
  /// that slot's Status without affecting the rest of the batch.
  std::vector<StatusOr<MarginalTable>> AnswerBatch(
      const std::vector<AttrSet>& targets) const;

  /// Cache-only probe: the marginal over `target` if the cache can serve
  /// it (exactly or by rolling up a cached superset) without running any
  /// solver; nullopt on a miss, an invalid scope, or a disabled cache.
  /// This is the serving layer's deadline-pressure escape hatch — an
  /// overloaded broker answers from here rather than queueing a solve.
  std::optional<MarginalTable> CacheProbe(AttrSet target) const;

  /// Full marginal with the solver diagnostics (fallbacks taken,
  /// convergence) for the serving layer to log. Always runs the solver —
  /// diagnostics describe a real solve, never a cache hit.
  StatusOr<ReconstructionResult> TryQueryWithDiagnostics(AttrSet target) const;

  /// Read-side cache counters (zeroes when the cache is disabled).
  MarginalCache::Stats cache_stats() const;

  const PriViewSynopsis& synopsis() const { return *synopsis_; }

 private:
  Status ValidateScope(AttrSet attrs, uint64_t assignment) const;
  Status ValidateAttr(int attr) const;
  /// Cache-through reconstruction; `target` must already be validated as a
  /// subset of the universe.
  StatusOr<MarginalTable> CachedQuery(AttrSet target) const;

  const PriViewSynopsis* synopsis_;
  ReconstructionMethod method_;
  /// unique_ptr keeps the engine movable (Create returns by value) while
  /// the cache holds a mutex; null when cache_capacity == 0.
  std::unique_ptr<MarginalCache> cache_;
};

}  // namespace priview

#endif  // PRIVIEW_CORE_QUERY_ENGINE_H_
