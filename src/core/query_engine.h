// Analyst-side query layer over a PriView synopsis: conjunction counts,
// conditional probabilities, association measures, and the OLAP cube
// algebra (roll-up / slice / dice). Marginal tables "are essentially
// equivalent to OLAP cubes" (§1); this is that equivalence as an API.
// Everything here is post-processing of the synopsis — no privacy cost.
#ifndef PRIVIEW_CORE_QUERY_ENGINE_H_
#define PRIVIEW_CORE_QUERY_ENGINE_H_

#include <cstdint>

#include "core/synopsis.h"

namespace priview {

/// Stateless helpers over marginal tables (the cube algebra).
namespace cube {

/// Aggregate away the dimensions outside `keep` (keep ⊆ cube.attrs()).
MarginalTable RollUp(const MarginalTable& table, AttrSet keep);

/// Sub-cube where `attr` (must be in the cube) is fixed to `value`
/// (0 or 1); the result's scope drops `attr`.
MarginalTable Slice(const MarginalTable& table, int attr, int value);

/// Sub-cube where every attribute in `fixed` is pinned to the bit given in
/// `values` (compact cell-index convention over `fixed`). The result's
/// scope is cube.attrs() minus fixed.
MarginalTable Dice(const MarginalTable& table, AttrSet fixed,
                   uint64_t values);

}  // namespace cube

/// Read-side engine bound to a synopsis. The synopsis must outlive it.
class QueryEngine {
 public:
  explicit QueryEngine(const PriViewSynopsis* synopsis,
                       ReconstructionMethod method =
                           ReconstructionMethod::kMaxEntropy);

  /// Estimated number of records whose attributes in `attrs` equal
  /// `assignment` (compact cell-index convention) — a conjunction count.
  double ConjunctionCount(AttrSet attrs, uint64_t assignment) const;

  /// Estimated P(attributes of `attrs` = assignment).
  double Probability(AttrSet attrs, uint64_t assignment) const;

  /// Estimated P(target_attr = 1 | attrs = assignment). Returns 0.5 when
  /// the condition has (estimated) zero support.
  double ConditionalProbability(int target_attr, AttrSet attrs,
                                uint64_t assignment) const;

  /// Lift of a = 1 and b = 1 co-occurring: P(ab) / (P(a) P(b)); 1 means
  /// independent. Returns 0 when either attribute has zero support.
  double Lift(int a, int b) const;

  /// Mutual information (nats) between two attributes under the synopsis
  /// distribution.
  double MutualInformation(int a, int b) const;

  const PriViewSynopsis& synopsis() const { return *synopsis_; }

 private:
  const PriViewSynopsis* synopsis_;
  ReconstructionMethod method_;
};

}  // namespace priview

#endif  // PRIVIEW_CORE_QUERY_ENGINE_H_
