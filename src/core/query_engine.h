// Analyst-side query layer over a PriView synopsis: conjunction counts,
// conditional probabilities, association measures, and the OLAP cube
// algebra (roll-up / slice / dice). Marginal tables "are essentially
// equivalent to OLAP cubes" (§1); this is that equivalence as an API.
// Everything here is post-processing of the synopsis — no privacy cost.
//
// Boundary policy: the Try* methods are the serving surface — they
// validate their inputs and return Status instead of aborting, so a bad
// request from an analyst can never take the process down. The plain
// methods are conveniences for pre-validated callers; on invalid input
// they return a benign NaN (never abort) and are annotated per method.
#ifndef PRIVIEW_CORE_QUERY_ENGINE_H_
#define PRIVIEW_CORE_QUERY_ENGINE_H_

#include <cstdint>

#include "common/status.h"
#include "core/synopsis.h"

namespace priview {

/// Stateless helpers over marginal tables (the cube algebra).
namespace cube {

/// Aggregate away the dimensions outside `keep` (keep ⊆ cube.attrs()).
MarginalTable RollUp(const MarginalTable& table, AttrSet keep);

/// Sub-cube where `attr` (must be in the cube) is fixed to `value`
/// (0 or 1); the result's scope drops `attr`.
MarginalTable Slice(const MarginalTable& table, int attr, int value);

/// Sub-cube where every attribute in `fixed` is pinned to the bit given in
/// `values` (compact cell-index convention over `fixed`). The result's
/// scope is cube.attrs() minus fixed.
MarginalTable Dice(const MarginalTable& table, AttrSet fixed,
                   uint64_t values);

}  // namespace cube

/// Read-side engine bound to a synopsis. The synopsis must outlive it.
class QueryEngine {
 public:
  /// Validating constructor for unvalidated callers: rejects a null or
  /// empty synopsis with a Status instead of aborting.
  static StatusOr<QueryEngine> Create(const PriViewSynopsis* synopsis,
                                      ReconstructionMethod method =
                                          ReconstructionMethod::kMaxEntropy);

  explicit QueryEngine(const PriViewSynopsis* synopsis,
                       ReconstructionMethod method =
                           ReconstructionMethod::kMaxEntropy);

  /// Estimated number of records whose attributes in `attrs` equal
  /// `assignment` (compact cell-index convention) — a conjunction count.
  /// Invalid input → NaN.
  double ConjunctionCount(AttrSet attrs, uint64_t assignment) const;
  StatusOr<double> TryConjunctionCount(AttrSet attrs,
                                       uint64_t assignment) const;

  /// Estimated P(attributes of `attrs` = assignment). Invalid input → NaN.
  double Probability(AttrSet attrs, uint64_t assignment) const;
  StatusOr<double> TryProbability(AttrSet attrs, uint64_t assignment) const;

  /// Estimated P(target_attr = 1 | attrs = assignment). Returns 0.5 when
  /// the condition has (estimated) zero or near-zero support — tiny
  /// reconstructed support is noise, not evidence. Negative reconstructed
  /// cells are clamped to zero before dividing. Invalid input → NaN.
  double ConditionalProbability(int target_attr, AttrSet attrs,
                                uint64_t assignment) const;
  StatusOr<double> TryConditionalProbability(int target_attr, AttrSet attrs,
                                             uint64_t assignment) const;

  /// Lift of a = 1 and b = 1 co-occurring: P(ab) / (P(a) P(b)); 1 means
  /// independent. Returns 0 when either attribute has zero or near-zero
  /// support (negative cells clamped first). Invalid input → NaN.
  double Lift(int a, int b) const;
  StatusOr<double> TryLift(int a, int b) const;

  /// Mutual information (nats) between two attributes under the synopsis
  /// distribution. Invalid input → NaN.
  double MutualInformation(int a, int b) const;
  StatusOr<double> TryMutualInformation(int a, int b) const;

  /// Full marginal with the solver diagnostics (fallbacks taken,
  /// convergence) for the serving layer to log.
  StatusOr<ReconstructionResult> TryQueryWithDiagnostics(AttrSet target) const;

  const PriViewSynopsis& synopsis() const { return *synopsis_; }

 private:
  Status ValidateScope(AttrSet attrs, uint64_t assignment) const;
  Status ValidateAttr(int attr) const;

  const PriViewSynopsis* synopsis_;
  ReconstructionMethod method_;
};

}  // namespace priview

#endif  // PRIVIEW_CORE_QUERY_ENGINE_H_
