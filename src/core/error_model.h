// Analytic error model from the paper: the unit variance V_u (Eq. 2), the
// expected squared error of Flat (Eq. 3), Direct (Eq. 4) and Fourier, the
// Direct-vs-Flat crossover table (§3.2), and helpers to express errors on
// the normalized L2 scale used in the plots.
#ifndef PRIVIEW_CORE_ERROR_MODEL_H_
#define PRIVIEW_CORE_ERROR_MODEL_H_

namespace priview {

/// Eq. 2: variance of Lap(1/eps) noise, the unit of ESE.
double UnitVariance(double epsilon);

/// Eq. 3: ESE of the Flat method for any k-way marginal, 2^d · V_u.
double FlatEse(int d, double epsilon);

/// Eq. 4: ESE of the Direct method, 2^k · C(d,k)^2 · V_u.
double DirectEse(int d, int k, double epsilon);

/// ESE of the Fourier method of Barak et al.: Direct divided by 2^k, with
/// m = Σ_{j<=k} C(d,j) coefficients in place of C(d,k) tables.
double FourierEse(int d, int k, double epsilon);

/// ESE of PriView's covered-pair reconstruction from a single view of size
/// ell out of w views: 2^ell · w^2 · V_u (§4.5).
double PriViewSingleViewEse(int ell, int w, double epsilon);

/// Smallest d for which Direct has lower ESE than Flat at this k (§3.2
/// table: 16, 26, 36, 46 for k = 2..5).
int DirectBeatsFlatThreshold(int k);

/// Converts an ESE into the expected normalized L2 error sqrt(ESE)/N used
/// on the plots' y-axes.
double ExpectedNormalizedL2(double ese, double n);

}  // namespace priview

#endif  // PRIVIEW_CORE_ERROR_MODEL_H_
