// Predicted noise error for synopsis answers: Eq. 5 generalized from pairs
// to arbitrary query scopes. Lets a data owner forecast utility *before*
// spending budget (everything here depends only on public quantities: the
// design, d, N estimate and epsilon), and lets an analyst attach rough
// error bars to an answer.
#ifndef PRIVIEW_CORE_VARIANCE_H_
#define PRIVIEW_CORE_VARIANCE_H_

#include <vector>

#include "table/attr_set.h"

namespace priview {

/// Predicted expected squared error (in counts^2, summed over the target's
/// cells) for reconstructing `target` from noisy views `view_scopes` built
/// with budget epsilon:
///   - covered target: averaging over the c covering views gives
///     2^{|target|} * 2^{ell - |target|} * w^2 V_u / c per covering view
///     slice, i.e. the single-view ESE divided by the coverage count;
///   - uncovered target: approximated by the covered-case formula applied
///     to the largest covered sub-scope (noise error only; coverage error
///     is data-dependent and not predictable from public quantities, §4.5).
double PredictQueryEse(const std::vector<AttrSet>& view_scopes,
                       AttrSet target, double epsilon);

/// sqrt(PredictQueryEse) / n — the normalized-L2 prediction plotted as the
/// paper's Fig. 6 stars, per query.
double PredictNormalizedError(const std::vector<AttrSet>& view_scopes,
                              AttrSet target, double epsilon, double n);

}  // namespace priview

#endif  // PRIVIEW_CORE_VARIANCE_H_
