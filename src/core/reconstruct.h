// Reconstruction of an arbitrary k-way marginal from the view marginals
// (paper §4.3). If the scope is covered by a view, the answer is a direct
// projection. Otherwise the views induce an under-determined system of
// marginal constraints and one of three solvers completes it:
//   kMaxEntropy   (CME) — the paper's choice; solved with IPF
//   kLeastNorm    (CLN) — minimum-L2-norm completion
//   kLinearProgram (LP) — Barak-style min-max-violation LP; the only
//                         variant that does not assume consistent views
#ifndef PRIVIEW_CORE_RECONSTRUCT_H_
#define PRIVIEW_CORE_RECONSTRUCT_H_

#include <string>
#include <vector>

#include "common/arena.h"
#include "opt/constraint.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

enum class ReconstructionMethod { kMaxEntropy, kLeastNorm, kLinearProgram };

const char* ReconstructionMethodName(ReconstructionMethod method);

/// What actually happened while answering a query — which solver produced
/// the table, whether it converged, and how many fallback steps were taken
/// before a usable (finite) answer emerged. A serving layer logs this
/// instead of silently returning junk.
struct SolverDiagnostics {
  ReconstructionMethod requested = ReconstructionMethod::kMaxEntropy;
  ReconstructionMethod used = ReconstructionMethod::kMaxEntropy;
  /// Did the solver that produced the answer report convergence?
  bool converged = true;
  int iterations = 0;
  double final_residual = 0.0;
  /// NaN/Inf cells seen in rejected solver outputs along the way.
  int non_finite_cells = 0;
  /// Solvers abandoned (junk output / residual blow-up) before `used`.
  int fallbacks = 0;
  /// The whole chain failed; the answer is the uniform table.
  bool used_uniform_fallback = false;
  /// The answer came straight off a covering view (no solver involved).
  bool covered = false;

  /// True when the answer needed no degradation at all.
  bool clean() const {
    return converged && fallbacks == 0 && !used_uniform_fallback;
  }
  std::string ToString() const;
};

/// A reconstructed table plus the diagnostics describing how it was made.
struct ReconstructionResult {
  MarginalTable table;
  SolverDiagnostics diagnostics;
};

/// Extracts the constraint set a query scope `target` inherits from the
/// views: one constraint per view with a non-empty intersection, already
/// deduplicated (maximal scopes only).
std::vector<MarginalConstraint> ConstraintsFor(
    const std::vector<MarginalTable>& views, AttrSet target);

/// Reconstructs the marginal over `target`. `total` is the common total
/// count of the (consistent) views, used when no view intersects `target`
/// and as the max-entropy normalization N_V. Never fails and never returns
/// a non-finite table: if the requested solver emits junk (NaN/Inf cells,
/// residual blow-up) the fallback chain max-entropy → least-norm →
/// uniform runs until a finite answer emerges, and the diagnostics record
/// the degradation.
ReconstructionResult ReconstructMarginalWithDiagnostics(
    const std::vector<MarginalTable>& views, AttrSet target, double total,
    ReconstructionMethod method);

/// As above, but with an explicit scratch arena: every solver in the chain
/// draws its tableau/scratch from `arena` under Arena::Rewind discipline
/// (the arena is left exactly as it was found — never Reset). Use this
/// when embedding a reconstruction inside a larger request that owns the
/// arena. The no-arena overload above is the request entry point: it runs
/// on the calling lane's ThreadLocalArena(), Reset()s it afterwards, and
/// publishes priview_solver_arena_* metrics.
ReconstructionResult ReconstructMarginalWithDiagnostics(
    const std::vector<MarginalTable>& views, AttrSet target, double total,
    ReconstructionMethod method, Arena& arena);

/// Table-only convenience wrapper over the diagnostics variant.
MarginalTable ReconstructMarginal(const std::vector<MarginalTable>& views,
                                  AttrSet target, double total,
                                  ReconstructionMethod method);

}  // namespace priview

#endif  // PRIVIEW_CORE_RECONSTRUCT_H_
