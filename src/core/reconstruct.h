// Reconstruction of an arbitrary k-way marginal from the view marginals
// (paper §4.3). If the scope is covered by a view, the answer is a direct
// projection. Otherwise the views induce an under-determined system of
// marginal constraints and one of three solvers completes it:
//   kMaxEntropy   (CME) — the paper's choice; solved with IPF
//   kLeastNorm    (CLN) — minimum-L2-norm completion
//   kLinearProgram (LP) — Barak-style min-max-violation LP; the only
//                         variant that does not assume consistent views
#ifndef PRIVIEW_CORE_RECONSTRUCT_H_
#define PRIVIEW_CORE_RECONSTRUCT_H_

#include <vector>

#include "opt/constraint.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

enum class ReconstructionMethod { kMaxEntropy, kLeastNorm, kLinearProgram };

const char* ReconstructionMethodName(ReconstructionMethod method);

/// Extracts the constraint set a query scope `target` inherits from the
/// views: one constraint per view with a non-empty intersection, already
/// deduplicated (maximal scopes only).
std::vector<MarginalConstraint> ConstraintsFor(
    const std::vector<MarginalTable>& views, AttrSet target);

/// Reconstructs the marginal over `target`. `total` is the common total
/// count of the (consistent) views, used when no view intersects `target`
/// and as the max-entropy normalization N_V. Never fails: an empty
/// constraint set yields the uniform table with the given total.
MarginalTable ReconstructMarginal(const std::vector<MarginalTable>& views,
                                  AttrSet target, double total,
                                  ReconstructionMethod method);

}  // namespace priview

#endif  // PRIVIEW_CORE_RECONSTRUCT_H_
