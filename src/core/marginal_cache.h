// Read-side LRU cache of reconstructed marginal tables, keyed by scope
// (AttrSet). Reconstruction (max-entropy IPF over the view constraints) is
// the query-latency bottleneck; a cache hit is a table copy. Beyond exact
// hits, a lookup for a scope CONTAINED in a cached scope is answered by
// rolling the cached table up (cube::RollUp) — a cached 8-way marginal
// answers every contained k-way for free. Note the semantics: a rolled-up
// answer is the projection of the cached reconstruction, which for
// consistent views matches what the paper's max-entropy reconstruction
// guarantees on shared sub-marginals up to solver tolerance, not bit-for-
// bit; callers who need the direct solve (e.g. diagnostics) bypass the
// cache.
//
// Thread safety: all methods are safe to call concurrently (one internal
// mutex); tables are returned by value.
#ifndef PRIVIEW_CORE_MARGINAL_CACHE_H_
#define PRIVIEW_CORE_MARGINAL_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

class MarginalCache {
 public:
  /// How a lookup was (or was not) answered — reported to the caller so
  /// the query path can attribute hits without re-deriving them from
  /// Stats deltas.
  enum class HitKind { kMiss, kExact, kRollUp };

  struct Stats {
    uint64_t exact_hits = 0;
    uint64_t rollup_hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;

    uint64_t lookups() const { return exact_hits + rollup_hits + misses; }
    /// Fraction of lookups served from the cache (exact or rolled up).
    double HitRate() const {
      const uint64_t n = lookups();
      return n == 0 ? 0.0
                    : static_cast<double>(exact_hits + rollup_hits) /
                          static_cast<double>(n);
    }
  };

  /// Cache holding at most `capacity` tables; 0 disables caching (every
  /// Lookup misses, Insert is a no-op).
  explicit MarginalCache(size_t capacity);

  /// Exact hit, or roll-up from the smallest cached superset scope, or
  /// nullopt (a miss). Hits refresh LRU recency of the serving entry.
  /// `kind`, when non-null, reports how the lookup was answered.
  std::optional<MarginalTable> Lookup(AttrSet target,
                                      HitKind* kind = nullptr);

  /// Inserts (or replaces) the table for `scope`, evicting the least
  /// recently used entries over capacity.
  void Insert(AttrSet scope, MarginalTable table);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    AttrSet scope;
    MarginalTable table;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> by_scope_;
  Stats stats_;
};

}  // namespace priview

#endif  // PRIVIEW_CORE_MARGINAL_CACHE_H_
