#include "core/consistency.h"

#include <algorithm>
#include <unordered_set>

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"

namespace priview {
namespace {

// Per-view work inside a mutual-consistency step is tiny (2^ell cells), so
// chunks batch several views to keep pool dispatch overhead below the work.
constexpr size_t kViewGrain = 8;

// Worklist fixpoint of pairwise intersection: every new set is intersected
// against everything discovered so far, so each pair of closure members is
// combined exactly once (hash-set membership keeps duplicates O(1)).
std::vector<uint64_t> ClosureMasks(const std::vector<AttrSet>& views) {
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> members;
  members.reserve(views.size() * 4);
  for (AttrSet v : views) {
    if (seen.insert(v.mask()).second) members.push_back(v.mask());
  }
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      const uint64_t inter = members[i] & members[j];
      if (seen.insert(inter).second) members.push_back(inter);
    }
  }
  seen.insert(0);
  if (std::find(members.begin(), members.end(), 0ULL) == members.end()) {
    members.push_back(0);  // totals are always synchronized
  }
  return members;
}

}  // namespace

std::vector<AttrSet> IntersectionClosure(const std::vector<AttrSet>& views) {
  // Keep only sets shared by at least two views (a set inside one view only
  // has nothing to reconcile), then order ascending by size.
  std::vector<AttrSet> result;
  for (uint64_t mask : ClosureMasks(views)) {
    const AttrSet a(mask);
    int containing = 0;
    for (AttrSet v : views) {
      if (a.IsSubsetOf(v) && ++containing >= 2) break;
    }
    if (containing >= 2) result.push_back(a);
  }
  std::stable_sort(result.begin(), result.end(), [](AttrSet a, AttrSet b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.mask() < b.mask();
  });
  return result;
}

void MutualConsistencyStep(std::vector<MarginalTable>* views, AttrSet common,
                           const std::vector<int>& view_indices) {
  PRIVIEW_CHECK(view_indices.size() >= 2);
  const size_t common_cells = size_t{1} << common.size();

  // Best estimate: arithmetic mean of the participating projections. The
  // projections are independent reads, so they run across the pool; the
  // mean is folded sequentially in view order so the floating-point sum is
  // identical at any thread count.
  std::vector<MarginalTable> projections(view_indices.size());
  parallel::ParallelFor(
      parallel::Phase::kConsistency, 0, view_indices.size(), kViewGrain,
      [&](size_t begin, size_t end) {
        for (size_t vi = begin; vi < end; ++vi) {
          const MarginalTable& view = (*views)[view_indices[vi]];
          PRIVIEW_CHECK(common.IsSubsetOf(view.attrs()));
          projections[vi] = view.Project(common);
        }
      });
  std::vector<double> mean(common_cells, 0.0);
  for (const MarginalTable& projection : projections) {
    for (size_t a = 0; a < common_cells; ++a) mean[a] += projection.At(a);
  }
  for (double& v : mean) v /= static_cast<double>(view_indices.size());

  // Push each view toward the mean: the correction for a constraint cell is
  // spread uniformly over the 2^{|V|-|common|} view cells projecting to it.
  // Each view's update touches only that view's table — disjoint writes.
  parallel::ParallelFor(
      parallel::Phase::kConsistency, 0, view_indices.size(), kViewGrain,
      [&](size_t begin, size_t end) {
        for (size_t vi = begin; vi < end; ++vi) {
          MarginalTable& view = (*views)[view_indices[vi]];
          const uint64_t within = view.CellIndexMaskFor(common);
          const double slice =
              static_cast<double>(size_t{1} << (view.arity() - common.size()));
          std::vector<double> delta(common_cells);
          for (size_t a = 0; a < common_cells; ++a) {
            delta[a] = (mean[a] - projections[vi].At(a)) / slice;
          }
          for (uint64_t cell = 0; cell < view.size(); ++cell) {
            view.At(cell) += delta[ExtractBits(cell, within)];
          }
        }
      });
}

ConsistencyPlan::ConsistencyPlan(const std::vector<AttrSet>& scopes)
    : scopes_(scopes) {
  for (AttrSet common : IntersectionClosure(scopes)) {
    Step step;
    step.common = common;
    for (size_t i = 0; i < scopes.size(); ++i) {
      if (common.IsSubsetOf(scopes[i])) {
        step.view_indices.push_back(static_cast<int>(i));
      }
    }
    if (step.view_indices.size() >= 2) steps_.push_back(std::move(step));
  }
}

void ConsistencyPlan::Apply(std::vector<MarginalTable>* views) const {
  PRIVIEW_CHECK(views->size() == scopes_.size());
  for (size_t i = 0; i < scopes_.size(); ++i) {
    PRIVIEW_CHECK((*views)[i].attrs() == scopes_[i]);
  }
  for (const Step& step : steps_) {
    MutualConsistencyStep(views, step.common, step.view_indices);
  }
}

void MakeConsistent(std::vector<MarginalTable>* views) {
  std::vector<AttrSet> scopes;
  scopes.reserve(views->size());
  for (const MarginalTable& v : *views) scopes.push_back(v.attrs());
  ConsistencyPlan(scopes).Apply(views);
}

double MaxInconsistency(const std::vector<MarginalTable>& views) {
  double worst = 0.0;
  for (size_t i = 0; i < views.size(); ++i) {
    for (size_t j = i + 1; j < views.size(); ++j) {
      const AttrSet common = views[i].attrs().Intersect(views[j].attrs());
      const MarginalTable pi = views[i].Project(common);
      const MarginalTable pj = views[j].Project(common);
      worst = std::max(worst, pi.LinfDistanceTo(pj));
    }
  }
  return worst;
}

}  // namespace priview
