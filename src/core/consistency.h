// The consistency step (paper §4.4): post-process the noisy view marginals
// so every pair of views agrees on every shared sub-marginal. The procedure
// walks the closure of the view set under intersection in ascending-size
// (topological) order; at each attribute set A it averages the projections
// of all views containing A (the minimum-variance combination) and pushes
// the correction back into each view uniformly. Lemma 1 guarantees later
// steps never invalidate earlier ones.
//
// For large view sets (hundreds of views), computing the closure dominates;
// a ConsistencyPlan caches it so repeated passes (Consistency + Ripple +
// Consistency, the paper's pipeline) pay for it once.
#ifndef PRIVIEW_CORE_CONSISTENCY_H_
#define PRIVIEW_CORE_CONSISTENCY_H_

#include <vector>

#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

/// All attribute sets arising as intersections of two or more views (plus
/// the empty set, which synchronizes totals), ascending by size — a valid
/// topological order of the subset relation. Sets equal to a whole view are
/// included when shared by several views.
std::vector<AttrSet> IntersectionClosure(const std::vector<AttrSet>& views);

/// One mutual-consistency step: makes every view containing `common`
/// agree on it. `view_indices` lists which tables participate. Projections
/// of each view onto attributes outside `common` are unchanged (Lemma 1).
void MutualConsistencyStep(std::vector<MarginalTable>* views, AttrSet common,
                           const std::vector<int>& view_indices);

/// Precomputed schedule of mutual-consistency steps for a fixed set of
/// view scopes: the intersection closure in topological order, with the
/// participating view indices resolved.
class ConsistencyPlan {
 public:
  /// Builds the plan for the given view scopes.
  explicit ConsistencyPlan(const std::vector<AttrSet>& scopes);

  /// Runs the full overall-consistency pass. The tables must have exactly
  /// the scopes the plan was built for, in the same order.
  void Apply(std::vector<MarginalTable>* views) const;

  /// Number of mutual-consistency steps in the schedule.
  size_t size() const { return steps_.size(); }

 private:
  struct Step {
    AttrSet common;
    std::vector<int> view_indices;
  };
  std::vector<AttrSet> scopes_;
  std::vector<Step> steps_;
};

/// Convenience wrapper: one-shot plan + apply.
void MakeConsistent(std::vector<MarginalTable>* views);

/// Largest disagreement between any two views on any closure set; 0 for a
/// fully consistent view collection. Diagnostic / test helper.
double MaxInconsistency(const std::vector<MarginalTable>& views);

}  // namespace priview

#endif  // PRIVIEW_CORE_CONSISTENCY_H_
