// One-call PriView pipeline, exactly as §4.5 prescribes end-to-end:
//   1. spend a sliver of budget on a noisy record count (the N estimate
//      view selection needs — "a rough estimate suffices"),
//   2. pick the covering design (ell = 8, t by the Eq. 5 noise-error rule),
//   3. build the synopsis with the remaining budget.
// All spending goes through a BudgetAccountant so the total is exactly the
// requested epsilon.
#ifndef PRIVIEW_CORE_PIPELINE_H_
#define PRIVIEW_CORE_PIPELINE_H_

#include "common/status.h"
#include "core/synopsis.h"
#include "design/view_selection.h"

namespace priview {

struct PipelineOptions {
  /// Total privacy budget for the whole release.
  double total_epsilon = 1.0;
  /// Budget for the noisy record count (§4.5 suggests 0.001).
  double count_epsilon = 0.001;
  /// View-selection knobs (ell, max t, noise-error ceiling).
  ViewSelectionOptions selection;
  /// Post-processing knobs; the epsilon field is overwritten with the
  /// remaining budget.
  PriViewOptions synopsis;
};

struct PipelineResult {
  PriViewSynopsis synopsis;
  ViewSelection selection;
  /// The noisy N the selection was based on.
  double noisy_count = 0.0;
  double count_epsilon = 0.0;
  double views_epsilon = 0.0;
};

/// Runs the pipeline. Fails (without touching the data) if the budget
/// split is infeasible (count_epsilon >= total_epsilon, etc.).
StatusOr<PipelineResult> BuildPriViewPipeline(const Dataset& data,
                                              const PipelineOptions& options,
                                              Rng* rng);

}  // namespace priview

#endif  // PRIVIEW_CORE_PIPELINE_H_
