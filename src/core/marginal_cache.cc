#include "core/marginal_cache.h"

#include <utility>

#include "core/query_engine.h"

namespace priview {

MarginalCache::MarginalCache(size_t capacity) : capacity_(capacity) {}

std::optional<MarginalTable> MarginalCache::Lookup(AttrSet target,
                                                   HitKind* kind) {
  if (kind != nullptr) *kind = HitKind::kMiss;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_scope_.find(target.mask());
  if (it != by_scope_.end()) {
    ++stats_.exact_hits;
    if (kind != nullptr) *kind = HitKind::kExact;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->table;
  }
  // No exact entry: the smallest cached superset answers by roll-up
  // (smallest so the projection sums the fewest cells). Scans the whole
  // cache, which is fine at serving-cache capacities (tens of entries).
  auto best = lru_.end();
  for (auto entry = lru_.begin(); entry != lru_.end(); ++entry) {
    if (!target.IsSubsetOf(entry->scope)) continue;
    if (best == lru_.end() || entry->scope.size() < best->scope.size()) {
      best = entry;
    }
  }
  if (best == lru_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.rollup_hits;
  if (kind != nullptr) *kind = HitKind::kRollUp;
  MarginalTable answer = cube::RollUp(best->table, target);
  lru_.splice(lru_.begin(), lru_, best);
  return answer;
}

void MarginalCache::Insert(AttrSet scope, MarginalTable table) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_scope_.find(scope.mask());
  if (it != by_scope_.end()) {
    it->second->table = std::move(table);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{scope, std::move(table)});
  by_scope_[scope.mask()] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    by_scope_.erase(lru_.back().scope.mask());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void MarginalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_scope_.clear();
}

size_t MarginalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

MarginalCache::Stats MarginalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace priview
