#include "core/variance.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "core/error_model.h"

namespace priview {
namespace {

// ESE of the averaged estimate for a scope covered by the views at indices
// `covering`: the mean of c independent projections, projection from view
// i summing 2^{ell_i - |scope|} cells of per-cell variance w^2 V_u.
double CoveredEse(const std::vector<AttrSet>& view_scopes,
                  const std::vector<int>& covering, int scope_size,
                  double epsilon) {
  const double w = static_cast<double>(view_scopes.size());
  const double vu = UnitVariance(epsilon);
  const double c = static_cast<double>(covering.size());
  double sum = 0.0;
  for (int i : covering) {
    sum += std::pow(2.0, view_scopes[i].size());
  }
  (void)scope_size;  // cancels: 2^{|S|} cells x 2^{ell-|S|} summed each
  return w * w * vu * sum / (c * c);
}

}  // namespace

double PredictQueryEse(const std::vector<AttrSet>& view_scopes,
                       AttrSet target, double epsilon) {
  PRIVIEW_CHECK(!view_scopes.empty());
  PRIVIEW_CHECK(epsilon > 0.0);

  // Covered case.
  std::vector<int> covering;
  for (size_t i = 0; i < view_scopes.size(); ++i) {
    if (target.IsSubsetOf(view_scopes[i])) {
      covering.push_back(static_cast<int>(i));
    }
  }
  if (!covering.empty()) {
    return CoveredEse(view_scopes, covering, target.size(), epsilon);
  }

  // Uncovered: noise error of the best (maximal) covered sub-scope,
  // attenuated by the max-entropy completion — spreading a sub-scope cell
  // uniformly over its 2^{|target \ I|} slice divides the per-cell noise
  // variance by 4^{|target \ I|}, so the target ESE is ESE(I) / 2^{..}.
  std::set<AttrSet> intersections;
  for (AttrSet scope : view_scopes) {
    const AttrSet common = scope.Intersect(target);
    if (!common.empty()) intersections.insert(common);
  }
  if (intersections.empty()) return 0.0;  // uniform answer, pure coverage

  double best = 0.0;
  for (AttrSet sub : intersections) {
    // Skip dominated intersections.
    bool dominated = false;
    for (AttrSet other : intersections) {
      if (sub != other && sub.IsSubsetOf(other)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    std::vector<int> sub_covering;
    for (size_t i = 0; i < view_scopes.size(); ++i) {
      if (sub.IsSubsetOf(view_scopes[i])) {
        sub_covering.push_back(static_cast<int>(i));
      }
    }
    const double sub_ese =
        CoveredEse(view_scopes, sub_covering, sub.size(), epsilon);
    best = std::max(
        best, sub_ese / std::pow(2.0, target.size() - sub.size()));
  }
  return best;
}

double PredictNormalizedError(const std::vector<AttrSet>& view_scopes,
                              AttrSet target, double epsilon, double n) {
  PRIVIEW_CHECK(n > 0.0);
  return std::sqrt(PredictQueryEse(view_scopes, target, epsilon)) / n;
}

}  // namespace priview
