#include "core/nonneg.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/check.h"

namespace priview {

const char* NonNegMethodName(NonNegMethod method) {
  switch (method) {
    case NonNegMethod::kNone:
      return "None";
    case NonNegMethod::kSimple:
      return "Simple";
    case NonNegMethod::kGlobal:
      return "Global";
    case NonNegMethod::kRipple:
      return "Ripple";
  }
  return "?";
}

namespace {

void SimpleNonNegativity(MarginalTable* table) {
  for (double& c : table->cells()) c = std::max(c, 0.0);
}

void GlobalNonNegativity(MarginalTable* table) {
  // Clamp negatives, then shave the created excess uniformly off positive
  // cells; repeat because shaving can push small positives negative.
  const double original_total = table->Total();
  for (int pass = 0; pass < 64; ++pass) {
    bool clamped = false;
    for (double& c : table->cells()) {
      if (c < 0.0) {
        c = 0.0;
        clamped = true;
      }
    }
    const double excess = table->Total() - original_total;
    if (excess <= 0.0) break;
    int positive = 0;
    for (double c : table->cells()) {
      if (c > 0.0) ++positive;
    }
    if (positive == 0) break;
    const double cut = excess / positive;
    for (double& c : table->cells()) {
      if (c > 0.0) c -= cut;
    }
    if (!clamped) break;
  }
  // The total may still exceed the original if everything went to zero;
  // that is the method's known limitation, kept faithful to the paper.
}

}  // namespace

int RippleNonNegativity(MarginalTable* table, const RippleOptions& options) {
  const int ell = table->arity();
  PRIVIEW_CHECK(options.theta >= 0.0);
  if (ell == 0) return 0;

  const size_t num_cells = table->size();
  std::deque<uint64_t> worklist;
  std::vector<bool> queued(num_cells, false);
  for (uint64_t c = 0; c < num_cells; ++c) {
    if (table->At(c) < -options.theta) {
      worklist.push_back(c);
      queued[c] = true;
    }
  }

  const long long max_steps =
      static_cast<long long>(options.max_steps_per_cell) *
      static_cast<long long>(num_cells);
  long long steps = 0;
  int corrections = 0;
  while (!worklist.empty()) {
    const uint64_t c = worklist.front();
    worklist.pop_front();
    queued[c] = false;
    const double value = table->At(c);
    if (value >= -options.theta) continue;
    // Zero this cell; its (negative) value is split over the ell neighbors.
    table->At(c) = 0.0;
    const double share = value / ell;  // negative
    for (int bit = 0; bit < ell; ++bit) {
      const uint64_t neighbor = c ^ (1ULL << bit);
      table->At(neighbor) += share;
      if (table->At(neighbor) < -options.theta && !queued[neighbor]) {
        worklist.push_back(neighbor);
        queued[neighbor] = true;
      }
    }
    ++corrections;
    if (++steps > max_steps) {
      // Pathological noise; fall back to the global correction for the
      // remainder rather than looping forever.
      GlobalNonNegativity(table);
      break;
    }
  }
  return corrections;
}

void ApplyNonNegativity(MarginalTable* table, NonNegMethod method,
                        const RippleOptions& ripple_options) {
  switch (method) {
    case NonNegMethod::kNone:
      return;
    case NonNegMethod::kSimple:
      SimpleNonNegativity(table);
      return;
    case NonNegMethod::kGlobal:
      GlobalNonNegativity(table);
      return;
    case NonNegMethod::kRipple:
      RippleNonNegativity(table, ripple_options);
      return;
  }
}

}  // namespace priview
