#include "core/query_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace priview {
namespace cube {

MarginalTable RollUp(const MarginalTable& table, AttrSet keep) {
  return table.Project(keep);
}

MarginalTable Slice(const MarginalTable& table, int attr, int value) {
  PRIVIEW_CHECK(table.attrs().Contains(attr));
  PRIVIEW_CHECK(value == 0 || value == 1);
  return Dice(table, AttrSet::FromIndices({attr}),
              static_cast<uint64_t>(value));
}

MarginalTable Dice(const MarginalTable& table, AttrSet fixed,
                   uint64_t values) {
  PRIVIEW_CHECK(fixed.IsSubsetOf(table.attrs()));
  PRIVIEW_CHECK(values < (uint64_t{1} << fixed.size()));
  const AttrSet rest = table.attrs().Minus(fixed);
  const uint64_t fixed_mask = table.CellIndexMaskFor(fixed);
  const uint64_t rest_mask = table.CellIndexMaskFor(rest);
  MarginalTable out(rest);
  for (uint64_t cell = 0; cell < table.size(); ++cell) {
    if (ExtractBits(cell, fixed_mask) != values) continue;
    out.At(ExtractBits(cell, rest_mask)) += table.At(cell);
  }
  return out;
}

}  // namespace cube

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Reconstructed cells can go slightly negative (Laplace noise minus the
// non-negativity post-processing's tolerance); clamping at read time keeps
// ratios like conditional probabilities inside [0, 1].
inline double ClampCell(double v) { return std::max(v, 0.0); }

// Unwraps a StatusOr<double> into the legacy double API: errors become a
// benign NaN instead of an abort.
double OrNaN(const StatusOr<double>& v) { return v.ok() ? v.value() : kNaN; }

// Attributes one serving-cache lookup to its outcome. Instrument pointers
// are stable for the process lifetime, so they are resolved once.
void CountCacheLookup(MarginalCache::HitKind kind) {
  static obs::Counter* const exact =
      obs::MetricsRegistry::Global().GetCounter(
          "priview_query_cache_lookups_total", {{"result", "exact"}},
          "Query-path marginal-cache lookups by outcome");
  static obs::Counter* const rollup =
      obs::MetricsRegistry::Global().GetCounter(
          "priview_query_cache_lookups_total", {{"result", "rollup"}});
  static obs::Counter* const miss = obs::MetricsRegistry::Global().GetCounter(
      "priview_query_cache_lookups_total", {{"result", "miss"}});
  switch (kind) {
    case MarginalCache::HitKind::kExact:
      exact->Increment();
      break;
    case MarginalCache::HitKind::kRollUp:
      rollup->Increment();
      break;
    case MarginalCache::HitKind::kMiss:
      miss->Increment();
      break;
  }
}

}  // namespace

StatusOr<QueryEngine> QueryEngine::Create(const PriViewSynopsis* synopsis,
                                          ReconstructionMethod method) {
  QueryEngineOptions options;
  options.method = method;
  return Create(synopsis, options);
}

StatusOr<QueryEngine> QueryEngine::Create(const PriViewSynopsis* synopsis,
                                          const QueryEngineOptions& options) {
  if (synopsis == nullptr) {
    return Status::InvalidArgument("null synopsis");
  }
  if (synopsis->views().empty() || synopsis->d() < 1) {
    return Status::FailedPrecondition("synopsis has no views to serve from");
  }
  return QueryEngine(synopsis, options);
}

QueryEngine::QueryEngine(const PriViewSynopsis* synopsis,
                         ReconstructionMethod method)
    : QueryEngine(synopsis, [&] {
        QueryEngineOptions options;
        options.method = method;
        return options;
      }()) {}

QueryEngine::QueryEngine(const PriViewSynopsis* synopsis,
                         const QueryEngineOptions& options)
    : synopsis_(synopsis),
      method_(options.method),
      cache_(options.cache_capacity == 0
                 ? nullptr
                 : std::make_unique<MarginalCache>(options.cache_capacity)) {
  PRIVIEW_CHECK(synopsis != nullptr);
}

StatusOr<MarginalTable> QueryEngine::CachedQuery(AttrSet target) const {
  // The cache-hit path is tens of nanoseconds — below the histogram's
  // microsecond resolution and cheap enough that even a disarmed span
  // would be a measurable fraction (bench_obs's <1% bar). Hits are
  // observed through the lookup counters only; spans cover the miss path,
  // where the op costs microseconds to milliseconds.
  if (cache_ != nullptr) {
    MarginalCache::HitKind kind;
    if (std::optional<MarginalTable> hit = cache_->Lookup(target, &kind)) {
      CountCacheLookup(kind);
      return *std::move(hit);
    }
    CountCacheLookup(kind);
  }
  // One span for the whole miss (solve + insert); the finer-grained
  // "query/solve" span belongs to AnswerBatch's parallel solves, where no
  // per-request marginal span exists.
  obs::TraceSpan span("query/marginal");
  if (span.active()) span.Annotate(target.ToString());
  StatusOr<MarginalTable> table = synopsis_->TryQuery(target, method_);
  if (table.ok() && cache_ != nullptr) cache_->Insert(target, table.value());
  return table;
}

StatusOr<MarginalTable> QueryEngine::TryMarginal(AttrSet target) const {
  if (!target.IsSubsetOf(AttrSet::Full(synopsis_->d()))) {
    return Status::InvalidArgument("query scope outside universe: " +
                                   target.ToString());
  }
  return CachedQuery(target);
}

std::vector<StatusOr<MarginalTable>> QueryEngine::AnswerBatch(
    const std::vector<AttrSet>& targets) const {
  // Phase 1 (sequential): validate, serve what the current cache already
  // answers, and collect the distinct remaining targets.
  std::vector<std::optional<StatusOr<MarginalTable>>> resolved(targets.size());
  std::vector<AttrSet> pending;
  std::unordered_map<uint64_t, size_t> pending_index;
  const AttrSet universe = AttrSet::Full(synopsis_->d());
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!targets[i].IsSubsetOf(universe)) {
      resolved[i] = Status::InvalidArgument("query scope outside universe: " +
                                            targets[i].ToString());
      continue;
    }
    if (cache_ != nullptr) {
      MarginalCache::HitKind kind;
      std::optional<MarginalTable> hit = cache_->Lookup(targets[i], &kind);
      CountCacheLookup(kind);
      if (hit) {
        resolved[i] = *std::move(hit);
        continue;
      }
    }
    if (pending_index.emplace(targets[i].mask(), pending.size()).second) {
      pending.push_back(targets[i]);
    }
  }

  // Phase 2 (parallel): reconstruct the distinct missing marginals
  // concurrently. Each reconstruction is independent and deterministic, and
  // the slots are disjoint, so the batch result does not depend on the
  // thread count.
  std::vector<std::optional<StatusOr<MarginalTable>>> computed(pending.size());
  parallel::ParallelFor(parallel::Phase::kSolve, 0, pending.size(), 1,
                        [&](size_t begin, size_t end) {
                          for (size_t j = begin; j < end; ++j) {
                            obs::TraceSpan solve("query/solve");
                            computed[j] =
                                synopsis_->TryQuery(pending[j], method_);
                          }
                        });

  // Phase 3 (sequential): populate the cache in batch order and assemble
  // the per-request answers (duplicates share the computed table).
  if (cache_ != nullptr) {
    for (size_t j = 0; j < pending.size(); ++j) {
      if (computed[j]->ok()) cache_->Insert(pending[j], computed[j]->value());
    }
  }
  std::vector<StatusOr<MarginalTable>> answers;
  answers.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    if (resolved[i].has_value()) {
      answers.push_back(*std::move(resolved[i]));
    } else {
      answers.push_back(*computed[pending_index.at(targets[i].mask())]);
    }
  }
  return answers;
}

std::optional<MarginalTable> QueryEngine::CacheProbe(AttrSet target) const {
  if (cache_ == nullptr) return std::nullopt;
  if (!target.IsSubsetOf(AttrSet::Full(synopsis_->d()))) return std::nullopt;
  return cache_->Lookup(target);
}

MarginalCache::Stats QueryEngine::cache_stats() const {
  return cache_ == nullptr ? MarginalCache::Stats{} : cache_->stats();
}

Status QueryEngine::ValidateScope(AttrSet attrs, uint64_t assignment) const {
  if (!attrs.IsSubsetOf(AttrSet::Full(synopsis_->d()))) {
    return Status::InvalidArgument("query scope outside universe: " +
                                   attrs.ToString());
  }
  if (attrs.size() < 64 && assignment >= (uint64_t{1} << attrs.size())) {
    return Status::OutOfRange("assignment out of range for scope " +
                              attrs.ToString());
  }
  return Status::OK();
}

Status QueryEngine::ValidateAttr(int attr) const {
  if (attr < 0 || attr >= synopsis_->d()) {
    return Status::InvalidArgument("attribute out of range: " +
                                   std::to_string(attr));
  }
  return Status::OK();
}

StatusOr<double> QueryEngine::TryConjunctionCount(AttrSet attrs,
                                                  uint64_t assignment) const {
  const Status valid = ValidateScope(attrs, assignment);
  if (!valid.ok()) return valid;
  StatusOr<MarginalTable> table = CachedQuery(attrs);
  if (!table.ok()) return table.status();
  return table.value().At(assignment);
}

double QueryEngine::ConjunctionCount(AttrSet attrs,
                                     uint64_t assignment) const {
  return OrNaN(TryConjunctionCount(attrs, assignment));
}

StatusOr<double> QueryEngine::TryProbability(AttrSet attrs,
                                             uint64_t assignment) const {
  StatusOr<double> count = TryConjunctionCount(attrs, assignment);
  if (!count.ok()) return count;
  const double total = synopsis_->total();
  // !(… > 0) also catches a NaN total from a degraded synopsis.
  if (!(total > 0.0) || !std::isfinite(total)) return 0.0;
  return count.value() / total;
}

double QueryEngine::Probability(AttrSet attrs, uint64_t assignment) const {
  return OrNaN(TryProbability(attrs, assignment));
}

StatusOr<double> QueryEngine::TryConditionalProbability(
    int target_attr, AttrSet attrs, uint64_t assignment) const {
  Status valid = ValidateAttr(target_attr);
  if (!valid.ok()) return valid;
  if (attrs.Contains(target_attr)) {
    return Status::InvalidArgument(
        "target attribute is part of the condition");
  }
  valid = ValidateScope(attrs, assignment);
  if (!valid.ok()) return valid;

  const AttrSet joint = attrs.Union(AttrSet::FromIndices({target_attr}));
  StatusOr<MarginalTable> table_or = CachedQuery(joint);
  if (!table_or.ok()) return table_or.status();
  const MarginalTable& table = table_or.value();
  // Condition cells: those matching `assignment` on attrs.
  const uint64_t cond_mask = table.CellIndexMaskFor(attrs);
  const uint64_t target_bit =
      table.CellIndexMaskFor(AttrSet::FromIndices({target_attr}));
  double hit = 0.0, support = 0.0;
  for (uint64_t cell = 0; cell < table.size(); ++cell) {
    if (ExtractBits(cell, cond_mask) != assignment) continue;
    const double mass = ClampCell(table.At(cell));
    support += mass;
    if (cell & target_bit) hit += mass;
  }
  // Near-zero support is reconstruction noise, not evidence: answer the
  // uninformative prior rather than a 0/0-shaped ratio.
  const double support_floor = 1e-9 * std::max(1.0, synopsis_->total());
  if (!(support > support_floor)) return 0.5;
  return hit / support;
}

double QueryEngine::ConditionalProbability(int target_attr, AttrSet attrs,
                                           uint64_t assignment) const {
  return OrNaN(TryConditionalProbability(target_attr, attrs, assignment));
}

StatusOr<double> QueryEngine::TryLift(int a, int b) const {
  Status valid = ValidateAttr(a);
  if (!valid.ok()) return valid;
  valid = ValidateAttr(b);
  if (!valid.ok()) return valid;
  if (a == b) return Status::InvalidArgument("lift of an attribute with itself");

  const AttrSet pair = AttrSet::FromIndices({a, b});
  StatusOr<MarginalTable> table_or = CachedQuery(pair);
  if (!table_or.ok()) return table_or.status();
  const MarginalTable& table = table_or.value();
  const double c00 = ClampCell(table.At(0b00));
  const double c01 = ClampCell(table.At(0b01));
  const double c10 = ClampCell(table.At(0b10));
  const double c11 = ClampCell(table.At(0b11));
  const double total = c00 + c01 + c10 + c11;
  const double support_floor = 1e-9 * std::max(1.0, synopsis_->total());
  if (!(total > support_floor)) return 0.0;
  const double pa = (c01 + c11) / total;
  const double pb = (c10 + c11) / total;
  const double pab = c11 / total;
  // Near-zero marginal support would make the ratio explode on noise.
  if (pa <= 1e-12 || pb <= 1e-12) return 0.0;
  return pab / (pa * pb);
}

double QueryEngine::Lift(int a, int b) const { return OrNaN(TryLift(a, b)); }

StatusOr<double> QueryEngine::TryMutualInformation(int a, int b) const {
  Status valid = ValidateAttr(a);
  if (!valid.ok()) return valid;
  valid = ValidateAttr(b);
  if (!valid.ok()) return valid;
  if (a == b) {
    return Status::InvalidArgument(
        "mutual information of an attribute with itself");
  }

  const AttrSet pair = AttrSet::FromIndices({a, b});
  StatusOr<MarginalTable> table_or = CachedQuery(pair);
  if (!table_or.ok()) return table_or.status();
  std::vector<double> joint = table_or.value().Normalized();
  // Clamp the tiny negative mass noise can leave and renormalize so the
  // entropies below see a genuine distribution.
  double mass = 0.0;
  for (double& p : joint) {
    p = ClampCell(p);
    mass += p;
  }
  if (mass <= 0.0) return 0.0;
  for (double& p : joint) p /= mass;

  const double pa1 = joint[0b01] + joint[0b11];
  const double pb1 = joint[0b10] + joint[0b11];
  const double pa[2] = {1.0 - pa1, pa1};
  const double pb[2] = {1.0 - pb1, pb1};
  double mi = 0.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const double pij = joint[static_cast<size_t>(i) | (j << 1)];
      if (pij <= 0.0) continue;
      const double denom = pa[i] * pb[j];
      if (denom <= 0.0) continue;
      mi += pij * std::log(pij / denom);
    }
  }
  return std::max(mi, 0.0);
}

double QueryEngine::MutualInformation(int a, int b) const {
  return OrNaN(TryMutualInformation(a, b));
}

StatusOr<ReconstructionResult> QueryEngine::TryQueryWithDiagnostics(
    AttrSet target) const {
  if (!target.IsSubsetOf(AttrSet::Full(synopsis_->d()))) {
    return Status::InvalidArgument("query scope outside universe: " +
                                   target.ToString());
  }
  return ReconstructMarginalWithDiagnostics(synopsis_->views(), target,
                                            synopsis_->total(), method_);
}

}  // namespace priview
