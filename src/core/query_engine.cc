#include "core/query_engine.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"

namespace priview {
namespace cube {

MarginalTable RollUp(const MarginalTable& table, AttrSet keep) {
  return table.Project(keep);
}

MarginalTable Slice(const MarginalTable& table, int attr, int value) {
  PRIVIEW_CHECK(table.attrs().Contains(attr));
  PRIVIEW_CHECK(value == 0 || value == 1);
  return Dice(table, AttrSet::FromIndices({attr}),
              static_cast<uint64_t>(value));
}

MarginalTable Dice(const MarginalTable& table, AttrSet fixed,
                   uint64_t values) {
  PRIVIEW_CHECK(fixed.IsSubsetOf(table.attrs()));
  PRIVIEW_CHECK(values < (uint64_t{1} << fixed.size()));
  const AttrSet rest = table.attrs().Minus(fixed);
  const uint64_t fixed_mask = table.CellIndexMaskFor(fixed);
  const uint64_t rest_mask = table.CellIndexMaskFor(rest);
  MarginalTable out(rest);
  for (uint64_t cell = 0; cell < table.size(); ++cell) {
    if (ExtractBits(cell, fixed_mask) != values) continue;
    out.At(ExtractBits(cell, rest_mask)) += table.At(cell);
  }
  return out;
}

}  // namespace cube

QueryEngine::QueryEngine(const PriViewSynopsis* synopsis,
                         ReconstructionMethod method)
    : synopsis_(synopsis), method_(method) {
  PRIVIEW_CHECK(synopsis != nullptr);
}

double QueryEngine::ConjunctionCount(AttrSet attrs,
                                     uint64_t assignment) const {
  PRIVIEW_CHECK(assignment < (uint64_t{1} << attrs.size()));
  return synopsis_->Query(attrs, method_).At(assignment);
}

double QueryEngine::Probability(AttrSet attrs, uint64_t assignment) const {
  const double total = synopsis_->total();
  if (total <= 0.0) return 0.0;
  return ConjunctionCount(attrs, assignment) / total;
}

double QueryEngine::ConditionalProbability(int target_attr, AttrSet attrs,
                                           uint64_t assignment) const {
  PRIVIEW_CHECK(!attrs.Contains(target_attr));
  const AttrSet joint = attrs.Union(AttrSet::FromIndices({target_attr}));
  const MarginalTable table = synopsis_->Query(joint, method_);
  // Condition cells: those matching `assignment` on attrs.
  const uint64_t cond_mask = table.CellIndexMaskFor(attrs);
  const uint64_t target_bit =
      table.CellIndexMaskFor(AttrSet::FromIndices({target_attr}));
  double hit = 0.0, support = 0.0;
  for (uint64_t cell = 0; cell < table.size(); ++cell) {
    if (ExtractBits(cell, cond_mask) != assignment) continue;
    support += table.At(cell);
    if (cell & target_bit) hit += table.At(cell);
  }
  if (support <= 0.0) return 0.5;  // no evidence either way
  return hit / support;
}

double QueryEngine::Lift(int a, int b) const {
  const AttrSet pair = AttrSet::FromIndices({a, b});
  const MarginalTable table = synopsis_->Query(pair, method_);
  const double total = table.Total();
  if (total <= 0.0) return 0.0;
  const double pa = (table.At(0b01) + table.At(0b11)) / total;
  const double pb = (table.At(0b10) + table.At(0b11)) / total;
  const double pab = table.At(0b11) / total;
  if (pa <= 0.0 || pb <= 0.0) return 0.0;
  return pab / (pa * pb);
}

double QueryEngine::MutualInformation(int a, int b) const {
  const AttrSet pair = AttrSet::FromIndices({a, b});
  const std::vector<double> joint =
      synopsis_->Query(pair, method_).Normalized();
  const double pa1 = joint[0b01] + joint[0b11];
  const double pb1 = joint[0b10] + joint[0b11];
  const double pa[2] = {1.0 - pa1, pa1};
  const double pb[2] = {1.0 - pb1, pb1};
  double mi = 0.0;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const double pij = joint[static_cast<size_t>(i) | (j << 1)];
      if (pij <= 0.0) continue;
      const double denom = pa[i] * pb[j];
      if (denom <= 0.0) continue;
      mi += pij * std::log(pij / denom);
    }
  }
  return std::max(mi, 0.0);
}

}  // namespace priview
