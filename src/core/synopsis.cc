#include "core/synopsis.h"

#include "common/check.h"
#include "common/parallel.h"
#include "core/consistency.h"
#include "dp/mechanisms.h"
#include "obs/tracer.h"

namespace priview {

PriViewSynopsis PriViewSynopsis::Build(const Dataset& data,
                                       const std::vector<AttrSet>& views,
                                       const PriViewOptions& options,
                                       Rng* rng) {
  StatusOr<PriViewSynopsis> synopsis = TryBuild(data, views, options, rng);
  PRIVIEW_CHECK_OK(synopsis.status());
  return std::move(synopsis).value();
}

StatusOr<PriViewSynopsis> PriViewSynopsis::TryBuild(
    const Dataset& data, const std::vector<AttrSet>& views,
    const PriViewOptions& options, Rng* rng) {
  if (views.empty()) return Status::InvalidArgument("no views to build");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options.add_noise && options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive to add noise");
  }
  for (const AttrSet& view : views) {
    if (view.empty() || !view.IsSubsetOf(AttrSet::Full(data.d()))) {
      return Status::InvalidArgument("view scope outside dataset universe: " +
                                     view.ToString());
    }
  }

  obs::TraceSpan publish_span("publish");

  // Stage 1 (the only data access): one fused, cache-blocked pass over the
  // records materializes every view marginal at once. Everything after —
  // noise, consistency — is shared with TryBuildFromCounts, so a synopsis
  // rebuilt from delta-maintained running counts is bit-identical to this
  // from-scratch path.
  std::vector<MarginalTable> counts;
  {
    obs::TraceSpan count_span("publish/count");
    counts = data.CountMarginals(views);
  }
  return FinishFromCounts(data.d(), std::move(counts), options, rng);
}

StatusOr<PriViewSynopsis> PriViewSynopsis::TryBuildFromCounts(
    int d, std::vector<MarginalTable> exact_counts,
    const PriViewOptions& options, Rng* rng) {
  if (exact_counts.empty()) return Status::InvalidArgument("no views to build");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options.add_noise && options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive to add noise");
  }
  if (d < 1 || d > 64) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(d));
  }
  for (const MarginalTable& view : exact_counts) {
    if (view.attrs().empty() || !view.attrs().IsSubsetOf(AttrSet::Full(d))) {
      return Status::InvalidArgument("view scope outside dataset universe: " +
                                     view.attrs().ToString());
    }
  }
  obs::TraceSpan publish_span("publish");
  return FinishFromCounts(d, std::move(exact_counts), options, rng);
}

PriViewSynopsis PriViewSynopsis::FinishFromCounts(
    int d, std::vector<MarginalTable> counts, const PriViewOptions& options,
    Rng* rng) {
  PriViewSynopsis synopsis;
  synopsis.d_ = d;
  synopsis.options_ = options;
  synopsis.views_ = std::move(counts);

  // Lap(w/epsilon) noise on every cell. Each view draws from its own Rng
  // forked (deterministically, in view order) from the caller's, so the
  // noise a view receives does not depend on the thread count — synopses
  // are bit-identical at 1 or 8 threads for the same seed.
  const double w = static_cast<double>(synopsis.views_.size());
  if (options.add_noise) {
    obs::TraceSpan noise_span("publish/noise");
    std::vector<Rng> view_rngs;
    view_rngs.reserve(synopsis.views_.size());
    for (size_t i = 0; i < synopsis.views_.size(); ++i) {
      view_rngs.push_back(rng->Fork());
    }
    parallel::ParallelFor(
        0, synopsis.views_.size(), 1, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            obs::TraceSpan view_span("publish/noise/view");
            AddLaplaceNoise(&synopsis.views_[i], /*sensitivity=*/w,
                            options.epsilon, &view_rngs[i]);
          }
        });
  }

  // Consistency + rounds of (non-negativity + Consistency). The
  // consistency schedule depends only on the view scopes, so it is planned
  // once and re-applied each round. Non-negativity is per view (no shared
  // state), so the views run across the pool; Consistency keeps its
  // sequential step barrier (each mutual-consistency step parallelizes
  // internally over the participating views).
  const auto nonneg_pass = [&] {
    obs::TraceSpan ripple_span("publish/ripple");
    parallel::ParallelFor(0, synopsis.views_.size(), 1,
                          [&](size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) {
                              obs::TraceSpan view_span("publish/ripple/view");
                              ApplyNonNegativity(&synopsis.views_[i],
                                                 options.nonneg,
                                                 options.ripple);
                            }
                          });
  };
  const auto consistency_pass = [&](const ConsistencyPlan& plan) {
    obs::TraceSpan consistency_span("publish/consistency");
    plan.Apply(&synopsis.views_);
  };
  if (options.run_consistency) {
    std::vector<AttrSet> scopes;
    scopes.reserve(synopsis.views_.size());
    for (const MarginalTable& view : synopsis.views_) {
      scopes.push_back(view.attrs());
    }
    const ConsistencyPlan plan(scopes);
    consistency_pass(plan);
    if (options.nonneg != NonNegMethod::kNone) {
      for (int round = 0; round < options.nonneg_rounds; ++round) {
        nonneg_pass();
        consistency_pass(plan);
      }
    }
  } else if (options.nonneg != NonNegMethod::kNone) {
    nonneg_pass();
  }

  // The consistent total; averaging over views also covers the
  // no-consistency path.
  double total = 0.0;
  for (const MarginalTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / static_cast<double>(synopsis.views_.size());

  return synopsis;
}

PriViewSynopsis PriViewSynopsis::FromViews(int d,
                                           std::vector<MarginalTable> views,
                                           const PriViewOptions& options) {
  StatusOr<PriViewSynopsis> synopsis =
      TryFromViews(d, std::move(views), options);
  PRIVIEW_CHECK_OK(synopsis.status());
  return std::move(synopsis).value();
}

StatusOr<PriViewSynopsis> PriViewSynopsis::TryFromViews(
    int d, std::vector<MarginalTable> views, const PriViewOptions& options) {
  if (views.empty()) return Status::InvalidArgument("no views");
  if (d < 1 || d > 64) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(d));
  }
  PriViewSynopsis synopsis;
  synopsis.d_ = d;
  synopsis.options_ = options;
  for (const MarginalTable& view : views) {
    if (!view.attrs().IsSubsetOf(AttrSet::Full(d))) {
      return Status::InvalidArgument("view scope outside universe: " +
                                     view.attrs().ToString());
    }
  }
  synopsis.views_ = std::move(views);
  double total = 0.0;
  for (const MarginalTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / static_cast<double>(synopsis.views_.size());
  return synopsis;
}

MarginalTable PriViewSynopsis::Query(AttrSet target,
                                     ReconstructionMethod method) const {
  StatusOr<MarginalTable> answer = TryQuery(target, method);
  PRIVIEW_CHECK_OK(answer.status());
  return std::move(answer).value();
}

StatusOr<MarginalTable> PriViewSynopsis::TryQuery(
    AttrSet target, ReconstructionMethod method) const {
  if (!target.IsSubsetOf(AttrSet::Full(d_))) {
    return Status::InvalidArgument("query scope outside universe: " +
                                   target.ToString());
  }
  return ReconstructMarginal(views_, target, total_, method);
}

}  // namespace priview
