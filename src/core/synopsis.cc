#include "core/synopsis.h"

#include "common/check.h"
#include "common/parallel.h"
#include "core/consistency.h"
#include "dp/mechanisms.h"
#include "obs/tracer.h"

namespace priview {

PriViewSynopsis PriViewSynopsis::Build(const Dataset& data,
                                       const std::vector<AttrSet>& views,
                                       const PriViewOptions& options,
                                       Rng* rng) {
  StatusOr<PriViewSynopsis> synopsis = TryBuild(data, views, options, rng);
  PRIVIEW_CHECK_OK(synopsis.status());
  return std::move(synopsis).value();
}

StatusOr<PriViewSynopsis> PriViewSynopsis::TryBuild(
    const Dataset& data, const std::vector<AttrSet>& views,
    const PriViewOptions& options, Rng* rng) {
  if (views.empty()) return Status::InvalidArgument("no views to build");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options.add_noise && options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive to add noise");
  }
  for (const AttrSet& view : views) {
    if (view.empty() || !view.IsSubsetOf(AttrSet::Full(data.d()))) {
      return Status::InvalidArgument("view scope outside dataset universe: " +
                                     view.ToString());
    }
  }

  obs::TraceSpan publish_span("publish");

  // Stage 1 (the only data access): one fused, cache-blocked pass over the
  // records materializes every view marginal at once. When noising, the
  // pass and the noise run as ONE task graph — a view group whose counts
  // have merged enters noise while other groups are still counting — so
  // the count barrier the old pipeline paid is gone. Noise draws come from
  // per-view rngs forked sequentially in view order BEFORE the graph runs,
  // and a group merges its slot accumulators in slot order, so the result
  // is bit-identical to the sequential count-then-noise path (which is
  // what TryBuildFromCounts still runs on delta-maintained counts) at any
  // thread count.
  if (!options.add_noise) {
    std::vector<MarginalTable> counts;
    {
      obs::TraceSpan count_span("publish/count");
      counts = data.CountMarginals(views);
    }
    return FinishFromCounts(data.d(), std::move(counts), options, rng);
  }

  FusedCountPlan plan = data.PlanFusedCount(views);
  std::vector<Rng> view_rngs;
  view_rngs.reserve(views.size());
  for (size_t i = 0; i < views.size(); ++i) view_rngs.push_back(rng->Fork());
  const double w = static_cast<double>(views.size());

  {
    obs::TraceSpan count_span("publish/count");
    parallel::TaskGraph graph;
    const size_t groups = plan.num_groups();
    const size_t chunks = plan.num_record_chunks();
    // Node order (group fastest within a record chunk) keeps a worker's
    // consecutive count tasks on the same hot record chunk.
    std::vector<parallel::TaskGraph::NodeId> count_ids(groups * chunks);
    for (size_t r = 0; r < chunks; ++r) {
      for (size_t g = 0; g < groups; ++g) {
        count_ids[r * groups + g] = graph.AddTask(
            parallel::Phase::kCount,
            [&plan, g, r](int slot) { plan.AccumulateGroup(slot, g, r); });
      }
    }
    for (size_t g = 0; g < groups; ++g) {
      const parallel::TaskGraph::NodeId merge_id = graph.AddTask(
          parallel::Phase::kMerge, [&plan, g](int) { plan.MergeGroup(g); });
      for (size_t r = 0; r < chunks; ++r) {
        graph.DependsOn(merge_id, count_ids[r * groups + g]);
      }
      const auto [v_begin, v_end] = plan.GroupViews(g);
      for (size_t v = v_begin; v < v_end; ++v) {
        const parallel::TaskGraph::NodeId noise_id =
            graph.AddTask(parallel::Phase::kNoise, [&plan, &view_rngs,
                                                    &options, w, v](int) {
              obs::TraceSpan view_span("publish/noise/view");
              AddLaplaceNoise(&plan.table(v), /*sensitivity=*/w,
                              options.epsilon, &view_rngs[v]);
            });
        graph.DependsOn(noise_id, merge_id);
      }
    }
    graph.Run();
  }
  return FinishFromCounts(data.d(), plan.TakeTables(), options, rng,
                          /*noise_done=*/true);
}

StatusOr<PriViewSynopsis> PriViewSynopsis::TryBuildFromCounts(
    int d, std::vector<MarginalTable> exact_counts,
    const PriViewOptions& options, Rng* rng) {
  if (exact_counts.empty()) return Status::InvalidArgument("no views to build");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options.add_noise && options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive to add noise");
  }
  if (d < 1 || d > 64) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(d));
  }
  for (const MarginalTable& view : exact_counts) {
    if (view.attrs().empty() || !view.attrs().IsSubsetOf(AttrSet::Full(d))) {
      return Status::InvalidArgument("view scope outside dataset universe: " +
                                     view.attrs().ToString());
    }
  }
  obs::TraceSpan publish_span("publish");
  return FinishFromCounts(d, std::move(exact_counts), options, rng);
}

PriViewSynopsis PriViewSynopsis::FinishFromCounts(
    int d, std::vector<MarginalTable> counts, const PriViewOptions& options,
    Rng* rng, bool noise_done) {
  PriViewSynopsis synopsis;
  synopsis.d_ = d;
  synopsis.options_ = options;
  synopsis.views_ = std::move(counts);

  // Lap(w/epsilon) noise on every cell. Each view draws from its own Rng
  // forked (deterministically, in view order) from the caller's, so the
  // noise a view receives does not depend on the thread count — synopses
  // are bit-identical at 1, 2, 4, 8 or 16 threads for the same seed.
  // TryBuild's overlapped graph forks the same per-view rngs in the same
  // order and noises each view once, so `noise_done` skips an identical —
  // not merely equivalent — computation.
  const double w = static_cast<double>(synopsis.views_.size());
  if (options.add_noise && !noise_done) {
    obs::TraceSpan noise_span("publish/noise");
    std::vector<Rng> view_rngs;
    view_rngs.reserve(synopsis.views_.size());
    for (size_t i = 0; i < synopsis.views_.size(); ++i) {
      view_rngs.push_back(rng->Fork());
    }
    parallel::ParallelFor(
        parallel::Phase::kNoise, 0, synopsis.views_.size(), 1,
        [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            obs::TraceSpan view_span("publish/noise/view");
            AddLaplaceNoise(&synopsis.views_[i], /*sensitivity=*/w,
                            options.epsilon, &view_rngs[i]);
          }
        });
  }

  // Consistency + rounds of (non-negativity + Consistency). The
  // consistency schedule depends only on the view scopes, so it is planned
  // once and re-applied each round. Non-negativity is per view (no shared
  // state), so the views run across the pool; Consistency keeps its
  // sequential step barrier (each mutual-consistency step parallelizes
  // internally over the participating views).
  const auto nonneg_pass = [&] {
    obs::TraceSpan ripple_span("publish/ripple");
    parallel::ParallelFor(parallel::Phase::kRipple, 0,
                          synopsis.views_.size(), 1,
                          [&](size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) {
                              obs::TraceSpan view_span("publish/ripple/view");
                              ApplyNonNegativity(&synopsis.views_[i],
                                                 options.nonneg,
                                                 options.ripple);
                            }
                          });
  };
  const auto consistency_pass = [&](const ConsistencyPlan& plan) {
    obs::TraceSpan consistency_span("publish/consistency");
    plan.Apply(&synopsis.views_);
  };
  if (options.run_consistency) {
    std::vector<AttrSet> scopes;
    scopes.reserve(synopsis.views_.size());
    for (const MarginalTable& view : synopsis.views_) {
      scopes.push_back(view.attrs());
    }
    const ConsistencyPlan plan(scopes);
    consistency_pass(plan);
    if (options.nonneg != NonNegMethod::kNone) {
      for (int round = 0; round < options.nonneg_rounds; ++round) {
        nonneg_pass();
        consistency_pass(plan);
      }
    }
  } else if (options.nonneg != NonNegMethod::kNone) {
    nonneg_pass();
  }

  // The consistent total; averaging over views also covers the
  // no-consistency path.
  double total = 0.0;
  for (const MarginalTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / static_cast<double>(synopsis.views_.size());

  return synopsis;
}

PriViewSynopsis PriViewSynopsis::FromViews(int d,
                                           std::vector<MarginalTable> views,
                                           const PriViewOptions& options) {
  StatusOr<PriViewSynopsis> synopsis =
      TryFromViews(d, std::move(views), options);
  PRIVIEW_CHECK_OK(synopsis.status());
  return std::move(synopsis).value();
}

StatusOr<PriViewSynopsis> PriViewSynopsis::TryFromViews(
    int d, std::vector<MarginalTable> views, const PriViewOptions& options) {
  if (views.empty()) return Status::InvalidArgument("no views");
  if (d < 1 || d > 64) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(d));
  }
  PriViewSynopsis synopsis;
  synopsis.d_ = d;
  synopsis.options_ = options;
  for (const MarginalTable& view : views) {
    if (!view.attrs().IsSubsetOf(AttrSet::Full(d))) {
      return Status::InvalidArgument("view scope outside universe: " +
                                     view.attrs().ToString());
    }
  }
  synopsis.views_ = std::move(views);
  double total = 0.0;
  for (const MarginalTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / static_cast<double>(synopsis.views_.size());
  return synopsis;
}

MarginalTable PriViewSynopsis::Query(AttrSet target,
                                     ReconstructionMethod method) const {
  StatusOr<MarginalTable> answer = TryQuery(target, method);
  PRIVIEW_CHECK_OK(answer.status());
  return std::move(answer).value();
}

StatusOr<MarginalTable> PriViewSynopsis::TryQuery(
    AttrSet target, ReconstructionMethod method) const {
  if (!target.IsSubsetOf(AttrSet::Full(d_))) {
    return Status::InvalidArgument("query scope outside universe: " +
                                   target.ToString());
  }
  return ReconstructMarginal(views_, target, total_, method);
}

}  // namespace priview
