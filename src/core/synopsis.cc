#include "core/synopsis.h"

#include "common/check.h"
#include "core/consistency.h"
#include "dp/mechanisms.h"

namespace priview {

PriViewSynopsis PriViewSynopsis::Build(const Dataset& data,
                                       const std::vector<AttrSet>& views,
                                       const PriViewOptions& options,
                                       Rng* rng) {
  PRIVIEW_CHECK(!views.empty());
  PRIVIEW_CHECK(rng != nullptr);
  PRIVIEW_CHECK(options.epsilon > 0.0 || !options.add_noise);

  PriViewSynopsis synopsis;
  synopsis.d_ = data.d();
  synopsis.options_ = options;

  // Stage 1 (the only data access): noisy view marginals, Lap(w/epsilon).
  const double w = static_cast<double>(views.size());
  synopsis.views_.reserve(views.size());
  for (AttrSet view : views) {
    MarginalTable table = data.CountMarginal(view);
    if (options.add_noise) {
      AddLaplaceNoise(&table, /*sensitivity=*/w, options.epsilon, rng);
    }
    synopsis.views_.push_back(std::move(table));
  }

  // Stage 2: Consistency + rounds of (non-negativity + Consistency). The
  // consistency schedule depends only on the view scopes, so it is planned
  // once and re-applied each round.
  if (options.run_consistency) {
    const ConsistencyPlan plan(views);
    plan.Apply(&synopsis.views_);
    if (options.nonneg != NonNegMethod::kNone) {
      for (int round = 0; round < options.nonneg_rounds; ++round) {
        for (MarginalTable& view : synopsis.views_) {
          ApplyNonNegativity(&view, options.nonneg, options.ripple);
        }
        plan.Apply(&synopsis.views_);
      }
    }
  } else if (options.nonneg != NonNegMethod::kNone) {
    for (MarginalTable& view : synopsis.views_) {
      ApplyNonNegativity(&view, options.nonneg, options.ripple);
    }
  }

  // The consistent total; averaging over views also covers the
  // no-consistency path.
  double total = 0.0;
  for (const MarginalTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / static_cast<double>(synopsis.views_.size());

  return synopsis;
}

PriViewSynopsis PriViewSynopsis::FromViews(int d,
                                           std::vector<MarginalTable> views,
                                           const PriViewOptions& options) {
  PRIVIEW_CHECK(!views.empty());
  PRIVIEW_CHECK(d >= 1 && d <= 64);
  PriViewSynopsis synopsis;
  synopsis.d_ = d;
  synopsis.options_ = options;
  for (const MarginalTable& view : views) {
    PRIVIEW_CHECK(view.attrs().IsSubsetOf(AttrSet::Full(d)));
  }
  synopsis.views_ = std::move(views);
  double total = 0.0;
  for (const MarginalTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / static_cast<double>(synopsis.views_.size());
  return synopsis;
}

MarginalTable PriViewSynopsis::Query(AttrSet target,
                                     ReconstructionMethod method) const {
  PRIVIEW_CHECK(target.IsSubsetOf(AttrSet::Full(d_)));
  return ReconstructMarginal(views_, target, total_, method);
}

}  // namespace priview
