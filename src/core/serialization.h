// Synopsis serialization. The synopsis IS the published artifact — the
// data owner runs Build once and ships the file; analysts load it and
// query forever (differential privacy is preserved under post-processing,
// so the file can be distributed freely at the chosen epsilon).
//
// Format v2: a line-oriented text header (versioned, self-describing),
// then per view three lines — the attribute list, the 2^|V| cell values in
// full hex-float precision (round-trips exactly), and a `vsum` line with
// the FNV-1a-64 checksum of the two preceding lines — and finally a
// `filesum` line covering every byte above it. Per-view checksums localize
// corruption so a damaged file can still serve its surviving views;
// the whole-file checksum catches damage to the header and to the
// checksum lines themselves. v1 files (no checksums) still load through a
// legacy path that flags the missing integrity data in the LoadReport.
#ifndef PRIVIEW_CORE_SERIALIZATION_H_
#define PRIVIEW_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/synopsis.h"

namespace priview {

/// Read-side behaviour knobs.
struct ReadOptions {
  /// When true, a view that fails its checksum or does not parse is
  /// dropped (and recorded in the LoadReport) instead of failing the whole
  /// load; the synopsis then answers from the surviving constraint set.
  /// Header damage and an empty surviving view set still fail.
  bool recover = false;
};

/// What a load actually delivered — consult after recovery-mode loads (and
/// to detect checksum-free legacy files).
struct LoadReport {
  int format_version = 0;
  /// v1 file: loaded without integrity verification.
  bool legacy_format = false;
  int views_declared = 0;
  int views_loaded = 0;
  bool file_checksum_ok = true;
  /// One human-readable entry per dropped view (recovery mode only).
  std::vector<std::string> dropped;
  std::vector<std::string> warnings;

  /// True when every declared view loaded and all checksums verified.
  bool fully_intact() const {
    return !legacy_format && file_checksum_ok && dropped.empty() &&
           warnings.empty() && views_loaded == views_declared;
  }
  std::string ToString() const;
};

/// Writes the synopsis to a stream / file (format v2, with checksums).
Status WriteSynopsis(const PriViewSynopsis& synopsis, std::ostream* out);
Status SaveSynopsis(const PriViewSynopsis& synopsis, const std::string& path);

/// Reads a synopsis back. Validates the header, dimension bounds, view
/// sizes, cell counts and (v2) checksums; rejects malformed input with a
/// descriptive Status rather than crashing. Checksum failures surface as
/// StatusCode::kDataLoss unless `options.recover` is set, in which case
/// damaged views are dropped and reported via `report` (pass nullptr if
/// the report is not wanted).
StatusOr<PriViewSynopsis> ReadSynopsis(std::istream* in,
                                       const ReadOptions& options = {},
                                       LoadReport* report = nullptr);
StatusOr<PriViewSynopsis> LoadSynopsis(const std::string& path,
                                       const ReadOptions& options = {},
                                       LoadReport* report = nullptr);

}  // namespace priview

#endif  // PRIVIEW_CORE_SERIALIZATION_H_
