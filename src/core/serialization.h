// Synopsis serialization. The synopsis IS the published artifact — the
// data owner runs Build once and ships the file; analysts load it and
// query forever (differential privacy is preserved under post-processing,
// so the file can be distributed freely at the chosen epsilon).
//
// Format: a line-oriented text header (versioned, self-describing) followed
// by one line per view: the attribute list and the 2^|V| cell values in
// full hex-float precision (round-trips exactly).
#ifndef PRIVIEW_CORE_SERIALIZATION_H_
#define PRIVIEW_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/synopsis.h"

namespace priview {

/// Writes the synopsis to a stream / file.
Status WriteSynopsis(const PriViewSynopsis& synopsis, std::ostream* out);
Status SaveSynopsis(const PriViewSynopsis& synopsis, const std::string& path);

/// Reads a synopsis back. Validates the header, dimension bounds, view
/// sizes and cell counts; rejects malformed input with a descriptive
/// Status rather than crashing.
StatusOr<PriViewSynopsis> ReadSynopsis(std::istream* in);
StatusOr<PriViewSynopsis> LoadSynopsis(const std::string& path);

}  // namespace priview

#endif  // PRIVIEW_CORE_SERIALIZATION_H_
