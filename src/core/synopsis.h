// PriViewSynopsis — the library's main entry point.
//
//   Rng rng(seed);
//   ViewSelection sel = SelectViews(data.d(), n_estimate, epsilon, &rng);
//   PriViewSynopsis synopsis =
//       PriViewSynopsis::Build(data, sel.design.blocks, {.epsilon = 1.0}, &rng);
//   MarginalTable answer = synopsis.Query(AttrSet::FromIndices({3, 7, 19, 30}));
//
// Build touches the dataset exactly once (noisy view materialization); all
// post-processing and every subsequent query work purely on the synopsis,
// so the overall mechanism is ε-differentially private by post-processing.
#ifndef PRIVIEW_CORE_SYNOPSIS_H_
#define PRIVIEW_CORE_SYNOPSIS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/nonneg.h"
#include "core/reconstruct.h"
#include "table/attr_set.h"
#include "table/dataset.h"
#include "table/marginal_table.h"

namespace priview {

/// Knobs for synopsis construction. Defaults are the paper's final
/// configuration: Laplace noise, Consistency + Ripple + Consistency.
struct PriViewOptions {
  double epsilon = 1.0;
  /// Non-negativity correction applied between consistency passes.
  NonNegMethod nonneg = NonNegMethod::kRipple;
  RippleOptions ripple;
  /// Number of (non-negativity + consistency) rounds after the initial
  /// consistency pass; the paper's Ripple_1 is 1, Ripple_3 is 3.
  int nonneg_rounds = 1;
  /// Skip the consistency machinery entirely (used by ablations and the
  /// plain-LP reconstruction comparison).
  bool run_consistency = true;
  /// Materialize exact views without noise — the C*/CME* reference curves.
  /// Not differentially private; for evaluation only.
  bool add_noise = true;
};

/// The differentially private synopsis: the post-processed view marginals.
class PriViewSynopsis {
 public:
  /// Builds the synopsis over the given views (typically covering-design
  /// blocks). Each view marginal gets Lap(w/epsilon) noise — releasing all
  /// w views has L1 sensitivity w since a record hits one cell per view.
  static PriViewSynopsis Build(const Dataset& data,
                               const std::vector<AttrSet>& views,
                               const PriViewOptions& options, Rng* rng);

  /// Status-returning Build for callers passing unvalidated input (the
  /// pipeline, CLIs): returns InvalidArgument instead of aborting.
  static StatusOr<PriViewSynopsis> TryBuild(const Dataset& data,
                                            const std::vector<AttrSet>& views,
                                            const PriViewOptions& options,
                                            Rng* rng);

  /// Builds from exact view counts the caller already materialized (the
  /// streaming publisher's delta-maintained running counts). Runs exactly
  /// the noise + consistency stages TryBuild would run after its own
  /// CountMarginals pass, so for identical counts and an identically
  /// seeded rng the result is bit-identical to TryBuild on the underlying
  /// records. `exact_counts` must be one marginal per view with scopes
  /// inside the d-attribute universe.
  static StatusOr<PriViewSynopsis> TryBuildFromCounts(
      int d, std::vector<MarginalTable> exact_counts,
      const PriViewOptions& options, Rng* rng);

  /// Reassembles a synopsis from already-released view tables (e.g. loaded
  /// from disk, see core/serialization.h). No privacy budget is spent —
  /// the tables are taken as-is; `options` records their provenance.
  static PriViewSynopsis FromViews(int d, std::vector<MarginalTable> views,
                                   const PriViewOptions& options);

  /// Status-returning FromViews for data deserialized from untrusted
  /// files; validates d and the view scopes instead of CHECK-aborting.
  static StatusOr<PriViewSynopsis> TryFromViews(
      int d, std::vector<MarginalTable> views, const PriViewOptions& options);

  /// Reconstructs the marginal over `target` from the synopsis.
  MarginalTable Query(AttrSet target,
                      ReconstructionMethod method =
                          ReconstructionMethod::kMaxEntropy) const;

  /// Query for unvalidated targets: InvalidArgument if `target` is not a
  /// subset of the synopsis' attribute universe.
  StatusOr<MarginalTable> TryQuery(AttrSet target,
                                   ReconstructionMethod method =
                                       ReconstructionMethod::kMaxEntropy) const;

  const std::vector<MarginalTable>& views() const { return views_; }
  /// Common total count of the consistent views (the noisy N).
  double total() const { return total_; }
  int d() const { return d_; }
  const PriViewOptions& options() const { return options_; }

 private:
  PriViewSynopsis() = default;

  /// Shared back half of TryBuild / TryBuildFromCounts: noise, consistency
  /// rounds and the consistent total over already-materialized counts.
  /// TryBuild's overlapped count+noise task graph already applied the
  /// per-view noise when `noise_done` is true; the noise draws and view
  /// order are identical either way, so both entries stay bit-identical.
  static PriViewSynopsis FinishFromCounts(int d,
                                          std::vector<MarginalTable> counts,
                                          const PriViewOptions& options,
                                          Rng* rng, bool noise_done = false);

  int d_ = 0;
  double total_ = 0.0;
  PriViewOptions options_;
  std::vector<MarginalTable> views_;
};

}  // namespace priview

#endif  // PRIVIEW_CORE_SYNOPSIS_H_
