// Non-negativity correction of noisy marginals (paper §4.4, evaluated in
// Fig. 4). Four variants:
//   kNone   — leave negative cells alone
//   kSimple — clamp negatives to zero (introduces positive bias)
//   kGlobal — clamp, then subtract uniformly from positive cells so the
//             total count is unchanged
//   kRipple — the paper's contribution: a cell below -theta is zeroed and
//             its deficit spread equally over its ell Hamming-1 neighbors,
//             iterated to fixpoint; preserves the total exactly and avoids
//             the systematic bias of clamping
#ifndef PRIVIEW_CORE_NONNEG_H_
#define PRIVIEW_CORE_NONNEG_H_

#include "table/marginal_table.h"

namespace priview {

enum class NonNegMethod { kNone, kSimple, kGlobal, kRipple };

/// Human-readable method name (for bench output).
const char* NonNegMethodName(NonNegMethod method);

struct RippleOptions {
  /// Cells below -theta are corrected. The paper uses a small theta rather
  /// than exactly 0 so the iteration settles quickly.
  double theta = 1.0;
  /// Safety cap; the worklist empirically terminates in a handful of
  /// passes, but noise is adversarially unbounded in principle.
  int max_steps_per_cell = 1000;
};

/// Applies the Ripple correction in place. Returns the number of cell
/// corrections performed. Total count is preserved exactly.
int RippleNonNegativity(MarginalTable* table, const RippleOptions& options = {});

/// Applies the chosen method in place.
void ApplyNonNegativity(MarginalTable* table, NonNegMethod method,
                        const RippleOptions& ripple_options = {});

}  // namespace priview

#endif  // PRIVIEW_CORE_NONNEG_H_
