#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "dp/mechanisms.h"
#include "obs/tracer.h"

namespace priview {

StatusOr<PipelineResult> BuildPriViewPipeline(const Dataset& data,
                                              const PipelineOptions& options,
                                              Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options.total_epsilon <= 0.0) {
    return Status::InvalidArgument("total_epsilon must be positive");
  }
  if (options.count_epsilon <= 0.0 ||
      options.count_epsilon >= options.total_epsilon) {
    return Status::InvalidArgument(
        "count_epsilon must be in (0, total_epsilon)");
  }
  if (data.d() < 2) {
    return Status::FailedPrecondition("need at least 2 attributes");
  }

  BudgetAccountant budget(options.total_epsilon);

  // Step 1: noisy N (counting records has sensitivity 1 under the paper's
  // add-one-tuple neighbor relation).
  if (PRIVIEW_FAILPOINT("pipeline/budget-exhausted")) {
    return Status::ResourceExhausted("injected: pipeline/budget-exhausted");
  }
  Status spend = budget.Spend(options.count_epsilon);
  if (!spend.ok()) return spend;
  const double raw_noisy_n =
      NoisyCount(static_cast<double>(data.size()),
                 /*sensitivity=*/1.0, options.count_epsilon, rng);
  // A degenerate sample (NaN from a faulty noise source) must not poison
  // view selection; N=1 is the harmless "rough estimate" floor.
  const double noisy_n =
      std::isfinite(raw_noisy_n) ? std::max(1.0, raw_noisy_n) : 1.0;

  // Step 2: view selection from (d, noisy N, remaining epsilon).
  const double views_epsilon = budget.remaining();
  ViewSelection selection = [&] {
    obs::TraceSpan select_span("pipeline/select-views");
    return SelectViews(data.d(), noisy_n, views_epsilon, rng,
                       options.selection);
  }();

  // Step 3: the synopsis, spending everything that is left.
  spend = budget.Spend(views_epsilon);
  if (!spend.ok()) return spend;
  PriViewOptions synopsis_options = options.synopsis;
  synopsis_options.epsilon = views_epsilon;
  StatusOr<PriViewSynopsis> synopsis = PriViewSynopsis::TryBuild(
      data, selection.design.blocks, synopsis_options, rng);
  if (!synopsis.ok()) return synopsis.status();

  PipelineResult result{std::move(synopsis).value(), std::move(selection),
                        noisy_n, options.count_epsilon, views_epsilon};
  return result;
}

}  // namespace priview
