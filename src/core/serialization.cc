#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/failpoint.h"

namespace priview {
namespace {

constexpr char kMagic[] = "priview-synopsis";
constexpr int kVersion = 2;

// FNV-1a 64-bit. For a same-length single-byte substitution the digest
// always changes (XOR-then-multiply by an odd prime is injective per
// byte), which is exactly the guarantee the 1-byte-corruption fuzzer
// asserts.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(const std::string& bytes, uint64_t h) {
  for (unsigned char c : bytes) {
    h ^= static_cast<uint64_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string ChecksumHex(uint64_t h) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, h);
  return std::string(buffer);
}

// Strict parse of the writer's lowercase 16-digit hex — an uppercased
// digit is corruption, not an alternate spelling.
bool ParseChecksumHex(const std::string& hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

// One serialized view: the "view ..." header line and the cells line.
struct ViewLines {
  std::string header;
  std::string cells;
  uint64_t Checksum() const {
    return Fnv1a(cells + "\n", Fnv1a(header + "\n", kFnvOffset));
  }
};

ViewLines RenderView(const MarginalTable& view) {
  ViewLines lines;
  std::ostringstream header;
  header << "view";
  for (int a : view.attrs().ToIndices()) header << ' ' << a;
  lines.header = header.str();
  std::ostringstream cells;
  char buffer[32];
  bool first = true;
  for (double cell : view.cells()) {
    // Hex floats round-trip exactly.
    std::snprintf(buffer, sizeof(buffer), "%a", cell);
    cells << (first ? "" : " ") << buffer;
    first = false;
  }
  lines.cells = cells.str();
  return lines;
}

/// Parses one view from its two lines. Returns the table or a Status
/// explaining the defect; `d` bounds the attribute indices.
StatusOr<MarginalTable> ParseView(const std::string& header_line,
                                  const std::string& cells_line, int d) {
  std::istringstream header(header_line);
  std::string tag;
  header >> tag;
  if (tag != "view") {
    return Status::InvalidArgument("expected 'view' line, got: " +
                                   header_line);
  }
  std::vector<int> attrs;
  int a;
  while (header >> a) {
    if (a < 0 || a >= d) {
      return Status::OutOfRange("view attribute out of range: " +
                                std::to_string(a));
    }
    attrs.push_back(a);
  }
  if (!header.eof()) {
    return Status::InvalidArgument("garbage in view header: " + header_line);
  }
  if (attrs.empty() || attrs.size() > 26) {
    return Status::InvalidArgument("view arity out of range");
  }
  const AttrSet scope = AttrSet::FromIndices(attrs);
  if (scope.size() != static_cast<int>(attrs.size())) {
    return Status::InvalidArgument("duplicate attribute in view");
  }

  // istream double extraction does not accept hex floats; strtod does.
  std::istringstream cells_in(cells_line);
  std::vector<double> cells;
  cells.reserve(size_t{1} << scope.size());
  std::string token;
  while (cells_in >> token) {
    char* end = nullptr;
    const double cell = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad cell value: " + token);
    }
    cells.push_back(cell);
  }
  if (cells.size() != (size_t{1} << scope.size())) {
    return Status::InvalidArgument(
        "cell count mismatch for view " + scope.ToString() + ": got " +
        std::to_string(cells.size()));
  }
  return MarginalTable(scope, std::move(cells));
}

struct Header {
  int version = 0;
  int d = 0;
  double epsilon = 0.0;
  size_t num_views = 0;
};

// Parses the four header lines; fills `file_hash` with the hash of their
// bytes so the caller can continue the whole-file checksum.
StatusOr<Header> ParseHeader(const std::vector<std::string>& lines,
                             uint64_t* file_hash) {
  Header h;
  {
    std::istringstream first(lines.empty() ? std::string() : lines[0]);
    std::string magic, version;
    if (!(first >> magic >> version) || magic != kMagic) {
      return Status::InvalidArgument("not a priview synopsis file");
    }
    if (version == "v1") {
      h.version = 1;
    } else if (version == "v2") {
      h.version = 2;
    } else {
      return Status::InvalidArgument("unsupported synopsis version: " +
                                     version);
    }
  }
  if (lines.size() < 4) {
    return Status::InvalidArgument("truncated file: missing header");
  }
  std::string key;
  {
    std::istringstream line(lines[1]);
    if (!(line >> key >> h.d) || key != "d" || h.d < 1 || h.d > 64) {
      return Status::InvalidArgument("bad dimension header");
    }
  }
  {
    std::istringstream line(lines[2]);
    if (!(line >> key >> h.epsilon) || key != "epsilon") {
      return Status::InvalidArgument("bad epsilon header");
    }
  }
  {
    std::istringstream line(lines[3]);
    if (!(line >> key >> h.num_views) || key != "views" || h.num_views == 0 ||
        h.num_views > 1000000) {
      return Status::InvalidArgument("bad view-count header");
    }
  }
  for (int i = 0; i < 4; ++i) *file_hash = Fnv1a(lines[i] + "\n", *file_hash);
  return h;
}

// Legacy v1 body: alternating view/cells lines, no checksums. Strict — a
// v1 file carries no integrity data to recover with.
StatusOr<PriViewSynopsis> ReadBodyV1(const std::vector<std::string>& lines,
                                     const Header& header,
                                     LoadReport* report) {
  std::vector<MarginalTable> views;
  views.reserve(header.num_views);
  size_t next = 4;
  for (size_t v = 0; v < header.num_views; ++v) {
    if (next >= lines.size()) {
      return Status::InvalidArgument("truncated file: missing view header");
    }
    if (next + 1 >= lines.size()) {
      return Status::InvalidArgument("truncated file: missing cells");
    }
    StatusOr<MarginalTable> view =
        ParseView(lines[next], lines[next + 1], header.d);
    if (!view.ok()) return view.status();
    views.push_back(std::move(view).value());
    next += 2;
  }
  report->views_loaded = static_cast<int>(views.size());
  PriViewOptions options;
  options.epsilon = header.epsilon;
  return PriViewSynopsis::TryFromViews(header.d, std::move(views), options);
}

// v2 body: (view, cells, vsum) triples then a filesum line. In recovery
// mode a triple that fails parse or checksum is dropped and the scan
// resyncs at the next "view" line; otherwise the first defect fails the
// load.
StatusOr<PriViewSynopsis> ReadBodyV2(const std::vector<std::string>& lines,
                                     const Header& header, uint64_t file_hash,
                                     const ReadOptions& options,
                                     LoadReport* report) {
  std::vector<MarginalTable> views;
  views.reserve(header.num_views);
  bool saw_filesum = false;
  size_t i = 4;
  while (i < lines.size()) {
    const std::string& line = lines[i];
    if (line.rfind("filesum ", 0) == 0) {
      uint64_t expected = 0;
      bool ok = ParseChecksumHex(line.substr(8), &expected) &&
                expected == file_hash;
      if (PRIVIEW_FAILPOINT("serialize/file-checksum")) ok = false;
      if (!ok) {
        if (!options.recover) {
          return Status::DataLoss("file checksum mismatch");
        }
        report->file_checksum_ok = false;
        report->warnings.push_back("file checksum mismatch");
      }
      saw_filesum = true;
      if (i + 1 < lines.size()) {
        if (!options.recover) {
          return Status::InvalidArgument("trailing data after filesum");
        }
        report->warnings.push_back("trailing data after filesum");
      }
      break;
    }
    file_hash = Fnv1a(line + "\n", file_hash);

    // Expect a (view, cells, vsum) triple starting here. Integrity first:
    // the checksum is verified before the payload is parsed, so corrupted
    // view bytes always surface as kDataLoss rather than a parse error.
    Status defect = Status::OK();
    MarginalTable parsed;
    if (line.rfind("view", 0) != 0) {
      defect = Status::InvalidArgument("expected 'view' line, got: " + line);
    } else if (i + 2 >= lines.size()) {
      defect = Status::InvalidArgument("truncated view record");
    } else {
      const std::string& cells_line = lines[i + 1];
      const std::string& vsum_line = lines[i + 2];
      uint64_t expected = 0;
      bool sum_ok = vsum_line.rfind("vsum ", 0) == 0 &&
                    ParseChecksumHex(vsum_line.substr(5), &expected) &&
                    expected == ViewLines{line, cells_line}.Checksum();
      if (PRIVIEW_FAILPOINT("serialize/view-checksum")) sum_ok = false;
      if (!sum_ok) {
        defect = Status::DataLoss("view checksum mismatch: " + line);
      } else {
        StatusOr<MarginalTable> view = ParseView(line, cells_line, header.d);
        if (!view.ok()) {
          defect = view.status();
        } else {
          parsed = std::move(view).value();
          file_hash = Fnv1a(cells_line + "\n", file_hash);
          file_hash = Fnv1a(vsum_line + "\n", file_hash);
        }
      }
    }

    if (defect.ok()) {
      views.push_back(std::move(parsed));
      i += 3;
      continue;
    }
    if (!options.recover) return defect;
    report->dropped.push_back(defect.ToString());
    // Resync: skip lines until the next "view" record or the filesum.
    ++i;
    while (i < lines.size() && lines[i].rfind("view", 0) != 0 &&
           lines[i].rfind("filesum ", 0) != 0) {
      file_hash = Fnv1a(lines[i] + "\n", file_hash);
      ++i;
    }
  }

  if (!saw_filesum) {
    if (!options.recover) {
      return Status::DataLoss("truncated file: missing filesum");
    }
    report->file_checksum_ok = false;
    report->warnings.push_back("missing filesum line");
  }
  if (views.size() != header.num_views) {
    if (!options.recover && views.size() > header.num_views) {
      return Status::InvalidArgument("more views than declared");
    }
    if (!options.recover) {
      return Status::DataLoss("view count mismatch: declared " +
                              std::to_string(header.num_views) + ", found " +
                              std::to_string(views.size()));
    }
    if (report->dropped.empty()) {
      report->warnings.push_back("view count differs from header");
    }
  }
  if (views.empty()) {
    return Status::DataLoss("no intact views survived the load");
  }
  report->views_loaded = static_cast<int>(views.size());
  PriViewOptions view_options;
  view_options.epsilon = header.epsilon;
  return PriViewSynopsis::TryFromViews(header.d, std::move(views),
                                       view_options);
}

}  // namespace

std::string LoadReport::ToString() const {
  std::ostringstream out;
  out << "LoadReport{v" << format_version << ", views " << views_loaded << "/"
      << views_declared;
  if (legacy_format) out << ", legacy (no checksums)";
  if (!file_checksum_ok) out << ", FILE CHECKSUM FAILED";
  for (const std::string& d : dropped) out << ", dropped[" << d << "]";
  for (const std::string& w : warnings) out << ", warning[" << w << "]";
  out << "}";
  return out.str();
}

Status WriteSynopsis(const PriViewSynopsis& synopsis, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  if (PRIVIEW_FAILPOINT("serialize/write-io")) {
    return Status::IOError("injected: serialize/write-io");
  }
  std::ostream& os = *out;
  uint64_t file_hash = kFnvOffset;
  auto emit = [&](const std::string& line) {
    file_hash = Fnv1a(line + "\n", file_hash);
    os << line << "\n";
  };

  {
    std::ostringstream line;
    line << kMagic << " v" << kVersion;
    emit(line.str());
  }
  emit("d " + std::to_string(synopsis.d()));
  {
    std::ostringstream line;
    line << "epsilon " << synopsis.options().epsilon;
    emit(line.str());
  }
  emit("views " + std::to_string(synopsis.views().size()));
  for (const MarginalTable& view : synopsis.views()) {
    const ViewLines lines = RenderView(view);
    emit(lines.header);
    emit(lines.cells);
    emit("vsum " + ChecksumHex(lines.Checksum()));
  }
  os << "filesum " << ChecksumHex(file_hash) << "\n";
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveSynopsis(const PriViewSynopsis& synopsis,
                    const std::string& path) {
  if (PRIVIEW_FAILPOINT("serialize/open-write")) {
    return Status::IOError("injected: serialize/open-write");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  return WriteSynopsis(synopsis, &out);
}

StatusOr<PriViewSynopsis> ReadSynopsis(std::istream* in,
                                       const ReadOptions& options,
                                       LoadReport* report) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport();

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(*in, line)) lines.push_back(std::move(line));

  uint64_t file_hash = kFnvOffset;
  StatusOr<Header> header = ParseHeader(lines, &file_hash);
  if (!header.ok()) return header.status();
  report->format_version = header.value().version;
  report->views_declared = static_cast<int>(header.value().num_views);

  if (header.value().version == 1) {
    report->legacy_format = true;
    report->warnings.push_back(
        "legacy v1 file: no checksums, integrity not verifiable");
    return ReadBodyV1(lines, header.value(), report);
  }
  return ReadBodyV2(lines, header.value(), file_hash, options, report);
}

StatusOr<PriViewSynopsis> LoadSynopsis(const std::string& path,
                                       const ReadOptions& options,
                                       LoadReport* report) {
  if (PRIVIEW_FAILPOINT("serialize/open-read")) {
    return Status::IOError("injected: serialize/open-read");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  return ReadSynopsis(&in, options, report);
}

}  // namespace priview
