#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace priview {
namespace {

constexpr char kMagic[] = "priview-synopsis";
constexpr int kVersion = 1;

}  // namespace

Status WriteSynopsis(const PriViewSynopsis& synopsis, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  std::ostream& os = *out;
  os << kMagic << " v" << kVersion << "\n";
  os << "d " << synopsis.d() << "\n";
  os << "epsilon " << synopsis.options().epsilon << "\n";
  os << "views " << synopsis.views().size() << "\n";
  char buffer[32];
  for (const MarginalTable& view : synopsis.views()) {
    os << "view";
    for (int a : view.attrs().ToIndices()) os << ' ' << a;
    os << "\n";
    bool first = true;
    for (double cell : view.cells()) {
      // Hex floats round-trip exactly.
      std::snprintf(buffer, sizeof(buffer), "%a", cell);
      os << (first ? "" : " ") << buffer;
      first = false;
    }
    os << "\n";
  }
  if (!os) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveSynopsis(const PriViewSynopsis& synopsis,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  return WriteSynopsis(synopsis, &out);
}

StatusOr<PriViewSynopsis> ReadSynopsis(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::istream& is = *in;

  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument("not a priview synopsis file");
  }
  if (version != "v1") {
    return Status::InvalidArgument("unsupported synopsis version: " +
                                   version);
  }

  std::string key;
  int d = 0;
  double epsilon = 0.0;
  size_t num_views = 0;
  if (!(is >> key >> d) || key != "d" || d < 1 || d > 64) {
    return Status::InvalidArgument("bad dimension header");
  }
  if (!(is >> key >> epsilon) || key != "epsilon") {
    return Status::InvalidArgument("bad epsilon header");
  }
  if (!(is >> key >> num_views) || key != "views" || num_views == 0 ||
      num_views > 1000000) {
    return Status::InvalidArgument("bad view-count header");
  }
  is.ignore();  // trailing newline

  std::vector<MarginalTable> views;
  views.reserve(num_views);
  std::string line;
  for (size_t v = 0; v < num_views; ++v) {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated file: missing view header");
    }
    std::istringstream header(line);
    std::string tag;
    header >> tag;
    if (tag != "view") {
      return Status::InvalidArgument("expected 'view' line, got: " + line);
    }
    std::vector<int> attrs;
    int a;
    while (header >> a) {
      if (a < 0 || a >= d) {
        return Status::OutOfRange("view attribute out of range: " +
                                  std::to_string(a));
      }
      attrs.push_back(a);
    }
    if (attrs.empty() || attrs.size() > 26) {
      return Status::InvalidArgument("view arity out of range");
    }
    const AttrSet scope = AttrSet::FromIndices(attrs);
    if (scope.size() != static_cast<int>(attrs.size())) {
      return Status::InvalidArgument("duplicate attribute in view");
    }

    if (!std::getline(is, line)) {
      return Status::InvalidArgument("truncated file: missing cells");
    }
    // istream double extraction does not accept hex floats; strtod does.
    std::istringstream cells_in(line);
    std::vector<double> cells;
    cells.reserve(size_t{1} << scope.size());
    std::string token;
    while (cells_in >> token) {
      char* end = nullptr;
      const double cell = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad cell value: " + token);
      }
      cells.push_back(cell);
    }
    if (cells.size() != (size_t{1} << scope.size())) {
      return Status::InvalidArgument(
          "cell count mismatch for view " + scope.ToString() + ": got " +
          std::to_string(cells.size()));
    }
    views.emplace_back(scope, std::move(cells));
  }

  PriViewOptions options;
  options.epsilon = epsilon;
  return PriViewSynopsis::FromViews(d, std::move(views), options);
}

StatusOr<PriViewSynopsis> LoadSynopsis(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  return ReadSynopsis(&in);
}

}  // namespace priview
