#include "store/synopsis_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "obs/metrics_registry.h"

namespace priview::store {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kQuarantineDir[] = "quarantine";
constexpr char kManifestHeader[] = "priview-manifest v1";

uint64_t Fnv1a64(const std::string& data) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ValidName(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// fsync with the "store/fsync-fail" failpoint in front: an armed point
/// simulates the kernel refusing to make the bytes durable.
Status SyncFd(int fd, const std::string& what) {
  if (PRIVIEW_FAILPOINT("store/fsync-fail")) {
    return Status::IOError("injected: store/fsync-fail (" + what + ")");
  }
  if (::fsync(fd) != 0) {
    return Status::IOError(ErrnoMessage("fsync " + what));
  }
  return Status::OK();
}

Status WriteAllFd(int fd, const char* data, size_t len,
                  const std::string& what) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write " + what));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Durability of a rename is the durability of the directory entry: fsync
/// the directory itself after creating/renaming files in it.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open dir " + dir));
  const Status st = SyncFd(fd, "dir " + dir);
  ::close(fd);
  return st;
}

const char* KindName(ManifestRecord::Kind kind) {
  switch (kind) {
    case ManifestRecord::Kind::kInstall:
      return "install";
    case ManifestRecord::Kind::kRetire:
      return "retire";
    case ManifestRecord::Kind::kGc:
      return "gc";
  }
  return "unknown";
}

/// The checksummed payload of a record line (everything before " sum=").
std::string RecordBody(const ManifestRecord& r) {
  std::ostringstream ss;
  ss << r.seq << ' ' << KindName(r.kind) << ' ' << r.name << ' ' << r.file;
  return ss.str();
}

std::string RecordLine(const ManifestRecord& r) {
  const std::string body = RecordBody(r);
  return body + " sum=" + HexU64(Fnv1a64(body)) + "\n";
}

/// Parses one complete manifest line back into a record, verifying its
/// checksum. Returns false on any damage (the caller truncates from here).
bool ParseRecordLine(const std::string& line, ManifestRecord* out) {
  const size_t sum_pos = line.rfind(" sum=");
  if (sum_pos == std::string::npos) return false;
  const std::string body = line.substr(0, sum_pos);
  const std::string sum_hex = line.substr(sum_pos + 5);
  if (sum_hex.size() != 16) return false;
  if (HexU64(Fnv1a64(body)) != sum_hex) return false;
  std::istringstream ss(body);
  std::string kind;
  if (!(ss >> out->seq >> kind >> out->name >> out->file)) return false;
  std::string extra;
  if (ss >> extra) return false;
  if (kind == "install") {
    out->kind = ManifestRecord::Kind::kInstall;
  } else if (kind == "retire") {
    out->kind = ManifestRecord::Kind::kRetire;
  } else if (kind == "gc") {
    out->kind = ManifestRecord::Kind::kGc;
  } else {
    return false;
  }
  return ValidName(out->name) && ValidName(out->file);
}

obs::Counter* InstallsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_store_installs_total", {},
      "Durable synopsis installs journaled by the store");
  return c;
}

obs::Counter* RetiresCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_store_retires_total", {},
      "Synopsis retirements journaled by the store");
  return c;
}

obs::Counter* RecoveriesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_store_recoveries_total", {},
      "Completed startup recovery scans");
  return c;
}

obs::Counter* GcCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_store_gc_total", {},
      "Superseded epoch files garbage-collected beyond the retention depth");
  return c;
}

obs::Counter* QuarantinedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "priview_store_quarantined_total", {},
      "Files moved into quarantine/ by recovery scans");
  return c;
}

obs::Histogram* InstallLatency() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "priview_store_install_us", {},
      "Durable install latency (serialize + fsync + rename + journal), us");
  return h;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream ss;
  ss << "recovery: replayed=" << records_replayed
     << " installed=" << loads.size() << " quarantined=" << quarantined.size()
     << " superseded_removed=" << superseded_removed.size()
     << " last_durable_seq=" << last_durable_seq
     << (manifest_truncated ? " manifest_truncated" : "");
  for (const auto& q : quarantined) ss << "\n  quarantine: " << q;
  for (const auto& w : warnings) ss << "\n  warning: " << w;
  return ss.str();
}

SynopsisStore::SynopsisStore(const StoreOptions& options) : options_(options) {}

std::string SynopsisStore::PathOf(const std::string& file) const {
  return options_.dir + "/" + file;
}

Status SynopsisStore::Open() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("SynopsisStore: empty store dir");
  }
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir " + options_.dir));
  }
  const std::string qdir = options_.dir + "/" + kQuarantineDir;
  if (::mkdir(qdir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir " + qdir));
  }

  current_.clear();
  history_.clear();
  journaled_files_.clear();
  next_seq_ = 1;
  last_durable_seq_ = 0;
  records_replayed_ = 0;
  manifest_was_truncated_ = false;
  pending_warnings_.clear();

  const std::string manifest_path = PathOf(kManifestName);
  std::string contents;
  {
    std::ifstream in(manifest_path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      contents = ss.str();
    }
  }

  bool need_fresh_manifest = contents.empty();
  if (!contents.empty()) {
    // Header must be exactly the expected line; anything else means the
    // journal head itself is damaged. Preserve the evidence in quarantine
    // and start a fresh journal — recovery will then quarantine every
    // file as unjournaled rather than trusting a corrupt history.
    const size_t nl = contents.find('\n');
    if (nl == std::string::npos || contents.substr(0, nl) != kManifestHeader) {
      const std::string dst = qdir + "/MANIFEST.corrupt";
      ::unlink(dst.c_str());
      if (::rename(manifest_path.c_str(), dst.c_str()) != 0) {
        return Status::IOError(
            ErrnoMessage("quarantine corrupt manifest " + manifest_path));
      }
      pending_warnings_.push_back(
          "manifest header damaged; journal moved to quarantine/ and reset");
      need_fresh_manifest = true;
    } else {
      // Replay: trust records only up to the first torn or corrupt line.
      size_t good_len = nl + 1;
      size_t pos = nl + 1;
      bool torn = false;
      while (pos < contents.size()) {
        const size_t line_end = contents.find('\n', pos);
        if (line_end == std::string::npos) {
          torn = true;  // no trailing newline: the append was torn
          break;
        }
        ManifestRecord record;
        if (!ParseRecordLine(contents.substr(pos, line_end - pos), &record)) {
          torn = true;
          break;
        }
        ++records_replayed_;
        if (record.seq > last_durable_seq_) last_durable_seq_ = record.seq;
        journaled_files_[record.file] = true;
        switch (record.kind) {
          case ManifestRecord::Kind::kInstall:
            current_[record.name] = record.file;
            history_[record.name].emplace_back(record.seq, record.file);
            break;
          case ManifestRecord::Kind::kRetire:
            current_.erase(record.name);
            history_.erase(record.name);
            break;
          case ManifestRecord::Kind::kGc: {
            auto hist = history_.find(record.name);
            if (hist != history_.end()) {
              std::erase_if(hist->second, [&](const auto& entry) {
                return entry.second == record.file;
              });
            }
            break;
          }
        }
        pos = line_end + 1;
        good_len = pos;
      }
      if (torn) {
        manifest_was_truncated_ = true;
        const int fd = ::open(manifest_path.c_str(), O_WRONLY);
        if (fd < 0 || ::ftruncate(fd, static_cast<off_t>(good_len)) != 0) {
          if (fd >= 0) ::close(fd);
          return Status::IOError(
              ErrnoMessage("truncate torn manifest tail " + manifest_path));
        }
        const Status st = SyncFd(fd, "manifest " + manifest_path);
        ::close(fd);
        if (!st.ok()) return st;
      }
    }
  }

  if (need_fresh_manifest) {
    const int fd = ::open(manifest_path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("create manifest " + manifest_path));
    }
    const std::string header = std::string(kManifestHeader) + "\n";
    Status st = WriteAllFd(fd, header.data(), header.size(), "manifest");
    if (st.ok()) st = SyncFd(fd, "manifest " + manifest_path);
    ::close(fd);
    if (!st.ok()) return st;
    st = SyncDir(options_.dir);
    if (!st.ok()) return st;
  }

  next_seq_ = last_durable_seq_ + 1;
  open_ = true;
  return Status::OK();
}

Status SynopsisStore::AppendRecord(const ManifestRecord& record) {
  const std::string manifest_path = PathOf(kManifestName);
  const int fd = ::open(manifest_path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open manifest " + manifest_path));
  }
  const std::string line = RecordLine(record);
  if (PRIVIEW_FAILPOINT("store/manifest-torn-tail")) {
    // Simulate a crash mid-append: only a prefix of the record reaches the
    // journal. Replay must truncate it, not trust it.
    (void)WriteAllFd(fd, line.data(), line.size() / 2, "manifest");
    ::close(fd);
    return Status::IOError("injected: store/manifest-torn-tail");
  }
  Status st = WriteAllFd(fd, line.data(), line.size(), "manifest");
  if (st.ok()) st = SyncFd(fd, "manifest " + manifest_path);
  ::close(fd);
  return st;
}

Status SynopsisStore::Install(const std::string& name,
                              const PriViewSynopsis& synopsis) {
  if (!open_) return Status::FailedPrecondition("store not open");
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad synopsis name: '" + name +
                                   "' (want [A-Za-z0-9_.-]+)");
  }
  const auto t0 = std::chrono::steady_clock::now();

  std::ostringstream payload;
  Status st = WriteSynopsis(synopsis, &payload);
  if (!st.ok()) return st;
  const std::string bytes = payload.str();

  // Fresh seq per attempt: a failed attempt's debris carries a seq the
  // journal never acknowledged, so recovery quarantines it instead of a
  // later install silently renaming over it.
  const uint64_t seq = next_seq_++;
  const std::string file = name + "." + std::to_string(seq) + ".pv";
  const std::string tmp_path = PathOf(file) + ".tmp";
  const std::string final_path = PathOf(file);

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + tmp_path));
  st = WriteAllFd(fd, bytes.data(), bytes.size(), tmp_path);
  if (st.ok()) st = SyncFd(fd, tmp_path);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp_path.c_str());
    return st;
  }

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const Status err = Status::IOError(
        ErrnoMessage("rename " + tmp_path + " -> " + final_path));
    ::unlink(tmp_path.c_str());
    return err;
  }
  st = SyncDir(options_.dir);
  if (!st.ok()) return st;

  if (PRIVIEW_FAILPOINT("store/torn-rename")) {
    // The crash window between the durable rename and the journal append:
    // the file exists on disk but no manifest record acknowledges it.
    return Status::IOError(
        "injected: store/torn-rename (file durable, record not appended)");
  }

  ManifestRecord record;
  record.seq = seq;
  record.kind = ManifestRecord::Kind::kInstall;
  record.name = name;
  record.file = file;
  st = AppendRecord(record);
  if (!st.ok()) return st;

  current_[name] = file;
  journaled_files_[file] = true;
  last_durable_seq_ = seq;
  history_[name].emplace_back(seq, file);

  // GC beyond the retention depth: journal the reclaim first, unlink
  // second, so replay never resurrects a file the directory lost (and a
  // crash between the two leaves journaled garbage Recover() deletes). A
  // failed gc append leaves the file retained — never silently dropped.
  const size_t retain =
      options_.retention_depth < 1
          ? 1
          : static_cast<size_t>(options_.retention_depth);
  std::vector<std::pair<uint64_t, std::string>>& releases = history_[name];
  while (releases.size() > retain) {
    ManifestRecord gc;
    gc.seq = next_seq_++;
    gc.kind = ManifestRecord::Kind::kGc;
    gc.name = name;
    gc.file = releases.front().second;
    const Status gc_st = AppendRecord(gc);
    if (!gc_st.ok()) break;  // install itself already durable; retry later
    last_durable_seq_ = gc.seq;
    ::unlink(PathOf(gc.file).c_str());
    releases.erase(releases.begin());
    GcCounter()->Increment();
  }

  InstallsCounter()->Increment();
  InstallLatency()->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return Status::OK();
}

Status SynopsisStore::Retire(const std::string& name) {
  if (!open_) return Status::FailedPrecondition("store not open");
  auto it = current_.find(name);
  if (it == current_.end()) {
    return Status::NotFound("no current synopsis named '" + name + "'");
  }
  ManifestRecord record;
  record.seq = next_seq_++;
  record.kind = ManifestRecord::Kind::kRetire;
  record.name = name;
  record.file = it->second;
  const Status st = AppendRecord(record);
  if (!st.ok()) return st;
  // Retire drops the whole name, retained history included (the journal's
  // retire record already orphans every prior install for the name).
  auto hist = history_.find(name);
  if (hist != history_.end()) {
    for (const auto& [seq, file] : hist->second) {
      ::unlink(PathOf(file).c_str());
    }
    history_.erase(hist);
  } else {
    ::unlink(PathOf(it->second).c_str());
  }
  current_.erase(it);
  last_durable_seq_ = record.seq;
  RetiresCounter()->Increment();
  return Status::OK();
}

Status SynopsisStore::QuarantineFile(const std::string& file,
                                     const std::string& reason,
                                     RecoveryReport* report) {
  const std::string src = PathOf(file);
  const std::string dst =
      options_.dir + "/" + kQuarantineDir + "/" + file;
  ::unlink(dst.c_str());
  if (::rename(src.c_str(), dst.c_str()) != 0) {
    report->warnings.push_back(
        ErrnoMessage("quarantine of " + file + " failed"));
    return Status::IOError("quarantine failed: " + file);
  }
  report->quarantined.push_back(file + " (" + reason + ")");
  return Status::OK();
}

StatusOr<RecoveryReport> SynopsisStore::Recover(
    serve::SynopsisRegistry* registry,
    const QueryEngineOptions& engine_options) {
  if (!open_) return Status::FailedPrecondition("store not open");
  RecoveryReport report;
  report.records_replayed = records_replayed_;
  report.manifest_truncated = manifest_was_truncated_;
  report.last_durable_seq = last_durable_seq_;
  report.warnings = pending_warnings_;

  // Phase 1: load everything the journal says is retained — every name's
  // history oldest-first, so the registry rebuilds the same epoch series
  // (epoch = manifest seq) a previous incarnation served. Only fully
  // intact artifacts reach the registry — a damaged file is quarantined,
  // never served at reduced fidelity without an operator in the loop (a
  // durable install was whole by construction, so damage here means bit
  // rot or tampering, not a routine partial write).
  if (registry != nullptr) {
    // Fresh in-memory installs must never reuse an epoch a previous
    // incarnation already published, even if every file was damaged.
    registry->EnsureEpochAtLeast(last_durable_seq_ + 1);
  }
  for (auto& [name, releases] : history_) {
    for (auto it = releases.begin(); it != releases.end();) {
      const uint64_t seq = it->first;
      const std::string file = it->second;
      const bool is_current = (std::next(it) == releases.end());
      LoadReport load_report;
      ReadOptions read_options;
      read_options.recover = true;
      StatusOr<PriViewSynopsis> loaded =
          LoadSynopsis(PathOf(file), read_options, &load_report);
      bool keep = false;
      if (!loaded.ok()) {
        (void)QuarantineFile(file, "unloadable: " + loaded.status().message(),
                             &report);
      } else if (!load_report.fully_intact()) {
        (void)QuarantineFile(
            file, "not fully intact: " + load_report.ToString(), &report);
      } else if (registry != nullptr) {
        const Status st =
            registry->InstallAtEpoch(name, std::move(loaded).value(), seq,
                                     engine_options, load_report);
        if (st.ok()) {
          if (is_current) report.loads[name] = load_report;
          keep = true;
        } else {
          report.warnings.push_back("registry install of '" + name + "' @" +
                                    std::to_string(seq) +
                                    " failed: " + st.message());
          keep = true;  // the artifact itself is healthy; leave it in place
        }
      } else {
        if (is_current) report.loads[name] = load_report;
        keep = true;
      }
      if (keep) {
        ++it;
      } else {
        if (is_current) current_.erase(name);
        it = releases.erase(it);
      }
    }
  }

  // Phase 2: reconcile the directory against the journal. Temp files are
  // torn installs; journaled-but-superseded files are reclaimable garbage;
  // anything the journal never mentioned is quarantined evidence (e.g. the
  // rename-then-crash window before the manifest append).
  std::map<std::string, bool> live;
  for (const auto& [name, releases] : history_) {
    for (const auto& [seq, file] : releases) live[file] = true;
  }
  for (const auto& [name, file] : current_) live[file] = true;
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return Status::IOError(ErrnoMessage("opendir " + options_.dir));
  }
  std::vector<std::string> entries;
  while (struct dirent* ent = ::readdir(dir)) {
    entries.emplace_back(ent->d_name);
  }
  ::closedir(dir);
  for (const std::string& entry : entries) {
    if (entry == "." || entry == ".." || entry == kManifestName ||
        entry == kQuarantineDir) {
      continue;
    }
    if (live.count(entry) > 0) continue;
    if (entry.size() > 4 && entry.rfind(".tmp") == entry.size() - 4) {
      (void)QuarantineFile(entry, "torn install (temp file)", &report);
    } else if (journaled_files_.count(entry) > 0) {
      if (::unlink(PathOf(entry).c_str()) == 0) {
        report.superseded_removed.push_back(entry);
      } else {
        report.warnings.push_back(
            ErrnoMessage("unlink superseded " + entry + " failed"));
      }
    } else {
      (void)QuarantineFile(entry, "unjournaled orphan", &report);
    }
  }

  RecoveriesCounter()->Increment();
  QuarantinedCounter()->Increment(report.quarantined.size());
  pending_warnings_.clear();
  return report;
}

std::map<std::string, std::string> SynopsisStore::Current() const {
  return current_;
}

std::vector<std::pair<uint64_t, std::string>> SynopsisStore::History(
    const std::string& name) const {
  auto it = history_.find(name);
  if (it == history_.end()) return {};
  return it->second;
}

}  // namespace priview::store
