// SynopsisStore: the crash-safe home of published synopses. Once the ε
// budget is spent, the synopsis file *is* the private release — a crash
// that tears it mid-write, or a restart that loses it, is unrecoverable
// without burning fresh budget. The store makes installs durable and
// restarts lossless:
//
//   Install (atomic + durable):
//     1. serialize to `<name>.<seq>.pv.tmp` in the store dir
//     2. fsync the temp file          (failpoint "store/fsync-fail")
//     3. rename onto `<name>.<seq>.pv`
//     4. fsync the directory          (same failpoint; the rename itself
//                                      is not durable until the dir is)
//     5. append an install record to MANIFEST and fsync it
//        (failpoints "store/torn-rename" fires in the 4→5 window,
//         "store/manifest-torn-tail" tears the append mid-record)
//   A crash at ANY point leaves either the previous durable state (steps
//   1-4: the manifest never mentions the new file) or the new state
//   (step 5 complete). Nothing in between is ever served.
//
//   MANIFEST is an append-only text journal: a header line, then one
//   record per install/retire, each carrying its own FNV-1a-64 checksum.
//   Replay trusts a record only if its checksum verifies AND every record
//   before it was intact — a torn or corrupt tail is truncated (the
//   records after a tear are unreachable by definition of append order).
//
//   Recover() is the startup scan: replay the manifest, load every
//   current synopsis in checksum-recovery mode, install the fully intact
//   ones into the SynopsisRegistry, and move everything suspicious —
//   torn temp files, unjournaled orphans (the rename→append crash
//   window), corrupt current files — into `quarantine/` for the operator
//   instead of deleting or serving it. Superseded files (journaled, then
//   replaced by a later install) are deleted: the journal says they are
//   garbage, not evidence.
//
//   Retention (StoreOptions::retention_depth): the store keeps the last k
//   releases per name — the epoch history time-series queries read. The
//   install path garbage-collects beyond that depth by journaling a `gc`
//   record and then unlinking, so replay and the directory always agree
//   on which old epochs are retained and which are reclaimed garbage.
#ifndef PRIVIEW_STORE_SYNOPSIS_STORE_H_
#define PRIVIEW_STORE_SYNOPSIS_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/query_engine.h"
#include "core/serialization.h"
#include "core/synopsis.h"
#include "serve/synopsis_registry.h"

namespace priview::store {

struct StoreOptions {
  /// Store root. Created (one level) if absent; `quarantine/` lives
  /// inside it.
  std::string dir;
  /// Releases retained per name: the current one plus retention_depth - 1
  /// predecessors. Older releases are garbage-collected at install time —
  /// journaled with a `gc` record, then unlinked — so a long-running
  /// streaming service does not grow the store unboundedly. The default 1
  /// keeps only the current release (the pre-streaming behavior).
  int retention_depth = 1;
};

/// One replayed manifest record.
struct ManifestRecord {
  uint64_t seq = 0;
  enum class Kind { kInstall, kRetire, kGc } kind = Kind::kInstall;
  std::string name;
  std::string file;  // install/gc: filename relative to the store dir
};

/// What a recovery scan found and did. `loads` carries the per-synopsis
/// LoadReport for everything that was (re)installed; `quarantined` names
/// every file moved aside, with the reason.
struct RecoveryReport {
  size_t records_replayed = 0;
  /// Bytes of torn/corrupt manifest tail truncated at open, if any.
  bool manifest_truncated = false;
  std::vector<std::string> quarantined;  // "file (reason)"
  std::vector<std::string> superseded_removed;
  std::vector<std::string> warnings;
  /// name -> LoadReport for every synopsis installed into the registry.
  std::map<std::string, LoadReport> loads;
  uint64_t last_durable_seq = 0;

  std::string ToString() const;
};

class SynopsisStore {
 public:
  explicit SynopsisStore(const StoreOptions& options);
  SynopsisStore(const SynopsisStore&) = delete;
  SynopsisStore& operator=(const SynopsisStore&) = delete;

  /// Creates the store dir + quarantine/, replays MANIFEST (creating it
  /// if absent), and truncates a torn/corrupt tail so the journal is
  /// whole before anything is appended to it. Must be called before any
  /// other method.
  Status Open();

  /// Atomic durable install of `synopsis` under `name` (see the file
  /// comment for the step sequence). Name must be non-empty and use only
  /// [A-Za-z0-9_.-]. On success the previous file for `name` (if any) is
  /// best-effort unlinked; on any failure the previous durable state is
  /// untouched.
  Status Install(const std::string& name, const PriViewSynopsis& synopsis);

  /// Journals the retirement of `name` and best-effort unlinks its file.
  /// NotFound if the store has no current entry for it.
  Status Retire(const std::string& name);

  /// Startup recovery scan: reconcile the directory against the replayed
  /// manifest, quarantine anything torn/corrupt/unjournaled, and install
  /// every fully intact current synopsis into `registry`. Never partial:
  /// a current file that is missing, unloadable, or not fully intact is
  /// quarantined and NOT installed — the registry only ever sees complete
  /// durable releases. Safe to call on an empty or freshly created store.
  ///
  /// Retained history (retention_depth > 1) is installed oldest-first at
  /// epoch = manifest seq, so the registry rebuilds the same per-name
  /// epoch series a previous incarnation served, and its auto-epoch floor
  /// is raised past the last durable seq — registry epochs are monotonic
  /// across restarts.
  StatusOr<RecoveryReport> Recover(serve::SynopsisRegistry* registry,
                                   const QueryEngineOptions& engine_options = {});

  /// The current durable view per the journal: name -> filename.
  std::map<std::string, std::string> Current() const;
  /// Retained releases of `name`, oldest -> newest (seq, filename); the
  /// back entry is the current release. Empty if the name is unknown.
  std::vector<std::pair<uint64_t, std::string>> History(
      const std::string& name) const;
  const std::string& dir() const { return options_.dir; }
  uint64_t next_seq() const { return next_seq_; }
  /// Seq of the most recent durably journaled record; after a successful
  /// Install this is that install's seq (the epoch streaming publishers
  /// hand to SynopsisRegistry::InstallAtEpoch).
  uint64_t last_durable_seq() const { return last_durable_seq_; }

 private:
  Status AppendRecord(const ManifestRecord& record);
  std::string PathOf(const std::string& file) const;
  Status QuarantineFile(const std::string& file, const std::string& reason,
                        RecoveryReport* report);

  const StoreOptions options_;
  bool open_ = false;
  uint64_t next_seq_ = 1;
  /// name -> current filename (journal replay state).
  std::map<std::string, std::string> current_;
  /// name -> retained (seq, file) releases, oldest -> newest. The back
  /// entry mirrors current_. Trimmed by install-time GC, never by replay
  /// (a shrunken retention_depth takes effect at the next install).
  std::map<std::string, std::vector<std::pair<uint64_t, std::string>>>
      history_;
  /// Every filename any replayed record ever mentioned — distinguishes
  /// "superseded garbage" (delete) from "unjournaled orphan" (quarantine).
  std::map<std::string, bool> journaled_files_;
  bool manifest_was_truncated_ = false;
  uint64_t last_durable_seq_ = 0;
  size_t records_replayed_ = 0;
  /// Open-time observations (e.g. a quarantined corrupt manifest header)
  /// surfaced through the next Recover()'s report.
  std::vector<std::string> pending_warnings_;
};

}  // namespace priview::store

#endif  // PRIVIEW_STORE_SYNOPSIS_STORE_H_
