// DeltaViewCounter — maintains the exact per-view marginal counts of a
// moving record window incrementally, so an epoch that changes 1% of the
// window costs 1% of a full recount.
//
// Correctness (the bit-identity argument, DESIGN.md §16): a record
// contributes exactly +1 to exactly one cell of every view — the cell
// indexed by its projection onto the view's attributes. Counts are exact
// integers stored in doubles, and integers up to 2^53 add and subtract
// exactly in IEEE-754, so applying a delta (add the entering records'
// counts, subtract the leaving records') yields the *same doubles* as
// recounting the window from scratch. Two refinements keep the delta pass
// cheap:
//   - Views whose attribute scope is disjoint from every bit set in the
//     delta's records only ever change at cell 0 (a record with all-zero
//     values inside the view projects to cell index 0), so they shift by
//     |added| - |removed| in O(1) instead of a counting pass.
//   - The views that do intersect the delta are counted with the same
//     fused CountMarginals pass the one-shot pipeline uses, over the
//     delta records only.
#ifndef PRIVIEW_STREAM_DELTA_COUNTER_H_
#define PRIVIEW_STREAM_DELTA_COUNTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/window.h"
#include "table/attr_set.h"
#include "table/dataset.h"
#include "table/marginal_table.h"

namespace priview::stream {

class DeltaViewCounter {
 public:
  /// What the last ApplyDelta did — surfaced in epoch reports and metrics.
  struct DeltaStats {
    size_t views_recounted = 0;  // fused-pass views (scope touched)
    size_t views_shifted = 0;    // O(1) cell-0 shifts (scope untouched)
    size_t records_added = 0;
    size_t records_removed = 0;
  };

  /// Starts from an empty window (all counts zero). View scopes must be
  /// non-empty subsets of the d-attribute universe and are fixed for the
  /// counter's lifetime — delta maintenance requires stable scopes.
  static StatusOr<DeltaViewCounter> Create(int d, std::vector<AttrSet> views);

  /// Folds one epoch's delta into the running counts.
  void ApplyDelta(const EpochDelta& delta);

  /// Discards the running counts and recounts `window` from scratch (cold
  /// start, or a paranoia re-sync). The window must match d.
  void ResetFromWindow(const Dataset& window);

  /// The exact counts of the current window, one marginal per view, in
  /// view order. Bit-identical to WindowDataset().CountMarginals(views).
  const std::vector<MarginalTable>& counts() const { return counts_; }
  /// Copy for PriViewSynopsis::TryBuildFromCounts, which consumes them.
  std::vector<MarginalTable> CountsCopy() const { return counts_; }

  const std::vector<AttrSet>& views() const { return views_; }
  int d() const { return d_; }
  const DeltaStats& last_stats() const { return last_stats_; }

 private:
  DeltaViewCounter(int d, std::vector<AttrSet> views);

  int d_ = 0;
  std::vector<AttrSet> views_;
  std::vector<MarginalTable> counts_;
  DeltaStats last_stats_;
};

}  // namespace priview::stream

#endif  // PRIVIEW_STREAM_DELTA_COUNTER_H_
