#include "stream/stream_publisher.h"

#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace priview::stream {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

obs::Labels StreamLabels(const std::string& name) {
  return {{"stream", name}};
}

}  // namespace

StreamPublisher::StreamPublisher(const StreamOptions& options,
                                 store::SynopsisStore* store,
                                 serve::SynopsisRegistry* registry, Rng* rng,
                                 int d)
    : options_(options),
      store_(store),
      registry_(registry),
      rng_(rng),
      budget_(options.total_epsilon, "stream/" + options.name),
      window_(std::make_unique<WindowBuffer>(d, options.mode,
                                             options.window_batches)) {}

StatusOr<StreamPublisher> StreamPublisher::Create(
    const StreamOptions& options, store::SynopsisStore* store,
    serve::SynopsisRegistry* registry, Rng* rng) {
  if (options.name.empty()) {
    return Status::InvalidArgument("stream name must be non-empty");
  }
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options.d < 1 || options.d > 64) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(options.d));
  }
  if (options.total_epsilon <= 0.0 || options.epoch_epsilon <= 0.0) {
    return Status::InvalidArgument("epsilons must be positive");
  }
  if (options.epoch_epsilon > options.total_epsilon) {
    return Status::InvalidArgument(
        "epoch_epsilon exceeds the cross-epoch total: not even one epoch "
        "could publish");
  }
  if (options.mode == WindowMode::kSliding && options.window_batches < 1) {
    return Status::InvalidArgument("window_batches must be >= 1");
  }
  StatusOr<DeltaViewCounter> counter =
      DeltaViewCounter::Create(options.d, options.views);
  if (!counter.ok()) return counter.status();

  StreamPublisher publisher(options, store, registry, rng, options.d);
  publisher.counter_ =
      std::make_unique<DeltaViewCounter>(std::move(counter).value());
  return publisher;
}

Status StreamPublisher::Ingest(std::span<const uint64_t> records) {
  const Status st = window_->Ingest(records);
  if (st.ok()) {
    static const std::string kName = "priview_stream_records_total";
    obs::MetricsRegistry::Global()
        .GetCounter(kName, StreamLabels(options_.name),
                    "Records ingested by streaming publishers")
        ->Increment(records.size());
  }
  return st;
}

StatusOr<EpochReport> StreamPublisher::PublishEpoch() {
  const auto rollover_t0 = std::chrono::steady_clock::now();
  obs::TraceSpan epoch_span("stream/epoch");
  auto& metrics = obs::MetricsRegistry::Global();
  const obs::Labels labels = StreamLabels(options_.name);

  // 1. Budget first: a refusal must leave the window untouched so the
  // pending batch can still publish later (e.g. under a new publisher
  // with a refreshed total). The parent accountant makes overspend
  // structurally impossible — the child cannot hold more than what was
  // just carved.
  StatusOr<BudgetAccountant> child =
      budget_.CarveChild(options_.epoch_epsilon);
  if (!child.ok()) return child.status();

  EpochReport report;
  report.epoch_index = epochs_published_ + 1;

  // 2. Advance the window and fold the delta into the running counts.
  {
    obs::TraceSpan recount_span("stream/epoch/recount");
    const auto t0 = std::chrono::steady_clock::now();
    const EpochDelta delta = window_->AdvanceEpoch();
    counter_->ApplyDelta(delta);
    report.recount_us = ElapsedUs(t0);
  }
  const DeltaViewCounter::DeltaStats& stats = counter_->last_stats();
  report.records_added = stats.records_added;
  report.records_removed = stats.records_removed;
  report.views_recounted = stats.views_recounted;
  report.views_shifted = stats.views_shifted;
  report.window_records = window_->window_size();

  // 3. Build the next release off to the side. The child accountant is
  // the enforcement point: the build's ε is spent from it, and the spend
  // is exact by construction.
  PriViewOptions build_options = options_.synopsis;
  build_options.epsilon = options_.epoch_epsilon;
  const Status spent = child.value().Spend(options_.epoch_epsilon);
  if (!spent.ok()) return spent;  // unreachable: the child holds exactly this
  Rng epoch_rng = rng_->Fork();
  StatusOr<PriViewSynopsis> built = [&] {
    obs::TraceSpan build_span("stream/epoch/build");
    const auto t0 = std::chrono::steady_clock::now();
    StatusOr<PriViewSynopsis> synopsis = PriViewSynopsis::TryBuildFromCounts(
        counter_->d(), counter_->CountsCopy(), build_options, &epoch_rng);
    report.build_us = ElapsedUs(t0);
    return synopsis;
  }();
  if (!built.ok()) return built.status();
  report.epsilon_spent = options_.epoch_epsilon;
  report.epsilon_remaining = budget_.remaining();

  // 4. Durable persist. The crash boundary: before the store's journal
  // append the previous epoch is the durable one; after it, this one.
  if (store_ != nullptr) {
    obs::TraceSpan persist_span("stream/epoch/persist");
    const auto t0 = std::chrono::steady_clock::now();
    const Status persisted = store_->Install(options_.name, built.value());
    report.persist_us = ElapsedUs(t0);
    if (!persisted.ok()) return persisted;
    report.epoch = store_->last_durable_seq();
  }

  if (PRIVIEW_FAILPOINT("stream/rollover-abort")) {
    // The durable-but-not-swapped window: the store journaled the new
    // epoch but the registry still serves the old one. Recovery (store
    // Recover into the registry) must land on the NEW epoch.
    return Status::IOError(
        "injected: stream/rollover-abort (persisted, not hot-swapped)");
  }

  // 5. Hot-swap. In-flight queries drain on the old epoch's pinned
  // shared_ptr; new acquires see the new epoch atomically.
  if (registry_ != nullptr) {
    obs::TraceSpan install_span("stream/epoch/install");
    const auto t0 = std::chrono::steady_clock::now();
    const Status installed =
        report.epoch != 0
            ? registry_->InstallAtEpoch(options_.name,
                                        std::move(built).value(),
                                        report.epoch)
            : registry_->Install(options_.name, std::move(built).value());
    report.install_us = ElapsedUs(t0);
    if (!installed.ok()) return installed;
    if (report.epoch == 0) {
      StatusOr<std::shared_ptr<const serve::HostedSynopsis>> hosted =
          registry_->Acquire(options_.name);
      if (hosted.ok()) report.epoch = hosted.value()->epoch();
    }
  }

  ++epochs_published_;
  report.rollover_us = ElapsedUs(rollover_t0);

  metrics
      .GetGauge("priview_stream_epoch", labels,
                "Registry epoch of the latest published release")
      ->Set(static_cast<int64_t>(report.epoch));
  metrics
      .GetGauge("priview_stream_window_records", labels,
                "Records inside the current release window")
      ->Set(static_cast<int64_t>(report.window_records));
  metrics
      .GetCounter("priview_stream_epochs_total", labels,
                  "Epochs published by streaming publishers")
      ->Increment();
  metrics
      .GetCounter("priview_stream_views_recounted_total", labels,
                  "Views recounted via the fused delta pass")
      ->Increment(report.views_recounted);
  metrics
      .GetCounter("priview_stream_views_shifted_total", labels,
                  "Views updated with the O(1) cell-0 shift")
      ->Increment(report.views_shifted);
  metrics
      .GetHistogram("priview_stream_recount_us", labels,
                    "Delta fold into running view counts, us")
      ->Observe(report.recount_us);
  metrics
      .GetHistogram("priview_stream_rollover_us", labels,
                    "End-to-end epoch rollover latency, us")
      ->Observe(report.rollover_us);
  return report;
}

}  // namespace priview::stream
