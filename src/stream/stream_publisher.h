// StreamPublisher — continuous temporal release of a PriView synopsis.
//
// The publisher turns the one-shot pipeline into an epoch loop:
//
//   Ingest(batch) ... Ingest(batch)      buffer records for the next epoch
//   PublishEpoch():
//     1. carve this epoch's child budget from the cross-epoch total
//        (refusal: typed ResourceExhausted + a refusals metric — the
//        window is left untouched so the batch can publish later under a
//        refreshed budget, and the total ε is never silently exceeded)
//     2. advance the window (tumbling / sliding / cumulative) and fold
//        the delta into the DeltaViewCounter's exact running counts
//        (the recount and the per-view fold ride the work-stealing pool
//        as count/merge-phase work — DESIGN.md §10)
//     3. build the next synopsis OFF TO THE SIDE from those counts
//        (PriViewSynopsis::TryBuildFromCounts — identical noise +
//        consistency path to a from-scratch build, phase-tagged through
//        the same scheduler, bit-identical at any thread count)
//     4. persist durably via SynopsisStore::Install (atomic: temp file,
//        fsync, rename, dir fsync, journal append)
//     5. hot-swap via SynopsisRegistry::InstallAtEpoch at epoch = the
//        store's manifest seq — in-flight queries finish on the old
//        epoch, new queries see the new one
//
// A crash at any point leaves the system on exactly one epoch: before
// step 4's journal append, recovery serves the previous epoch; after it,
// the new one. The "stream/rollover-abort" failpoint injects a failure in
// the 4→5 window (durable but not yet swapped) for the chaos matrix.
//
// Privacy: each epoch's synopsis is built with the child's ε over the
// *current window* of records; the parent accountant guarantees the sum
// of all epoch budgets never exceeds StreamOptions::total_epsilon.
#ifndef PRIVIEW_STREAM_STREAM_PUBLISHER_H_
#define PRIVIEW_STREAM_STREAM_PUBLISHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/synopsis.h"
#include "data/window.h"
#include "dp/mechanisms.h"
#include "serve/synopsis_registry.h"
#include "store/synopsis_store.h"
#include "stream/delta_counter.h"
#include "table/attr_set.h"

namespace priview::stream {

struct StreamOptions {
  /// Registry/store name of the release ([A-Za-z0-9_.-]+).
  std::string name;
  /// Number of binary attributes (1..64); all views must fit inside.
  int d = 0;
  /// The release window over incoming batches.
  WindowMode mode = WindowMode::kTumbling;
  /// Sliding-window depth in epoch batches (sliding mode only).
  int window_batches = 4;
  /// The fixed view scopes (delta maintenance requires stable scopes).
  /// Typically a covering design's blocks from SelectViews on a pilot
  /// dataset; must be non-empty.
  std::vector<AttrSet> views;
  /// Cross-epoch ε total; PublishEpoch refuses once it is exhausted.
  double total_epsilon = 1.0;
  /// ε carved from the total for each epoch's release.
  double epoch_epsilon = 0.1;
  /// Post-processing knobs per epoch; the epsilon field is overwritten
  /// with epoch_epsilon.
  PriViewOptions synopsis;
};

/// What one PublishEpoch did.
struct EpochReport {
  /// Publisher-local epoch ordinal (1-based).
  int64_t epoch_index = 0;
  /// Registry epoch of the installed release — the store's durable
  /// manifest seq when a store is attached, else registry-assigned.
  uint64_t epoch = 0;
  size_t window_records = 0;
  size_t records_added = 0;
  size_t records_removed = 0;
  size_t views_recounted = 0;
  size_t views_shifted = 0;
  double epsilon_spent = 0.0;      // this epoch
  double epsilon_remaining = 0.0;  // of the cross-epoch total
  uint64_t recount_us = 0;   // delta fold into running counts
  uint64_t build_us = 0;     // noise + consistency off to the side
  uint64_t persist_us = 0;   // durable store install
  uint64_t install_us = 0;   // registry hot-swap
  uint64_t rollover_us = 0;  // end-to-end PublishEpoch
};

class StreamPublisher {
 public:
  /// `store` and `registry` may each be null (count-only pipelines,
  /// tests); when both are present, registry epochs are the store's
  /// durable seqs. `rng` must outlive the publisher; per-epoch noise
  /// draws from forks of it, so a fixed seed gives a reproducible
  /// release sequence.
  static StatusOr<StreamPublisher> Create(const StreamOptions& options,
                                          store::SynopsisStore* store,
                                          serve::SynopsisRegistry* registry,
                                          Rng* rng);

  StreamPublisher(StreamPublisher&&) = default;
  StreamPublisher& operator=(StreamPublisher&&) = default;
  StreamPublisher(const StreamPublisher&) = delete;
  StreamPublisher& operator=(const StreamPublisher&) = delete;

  /// Buffers records for the next epoch (validates the attribute bits).
  Status Ingest(std::span<const uint64_t> records);

  /// Runs one epoch: carve budget, advance window, delta-recount, build,
  /// persist, hot-swap. On ResourceExhausted (budget) the pending batch
  /// and window are untouched; on later failures the budget is already
  /// spent (conservative: never an overspend) and the window advanced.
  StatusOr<EpochReport> PublishEpoch();

  /// True once the remaining cross-epoch budget cannot fund another
  /// epoch.
  bool exhausted() const {
    return budget_.remaining() < options_.epoch_epsilon * (1.0 - 1e-9);
  }

  const BudgetAccountant& budget() const { return budget_; }
  const DeltaViewCounter& counter() const { return *counter_; }
  const WindowBuffer& window() const { return *window_; }
  const StreamOptions& options() const { return options_; }
  int64_t epochs_published() const { return epochs_published_; }

 private:
  StreamPublisher(const StreamOptions& options,
                  store::SynopsisStore* store,
                  serve::SynopsisRegistry* registry, Rng* rng, int d);

  StreamOptions options_;
  store::SynopsisStore* store_;
  serve::SynopsisRegistry* registry_;
  Rng* rng_;
  BudgetAccountant budget_;
  // unique_ptr: keeps the publisher movable (WindowBuffer/DeltaViewCounter
  // hold internal state that must stay addressable across moves).
  std::unique_ptr<WindowBuffer> window_;
  std::unique_ptr<DeltaViewCounter> counter_;
  int64_t epochs_published_ = 0;
};

}  // namespace priview::stream

#endif  // PRIVIEW_STREAM_STREAM_PUBLISHER_H_
