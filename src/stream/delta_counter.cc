#include "stream/delta_counter.h"

#include <utility>

#include "common/check.h"
#include "common/parallel.h"

namespace priview::stream {

namespace {
// Views per chunk when folding recounted delta tables into the running
// counts: each view's fold is independent (disjoint writes), so the fold
// rides the work-stealing pool as merge-phase work. Same grain as the
// consistency per-view loops.
constexpr size_t kViewGrain = 8;
}  // namespace

DeltaViewCounter::DeltaViewCounter(int d, std::vector<AttrSet> views)
    : d_(d), views_(std::move(views)) {
  counts_.reserve(views_.size());
  for (const AttrSet& view : views_) counts_.emplace_back(view);
}

StatusOr<DeltaViewCounter> DeltaViewCounter::Create(
    int d, std::vector<AttrSet> views) {
  if (d < 1 || d > 64) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(d));
  }
  if (views.empty()) return Status::InvalidArgument("no views to count");
  for (const AttrSet& view : views) {
    if (view.empty() || !view.IsSubsetOf(AttrSet::Full(d))) {
      return Status::InvalidArgument("view scope outside dataset universe: " +
                                     view.ToString());
    }
  }
  return DeltaViewCounter(d, std::move(views));
}

void DeltaViewCounter::ApplyDelta(const EpochDelta& delta) {
  last_stats_ = DeltaStats{};
  last_stats_.records_added = delta.added.size();
  last_stats_.records_removed = delta.removed.size();

  uint64_t touched = 0;
  for (uint64_t record : delta.added) touched |= record;
  for (uint64_t record : delta.removed) touched |= record;

  // Partition: views disjoint from every set bit in the delta shift at
  // cell 0 only; the rest get the fused counting pass over the delta.
  std::vector<size_t> recount_index;
  std::vector<AttrSet> recount_views;
  const double shift = static_cast<double>(delta.added.size()) -
                       static_cast<double>(delta.removed.size());
  for (size_t i = 0; i < views_.size(); ++i) {
    if ((views_[i].mask() & touched) != 0) {
      recount_index.push_back(i);
      recount_views.push_back(views_[i]);
    } else {
      counts_[i].At(0) += shift;
      ++last_stats_.views_shifted;
    }
  }
  last_stats_.views_recounted = recount_index.size();
  if (recount_index.empty()) return;

  if (!delta.added.empty()) {
    const Dataset added(d_, delta.added);
    const std::vector<MarginalTable> add_counts =
        added.CountMarginals(recount_views);
    parallel::ParallelFor(
        parallel::Phase::kMerge, 0, recount_index.size(), kViewGrain,
        [&](size_t lo, size_t hi) {
          for (size_t k = lo; k < hi; ++k) {
            std::vector<double>& cells = counts_[recount_index[k]].cells();
            const std::vector<double>& inc = add_counts[k].cells();
            for (size_t c = 0; c < cells.size(); ++c) cells[c] += inc[c];
          }
        });
  }
  if (!delta.removed.empty()) {
    const Dataset removed(d_, delta.removed);
    const std::vector<MarginalTable> rem_counts =
        removed.CountMarginals(recount_views);
    parallel::ParallelFor(
        parallel::Phase::kMerge, 0, recount_index.size(), kViewGrain,
        [&](size_t lo, size_t hi) {
          for (size_t k = lo; k < hi; ++k) {
            std::vector<double>& cells = counts_[recount_index[k]].cells();
            const std::vector<double>& dec = rem_counts[k].cells();
            for (size_t c = 0; c < cells.size(); ++c) cells[c] -= dec[c];
          }
        });
  }
}

void DeltaViewCounter::ResetFromWindow(const Dataset& window) {
  PRIVIEW_CHECK(window.d() == d_);
  counts_ = window.CountMarginals(views_);
  last_stats_ = DeltaStats{};
  last_stats_.views_recounted = views_.size();
  last_stats_.records_added = window.size();
}

}  // namespace priview::stream
