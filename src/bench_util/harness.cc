#include "bench_util/harness.h"

#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace priview {

WorkloadErrors EvaluateWorkload(
    const Dataset& data, const std::vector<AttrSet>& queries, int runs,
    const std::function<void(int)>& prepare,
    const std::function<MarginalTable(AttrSet)>& answer) {
  PRIVIEW_CHECK(runs >= 1 && !queries.empty());
  const double n = static_cast<double>(data.size());

  std::vector<MarginalTable> truths;
  truths.reserve(queries.size());
  for (AttrSet q : queries) truths.push_back(data.CountMarginal(q));

  WorkloadErrors errors;
  errors.l2.assign(queries.size(), 0.0);
  errors.js.assign(queries.size(), 0.0);
  for (int run = 0; run < runs; ++run) {
    prepare(run);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const MarginalTable estimate = answer(queries[qi]);
      errors.l2[qi] += NormalizedL2Error(estimate, truths[qi], n);
      errors.js[qi] += JensenShannonTables(estimate, truths[qi]);
    }
  }
  for (double& e : errors.l2) e /= runs;
  for (double& e : errors.js) e /= runs;
  return errors;
}

ErrorSummary SummarizeErrors(const WorkloadErrors& errors) {
  return {Summarize(errors.l2), Summarize(errors.js)};
}

void PrintCandlestickRow(const std::string& label, const ErrorSummary& summary,
                         bool print_js) {
  const Candlestick& c = summary.l2;
  std::printf("%-28s L2  p25=%.3e med=%.3e p75=%.3e p95=%.3e mean=%.3e\n",
              label.c_str(), c.p25, c.median, c.p75, c.p95, c.mean);
  if (print_js) {
    const Candlestick& j = summary.js;
    std::printf("%-28s JS  p25=%.3e med=%.3e p75=%.3e p95=%.3e mean=%.3e\n",
                label.c_str(), j.p25, j.median, j.p75, j.p95, j.mean);
  }
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

namespace {

const char* FindFlag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

}  // namespace

int FlagInt(int argc, char** argv, const std::string& name, int def) {
  const char* value = FindFlag(argc, argv, name);
  return value ? std::atoi(value) : def;
}

double FlagDouble(int argc, char** argv, const std::string& name,
                  double def) {
  const char* value = FindFlag(argc, argv, name);
  return value ? std::atof(value) : def;
}

bool FlagBool(int argc, char** argv, const std::string& name, bool def) {
  const char* value = FindFlag(argc, argv, name);
  if (value == nullptr) return def;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "false") != 0;
}

}  // namespace priview
