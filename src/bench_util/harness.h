// Shared experiment harness for the bench binaries: runs a mechanism over a
// query workload for several runs, averages each query's error across runs
// (the paper's protocol: 200 random scopes × 5 runs), and prints the
// candlestick rows the figures plot.
#ifndef PRIVIEW_BENCH_UTIL_HARNESS_H_
#define PRIVIEW_BENCH_UTIL_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "table/attr_set.h"
#include "table/dataset.h"
#include "table/marginal_table.h"

namespace priview {

/// Per-query errors averaged over runs.
struct WorkloadErrors {
  std::vector<double> l2;  // normalized L2, one per query
  std::vector<double> js;  // Jensen-Shannon, one per query
};

/// Evaluates a mechanism over `queries` for `runs` independent runs.
/// `prepare(run)` re-fits the mechanism (fresh noise); `answer(scope)`
/// produces its table. True marginals are computed once and shared.
WorkloadErrors EvaluateWorkload(
    const Dataset& data, const std::vector<AttrSet>& queries, int runs,
    const std::function<void(int)>& prepare,
    const std::function<MarginalTable(AttrSet)>& answer);

/// Candlesticks of the two error measures.
struct ErrorSummary {
  Candlestick l2;
  Candlestick js;
};

ErrorSummary SummarizeErrors(const WorkloadErrors& errors);

/// Prints "label  p25 median p75 p95 mean" for the L2 candlestick (and the
/// JS one when print_js is set), in scientific notation, matching the
/// log-scale plots.
void PrintCandlestickRow(const std::string& label, const ErrorSummary& summary,
                         bool print_js = false);

/// Prints a section header ("=== Figure 2: ... ===").
void PrintHeader(const std::string& title);

/// Parses "--flag=value" style integer / double flags with defaults, so
/// every bench accepts --queries / --runs overrides for quick runs.
int FlagInt(int argc, char** argv, const std::string& name, int def);
double FlagDouble(int argc, char** argv, const std::string& name, double def);
bool FlagBool(int argc, char** argv, const std::string& name, bool def);

}  // namespace priview

#endif  // PRIVIEW_BENCH_UTIL_HARNESS_H_
