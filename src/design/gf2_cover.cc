#include "design/gf2_cover.h"

#include <algorithm>
#include <set>

#include "common/bits.h"
#include "common/check.h"

namespace priview {

std::vector<std::vector<uint32_t>> AllGf2Subspaces(int m, int s) {
  PRIVIEW_CHECK(m >= 1 && m <= 8 && s >= 1 && s <= m);
  const uint32_t n = 1u << m;

  std::set<std::vector<uint32_t>> unique;
  // Enumerate ordered independent s-tuples with increasing elements and
  // canonicalize by the span's sorted element list.
  std::vector<uint32_t> basis;
  std::vector<uint32_t> span = {0};

  // Recursive lambda over basis choices.
  auto recurse = [&](auto&& self, uint32_t min_vector) -> void {
    if (static_cast<int>(basis.size()) == s) {
      std::vector<uint32_t> sorted = span;
      std::sort(sorted.begin(), sorted.end());
      unique.insert(std::move(sorted));
      return;
    }
    for (uint32_t v = min_vector; v < n; ++v) {
      // v must be independent of the current basis, i.e. not in the span.
      if (std::find(span.begin(), span.end(), v) != span.end()) continue;
      basis.push_back(v);
      const size_t old_size = span.size();
      for (size_t i = 0; i < old_size; ++i) span.push_back(span[i] ^ v);
      self(self, v + 1);
      span.resize(old_size);
      basis.pop_back();
    }
  };
  recurse(recurse, 1);

  return std::vector<std::vector<uint32_t>>(unique.begin(), unique.end());
}

std::vector<int> SubspaceCover(int m, int s, Rng* rng, int restarts) {
  PRIVIEW_CHECK(rng != nullptr);
  const std::vector<std::vector<uint32_t>> subspaces = AllGf2Subspaces(m, s);
  const uint32_t n = 1u << m;

  std::vector<int> best;
  for (int attempt = 0; attempt < restarts; ++attempt) {
    std::vector<bool> covered(n, false);
    covered[0] = true;
    uint32_t remaining = n - 1;
    std::vector<int> chosen;
    while (remaining > 0) {
      int best_idx = -1;
      int best_gain = -1;
      int ties = 0;
      for (int i = 0; i < static_cast<int>(subspaces.size()); ++i) {
        int gain = 0;
        for (uint32_t v : subspaces[i]) {
          if (!covered[v]) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_idx = i;
          ties = 1;
        } else if (gain == best_gain) {
          ++ties;
          if (rng->UniformInt(ties) == 0) best_idx = i;
        }
      }
      PRIVIEW_CHECK(best_idx >= 0 && best_gain > 0);
      chosen.push_back(best_idx);
      for (uint32_t v : subspaces[best_idx]) {
        if (!covered[v]) {
          covered[v] = true;
          --remaining;
        }
      }
    }
    if (best.empty() || chosen.size() < best.size()) best = std::move(chosen);
    // A perfect partial spread covers every nonzero vector exactly once;
    // nothing can beat it.
    const size_t lower_bound =
        ((n - 1) + ((1u << s) - 2)) / ((1u << s) - 1);
    if (best.size() == lower_bound) break;
  }
  return best;
}

std::optional<CoveringDesign> SubspaceCoverDesign(int d, int ell, Rng* rng) {
  auto log2_exact = [](int x) -> int {
    if (x < 2 || (x & (x - 1)) != 0) return -1;
    return LowestBitIndex(static_cast<uint64_t>(x));
  };
  const int m = log2_exact(d);
  const int s = log2_exact(ell);
  if (m < 0 || s < 0 || s >= m || d > 64) return std::nullopt;

  const std::vector<std::vector<uint32_t>> subspaces = AllGf2Subspaces(m, s);
  const std::vector<int> cover = SubspaceCover(m, s, rng);

  CoveringDesign design{d, ell, 2, {}};
  for (int idx : cover) {
    const std::vector<uint32_t>& subspace = subspaces[idx];
    std::vector<bool> seen(static_cast<size_t>(d), false);
    for (int rep = 0; rep < d; ++rep) {
      if (seen[rep]) continue;
      std::vector<int> coset;
      for (uint32_t u : subspace) {
        const int element = rep ^ static_cast<int>(u);
        coset.push_back(element);
        seen[element] = true;
      }
      design.blocks.push_back(AttrSet::FromIndices(coset));
    }
  }
  PRIVIEW_CHECK(VerifyCovering(design));
  return design;
}

}  // namespace priview
