// Stochastic local search for covering designs: repeatedly tries to redo
// the cover with one block fewer, repairing holes by rebuilding random
// blocks around still-uncovered t-subsets. This is the standard
// remove-and-repair heuristic used to approach the La Jolla repository
// values when no algebraic construction applies (e.g. t = 3, or d not a
// power of two).
#ifndef PRIVIEW_DESIGN_LOCAL_SEARCH_H_
#define PRIVIEW_DESIGN_LOCAL_SEARCH_H_

#include "design/covering_design.h"

namespace priview {

struct LocalSearchOptions {
  /// Moves allowed per attempted block-count reduction.
  long long moves_per_attempt = 150000;
  /// Consecutive failed reductions before giving up.
  int max_failed_attempts = 2;
  /// Probability of accepting a (slightly) worsening move — keeps the
  /// search from freezing in shallow local minima.
  double worsening_acceptance = 0.02;
};

/// Returns a design with w() less than or equal to the input's (never
/// worse); always verified. Deterministic given the rng state.
CoveringDesign ImproveCoveringDesign(const CoveringDesign& design, Rng* rng,
                                     const LocalSearchOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_DESIGN_LOCAL_SEARCH_H_
