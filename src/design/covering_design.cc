#include "design/covering_design.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/bits.h"
#include "common/check.h"
#include "common/combinatorics.h"
#include "design/gf2_cover.h"

namespace priview {
namespace {

// Enumerates the t-subsets of `block` (as global attribute masks).
std::vector<uint64_t> SubsetMasksOf(AttrSet block, int t) {
  const std::vector<int> attrs = block.ToIndices();
  std::vector<uint64_t> out;
  for (const std::vector<int>& idx :
       AllSubsets(static_cast<int>(attrs.size()), t)) {
    uint64_t m = 0;
    for (int i : idx) m |= (1ULL << attrs[i]);
    out.push_back(m);
  }
  return out;
}

}  // namespace

std::string CoveringDesign::Name() const {
  return "C" + std::to_string(t) + "(" + std::to_string(ell) + "," +
         std::to_string(w()) + ")";
}

bool VerifyCovering(const CoveringDesign& design) {
  if (design.t < 1 || design.t > design.ell || design.ell > design.d) {
    return false;
  }
  const AttrSet full = AttrSet::Full(design.d);
  for (AttrSet b : design.blocks) {
    if (b.size() != design.ell || !b.IsSubsetOf(full)) return false;
  }
  bool all_covered = true;
  ForEachSubsetMask(design.d, design.t, [&](uint64_t sub) {
    if (!all_covered) return;
    const AttrSet s(sub);
    bool covered = false;
    for (AttrSet b : design.blocks) {
      if (s.IsSubsetOf(b)) {
        covered = true;
        break;
      }
    }
    if (!covered) all_covered = false;
  });
  return all_covered;
}

double AverageCoverageMultiplicity(const CoveringDesign& design) {
  double total = 0.0;
  double count = 0.0;
  ForEachSubsetMask(design.d, design.t, [&](uint64_t sub) {
    const AttrSet s(sub);
    for (AttrSet b : design.blocks) {
      if (s.IsSubsetOf(b)) total += 1.0;
    }
    count += 1.0;
  });
  return (count == 0.0) ? 0.0 : total / count;
}

CoveringDesign GreedyCoveringDesign(int d, int ell, int t, Rng* rng) {
  PRIVIEW_CHECK(rng != nullptr);
  PRIVIEW_CHECK(1 <= t && t <= ell && ell <= d && d <= 64);
  PRIVIEW_CHECK(t <= 4);

  // Uncovered t-subsets (global masks) and, kept incrementally, how many
  // uncovered subsets contain each attribute (the tie-break popularity).
  std::unordered_set<uint64_t> uncovered;
  std::vector<int> popularity(d, 0);
  ForEachSubsetMask(d, t, [&](uint64_t sub) {
    uncovered.insert(sub);
    uint64_t m = sub;
    while (m != 0) {
      ++popularity[LowestBitIndex(m)];
      m &= m - 1;
    }
  });

  auto erase_covered = [&](uint64_t sub) {
    if (uncovered.erase(sub) == 0) return;
    uint64_t m = sub;
    while (m != 0) {
      --popularity[LowestBitIndex(m)];
      m &= m - 1;
    }
  };

  CoveringDesign design{d, ell, t, {}};

  // Builds one candidate block: seed with a random uncovered t-subset
  // (guaranteeing progress, hence termination), then extend one attribute
  // at a time, picking the attribute that newly covers the most uncovered
  // t-subsets inside the grown block; ties broken by popularity, then
  // randomly.
  auto build_block = [&]() -> uint64_t {
    uint64_t seed_idx = rng->UniformInt(uncovered.size());
    auto it = uncovered.begin();
    std::advance(it, seed_idx);
    uint64_t block = *it;
    while (PopCount(block) < ell) {
      int best_attr = -1;
      double best_score = -1.0;
      int num_ties = 0;
      const AttrSet cur(block);
      const std::vector<uint64_t> rests = SubsetMasksOf(cur, t - 1);
      for (int a = 0; a < d; ++a) {
        const uint64_t abit = 1ULL << a;
        if (block & abit) continue;
        int newly = 0;
        for (uint64_t rest : rests) {
          if (uncovered.count(rest | abit)) ++newly;
        }
        const double score = static_cast<double>(newly) * 1e9 +
                             static_cast<double>(popularity[a]);
        if (score > best_score) {
          best_score = score;
          best_attr = a;
          num_ties = 1;
        } else if (score == best_score) {
          // Reservoir-style random tie-break.
          ++num_ties;
          if (rng->UniformInt(num_ties) == 0) best_attr = a;
        }
      }
      PRIVIEW_CHECK(best_attr >= 0);
      block |= (1ULL << best_attr);
    }
    return block;
  };

  auto new_coverage = [&](uint64_t block) {
    int newly = 0;
    for (uint64_t sub : SubsetMasksOf(AttrSet(block), t)) {
      if (uncovered.count(sub)) ++newly;
    }
    return newly;
  };

  // Multi-start per block: randomized seeds explore different corners of
  // the uncovered set; keeping the best candidate trims the final count
  // noticeably for t >= 3.
  constexpr int kBlockTrials = 6;
  while (!uncovered.empty()) {
    uint64_t best_block = build_block();
    int best_newly = new_coverage(best_block);
    for (int trial = 1; trial < kBlockTrials; ++trial) {
      const uint64_t candidate = build_block();
      const int newly = new_coverage(candidate);
      if (newly > best_newly) {
        best_newly = newly;
        best_block = candidate;
      }
    }
    const AttrSet block_set(best_block);
    for (uint64_t covered : SubsetMasksOf(block_set, t)) {
      erase_covered(covered);
    }
    design.blocks.push_back(block_set);
  }

  // Prune redundant blocks: a block can go if every t-subset it covers is
  // covered at least twice. Coverage multiplicities kept in a hash map so
  // the pass costs O(w * C(ell, t)).
  std::unordered_map<uint64_t, int> coverage;
  for (AttrSet b : design.blocks) {
    for (uint64_t sub : SubsetMasksOf(b, t)) ++coverage[sub];
  }
  std::vector<AttrSet> kept;
  for (int i = design.w() - 1; i >= 0; --i) {
    const AttrSet b = design.blocks[i];
    const std::vector<uint64_t> subs = SubsetMasksOf(b, t);
    bool redundant = true;
    for (uint64_t sub : subs) {
      if (coverage[sub] < 2) {
        redundant = false;
        break;
      }
    }
    // C(d,t) >= 1, so removal (which keeps every multiplicity >= 1) can
    // never empty the design.
    if (redundant) {
      for (uint64_t sub : subs) --coverage[sub];
    } else {
      kept.push_back(b);
    }
  }
  std::reverse(kept.begin(), kept.end());
  design.blocks = std::move(kept);

  PRIVIEW_CHECK(VerifyCovering(design));
  return design;
}

std::optional<CoveringDesign> CatalogCoveringDesign(int d, int ell, int t) {
  // Trivial design: a single block of everything.
  if (ell == d) {
    CoveringDesign design{d, ell, t, {AttrSet::Full(d)}};
    return design;
  }
  // The paper's C_2(6, 3) on the 9-attribute MSNBC dataset: three blocks of
  // six attributes covering all pairs.
  if (d == 9 && ell == 6 && t == 2) {
    CoveringDesign design{d, ell, t,
                          {AttrSet::FromIndices({0, 1, 2, 3, 4, 5}),
                           AttrSet::FromIndices({3, 4, 5, 6, 7, 8}),
                           AttrSet::FromIndices({0, 1, 2, 6, 7, 8})}};
    PRIVIEW_CHECK(VerifyCovering(design));
    return design;
  }
  // C_2(4, 3) on 6 points (optimal w = 3): the complements of a perfect
  // matching.
  if (d == 6 && ell == 4 && t == 2) {
    CoveringDesign design{d, ell, t,
                          {AttrSet::FromIndices({0, 1, 2, 3}),
                           AttrSet::FromIndices({2, 3, 4, 5}),
                           AttrSet::FromIndices({0, 1, 4, 5})}};
    PRIVIEW_CHECK(VerifyCovering(design));
    return design;
  }
  return std::nullopt;
}

CoveringDesign MakeCoveringDesign(int d, int ell, int t, Rng* rng) {
  if (auto hit = CatalogCoveringDesign(d, ell, t)) return *hit;
  // Power-of-two pair coverings have an exact algebraic construction via
  // GF(2) subspace cosets (matches the La Jolla optima, e.g. C2(8,20) on
  // d=32 and C2(8,72) on d=64); prefer it when available.
  if (t == 2) {
    if (auto algebraic = SubspaceCoverDesign(d, ell, rng)) return *algebraic;
  }
  return GreedyCoveringDesign(d, ell, t, rng);
}

}  // namespace priview
