// Covering designs (Definition 3 of the paper): w blocks of ell attributes
// out of d such that every t-subset of attributes lies in some block.
//
// The paper looks designs up in the La Jolla repository; offline we
// construct them with a seeded greedy heuristic (each block is seeded with
// an uncovered t-subset and extended greedily, followed by a redundant-block
// pruning pass) plus an exact catalog for small cases. Greedy block counts
// land within a small factor of the repository optima, and every error
// formula downstream is parameterized by the actual w achieved.
#ifndef PRIVIEW_DESIGN_COVERING_DESIGN_H_
#define PRIVIEW_DESIGN_COVERING_DESIGN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "table/attr_set.h"

namespace priview {

/// A (d, ell, t)-covering design: `blocks` of size ell over {0, .., d-1}
/// covering all t-subsets.
struct CoveringDesign {
  int d = 0;
  int ell = 0;
  int t = 0;
  std::vector<AttrSet> blocks;

  int w() const { return static_cast<int>(blocks.size()); }

  /// "C_t(ell, w)" in the paper's notation.
  std::string Name() const;
};

/// True iff every t-subset of {0, .., d-1} is contained in some block and
/// every block has exactly ell attributes within range.
bool VerifyCovering(const CoveringDesign& design);

/// Average number of blocks covering a t-subset (coverage multiplicity).
double AverageCoverageMultiplicity(const CoveringDesign& design);

/// Greedy construction. Requires 1 <= t <= ell <= d, t <= 4 (enumeration of
/// t-subsets must stay tractable), d <= 64. Deterministic given the rng
/// seed. Always returns a verified covering.
CoveringDesign GreedyCoveringDesign(int d, int ell, int t, Rng* rng);

/// Exact hand-constructed designs for small parameters (e.g. the paper's
/// C_2(6, 3) on d = 9). Returns nullopt when not catalogued.
std::optional<CoveringDesign> CatalogCoveringDesign(int d, int ell, int t);

/// Best available design: catalog hit if present, else greedy.
CoveringDesign MakeCoveringDesign(int d, int ell, int t, Rng* rng);

}  // namespace priview

#endif  // PRIVIEW_DESIGN_COVERING_DESIGN_H_
