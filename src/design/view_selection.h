// View selection (paper §4.5): fix ell = 8, build covering designs for
// t = 2, 3, 4, score each with the Eq. 5 noise-error estimate, and pick the
// largest t whose noise error stays inside the paper's empirical sweet spot
// (about 0.001 – 0.003).
#ifndef PRIVIEW_DESIGN_VIEW_SELECTION_H_
#define PRIVIEW_DESIGN_VIEW_SELECTION_H_

#include <vector>

#include "design/covering_design.h"

namespace priview {

/// Eq. 5: normalized noise error of reconstructing a pair from w views of
/// size ell each, with averaging over the expected coverage multiplicity:
///   err = 2^{(ell+1)/2} / (N eps) * sqrt( w d (d-1) / (ell (ell-1)) ).
double NoiseErrorEq5(double n, int d, double epsilon, int ell, int w);

/// The ell-selection objectives from the paper's table:
/// 2^{ell/2} / (ell (ell-1)) and 2^{ell/2} / (ell (ell-1) (ell-2)).
double EllObjectivePairs(int ell);
double EllObjectiveTriples(int ell);

/// One candidate (t value) considered during selection.
struct ViewCandidate {
  int t = 0;
  CoveringDesign design;
  double noise_error = 0.0;
};

/// Outcome of view selection, including every candidate examined so the
/// §4.5 decision table can be reported.
struct ViewSelection {
  CoveringDesign design;
  double noise_error = 0.0;
  std::vector<ViewCandidate> candidates;
};

/// Options for SelectViews.
struct ViewSelectionOptions {
  int ell = 8;  // the paper's recommended block size
  int max_t = 4;
  /// Pick the largest t with noise error at most this threshold (paper:
  /// "noise error in the range 0.001 and 0.003 seems to work well").
  double noise_error_ceiling = 0.003;
};

/// Chooses a covering design for a d-dimensional dataset of (roughly) n
/// records under privacy budget epsilon. `n` may itself be a noisy count
/// obtained with a sliver of budget; a rough estimate suffices (§4.5).
ViewSelection SelectViews(int d, double n, double epsilon, Rng* rng,
                          const ViewSelectionOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_DESIGN_VIEW_SELECTION_H_
