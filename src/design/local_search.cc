#include "design/local_search.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/bits.h"
#include "common/check.h"
#include "common/combinatorics.h"

namespace priview {
namespace {

// Enumerates the t-subsets of a block as global attribute masks.
std::vector<uint64_t> SubsetMasksOf(AttrSet block, int t) {
  const std::vector<int> attrs = block.ToIndices();
  std::vector<uint64_t> out;
  for (const std::vector<int>& idx :
       AllSubsets(static_cast<int>(attrs.size()), t)) {
    uint64_t m = 0;
    for (int i : idx) m |= (1ULL << attrs[i]);
    out.push_back(m);
  }
  return out;
}

// Coverage state for a fixed block multiset: per-t-subset multiplicity and
// the list of currently uncovered subsets with O(1) add/remove.
class CoverageState {
 public:
  CoverageState(int d, int t, const std::vector<AttrSet>& blocks)
      : t_(t) {
    ForEachSubsetMask(d, t, [&](uint64_t sub) {
      count_.emplace(sub, 0);
      AddUncovered(sub);
    });
    for (AttrSet b : blocks) AddBlock(b);
  }

  void AddBlock(AttrSet block) {
    for (uint64_t sub : SubsetMasksOf(block, t_)) {
      int& c = count_[sub];
      if (c == 0) RemoveUncovered(sub);
      ++c;
    }
  }

  void RemoveBlock(AttrSet block) {
    for (uint64_t sub : SubsetMasksOf(block, t_)) {
      int& c = count_[sub];
      --c;
      PRIVIEW_CHECK(c >= 0);
      if (c == 0) AddUncovered(sub);
    }
  }

  size_t num_uncovered() const { return uncovered_.size(); }

  uint64_t RandomUncovered(Rng* rng) const {
    PRIVIEW_CHECK(!uncovered_.empty());
    return uncovered_[rng->UniformInt(uncovered_.size())];
  }

  bool IsUncovered(uint64_t sub) const { return position_.count(sub) > 0; }

  /// Number of t-subsets only this block covers (holes its removal opens).
  int RemovalCost(AttrSet block) const {
    int cost = 0;
    for (uint64_t sub : SubsetMasksOf(block, t_)) {
      if (count_.at(sub) == 1) ++cost;
    }
    return cost;
  }

 private:
  void AddUncovered(uint64_t sub) {
    position_[sub] = uncovered_.size();
    uncovered_.push_back(sub);
  }

  void RemoveUncovered(uint64_t sub) {
    const size_t pos = position_[sub];
    const uint64_t last = uncovered_.back();
    uncovered_[pos] = last;
    position_[last] = pos;
    uncovered_.pop_back();
    position_.erase(sub);
  }

  int t_;
  std::unordered_map<uint64_t, int> count_;
  std::vector<uint64_t> uncovered_;
  std::unordered_map<uint64_t, size_t> position_;
};

// Builds a block containing `seed` (a t-subset mask), filling up to `ell`
// attributes preferentially from `donor`'s attributes, then random ones.
AttrSet RebuildBlock(int d, int ell, uint64_t seed, AttrSet donor,
                     Rng* rng) {
  uint64_t block = seed;
  std::vector<int> pool = donor.Minus(AttrSet(seed)).ToIndices();
  // Shuffle the donor pool.
  for (size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng->UniformInt(i)]);
  }
  size_t pi = 0;
  while (PopCount(block) < ell) {
    int attr;
    if (pi < pool.size()) {
      attr = pool[pi++];
    } else {
      attr = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(d)));
    }
    block |= (1ULL << attr);
  }
  return AttrSet(block);
}

}  // namespace

CoveringDesign ImproveCoveringDesign(const CoveringDesign& design, Rng* rng,
                                     const LocalSearchOptions& options) {
  PRIVIEW_CHECK(rng != nullptr);
  PRIVIEW_CHECK(VerifyCovering(design));
  CoveringDesign best = design;

  int failed_attempts = 0;
  while (failed_attempts < options.max_failed_attempts && best.w() > 1) {
    // Attempt to cover with one block fewer. Start from the current best
    // minus the block whose removal leaves the fewest holes.
    std::vector<AttrSet> blocks = best.blocks;
    {
      CoverageState probe(best.d, best.t, blocks);
      size_t best_holes = SIZE_MAX;
      int victim = 0;
      for (int i = 0; i < static_cast<int>(blocks.size()); ++i) {
        probe.RemoveBlock(blocks[i]);
        const size_t holes = probe.num_uncovered();
        probe.AddBlock(blocks[i]);
        if (holes < best_holes) {
          best_holes = holes;
          victim = i;
        }
      }
      blocks.erase(blocks.begin() + victim);
    }

    CoverageState state(best.d, best.t, blocks);
    bool success = state.num_uncovered() == 0;
    // Simulated annealing on the number of uncovered t-subsets: the
    // temperature decays geometrically over the attempt so early moves
    // explore and late moves only repair.
    const double t_start = 3.0, t_end = 0.05;
    for (long long move = 0;
         !success && move < options.moves_per_attempt; ++move) {
      const double progress =
          static_cast<double>(move) / options.moves_per_attempt;
      const double temperature =
          t_start * std::pow(t_end / t_start, progress);

      const uint64_t hole = state.RandomUncovered(rng);
      // Rebuild the least-essential block among a small random sample —
      // replacing a load-bearing block is always rejected anyway.
      size_t bi = rng->UniformInt(blocks.size());
      int bi_cost = state.RemovalCost(blocks[bi]);
      for (int probe_i = 0; probe_i < 7; ++probe_i) {
        const size_t cand = rng->UniformInt(blocks.size());
        const int cost = state.RemovalCost(blocks[cand]);
        if (cost < bi_cost) {
          bi = cand;
          bi_cost = cost;
        }
      }
      const AttrSet old_block = blocks[bi];
      AttrSet candidate;
      if (rng->UniformDouble() < 0.5) {
        candidate = RebuildBlock(best.d, best.ell, hole, old_block, rng);
      } else {
        // Greedy repair: extend the hole one attribute at a time, each step
        // taking the attribute that plugs the most other holes.
        uint64_t grown = hole;
        while (PopCount(grown) < best.ell) {
          int best_attr = -1;
          int best_gain = -1;
          const std::vector<uint64_t> rests =
              SubsetMasksOf(AttrSet(grown), best.t - 1);
          for (int a = 0; a < best.d; ++a) {
            const uint64_t abit = 1ULL << a;
            if (grown & abit) continue;
            int gain = 0;
            for (uint64_t rest : rests) {
              if (state.IsUncovered(rest | abit)) ++gain;
            }
            // Random tie-break via a tiny jitter in comparison order.
            if (gain > best_gain ||
                (gain == best_gain && rng->Bernoulli(0.3))) {
              best_gain = gain;
              best_attr = a;
            }
          }
          grown |= (1ULL << best_attr);
        }
        candidate = AttrSet(grown);
      }

      const size_t before = state.num_uncovered();
      state.RemoveBlock(old_block);
      state.AddBlock(candidate);
      const size_t after = state.num_uncovered();
      const double delta =
          static_cast<double>(after) - static_cast<double>(before);
      if (delta <= 0 ||
          rng->UniformDouble() < std::exp(-delta / temperature)) {
        blocks[bi] = candidate;  // accept
        if (after == 0) success = true;
      } else {
        state.RemoveBlock(candidate);  // revert
        state.AddBlock(old_block);
      }
    }

    if (success) {
      best.blocks = blocks;
      PRIVIEW_CHECK(VerifyCovering(best));
      failed_attempts = 0;
    } else {
      ++failed_attempts;
    }
  }
  return best;
}

}  // namespace priview
