// Algebraic covering designs for power-of-two parameters via GF(2)
// subspace cosets: if S_1, .., S_r are s-dimensional subspaces of GF(2)^m
// whose union contains every nonzero vector, then the cosets of the S_i
// (r * 2^{m-s} blocks of size 2^s over d = 2^m points) cover all pairs —
// a pair {x, y} lies in a common coset of S_i iff x XOR y ∈ S_i.
//
// This reproduces the paper's best designs exactly: a 3-spread of GF(2)^6
// (9 subspaces) gives C_2(8, 72) on d = 64, and a 5-subspace cover of
// GF(2)^5 gives C_2(8, 20) on d = 32 — the La Jolla values used in §4.5.
#ifndef PRIVIEW_DESIGN_GF2_COVER_H_
#define PRIVIEW_DESIGN_GF2_COVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "design/covering_design.h"

namespace priview {

/// All s-dimensional subspaces of GF(2)^m, each as the sorted list of its
/// 2^s elements (including 0). Intended for small m (<= 8).
std::vector<std::vector<uint32_t>> AllGf2Subspaces(int m, int s);

/// Minimum-size-ish set of s-dim subspaces covering all nonzero vectors of
/// GF(2)^m (greedy set cover with randomized restarts). Returns indices
/// into AllGf2Subspaces(m, s).
std::vector<int> SubspaceCover(int m, int s, Rng* rng, int restarts = 400);

/// Pair-covering design on d = 2^m points with blocks of size 2^s built
/// from subspace cosets. Returns nullopt unless d and ell are powers of
/// two with 2 <= ell < d <= 256.
std::optional<CoveringDesign> SubspaceCoverDesign(int d, int ell, Rng* rng);

}  // namespace priview

#endif  // PRIVIEW_DESIGN_GF2_COVER_H_
