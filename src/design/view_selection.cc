#include "design/view_selection.h"

#include <cmath>

#include "common/check.h"

namespace priview {

double NoiseErrorEq5(double n, int d, double epsilon, int ell, int w) {
  PRIVIEW_CHECK(n > 0 && epsilon > 0 && ell >= 2 && w >= 1);
  const double numerator = std::pow(2.0, (ell + 1) / 2.0);
  const double coverage = static_cast<double>(w) * d * (d - 1) /
                          (static_cast<double>(ell) * (ell - 1));
  return numerator / (n * epsilon) * std::sqrt(coverage);
}

double EllObjectivePairs(int ell) {
  PRIVIEW_CHECK(ell >= 2);
  return std::pow(2.0, ell / 2.0) /
         (static_cast<double>(ell) * (ell - 1));
}

double EllObjectiveTriples(int ell) {
  PRIVIEW_CHECK(ell >= 3);
  return std::pow(2.0, ell / 2.0) /
         (static_cast<double>(ell) * (ell - 1) * (ell - 2));
}

ViewSelection SelectViews(int d, double n, double epsilon, Rng* rng,
                          const ViewSelectionOptions& options) {
  PRIVIEW_CHECK(d >= 2);
  const int ell = std::min(options.ell, d);

  ViewSelection result;
  for (int t = 2; t <= options.max_t && t <= ell; ++t) {
    ViewCandidate cand;
    cand.t = t;
    cand.design = MakeCoveringDesign(d, ell, t, rng);
    cand.noise_error = NoiseErrorEq5(n, d, epsilon, ell, cand.design.w());
    result.candidates.push_back(std::move(cand));
  }
  PRIVIEW_CHECK(!result.candidates.empty());

  // Largest t whose noise error stays under the ceiling; if even t = 2 is
  // over, use t = 2 regardless — pairs are the minimum useful coverage.
  const ViewCandidate* chosen = &result.candidates.front();
  for (const ViewCandidate& cand : result.candidates) {
    if (cand.noise_error <= options.noise_error_ceiling &&
        cand.t > chosen->t) {
      chosen = &cand;
    }
  }
  result.design = chosen->design;
  result.noise_error = chosen->noise_error;
  return result;
}

}  // namespace priview
