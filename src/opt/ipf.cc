#include "opt/ipf.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "common/bits.h"
#include "common/check.h"
#include "common/failpoint.h"

namespace priview {
namespace {

// Pre-resolved constraint: target plus the cell-index mask that maps a cell
// of the unknown table to its target cell.
struct Resolved {
  uint64_t within_mask;
  std::vector<double> target;
};

}  // namespace

IpfResult MaxEntropyIpf(AttrSet attrs, double total,
                        std::vector<MarginalConstraint> constraints,
                        const IpfOptions& options) {
  constraints = DeduplicateConstraints(std::move(constraints));

  MarginalTable table(attrs);
  const size_t num_cells = table.size();
  const double safe_total = std::max(total, 1e-12);

  // Sanitize targets: non-negativity, and rescale each to the common total
  // so the fixed-point exists even under residual inconsistency.
  std::vector<Resolved> resolved;
  resolved.reserve(constraints.size());
  for (const MarginalConstraint& c : constraints) {
    PRIVIEW_CHECK(c.scope.IsSubsetOf(attrs));
    if (c.scope.empty()) continue;  // total handled via initialization
    Resolved r;
    r.within_mask = table.CellIndexMaskFor(c.scope);
    r.target = c.target.cells();
    double tsum = 0.0;
    for (double& v : r.target) {
      if (v < 0.0) v = 0.0;
      tsum += v;
    }
    if (tsum <= 0.0) continue;  // no usable information
    const double rescale = safe_total / tsum;
    for (double& v : r.target) v *= rescale;
    resolved.push_back(std::move(r));
  }

  // Uniform start = the max-entropy solution of the unconstrained problem.
  const double uniform = safe_total / static_cast<double>(num_cells);
  for (double& c : table.cells()) c = uniform;

  IpfResult result;
  const double tol = options.relative_tolerance * std::max(1.0, safe_total);

  std::vector<double> projection;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_residual = 0.0;
    for (const Resolved& r : resolved) {
      // Current projection of the working table onto the constraint scope.
      projection.assign(r.target.size(), 0.0);
      for (uint64_t cell = 0; cell < num_cells; ++cell) {
        projection[ExtractBits(cell, r.within_mask)] += table.At(cell);
      }
      for (size_t a = 0; a < r.target.size(); ++a) {
        max_residual =
            std::max(max_residual, std::fabs(projection[a] - r.target[a]));
      }
      // Multiplicative update. Slices the table currently assigns zero mass
      // but the target wants positive mass are refilled uniformly — the
      // max-entropy completion of that slice. Cells are capped at the
      // total: a near-zero projection against a positive target produces
      // huge factors whose products can overflow to inf (and then NaN);
      // no feasible cell can exceed the total, so the cap is lossless.
      const size_t slice_size = num_cells / r.target.size();
      for (uint64_t cell = 0; cell < num_cells; ++cell) {
        const uint64_t a = ExtractBits(cell, r.within_mask);
        if (projection[a] > 0.0) {
          table.At(cell) =
              std::min(table.At(cell) * (r.target[a] / projection[a]),
                       safe_total);
        } else {
          table.At(cell) =
              r.target[a] / static_cast<double>(slice_size);
        }
      }
    }
    result.iterations = iter + 1;
    result.final_residual = max_residual;
    if (max_residual <= tol) {
      result.converged = true;
      break;
    }
  }
  if (resolved.empty()) result.converged = true;

  if (PRIVIEW_FAILPOINT("ipf/stall")) {
    result.converged = false;
    result.final_residual = std::numeric_limits<double>::infinity();
  }
  if (PRIVIEW_FAILPOINT("ipf/nan-cell") && num_cells > 0) {
    table.At(0) = std::numeric_limits<double>::quiet_NaN();
  }

  result.table = std::move(table);
  return result;
}

}  // namespace priview
