#include "opt/ipf.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "common/bits.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/simd.h"
#include "opt/solver_kernels.h"

namespace priview {
namespace {

// Projection of the working table onto a constraint scope. Each target
// cell `a` owns the sub-lattice {DepositBits(a, within) | s : s ⊆ rest},
// and NextSubset enumerates it in increasing cell order — so every
// target's sum accumulates in exactly the order a sequential
// proj[idx[cell]] += cells[cell] scatter loop would produce (bit-identical
// by non-interacting accumulators). Eight independent accumulator chains
// share one subset walk, enough to cover the addsd latency and saturate
// both load ports (0.5 cycles/cell, the floor for one load + one
// serial-order add per cell). The accumulators must stay scalar: the
// bit-identity contract forbids reassociating any target's sum, and the
// chains live in different lattice slices, so there is no vector form —
// GCC's autovectorizer nevertheless stitches them into ymm element
// inserts that pile onto the shuffle port at ~2.4x this cost, hence the
// named locals, no-tree-vectorize, and noinline (so the attribute cannot
// be lost to inlining). `bases[a]` is the precomputed slice base pointer
// cells + DepositBits(a, within) — sweep-invariant, built once per solve.
// base | s == base + s (disjoint bit ranges), so indexing folds the
// combine into the load addressing mode.
__attribute__((noinline, optimize("no-tree-vectorize"))) void IpfProjectScalar(
    const double* const* bases, uint64_t rest, double* proj,
    size_t target_size) {
  size_t a = 0;
  for (; a + 8 <= target_size; a += 8) {
    const double* b0 = bases[a];
    const double* b1 = bases[a + 1];
    const double* b2 = bases[a + 2];
    const double* b3 = bases[a + 3];
    const double* b4 = bases[a + 4];
    const double* b5 = bases[a + 5];
    const double* b6 = bases[a + 6];
    const double* b7 = bases[a + 7];
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
    uint64_t s = 0;
    do {
      a0 += b0[s];
      a1 += b1[s];
      a2 += b2[s];
      a3 += b3[s];
      a4 += b4[s];
      a5 += b5[s];
      a6 += b6[s];
      a7 += b7[s];
      s = NextSubset(s, rest);
    } while (s != 0);
    proj[a] = a0;
    proj[a + 1] = a1;
    proj[a + 2] = a2;
    proj[a + 3] = a3;
    proj[a + 4] = a4;
    proj[a + 5] = a5;
    proj[a + 6] = a6;
    proj[a + 7] = a7;
  }
  for (; a < target_size; ++a) {
    const double* base = bases[a];
    double sum = 0.0;
    uint64_t s = 0;
    do {
      sum += base[s];
      s = NextSubset(s, rest);
    } while (s != 0);
    proj[a] = sum;
  }
}

// One slice of the multiplicative update:
//   cells[c] = proj_a > 0 ? min(cells[c] * f, cap) : r
// over the slice {base | s : s subset of rest}, factor/refill/positivity
// hoisted into registers so the cell loop has no index loads and no
// per-cell branch misprediction.
inline void IpfScaleOneSlice(double* slice, uint64_t rest, double proj_a,
                             double f, double r, double cap) {
  uint64_t s = 0;
  if (proj_a > 0.0) {
    do {
      slice[s] = std::min(slice[s] * f, cap);
      s = NextSubset(s, rest);
    } while (s != 0);
  } else {
    do {
      slice[s] = r;
      s = NextSubset(s, rest);
    } while (s != 0);
  }
}

// Lattice form of the multiplicative update. Four slices share one
// NextSubset chain (the serial dependence that otherwise bounds the loop
// at ~2 cycles/cell), feeding four independent mul/min/store streams —
// the same interleave that makes IpfProjectScalar fast. Every cell still
// receives the identical single operation as the sequential per-cell form
// (cells are independent — update order across cells cannot affect bits);
// the rare quad with a non-positive projection falls back to the
// single-slice walk.
void IpfScaleCellsLattice(double* const* bases, uint64_t rest,
                          const double* proj, const double* factor,
                          const double* refill, double cap,
                          size_t target_size) {
  size_t a = 0;
  for (; a + 4 <= target_size; a += 4) {
    if (proj[a] > 0.0 && proj[a + 1] > 0.0 && proj[a + 2] > 0.0 &&
        proj[a + 3] > 0.0) {
      double* const b0 = bases[a];
      double* const b1 = bases[a + 1];
      double* const b2 = bases[a + 2];
      double* const b3 = bases[a + 3];
      const double f0 = factor[a];
      const double f1 = factor[a + 1];
      const double f2 = factor[a + 2];
      const double f3 = factor[a + 3];
      uint64_t s = 0;
      do {
        b0[s] = std::min(b0[s] * f0, cap);
        b1[s] = std::min(b1[s] * f1, cap);
        b2[s] = std::min(b2[s] * f2, cap);
        b3[s] = std::min(b3[s] * f3, cap);
        s = NextSubset(s, rest);
      } while (s != 0);
    } else {
      for (size_t k = a; k < a + 4; ++k) {
        IpfScaleOneSlice(bases[k], rest, proj[k], factor[k], refill[k], cap);
      }
    }
  }
  for (; a < target_size; ++a) {
    IpfScaleOneSlice(bases[a], rest, proj[a], factor[a], refill[a], cap);
  }
}

}  // namespace

IpfSolveInfo MaxEntropyIpfInto(std::span<double> cells, AttrSet attrs,
                               double total,
                               std::span<const MarginalConstraint> constraints,
                               Arena& arena, const IpfOptions& options) {
  const uint64_t num_cells = uint64_t{1} << attrs.size();
  PRIVIEW_CHECK(cells.size() == num_cells);
  const double safe_total = std::max(total, 1e-12);

  // Everything below is scratch; the caller keeps only `cells`.
  Arena::Rewind rewind(arena);

  std::span<ResolvedConstraint> resolved =
      ResolveConstraints(attrs, constraints, arena);

  // Sanitize targets in place: non-negativity, and rescale each to the
  // common total so the fixed point exists even under residual
  // inconsistency. Unusable constraints (empty scope, zero mass) drop out;
  // order is otherwise preserved.
  size_t usable = 0;
  size_t max_target = 1;
  for (size_t i = 0; i < resolved.size(); ++i) {
    ResolvedConstraint r = resolved[i];
    if (r.scope.empty()) continue;  // total handled via initialization
    double tsum = 0.0;
    for (double& v : r.target) {
      if (v < 0.0) v = 0.0;
      tsum += v;
    }
    if (tsum <= 0.0) continue;  // no usable information
    const double rescale = safe_total / tsum;
    for (double& v : r.target) v *= rescale;
    max_target = std::max(max_target, r.target.size());
    resolved[usable++] = r;
  }
  resolved = resolved.subspan(0, usable);

  std::span<double> projection = arena.AllocSpan<double>(max_target);
  std::span<double> factor = arena.AllocSpan<double>(max_target);

  // Sweep-invariant per-constraint tables, built once per solve:
  //   * refill values — the uniform completion a zero-mass slice snaps to
  //     when its target wants positive mass — depend only on the
  //     (sanitized) target and the slice size: one divide per target per
  //     solve instead of one per target per sweep;
  //   * slice base pointers cells + DepositBits(a, within) — the PDEP per
  //     target per sweep becomes a pointer load.
  std::span<std::span<const double>> refills =
      arena.AllocSpan<std::span<const double>>(resolved.size());
  std::span<std::span<double* const>> slice_bases =
      arena.AllocSpan<std::span<double* const>>(resolved.size());
  for (size_t i = 0; i < resolved.size(); ++i) {
    const ResolvedConstraint& r = resolved[i];
    const double slice_size =
        static_cast<double>(num_cells / r.target.size());
    const std::span<double> refill = arena.AllocSpan<double>(r.target.size());
    const std::span<double*> bases =
        arena.AllocSpan<double*>(r.target.size());
    for (size_t a = 0; a < r.target.size(); ++a) {
      refill[a] = r.target[a] / slice_size;
      bases[a] = cells.data() + DepositBits(a, r.within_mask);
    }
    refills[i] = refill;
    slice_bases[i] = bases;
  }

  // Uniform start = the max-entropy solution of the unconstrained problem.
  const double uniform = safe_total / static_cast<double>(num_cells);
  for (double& c : cells) c = uniform;

  IpfSolveInfo info;
  const double tol = options.relative_tolerance * std::max(1.0, safe_total);
  const bool use_avx2 =
      simd::ActiveLevel() == simd::Level::kAvx2 && num_cells >= 4;

  // Block-granular bitmap of cells in the subnormal neighborhood,
  // refreshed once per sweep. Multiplies touching subnormals cost a
  // microcode assist, and IPF's descent parks cells at the bottom of the
  // subnormal range where every subsequent scale pass re-pays it; flagged
  // blocks route through the exact integer multiply instead
  // (IpfTinyMul — identical bits, no assist). A cell that turns tiny
  // mid-sweep is slow until the next scan, never wrong.
  std::span<uint64_t> tiny_words;
  if (use_avx2) {
    tiny_words = arena.AllocSpan<uint64_t>((num_cells / 4 + 63) / 64);
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const bool any_tiny =
        use_avx2 &&
        internal::IpfScanTinyAvx2(cells.data(), num_cells, tiny_words.data());
    double max_residual = 0.0;
    for (size_t ci = 0; ci < resolved.size(); ++ci) {
      const ResolvedConstraint& r = resolved[ci];
      const size_t target_size = r.target.size();
      const double* refill = refills[ci].data();
      double* const* bases = slice_bases[ci].data();
      const uint64_t rest = (num_cells - 1) & ~r.within_mask;
      // Current projection of the working table onto the constraint scope.
      // Stays scalar in both SIMD levels: the accumulation order per target
      // cell is part of the determinism contract.
      IpfProjectScalar(bases, rest, projection.data(), target_size);
      // Residual and per-slice quotient. The quotient is hoisted out of
      // the cell loop (same division, computed once instead of once per
      // cell); the AVX2 variant fuses both loops with vector divides
      // (IEEE-exact, so bit-identical — max over finite absolutes is
      // order-independent).
      if (use_avx2) {
        max_residual = std::max(
            max_residual,
            internal::IpfFactorResidualAvx2(projection.data(), r.target.data(),
                                            factor.data(), target_size));
      } else {
        for (size_t a = 0; a < target_size; ++a) {
          max_residual =
              std::max(max_residual, std::fabs(projection[a] - r.target[a]));
          factor[a] =
              projection[a] > 0.0 ? r.target[a] / projection[a] : 0.0;
        }
      }
      // Multiplicative update. Slices the table currently assigns zero mass
      // but the target wants positive mass are refilled uniformly — the
      // max-entropy completion of that slice. Cells are capped at the
      // total: a near-zero projection against a positive target produces
      // huge factors whose products can overflow to inf (and then NaN);
      // no feasible cell can exceed the total, so the cap is lossless.
      if (use_avx2) {
        if (any_tiny) {
          internal::IpfScaleLatticeAvx2Checked(
              cells.data(), num_cells, r.within_mask, projection.data(),
              factor.data(), refill, safe_total, tiny_words.data());
        } else {
          internal::IpfScaleLatticeAvx2(cells.data(), num_cells,
                                        r.within_mask, projection.data(),
                                        factor.data(), refill, safe_total);
        }
      } else {
        IpfScaleCellsLattice(bases, rest, projection.data(), factor.data(),
                             refill, safe_total, target_size);
      }
    }
    info.iterations = iter + 1;
    info.final_residual = max_residual;
    if (max_residual <= tol) {
      info.converged = true;
      break;
    }
  }
  if (resolved.empty()) info.converged = true;

  if (PRIVIEW_FAILPOINT("ipf/stall")) {
    info.converged = false;
    info.final_residual = std::numeric_limits<double>::infinity();
  }
  if (PRIVIEW_FAILPOINT("ipf/nan-cell") && num_cells > 0) {
    cells[0] = std::numeric_limits<double>::quiet_NaN();
  }
  return info;
}

IpfResult MaxEntropyIpf(AttrSet attrs, double total,
                        std::span<const MarginalConstraint> constraints,
                        Arena& arena, const IpfOptions& options) {
  IpfResult result;
  MarginalTable table(attrs);
  const IpfSolveInfo info = MaxEntropyIpfInto(
      std::span<double>(table.cells()), attrs, total, constraints, arena,
      options);
  result.table = std::move(table);
  result.iterations = info.iterations;
  result.converged = info.converged;
  result.final_residual = info.final_residual;
  return result;
}

IpfResult MaxEntropyIpf(AttrSet attrs, double total,
                        std::span<const MarginalConstraint> constraints,
                        const IpfOptions& options) {
  return MaxEntropyIpf(attrs, total, constraints, ThreadLocalArena(), options);
}

}  // namespace priview
