// Maximum-entropy reconstruction via Iterative Proportional Fitting.
//
// IPF is the classical coordinate dual-ascent method for the optimization
// the paper states in §4.3: maximize entropy of the k-way table subject to
// the marginal constraints supplied by the views. For consistent
// constraints it converges to exactly that maximum-entropy solution; for
// noisy, mildly inconsistent constraints we follow the paper's relaxation
// spirit — targets are clamped to be non-negative, rescaled to a common
// total, and the sweep stops after a bounded number of iterations.
#ifndef PRIVIEW_OPT_IPF_H_
#define PRIVIEW_OPT_IPF_H_

#include <vector>

#include "opt/constraint.h"
#include "table/marginal_table.h"

namespace priview {

struct IpfOptions {
  int max_iterations = 500;  // full sweeps over all constraints
  /// Converged when every constraint's Linf residual is below
  /// tolerance * max(1, total).
  double relative_tolerance = 1e-9;
};

struct IpfResult {
  MarginalTable table;
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;  // max Linf over constraints
};

/// Solves for the max-entropy table over `attrs` with total count `total`
/// subject to `constraints`. Constraint scopes must be subsets of `attrs`;
/// they are deduplicated internally.
IpfResult MaxEntropyIpf(AttrSet attrs, double total,
                        std::vector<MarginalConstraint> constraints,
                        const IpfOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_IPF_H_
