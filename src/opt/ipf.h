// Maximum-entropy reconstruction via Iterative Proportional Fitting.
//
// IPF is the classical coordinate dual-ascent method for the optimization
// the paper states in §4.3: maximize entropy of the k-way table subject to
// the marginal constraints supplied by the views. For consistent
// constraints it converges to exactly that maximum-entropy solution; for
// noisy, mildly inconsistent constraints we follow the paper's relaxation
// spirit — targets are clamped to be non-negative, rescaled to a common
// total, and the sweep stops after a bounded number of iterations.
//
// The solver core is arena-backed and allocation-free: constraints are
// resolved once into the arena (merged targets + precomputed slice-index
// tables), every sweep runs over flat arrays with per-slice factors
// hoisted out of the cell loop, and the multiplicative update dispatches
// to an AVX2 kernel with a bit-identical scalar fallback (common/simd.h).
#ifndef PRIVIEW_OPT_IPF_H_
#define PRIVIEW_OPT_IPF_H_

#include <span>

#include "common/arena.h"
#include "opt/constraint.h"
#include "table/marginal_table.h"

namespace priview {

struct IpfOptions {
  int max_iterations = 500;  // full sweeps over all constraints
  /// Converged when every constraint's Linf residual is below
  /// tolerance * max(1, total).
  double relative_tolerance = 1e-9;
};

/// Outcome of the allocation-free core (no table attached).
struct IpfSolveInfo {
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;  // max Linf over constraints
};

struct IpfResult {
  MarginalTable table;
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
};

/// Allocation-free core: solves for the max-entropy table over `attrs`
/// with total count `total` subject to `constraints` (scopes must be
/// subsets of `attrs`; deduplicated internally), writing the solution into
/// caller-provided `cells` of size 2^|attrs|. All scratch comes from
/// `arena` and is rewound on return, so a warm arena makes the whole call
/// heap-free.
IpfSolveInfo MaxEntropyIpfInto(std::span<double> cells, AttrSet attrs,
                               double total,
                               std::span<const MarginalConstraint> constraints,
                               Arena& arena, const IpfOptions& options = {});

/// Managed wrapper: allocates the result table, scratch from `arena`.
IpfResult MaxEntropyIpf(AttrSet attrs, double total,
                        std::span<const MarginalConstraint> constraints,
                        Arena& arena, const IpfOptions& options = {});

/// Convenience wrapper on the per-thread solver arena (common/arena.h).
IpfResult MaxEntropyIpf(AttrSet attrs, double total,
                        std::span<const MarginalConstraint> constraints,
                        const IpfOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_IPF_H_
