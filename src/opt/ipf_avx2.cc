// AVX2 kernel for the IPF multiplicative update, in the same lattice form
// as the scalar implementation in ipf.cc. Compiled with -mavx2 and
// -ffp-contract=off (and deliberately WITHOUT -mfma): every operation is
// element-wise — multiply, min, blend, store — so the results are
// bit-identical to the scalar lattice. solver_golden_test pins this
// against fixtures captured from the pre-SIMD implementation.
//
// Structure: cell index bits split into the scope bits (`within`) and the
// complement (`rest`). Factor the low 2 bits out of both masks: a cell
// index is then (g | s | lane) with g a subset of within's high bits, s a
// subset of rest's high bits, and lane the low 2 bits. For fixed g, the
// four lanes of every aligned 4-cell block map to the same four (not
// necessarily distinct) target cells, so the per-lane factor, refill and
// positivity-mask vectors are built once per group and the inner walk over
// s is pure load/mul/min/blend/store on contiguous memory — no gathers (a
// gather-based variant measured no faster than scalar on current Intel
// parts; hoisting the per-slice values out of the cell loop is the whole
// win).
//
// Subnormal-parked cells get special handling: IpfScanTinyAvx2 flags
// 4-cell blocks holding cells in (0, 2^-1020) once per sweep, and the
// kChecked kernel variant routes flagged blocks through IpfTinyMul (an
// exact integer multiply on the 2^-1074 grid) so the stuck cells at the
// bottom of the subnormal range stop paying the FPU's denormal microcode
// assist on every scale pass. Same bits either way — the hardware result
// is correct, just ~100 cycles slower per multiply.
#include "opt/solver_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "common/bits.h"

namespace priview {
namespace internal {

namespace {

// Which of the two low cell-index bits belong to the constraint scope.
// This decides how a 4-cell block's lanes map onto target cells — always
// to a run of 1, 2 or 4 *consecutive* targets, because PEXT packs the low
// scope bits into the low result bits.
enum class Low2 { kNone, kBit0, kBit1, kBoth };

// Expands src[a0...] into the per-lane vector for a 4-cell block.
//   kNone: lanes (a0, a0, a0, a0)     kBit0: lanes (a0, a0+1, a0, a0+1)
//   kBit1: lanes (a0, a0, a0+1, a0+1) kBoth: lanes (a0, ..., a0+3)
template <Low2 P>
inline __m256d ExpandLanes(const double* src, size_t a0) {
  if constexpr (P == Low2::kNone) {
    return _mm256_set1_pd(src[a0]);
  } else if constexpr (P == Low2::kBit0) {
    return _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(src + a0));
  } else if constexpr (P == Low2::kBit1) {
    return _mm256_permute4x64_pd(
        _mm256_castpd128_pd256(_mm_loadu_pd(src + a0)), 0x50);
  } else {
    return _mm256_loadu_pd(src + a0);
  }
}

// Lane -> target-cell offset from the group's first target, fixed by the
// Low2 pattern (PEXT packs the low scope bits into the low result bits).
template <Low2 P>
constexpr size_t LaneTargetOffset(size_t lane) {
  if constexpr (P == Low2::kNone) return 0;
  if constexpr (P == Low2::kBit0) return lane & 1;
  if constexpr (P == Low2::kBit1) return lane >> 1;
  return lane;
}

// The per-lane scalar form of the update for a block flagged as containing
// tiny cells: IpfTinyMul computes the exact product bits for the lanes in
// the subnormal neighborhood with no microcode assist; everything else
// falls back to the hardware scalar multiply. std::min(m, cap) returns m
// when m is NaN — the same pick as MINPD with cap first — and the
// explicit proj > 0 test matches _CMP_GT_OQ, so this path is
// bit-identical to the vector one.
template <Low2 P>
void ScaleTinyBlock(double* block, size_t a0, const double* proj,
                    const double* factor, const double* refill, double cap) {
  for (size_t lane = 0; lane < 4; ++lane) {
    const size_t a = a0 + LaneTargetOffset<P>(lane);
    const double x = block[lane];
    double out;
    if (proj[a] > 0.0) {
      if (!IpfTinyMul(x, factor[a], &out)) {
        out = std::min(x * factor[a], cap);
      }
    } else {
      out = refill[a];
    }
    block[lane] = out;
  }
}

template <Low2 P, bool kChecked>
void ScaleImpl(double* cells, uint64_t within_hi, uint64_t rest_hi,
               const double* proj, const double* factor, const double* refill,
               const __m256d vcap, double cap, const uint64_t* tiny_words) {
  constexpr int kShift = P == Low2::kNone ? 0 : P == Low2::kBoth ? 2 : 1;
  const __m256d zero = _mm256_setzero_pd();
  uint64_t g = 0;
  size_t g_idx = 0;
  do {
    // NextSubset enumerates groups in increasing order and PEXT is
    // monotone, so this group's first target is just g_idx scaled by the
    // targets-per-group count.
    const size_t a0 = g_idx << kShift;
    const __m256d pos =
        _mm256_cmp_pd(ExpandLanes<P>(proj, a0), zero, _CMP_GT_OQ);
    const __m256d vf = ExpandLanes<P>(factor, a0);
    // g | s == g + s (disjoint bit ranges): a per-group base pointer folds
    // the combine into the load/store addressing mode.
    double* const block = cells + g;
    if (_mm256_movemask_pd(pos) == 0xF) {
      // All four slices have positive projection (the steady state: a
      // slice only loses all mass via a zero factor, and then stays
      // there) — no refill blend needed. blendv with an all-ones mask
      // returns `scaled` exactly, so both branches are bit-identical.
      uint64_t s = 0;
      do {
        if constexpr (kChecked) {
          const uint64_t b = (g + s) >> 2;
          if ((tiny_words[b >> 6] >> (b & 63)) & 1) {
            ScaleTinyBlock<P>(block + s, a0, proj, factor, refill, cap);
            s = NextSubset(s, rest_hi);
            continue;
          }
        }
        const __m256d x = _mm256_loadu_pd(block + s);
        // min(x * f, cap) with std::min(x*f, cap) NaN semantics: VMINPD
        // returns the second operand on an unordered compare, so cap
        // goes first.
        _mm256_storeu_pd(block + s,
                         _mm256_min_pd(vcap, _mm256_mul_pd(x, vf)));
        s = NextSubset(s, rest_hi);
      } while (s != 0);
    } else {
      const __m256d vr = ExpandLanes<P>(refill, a0);
      uint64_t s = 0;
      do {
        if constexpr (kChecked) {
          const uint64_t b = (g + s) >> 2;
          if ((tiny_words[b >> 6] >> (b & 63)) & 1) {
            ScaleTinyBlock<P>(block + s, a0, proj, factor, refill, cap);
            s = NextSubset(s, rest_hi);
            continue;
          }
        }
        const __m256d x = _mm256_loadu_pd(block + s);
        const __m256d scaled = _mm256_min_pd(vcap, _mm256_mul_pd(x, vf));
        _mm256_storeu_pd(block + s, _mm256_blendv_pd(vr, scaled, pos));
        s = NextSubset(s, rest_hi);
      } while (s != 0);
    }
    g = NextSubset(g, within_hi);
    ++g_idx;
  } while (g != 0);
}

template <bool kChecked>
void ScaleDispatch(double* cells, uint64_t num_cells, uint64_t within,
                   const double* proj, const double* factor,
                   const double* refill, double cap,
                   const uint64_t* tiny_words) {
  const uint64_t rest = (num_cells - 1) & ~within;
  const uint64_t within_hi = within & ~uint64_t{3};
  const uint64_t rest_hi = rest & ~uint64_t{3};
  const __m256d vcap = _mm256_set1_pd(cap);
  switch (within & 3) {
    case 0:
      ScaleImpl<Low2::kNone, kChecked>(cells, within_hi, rest_hi, proj,
                                       factor, refill, vcap, cap, tiny_words);
      break;
    case 1:
      ScaleImpl<Low2::kBit0, kChecked>(cells, within_hi, rest_hi, proj,
                                       factor, refill, vcap, cap, tiny_words);
      break;
    case 2:
      ScaleImpl<Low2::kBit1, kChecked>(cells, within_hi, rest_hi, proj,
                                       factor, refill, vcap, cap, tiny_words);
      break;
    default:
      ScaleImpl<Low2::kBoth, kChecked>(cells, within_hi, rest_hi, proj,
                                       factor, refill, vcap, cap, tiny_words);
      break;
  }
}

}  // namespace

void IpfScaleLatticeAvx2(double* cells, uint64_t num_cells, uint64_t within,
                         const double* proj, const double* factor,
                         const double* refill, double cap) {
  ScaleDispatch<false>(cells, num_cells, within, proj, factor, refill, cap,
                       nullptr);
}

void IpfScaleLatticeAvx2Checked(double* cells, uint64_t num_cells,
                                uint64_t within, const double* proj,
                                const double* factor, const double* refill,
                                double cap, const uint64_t* tiny_words) {
  ScaleDispatch<true>(cells, num_cells, within, proj, factor, refill, cap,
                      tiny_words);
}

bool IpfScanTinyAvx2(const double* cells, uint64_t num_cells,
                     uint64_t* words) {
  // Positive doubles order like their bit patterns as signed integers, so
  // 0 < cell < 2^-1000 is two integer compares. Negative cells read as
  // negative integers and fail the > 0 test; the kernels' cells are
  // non-negative anyway.
  constexpr long long kTinyThreshBits = 3LL << 52;  // bits of 2^-1020
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vthresh = _mm256_set1_epi64x(kTinyThreshBits);
  uint64_t any = 0;
  const uint64_t num_blocks = num_cells / 4;
  for (uint64_t w = 0; w * 64 < num_blocks; ++w) {
    uint64_t bits = 0;
    const uint64_t end = std::min<uint64_t>(64, num_blocks - w * 64);
    const double* base = cells + w * 256;
    for (uint64_t b = 0; b < end; ++b) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 4 * b));
      const __m256i tiny = _mm256_and_si256(_mm256_cmpgt_epi64(x, vzero),
                                            _mm256_cmpgt_epi64(vthresh, x));
      const int m = _mm256_movemask_pd(_mm256_castsi256_pd(tiny));
      bits |= static_cast<uint64_t>(m != 0) << b;
    }
    words[w] = bits;
    any |= bits;
  }
  return any != 0;
}

double IpfFactorResidualAvx2(const double* proj, const double* target,
                             double* factor, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  // fabs as a sign-bit clear — bitwise identical to std::fabs.
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(0x7fffffffffffffffULL)));
  __m256d vmax = zero;
  size_t a = 0;
  for (; a + 4 <= n; a += 4) {
    const __m256d p = _mm256_loadu_pd(proj + a);
    const __m256d t = _mm256_loadu_pd(target + a);
    vmax = _mm256_max_pd(vmax, _mm256_and_pd(abs_mask, _mm256_sub_pd(p, t)));
    // p > 0 ? t / p : 0.0. The divide runs unconditionally (a non-positive
    // lane yields inf/NaN) and the mask AND forces those lanes to +0.0,
    // exactly the scalar else-branch.
    const __m256d f = _mm256_div_pd(t, p);
    const __m256d pos = _mm256_cmp_pd(p, zero, _CMP_GT_OQ);
    _mm256_storeu_pd(factor + a, _mm256_and_pd(f, pos));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  double max_residual =
      std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
  for (; a < n; ++a) {
    max_residual = std::max(max_residual, std::fabs(proj[a] - target[a]));
    factor[a] = proj[a] > 0.0 ? target[a] / proj[a] : 0.0;
  }
  return max_residual;
}

}  // namespace internal
}  // namespace priview

#else  // !defined(__AVX2__)

#include "common/check.h"

namespace priview {
namespace internal {

void IpfScaleLatticeAvx2(double*, uint64_t, uint64_t, const double*,
                         const double*, const double*, double) {
  PRIVIEW_CHECK(false);  // dispatch must not route here without AVX2
}

void IpfScaleLatticeAvx2Checked(double*, uint64_t, uint64_t, const double*,
                                const double*, const double*, double,
                                const uint64_t*) {
  PRIVIEW_CHECK(false);  // dispatch must not route here without AVX2
}

bool IpfScanTinyAvx2(const double*, uint64_t, uint64_t*) {
  PRIVIEW_CHECK(false);  // dispatch must not route here without AVX2
  return false;
}

double IpfFactorResidualAvx2(const double*, const double*, double*, size_t) {
  PRIVIEW_CHECK(false);  // dispatch must not route here without AVX2
  return 0.0;
}

}  // namespace internal
}  // namespace priview

#endif  // defined(__AVX2__)
