#include "opt/constraint.h"

#include <map>

#include "common/check.h"

namespace priview {

std::vector<MarginalConstraint> DeduplicateConstraints(
    std::vector<MarginalConstraint> constraints) {
  // Merge duplicates of the same scope by averaging.
  std::map<AttrSet, std::pair<MarginalTable, int>> by_scope;
  for (MarginalConstraint& c : constraints) {
    PRIVIEW_CHECK(c.target.attrs() == c.scope);
    auto it = by_scope.find(c.scope);
    if (it == by_scope.end()) {
      by_scope.emplace(c.scope, std::make_pair(std::move(c.target), 1));
    } else {
      MarginalTable& acc = it->second.first;
      for (size_t i = 0; i < acc.size(); ++i) {
        acc.At(i) += c.target.At(i);
      }
      it->second.second += 1;
    }
  }
  std::vector<MarginalConstraint> merged;
  merged.reserve(by_scope.size());
  for (auto& [scope, entry] : by_scope) {
    MarginalTable table = std::move(entry.first);
    if (entry.second > 1) {
      table.Scale(1.0 / entry.second);
    }
    merged.push_back({scope, std::move(table)});
  }

  // Drop scopes strictly contained in another scope.
  std::vector<MarginalConstraint> result;
  for (size_t i = 0; i < merged.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < merged.size(); ++j) {
      if (i == j) continue;
      if (merged[i].scope.IsSubsetOf(merged[j].scope) &&
          merged[i].scope != merged[j].scope) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(std::move(merged[i]));
  }
  return result;
}

}  // namespace priview
