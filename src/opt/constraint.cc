#include "opt/constraint.h"

#include <map>

#include "common/bits.h"
#include "common/check.h"

namespace priview {

std::vector<MarginalConstraint> DeduplicateConstraints(
    std::span<const MarginalConstraint> constraints) {
  // Merge duplicates of the same scope by averaging.
  std::map<AttrSet, std::pair<MarginalTable, int>> by_scope;
  for (const MarginalConstraint& c : constraints) {
    PRIVIEW_CHECK(c.target.attrs() == c.scope);
    auto it = by_scope.find(c.scope);
    if (it == by_scope.end()) {
      by_scope.emplace(c.scope, std::make_pair(c.target, 1));
    } else {
      MarginalTable& acc = it->second.first;
      for (size_t i = 0; i < acc.size(); ++i) {
        acc.At(i) += c.target.At(i);
      }
      it->second.second += 1;
    }
  }
  std::vector<MarginalConstraint> merged;
  merged.reserve(by_scope.size());
  for (auto& [scope, entry] : by_scope) {
    MarginalTable table = std::move(entry.first);
    if (entry.second > 1) {
      table.Scale(1.0 / entry.second);
    }
    merged.push_back({scope, std::move(table)});
  }

  // Drop scopes strictly contained in another scope.
  std::vector<MarginalConstraint> result;
  for (size_t i = 0; i < merged.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < merged.size(); ++j) {
      if (i == j) continue;
      if (merged[i].scope.IsSubsetOf(merged[j].scope) &&
          merged[i].scope != merged[j].scope) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(std::move(merged[i]));
  }
  return result;
}

std::span<ResolvedConstraint> ResolveConstraints(
    AttrSet attrs, std::span<const MarginalConstraint> constraints,
    Arena& arena) {
  const uint64_t num_cells = uint64_t{1} << attrs.size();

  // Merge into a scope-sorted working set: the arena analogue of the
  // std::map in DeduplicateConstraints. Sorted insertion keeps the merged
  // order identical to map iteration; accumulation in input order keeps
  // the averaged sums bit-identical.
  std::span<ResolvedConstraint> merged =
      arena.AllocSpan<ResolvedConstraint>(constraints.size());
  std::span<int32_t> counts = arena.AllocSpan<int32_t>(constraints.size());
  size_t m = 0;
  for (const MarginalConstraint& c : constraints) {
    PRIVIEW_CHECK(c.target.attrs() == c.scope);
    PRIVIEW_CHECK(c.scope.IsSubsetOf(attrs));
    // Sorted position of this scope among the merged entries.
    size_t pos = 0;
    while (pos < m && merged[pos].scope < c.scope) ++pos;
    if (pos < m && merged[pos].scope == c.scope) {
      std::span<double> acc = merged[pos].target;
      for (size_t i = 0; i < acc.size(); ++i) acc[i] += c.target.At(i);
      ++counts[pos];
      continue;
    }
    for (size_t j = m; j > pos; --j) {
      merged[j] = merged[j - 1];
      counts[j] = counts[j - 1];
    }
    ResolvedConstraint entry;
    entry.scope = c.scope;
    std::span<double> cells = arena.AllocSpan<double>(c.target.size());
    for (size_t i = 0; i < cells.size(); ++i) cells[i] = c.target.At(i);
    entry.target = cells;
    merged[pos] = entry;
    counts[pos] = 1;
    ++m;
  }
  for (size_t j = 0; j < m; ++j) {
    if (counts[j] > 1) {
      const double factor = 1.0 / counts[j];
      for (double& v : merged[j].target) v *= factor;
    }
  }

  // Drop scopes strictly contained in another merged scope, preserving
  // order, then resolve the survivors.
  size_t kept = 0;
  for (size_t i = 0; i < m; ++i) {
    bool dominated = false;
    for (size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      if (merged[i].scope.IsSubsetOf(merged[j].scope) &&
          merged[i].scope != merged[j].scope) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged[kept++] = merged[i];
  }

  for (size_t j = 0; j < kept; ++j) {
    ResolvedConstraint& r = merged[j];
    // CellIndexMaskFor, without materializing a probe table.
    r.within_mask = ExtractBits(r.scope.mask(), attrs.mask());
    std::span<int32_t> idx = arena.AllocSpan<int32_t>(num_cells);
    // Fill cell -> target-cell without any per-cell PEXT: target cell `a`
    // owns the lattice {DepositBits(a, mask) | sub : sub ⊆ ~mask}.
    const uint64_t rest_mask = (num_cells - 1) & ~r.within_mask;
    const uint64_t target_size = uint64_t{1} << r.scope.size();
    for (uint64_t a = 0; a < target_size; ++a) {
      const uint64_t base = DepositBits(a, r.within_mask);
      uint64_t sub = 0;
      do {
        idx[base | sub] = static_cast<int32_t>(a);
        sub = NextSubset(sub, rest_mask);
      } while (sub != 0);
    }
    r.slice_index = idx;
  }
  return merged.subspan(0, kept);
}

}  // namespace priview
