// Dense two-phase primal simplex for the small linear programs the paper
// needs: the Barak-style Fourier-LP post-processing and the LP / CLP
// reconstruction variants. Problems here have at most a few hundred
// variables and ~a thousand rows, squarely in dense-tableau territory.
// Bland's rule guarantees termination (no cycling) at the cost of a few
// extra pivots — the right trade for a correctness-first reproduction.
//
// The tableau itself is unmanaged: a non-owning view over one flat arena
// allocation (basis int32s first, then the 32-byte-aligned double payload
// of coefficients, rhs and cost row). SolveLpInto is the allocation-free
// core over that view; SolveLp is the thin owning wrapper that attaches a
// result vector. Pivot arithmetic keeps the pre-arena scalar expression
// shapes so compiler contraction matches bit-for-bit (solver_golden_test).
#ifndef PRIVIEW_OPT_SIMPLEX_H_
#define PRIVIEW_OPT_SIMPLEX_H_

#include <span>
#include <vector>

#include "common/arena.h"

namespace priview {

/// Linear program: minimize c·x subject to the rows, x >= 0.
struct LpProblem {
  enum class Relation { kLe, kGe, kEq };

  struct Row {
    std::vector<double> coeffs;  // length num_vars
    Relation relation = Relation::kLe;
    double rhs = 0.0;
  };

  int num_vars = 0;
  std::vector<double> objective;  // length num_vars
  std::vector<Row> rows;

  /// Convenience appenders.
  void AddLe(std::vector<double> coeffs, double rhs) {
    rows.push_back({std::move(coeffs), Relation::kLe, rhs});
  }
  void AddGe(std::vector<double> coeffs, double rhs) {
    rows.push_back({std::move(coeffs), Relation::kGe, rhs});
  }
  void AddEq(std::vector<double> coeffs, double rhs) {
    rows.push_back({std::move(coeffs), Relation::kEq, rhs});
  }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Outcome of the allocation-free core (no solution vector attached).
struct LpSolveInfo {
  LpStatus status = LpStatus::kIterationLimit;
  double objective_value = 0.0;
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective_value = 0.0;
  std::vector<double> x;
};

struct LpOptions {
  int max_pivots = 200000;
  double epsilon = 1e-9;
};

/// Allocation-free core: solves the LP with all tableau storage drawn from
/// `arena` (rewound on return). `x` must have length num_vars; it is
/// written only when the returned status is kOptimal.
LpSolveInfo SolveLpInto(const LpProblem& problem, std::span<double> x,
                        Arena& arena, const LpOptions& options = {});

/// Owning wrapper: attaches the solution vector, tableau from `arena`.
LpResult SolveLp(const LpProblem& problem, Arena& arena,
                 const LpOptions& options = {});

/// Convenience wrapper on the per-thread solver arena.
LpResult SolveLp(const LpProblem& problem, const LpOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_SIMPLEX_H_
