// Dense two-phase primal simplex for the small linear programs the paper
// needs: the Barak-style Fourier-LP post-processing and the LP / CLP
// reconstruction variants. Problems here have at most a few hundred
// variables and ~a thousand rows, squarely in dense-tableau territory.
// Bland's rule guarantees termination (no cycling) at the cost of a few
// extra pivots — the right trade for a correctness-first reproduction.
#ifndef PRIVIEW_OPT_SIMPLEX_H_
#define PRIVIEW_OPT_SIMPLEX_H_

#include <vector>

namespace priview {

/// Linear program: minimize c·x subject to the rows, x >= 0.
struct LpProblem {
  enum class Relation { kLe, kGe, kEq };

  struct Row {
    std::vector<double> coeffs;  // length num_vars
    Relation relation = Relation::kLe;
    double rhs = 0.0;
  };

  int num_vars = 0;
  std::vector<double> objective;  // length num_vars
  std::vector<Row> rows;

  /// Convenience appenders.
  void AddLe(std::vector<double> coeffs, double rhs) {
    rows.push_back({std::move(coeffs), Relation::kLe, rhs});
  }
  void AddGe(std::vector<double> coeffs, double rhs) {
    rows.push_back({std::move(coeffs), Relation::kGe, rhs});
  }
  void AddEq(std::vector<double> coeffs, double rhs) {
    rows.push_back({std::move(coeffs), Relation::kEq, rhs});
  }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective_value = 0.0;
  std::vector<double> x;
};

struct LpOptions {
  int max_pivots = 200000;
  double epsilon = 1e-9;
};

/// Solves the LP. x is meaningful only when status == kOptimal.
LpResult SolveLp(const LpProblem& problem, const LpOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_SIMPLEX_H_
