// Marginal constraints: the common input format of all reconstruction
// solvers. A constraint fixes the projection of the unknown k-way table
// onto a sub-scope to a target marginal (obtained from a view).
#ifndef PRIVIEW_OPT_CONSTRAINT_H_
#define PRIVIEW_OPT_CONSTRAINT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

/// "The marginal of the unknown table over `scope` equals `target`."
/// `target.attrs() == scope`, and scope must be a subset of the unknown
/// table's attribute set.
struct MarginalConstraint {
  AttrSet scope;
  MarginalTable target;
};

/// Removes redundant constraints: duplicates of the same scope are merged
/// by cell-wise averaging, and scopes contained in another constraint's
/// scope are dropped (their content is implied when views are consistent,
/// exactly the situation after PriView's consistency step). The input is a
/// read-only view — callers no longer pay a vector + tables copy per call.
std::vector<MarginalConstraint> DeduplicateConstraints(
    std::span<const MarginalConstraint> constraints);

/// A constraint resolved against the solve's full attribute set, with all
/// per-sweep work hoisted out of the solver loop and into the arena:
/// merged target cells, the cell-index mask of the scope, and a
/// precomputed cell -> target-cell index table (the software/hardware PEXT
/// that used to run per cell per sweep now runs zero times per sweep).
struct ResolvedConstraint {
  AttrSet scope;
  uint64_t within_mask = 0;
  /// Merged (same-scope-averaged) target cells; arena-owned, mutable so a
  /// solver can sanitize in place.
  std::span<double> target;
  /// slice_index[cell] == ExtractBits(cell, within_mask), for every cell of
  /// the full table. int32 so SIMD gathers can consume it directly.
  std::span<const int32_t> slice_index;
};

/// Deduplicates `constraints` (identical semantics and result order as
/// DeduplicateConstraints: same-scope averaging in input order,
/// dominated-scope drop, ascending scope order) directly into `arena` — no
/// heap allocation — and resolves each survivor against `attrs` (mask +
/// slice-index table). Scopes must be subsets of `attrs`. The returned
/// spans are valid until the arena is reset or rewound past them.
std::span<ResolvedConstraint> ResolveConstraints(
    AttrSet attrs, std::span<const MarginalConstraint> constraints,
    Arena& arena);

}  // namespace priview

#endif  // PRIVIEW_OPT_CONSTRAINT_H_
