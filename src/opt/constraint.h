// Marginal constraints: the common input format of all reconstruction
// solvers. A constraint fixes the projection of the unknown k-way table
// onto a sub-scope to a target marginal (obtained from a view).
#ifndef PRIVIEW_OPT_CONSTRAINT_H_
#define PRIVIEW_OPT_CONSTRAINT_H_

#include <vector>

#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

/// "The marginal of the unknown table over `scope` equals `target`."
/// `target.attrs() == scope`, and scope must be a subset of the unknown
/// table's attribute set.
struct MarginalConstraint {
  AttrSet scope;
  MarginalTable target;
};

/// Removes redundant constraints: duplicates of the same scope are merged
/// by cell-wise averaging, and scopes contained in another constraint's
/// scope are dropped (their content is implied when views are consistent,
/// exactly the situation after PriView's consistency step).
std::vector<MarginalConstraint> DeduplicateConstraints(
    std::vector<MarginalConstraint> constraints);

}  // namespace priview

#endif  // PRIVIEW_OPT_CONSTRAINT_H_
