// Independent max-entropy solver used to cross-validate the IPF solver.
//
// Works in the dual: the max-entropy distribution subject to marginal
// constraints has the log-linear form p(a) ∝ exp(Σ_c λ_c[proj_c(a)]).
// We ascend the dual by coordinate steps on the potentials λ_c and
// re-materialize the primal from the potentials at every pass, so numerical
// error does not accumulate in the table the way it can with in-place
// multiplicative updates. Agreement of the two solvers on random instances
// is asserted in tests.
//
// Like IPF, the core is arena-backed and allocation-free: resolved
// constraints, potentials and the log-density scratch all live in the
// request arena. The transcendental loop stays scalar (libm exp/log are
// the determinism reference), so there is no SIMD split here.
#ifndef PRIVIEW_OPT_MAX_ENT_DUAL_H_
#define PRIVIEW_OPT_MAX_ENT_DUAL_H_

#include <span>

#include "common/arena.h"
#include "opt/constraint.h"
#include "table/marginal_table.h"

namespace priview {

struct MaxEntDualOptions {
  int max_iterations = 2000;
  double relative_tolerance = 1e-9;
};

/// Outcome of the allocation-free core (no table attached).
struct MaxEntDualSolveInfo {
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
};

struct MaxEntDualResult {
  MarginalTable table;
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
};

/// Allocation-free core; same contract as MaxEntropyIpfInto.
MaxEntDualSolveInfo MaxEntropyDualInto(
    std::span<double> cells, AttrSet attrs, double total,
    std::span<const MarginalConstraint> constraints, Arena& arena,
    const MaxEntDualOptions& options = {});

/// Managed wrapper: allocates the result table, scratch from `arena`.
MaxEntDualResult MaxEntropyDual(AttrSet attrs, double total,
                                std::span<const MarginalConstraint> constraints,
                                Arena& arena,
                                const MaxEntDualOptions& options = {});

/// Convenience wrapper on the per-thread solver arena.
MaxEntDualResult MaxEntropyDual(AttrSet attrs, double total,
                                std::span<const MarginalConstraint> constraints,
                                const MaxEntDualOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_MAX_ENT_DUAL_H_
