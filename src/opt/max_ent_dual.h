// Independent max-entropy solver used to cross-validate the IPF solver.
//
// Works in the dual: the max-entropy distribution subject to marginal
// constraints has the log-linear form p(a) ∝ exp(Σ_c λ_c[proj_c(a)]).
// We ascend the dual by coordinate steps on the potentials λ_c and
// re-materialize the primal from the potentials at every pass, so numerical
// error does not accumulate in the table the way it can with in-place
// multiplicative updates. Agreement of the two solvers on random instances
// is asserted in tests.
#ifndef PRIVIEW_OPT_MAX_ENT_DUAL_H_
#define PRIVIEW_OPT_MAX_ENT_DUAL_H_

#include <vector>

#include "opt/constraint.h"
#include "table/marginal_table.h"

namespace priview {

struct MaxEntDualOptions {
  int max_iterations = 2000;
  double relative_tolerance = 1e-9;
};

struct MaxEntDualResult {
  MarginalTable table;
  int iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
};

/// Same contract as MaxEntropyIpf.
MaxEntDualResult MaxEntropyDual(AttrSet attrs, double total,
                                std::vector<MarginalConstraint> constraints,
                                const MaxEntDualOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_MAX_ENT_DUAL_H_
