#include "opt/simplex.h"

#include <cmath>
#include <cstddef>
#include <limits>

#include "common/check.h"

namespace priview {
namespace {

// Dense tableau: m rows, each row holds coefficients for all structural,
// slack and artificial columns plus the rhs. Row i has basic variable
// basis[i]. Objective handled as a separate cost row.
//
// Pivoting: Dantzig (most negative reduced cost) for speed, permanently
// switching to Bland's rule after a long degenerate stall so termination
// is still guaranteed.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<size_t>(rows) * cols, 0.0), rhs_(rows, 0.0),
        cost_(cols, 0.0), basis_(rows, -1) {}

  double& At(int r, int c) { return a_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return a_[static_cast<size_t>(r) * cols_ + c];
  }

  int rows() const { return rows_; }
  std::vector<double>& rhs() { return rhs_; }
  std::vector<double>& cost() { return cost_; }
  std::vector<int>& basis() { return basis_; }
  double cost_rhs() const { return cost_rhs_; }

  // Eliminates basic columns from the cost row.
  void PriceOut() {
    for (int r = 0; r < rows_; ++r) {
      const int bv = basis_[r];
      const double c = cost_[bv];
      if (c == 0.0) continue;
      const double* row = &a_[static_cast<size_t>(r) * cols_];
      for (int j = 0; j < cols_; ++j) cost_[j] -= c * row[j];
      cost_rhs_ -= c * rhs_[r];
    }
  }

  void Pivot(int pr, int pc) {
    double* prow = &a_[static_cast<size_t>(pr) * cols_];
    const double inv = 1.0 / prow[pc];
    for (int j = 0; j < cols_; ++j) prow[j] *= inv;
    rhs_[pr] *= inv;
    for (int r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double* row = &a_[static_cast<size_t>(r) * cols_];
      const double factor = row[pc];
      if (factor == 0.0) continue;
      for (int j = 0; j < cols_; ++j) row[j] -= factor * prow[j];
      rhs_[r] -= factor * rhs_[pr];
    }
    const double cfactor = cost_[pc];
    if (cfactor != 0.0) {
      for (int j = 0; j < cols_; ++j) cost_[j] -= cfactor * prow[j];
      cost_rhs_ -= cfactor * rhs_[pr];
    }
    basis_[pr] = pc;
  }

  // Runs simplex restricted to columns [0, usable_cols).
  LpStatus Run(int usable_cols, int* pivots_left, double eps) {
    bool bland = false;
    int stall = 0;
    double last_objective = -cost_rhs_;
    while (true) {
      // Entering column.
      int pc = -1;
      if (bland) {
        for (int j = 0; j < usable_cols; ++j) {
          if (cost_[j] < -eps) {
            pc = j;
            break;
          }
        }
      } else {
        double most_negative = -eps;
        for (int j = 0; j < usable_cols; ++j) {
          if (cost_[j] < most_negative) {
            most_negative = cost_[j];
            pc = j;
          }
        }
      }
      if (pc < 0) return LpStatus::kOptimal;

      // Leaving row: min ratio, ties broken toward the lowest basic index
      // (harmless under Dantzig, required under Bland).
      int pr = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rows_; ++r) {
        const double a = At(r, pc);
        if (a > eps) {
          const double ratio = rhs_[r] / a;
          if (ratio < best_ratio - eps ||
              (std::fabs(ratio - best_ratio) <= eps &&
               (pr < 0 || basis_[r] < basis_[pr]))) {
            best_ratio = ratio;
            pr = r;
          }
        }
      }
      if (pr < 0) return LpStatus::kUnbounded;
      Pivot(pr, pc);
      if (--(*pivots_left) <= 0) return LpStatus::kIterationLimit;

      // Degenerate-stall detection: no objective movement for many pivots
      // means Dantzig might be cycling; Bland's rule cannot.
      const double objective = -cost_rhs_;
      if (!bland) {
        if (std::fabs(objective - last_objective) <= eps) {
          if (++stall > 200) bland = true;
        } else {
          stall = 0;
        }
      }
      last_objective = objective;
    }
  }

 private:
  int rows_, cols_;
  std::vector<double> a_;
  std::vector<double> rhs_;
  std::vector<double> cost_;
  std::vector<int> basis_;
  double cost_rhs_ = 0.0;
};

}  // namespace

LpResult SolveLp(const LpProblem& problem, const LpOptions& options) {
  const int n = problem.num_vars;
  const int m = static_cast<int>(problem.rows.size());
  PRIVIEW_CHECK(static_cast<int>(problem.objective.size()) == n);

  // Column layout: structural | slacks/surpluses | artificials. A row only
  // gets an artificial when its slack cannot seed the basis (equalities,
  // and >=-like rows after rhs normalization).
  int num_slack = 0;
  int num_artificial = 0;
  for (const auto& row : problem.rows) {
    const double sign = (row.rhs < 0.0) ? -1.0 : 1.0;
    if (row.relation != LpProblem::Relation::kEq) {
      ++num_slack;
      const double slack_coeff =
          sign * ((row.relation == LpProblem::Relation::kLe) ? 1.0 : -1.0);
      if (slack_coeff < 0.0) ++num_artificial;
    } else {
      ++num_artificial;
    }
  }
  const int art_base = n + num_slack;
  const int total_cols = art_base + num_artificial;

  Tableau tab(m, total_cols);
  int slack_idx = n;
  int art_idx = art_base;
  for (int r = 0; r < m; ++r) {
    const auto& row = problem.rows[r];
    PRIVIEW_CHECK(static_cast<int>(row.coeffs.size()) == n);
    const double sign = (row.rhs < 0.0) ? -1.0 : 1.0;  // normalize rhs >= 0
    for (int j = 0; j < n; ++j) tab.At(r, j) = sign * row.coeffs[j];
    tab.rhs()[r] = sign * row.rhs;
    bool need_artificial = true;
    if (row.relation != LpProblem::Relation::kEq) {
      const double slack_coeff =
          sign * ((row.relation == LpProblem::Relation::kLe) ? 1.0 : -1.0);
      tab.At(r, slack_idx) = slack_coeff;
      if (slack_coeff > 0.0) {
        tab.basis()[r] = slack_idx;  // slack seeds the basis
        need_artificial = false;
      }
      ++slack_idx;
    }
    if (need_artificial) {
      tab.At(r, art_idx) = 1.0;
      tab.basis()[r] = art_idx;
      ++art_idx;
    }
  }
  PRIVIEW_CHECK(art_idx == total_cols);

  int pivots_left = options.max_pivots;

  // Phase 1: minimize the sum of artificials (skipped when there are none).
  if (num_artificial > 0) {
    for (int j = art_base; j < total_cols; ++j) tab.cost()[j] = 1.0;
    tab.PriceOut();
    const LpStatus st = tab.Run(total_cols, &pivots_left, options.epsilon);
    LpResult result;
    if (st == LpStatus::kIterationLimit || st == LpStatus::kUnbounded) {
      // Phase 1 is bounded below by 0, so kUnbounded cannot legitimately
      // happen; treat both as iteration trouble.
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    if (tab.cost_rhs() < -1e-6) {  // phase-1 optimum = -sum(artificials)
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for (int r = 0; r < m; ++r) {
      if (tab.basis()[r] >= art_base) {
        for (int j = 0; j < art_base; ++j) {
          if (std::fabs(tab.At(r, j)) > options.epsilon) {
            tab.Pivot(r, j);
            break;
          }
        }
        // An all-zero row is redundant; its artificial stays at value 0.
      }
    }
  }

  // Phase 2: original objective; artificials excluded from entering.
  for (double& c : tab.cost()) c = 0.0;
  for (int j = 0; j < n; ++j) tab.cost()[j] = problem.objective[j];
  tab.PriceOut();
  const LpStatus st = tab.Run(art_base, &pivots_left, options.epsilon);
  LpResult result;
  if (st != LpStatus::kOptimal) {
    result.status = st;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.x.assign(n, 0.0);
  for (int r = 0; r < m; ++r) {
    if (tab.basis()[r] < n) result.x[tab.basis()[r]] = tab.rhs()[r];
  }
  result.objective_value = 0.0;
  for (int j = 0; j < n; ++j) {
    result.objective_value += problem.objective[j] * result.x[j];
  }
  return result;
}

}  // namespace priview
