#include "opt/simplex.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace priview {
namespace {

// Unmanaged dense tableau: m rows, each row holds coefficients for all
// structural, slack and artificial columns plus the rhs. Row i has basic
// variable basis[i]. Objective handled as a separate cost row.
//
// The struct owns nothing — Create() carves everything out of the arena in
// one layout (basis int32s first, then the 32-byte-aligned doubles), and
// the whole thing evaporates when the caller's Rewind scope closes. `cols`
// is the full column capacity (the row stride); Run() restricts only the
// *entering* column to a prefix, so elimination always sweeps the full
// stride exactly as the pre-arena implementation did.
//
// Pivoting: Dantzig (most negative reduced cost) for speed, permanently
// switching to Bland's rule after a long degenerate stall so termination
// is still guaranteed.
struct Tableau {
  int rows = 0;
  int cols = 0;
  int32_t* basis = nullptr;
  double* a = nullptr;     // rows x cols, row major
  double* rhs = nullptr;   // rows
  double* cost = nullptr;  // cols
  double cost_rhs = 0.0;

  static Tableau Create(Arena& arena, int rows, int cols) {
    Tableau t;
    t.rows = rows;
    t.cols = cols;
    t.basis = arena.AllocSpan<int32_t>(rows, int32_t{-1}).data();
    t.a = arena
              .AllocSpan<double>(static_cast<size_t>(rows) * cols, 0.0)
              .data();
    t.rhs = arena.AllocSpan<double>(rows, 0.0).data();
    t.cost = arena.AllocSpan<double>(cols, 0.0).data();
    return t;
  }

  double& At(int r, int c) { return a[static_cast<size_t>(r) * cols + c]; }
  double At(int r, int c) const {
    return a[static_cast<size_t>(r) * cols + c];
  }

  // Eliminates basic columns from the cost row.
  void PriceOut() {
    for (int r = 0; r < rows; ++r) {
      const int bv = basis[r];
      const double c = cost[bv];
      if (c == 0.0) continue;
      const double* row = &a[static_cast<size_t>(r) * cols];
      for (int j = 0; j < cols; ++j) cost[j] -= c * row[j];
      cost_rhs -= c * rhs[r];
    }
  }

  void Pivot(int pr, int pc) {
    double* prow = &a[static_cast<size_t>(pr) * cols];
    const double inv = 1.0 / prow[pc];
    for (int j = 0; j < cols; ++j) prow[j] *= inv;
    rhs[pr] *= inv;
    for (int r = 0; r < rows; ++r) {
      if (r == pr) continue;
      double* row = &a[static_cast<size_t>(r) * cols];
      const double factor = row[pc];
      if (factor == 0.0) continue;
      for (int j = 0; j < cols; ++j) row[j] -= factor * prow[j];
      rhs[r] -= factor * rhs[pr];
    }
    const double cfactor = cost[pc];
    if (cfactor != 0.0) {
      for (int j = 0; j < cols; ++j) cost[j] -= cfactor * prow[j];
      cost_rhs -= cfactor * rhs[pr];
    }
    basis[pr] = pc;
  }

  // Runs simplex restricted to entering columns [0, usable_cols).
  LpStatus Run(int usable_cols, int* pivots_left, double eps) {
    bool bland = false;
    int stall = 0;
    double last_objective = -cost_rhs;
    while (true) {
      // Entering column.
      int pc = -1;
      if (bland) {
        for (int j = 0; j < usable_cols; ++j) {
          if (cost[j] < -eps) {
            pc = j;
            break;
          }
        }
      } else {
        double most_negative = -eps;
        for (int j = 0; j < usable_cols; ++j) {
          if (cost[j] < most_negative) {
            most_negative = cost[j];
            pc = j;
          }
        }
      }
      if (pc < 0) return LpStatus::kOptimal;

      // Leaving row: min ratio, ties broken toward the lowest basic index
      // (harmless under Dantzig, required under Bland).
      int pr = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rows; ++r) {
        const double av = At(r, pc);
        if (av > eps) {
          const double ratio = rhs[r] / av;
          if (ratio < best_ratio - eps ||
              (std::fabs(ratio - best_ratio) <= eps &&
               (pr < 0 || basis[r] < basis[pr]))) {
            best_ratio = ratio;
            pr = r;
          }
        }
      }
      if (pr < 0) return LpStatus::kUnbounded;
      Pivot(pr, pc);
      if (--(*pivots_left) <= 0) return LpStatus::kIterationLimit;

      // Degenerate-stall detection: no objective movement for many pivots
      // means Dantzig might be cycling; Bland's rule cannot.
      const double objective = -cost_rhs;
      if (!bland) {
        if (std::fabs(objective - last_objective) <= eps) {
          if (++stall > 200) bland = true;
        } else {
          stall = 0;
        }
      }
      last_objective = objective;
    }
  }
};

}  // namespace

LpSolveInfo SolveLpInto(const LpProblem& problem, std::span<double> x,
                        Arena& arena, const LpOptions& options) {
  const int n = problem.num_vars;
  const int m = static_cast<int>(problem.rows.size());
  PRIVIEW_CHECK(static_cast<int>(problem.objective.size()) == n);
  PRIVIEW_CHECK(static_cast<int>(x.size()) == n);

  Arena::Rewind rewind(arena);

  // Column layout: structural | slacks/surpluses | artificials. A row only
  // gets an artificial when its slack cannot seed the basis (equalities,
  // and >=-like rows after rhs normalization).
  int num_slack = 0;
  int num_artificial = 0;
  for (const auto& row : problem.rows) {
    const double sign = (row.rhs < 0.0) ? -1.0 : 1.0;
    if (row.relation != LpProblem::Relation::kEq) {
      ++num_slack;
      const double slack_coeff =
          sign * ((row.relation == LpProblem::Relation::kLe) ? 1.0 : -1.0);
      if (slack_coeff < 0.0) ++num_artificial;
    } else {
      ++num_artificial;
    }
  }
  const int art_base = n + num_slack;
  const int total_cols = art_base + num_artificial;

  Tableau tab = Tableau::Create(arena, m, total_cols);
  int slack_idx = n;
  int art_idx = art_base;
  for (int r = 0; r < m; ++r) {
    const auto& row = problem.rows[r];
    PRIVIEW_CHECK(static_cast<int>(row.coeffs.size()) == n);
    const double sign = (row.rhs < 0.0) ? -1.0 : 1.0;  // normalize rhs >= 0
    for (int j = 0; j < n; ++j) tab.At(r, j) = sign * row.coeffs[j];
    tab.rhs[r] = sign * row.rhs;
    bool need_artificial = true;
    if (row.relation != LpProblem::Relation::kEq) {
      const double slack_coeff =
          sign * ((row.relation == LpProblem::Relation::kLe) ? 1.0 : -1.0);
      tab.At(r, slack_idx) = slack_coeff;
      if (slack_coeff > 0.0) {
        tab.basis[r] = slack_idx;  // slack seeds the basis
        need_artificial = false;
      }
      ++slack_idx;
    }
    if (need_artificial) {
      tab.At(r, art_idx) = 1.0;
      tab.basis[r] = art_idx;
      ++art_idx;
    }
  }
  PRIVIEW_CHECK(art_idx == total_cols);

  int pivots_left = options.max_pivots;
  LpSolveInfo info;

  // Phase 1: minimize the sum of artificials (skipped when there are none).
  if (num_artificial > 0) {
    for (int j = art_base; j < total_cols; ++j) tab.cost[j] = 1.0;
    tab.PriceOut();
    const LpStatus st = tab.Run(total_cols, &pivots_left, options.epsilon);
    if (st == LpStatus::kIterationLimit || st == LpStatus::kUnbounded) {
      // Phase 1 is bounded below by 0, so kUnbounded cannot legitimately
      // happen; treat both as iteration trouble.
      info.status = LpStatus::kIterationLimit;
      return info;
    }
    if (tab.cost_rhs < -1e-6) {  // phase-1 optimum = -sum(artificials)
      info.status = LpStatus::kInfeasible;
      return info;
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for (int r = 0; r < m; ++r) {
      if (tab.basis[r] >= art_base) {
        for (int j = 0; j < art_base; ++j) {
          if (std::fabs(tab.At(r, j)) > options.epsilon) {
            tab.Pivot(r, j);
            break;
          }
        }
        // An all-zero row is redundant; its artificial stays at value 0.
      }
    }
  }

  // Phase 2: original objective; artificials excluded from entering.
  for (int j = 0; j < total_cols; ++j) tab.cost[j] = 0.0;
  for (int j = 0; j < n; ++j) tab.cost[j] = problem.objective[j];
  tab.PriceOut();
  const LpStatus st = tab.Run(art_base, &pivots_left, options.epsilon);
  if (st != LpStatus::kOptimal) {
    info.status = st;
    return info;
  }

  info.status = LpStatus::kOptimal;
  for (int j = 0; j < n; ++j) x[j] = 0.0;
  for (int r = 0; r < m; ++r) {
    if (tab.basis[r] < n) x[tab.basis[r]] = tab.rhs[r];
  }
  info.objective_value = 0.0;
  for (int j = 0; j < n; ++j) {
    info.objective_value += problem.objective[j] * x[j];
  }
  return info;
}

LpResult SolveLp(const LpProblem& problem, Arena& arena,
                 const LpOptions& options) {
  LpResult result;
  std::vector<double> x(problem.num_vars, 0.0);
  const LpSolveInfo info = SolveLpInto(problem, x, arena, options);
  result.status = info.status;
  result.objective_value = info.objective_value;
  if (info.status == LpStatus::kOptimal) result.x = std::move(x);
  return result;
}

LpResult SolveLp(const LpProblem& problem, const LpOptions& options) {
  return SolveLp(problem, ThreadLocalArena(), options);
}

}  // namespace priview
