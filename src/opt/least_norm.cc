#include "opt/least_norm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/failpoint.h"

namespace priview {
namespace {

// Dense kernels over arena-backed row-major storage. These replicate the
// former common/linalg loops expression-for-expression (including the
// zero-skip in the transposed product and the i<=j symmetric Gram fill) so
// that the compiler's contraction/vectorization choices — and therefore
// the bits of the results — match the pre-arena implementation.

void MatVec(const double* a, int rows, int cols, const double* v,
            double* out) {
  for (int i = 0; i < rows; ++i) {
    double sum = 0.0;
    const double* row = &a[static_cast<size_t>(i) * cols];
    for (int j = 0; j < cols; ++j) sum += row[j] * v[j];
    out[i] = sum;
  }
}

void TransposedMatVec(const double* a, int rows, int cols, const double* v,
                      double* out) {
  for (int j = 0; j < cols; ++j) out[j] = 0.0;
  for (int i = 0; i < rows; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const double* row = &a[static_cast<size_t>(i) * cols];
    for (int j = 0; j < cols; ++j) out[j] += row[j] * vi;
  }
}

void GramRows(const double* a, int rows, int cols, double* out) {
  for (int i = 0; i < rows; ++i) {
    const double* ri = &a[static_cast<size_t>(i) * cols];
    for (int j = i; j < rows; ++j) {
      const double* rj = &a[static_cast<size_t>(j) * cols];
      double sum = 0.0;
      for (int k = 0; k < cols; ++k) sum += ri[k] * rj[k];
      out[static_cast<size_t>(i) * rows + j] = sum;
      out[static_cast<size_t>(j) * rows + i] = sum;
    }
  }
}

// In-place lower-triangular Cholesky of a + ridge*I (a is n x n, row
// major; the factor is written into l). Returns false if not positive
// definite even after the ridge.
bool CholeskyFactor(const double* a, int n, double ridge, double* l) {
  for (size_t i = 0; i < static_cast<size_t>(n) * n; ++i) l[i] = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a[static_cast<size_t>(i) * n + j] + ((i == j) ? ridge : 0.0);
      for (int k = 0; k < j; ++k) {
        sum -= l[static_cast<size_t>(i) * n + k] *
               l[static_cast<size_t>(j) * n + k];
      }
      if (i == j) {
        if (sum <= 0.0) return false;
        l[static_cast<size_t>(i) * n + i] = std::sqrt(sum);
      } else {
        l[static_cast<size_t>(i) * n + j] =
            sum / l[static_cast<size_t>(j) * n + j];
      }
    }
  }
  return true;
}

// Solves L Lᵀ x = b by forward then back substitution. `y` is n scratch
// doubles; `x` receives the solution (may not alias b).
void CholeskySolve(const double* l, int n, const double* b, double* y,
                   double* x) {
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l[static_cast<size_t>(i) * n + k] * y[k];
    y[i] = sum / l[static_cast<size_t>(i) * n + i];
  }
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (int k = i + 1; k < n; ++k) {
      sum -= l[static_cast<size_t>(k) * n + i] * x[k];
    }
    x[i] = sum / l[static_cast<size_t>(i) * n + i];
  }
}

}  // namespace

LeastNormSolveInfo LeastNormSolveInto(
    std::span<double> cells, AttrSet attrs, double total,
    std::span<const MarginalConstraint> constraints, Arena& arena,
    const LeastNormOptions& options) {
  const size_t num_cells = size_t{1} << attrs.size();
  PRIVIEW_CHECK(cells.size() == num_cells);
  const double safe_total = std::max(total, 0.0);

  Arena::Rewind rewind(arena);

  std::span<ResolvedConstraint> resolved =
      ResolveConstraints(attrs, constraints, arena);

  // Stacked constraint system Cx = b: the total-count (all-ones) row first,
  // then one 0/1 indicator row per (scope, target cell).
  int rows = 1;
  for (const ResolvedConstraint& r : resolved) {
    if (!r.scope.empty()) rows += static_cast<int>(r.target.size());
  }

  std::span<double> c_mat =
      arena.AllocSpan<double>(static_cast<size_t>(rows) * num_cells, 0.0);
  std::span<double> b = arena.AllocSpan<double>(static_cast<size_t>(rows));
  int row = 0;
  for (uint64_t cell = 0; cell < num_cells; ++cell) {
    c_mat[static_cast<size_t>(row) * num_cells + cell] = 1.0;
  }
  b[row] = safe_total;
  ++row;

  for (const ResolvedConstraint& r : resolved) {
    if (r.scope.empty()) continue;
    const int base = row;
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      const int target_cell = static_cast<int>(r.slice_index[cell]);
      c_mat[static_cast<size_t>(base + target_cell) * num_cells + cell] = 1.0;
    }
    for (size_t a = 0; a < r.target.size(); ++a) {
      b[base + static_cast<int>(a)] = std::max(r.target[a], 0.0);
    }
    row += static_cast<int>(r.target.size());
  }

  // Factor C Cᵀ once; the ridge handles the (always present) redundancy of
  // each scope's rows summing to the total row.
  std::span<double> gram =
      arena.AllocSpan<double>(static_cast<size_t>(rows) * rows);
  GramRows(c_mat.data(), rows, static_cast<int>(num_cells), gram.data());
  double trace = 0.0;
  for (int i = 0; i < rows; ++i) {
    trace += gram[static_cast<size_t>(i) * rows + i];
  }
  std::span<double> chol =
      arena.AllocSpan<double>(static_cast<size_t>(rows) * rows);
  const double ridge = std::max(1e-10 * trace, 1e-12);
  PRIVIEW_CHECK(
      CholeskyFactor(gram.data(), rows, ridge, chol.data()));

  std::span<double> residual = arena.AllocSpan<double>(rows);
  std::span<double> sub_y = arena.AllocSpan<double>(rows);
  std::span<double> dual = arena.AllocSpan<double>(rows);
  std::span<double> correction = arena.AllocSpan<double>(num_cells);

  auto project_affine = [&](double* x) {
    MatVec(c_mat.data(), rows, static_cast<int>(num_cells), x,
           residual.data());
    for (int i = 0; i < rows; ++i) residual[i] -= b[i];
    CholeskySolve(chol.data(), rows, residual.data(), sub_y.data(),
                  dual.data());
    TransposedMatVec(c_mat.data(), rows, static_cast<int>(num_cells),
                     dual.data(), correction.data());
    for (size_t i = 0; i < num_cells; ++i) x[i] -= correction[i];
  };

  // Dykstra between the affine set and the orthant, starting from 0 so the
  // limit is the min-norm point of the intersection. `cells` is the iterate
  // x; p is the orthant correction memory.
  for (double& v : cells) v = 0.0;
  std::span<double> p = arena.AllocSpan<double>(num_cells, 0.0);

  LeastNormSolveInfo info;
  const double tol = options.tolerance * std::max(1.0, safe_total);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    project_affine(cells.data());
    // How infeasible w.r.t. the orthant are we?
    double neg = 0.0;
    for (double v : cells) neg = std::max(neg, -v);

    for (size_t i = 0; i < num_cells; ++i) {
      const double s = cells[i] + p[i];
      const double yi = std::max(0.0, s);
      p[i] = s - yi;
      cells[i] = yi;
    }

    info.iterations = iter + 1;
    if (neg <= tol) {
      info.converged = true;
      break;
    }
  }
  // Final cleanup: clamp the tiny residual negativity.
  for (double& v : cells) v = std::max(v, 0.0);

  if (PRIVIEW_FAILPOINT("leastnorm/stall")) info.converged = false;

  return info;
}

LeastNormResult LeastNormSolve(AttrSet attrs, double total,
                               std::span<const MarginalConstraint> constraints,
                               Arena& arena,
                               const LeastNormOptions& options) {
  LeastNormResult result;
  MarginalTable table(attrs);
  const LeastNormSolveInfo info = LeastNormSolveInto(
      std::span<double>(table.cells()), attrs, total, constraints, arena,
      options);
  result.table = std::move(table);
  result.iterations = info.iterations;
  result.converged = info.converged;
  return result;
}

LeastNormResult LeastNormSolve(AttrSet attrs, double total,
                               std::span<const MarginalConstraint> constraints,
                               const LeastNormOptions& options) {
  return LeastNormSolve(attrs, total, constraints, ThreadLocalArena(),
                        options);
}

}  // namespace priview
