#include "opt/least_norm.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/linalg.h"

namespace priview {
namespace {

// Builds the stacked constraint system Cx = b, one row per (scope, target
// cell). Rows are 0/1 indicators of cells projecting onto the target cell.
// The total-count constraint (all-ones row) is appended explicitly.
struct System {
  Matrix c;
  std::vector<double> b;
};

System BuildSystem(AttrSet attrs, double total,
                   const std::vector<MarginalConstraint>& constraints) {
  const size_t num_cells = size_t{1} << attrs.size();
  MarginalTable probe(attrs);

  int rows = 1;  // total-count row
  for (const MarginalConstraint& c : constraints) {
    if (!c.scope.empty()) rows += static_cast<int>(c.target.size());
  }

  System sys{Matrix(rows, static_cast<int>(num_cells)),
             std::vector<double>(rows)};
  int row = 0;
  for (uint64_t cell = 0; cell < num_cells; ++cell) {
    sys.c(row, static_cast<int>(cell)) = 1.0;
  }
  sys.b[row] = total;
  ++row;

  for (const MarginalConstraint& c : constraints) {
    if (c.scope.empty()) continue;
    const uint64_t within = probe.CellIndexMaskFor(c.scope);
    const int base = row;
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      const int target_cell = static_cast<int>(ExtractBits(cell, within));
      sys.c(base + target_cell, static_cast<int>(cell)) = 1.0;
    }
    for (size_t a = 0; a < c.target.size(); ++a) {
      sys.b[base + static_cast<int>(a)] = std::max(c.target.At(a), 0.0);
    }
    row += static_cast<int>(c.target.size());
  }
  return sys;
}

}  // namespace

LeastNormResult LeastNormSolve(AttrSet attrs, double total,
                               std::vector<MarginalConstraint> constraints,
                               const LeastNormOptions& options) {
  constraints = DeduplicateConstraints(std::move(constraints));
  const double safe_total = std::max(total, 0.0);
  const System sys = BuildSystem(attrs, safe_total, constraints);
  const size_t num_cells = size_t{1} << attrs.size();

  // Factor C Cᵀ once; the ridge handles the (always present) redundancy of
  // each scope's rows summing to the total row.
  Matrix gram = sys.c.GramRows();
  double trace = 0.0;
  for (int i = 0; i < gram.rows(); ++i) trace += gram(i, i);
  Cholesky chol;
  const double ridge = std::max(1e-10 * trace, 1e-12);
  PRIVIEW_CHECK(chol.Factor(gram, ridge));

  auto project_affine = [&](std::vector<double>* x) {
    std::vector<double> residual = sys.c.MatVec(*x);
    for (size_t i = 0; i < residual.size(); ++i) residual[i] -= sys.b[i];
    const std::vector<double> y = chol.Solve(residual);
    const std::vector<double> correction = sys.c.TransposedMatVec(y);
    for (size_t i = 0; i < x->size(); ++i) (*x)[i] -= correction[i];
  };

  // Dykstra between the affine set and the orthant, starting from 0 so the
  // limit is the min-norm point of the intersection.
  std::vector<double> x(num_cells, 0.0);
  std::vector<double> p(num_cells, 0.0);  // orthant correction memory

  LeastNormResult result;
  const double tol = options.tolerance * std::max(1.0, safe_total);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    project_affine(&x);
    // How infeasible w.r.t. the orthant are we?
    double neg = 0.0;
    for (double v : x) neg = std::max(neg, -v);

    std::vector<double> y = x;
    for (size_t i = 0; i < y.size(); ++i) {
      y[i] = std::max(0.0, x[i] + p[i]);
      p[i] = x[i] + p[i] - y[i];
    }
    x = std::move(y);

    result.iterations = iter + 1;
    if (neg <= tol) {
      result.converged = true;
      break;
    }
  }
  // Final cleanup: clamp the tiny residual negativity.
  for (double& v : x) v = std::max(v, 0.0);

  if (PRIVIEW_FAILPOINT("leastnorm/stall")) result.converged = false;

  result.table = MarginalTable(attrs, std::move(x));
  return result;
}

}  // namespace priview
