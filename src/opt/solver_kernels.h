// Internal AVX2 kernel entry points for the solver hot loops, defined in
// the dedicated -mavx2 translation units (*_avx2.cc). Callers must gate on
// simd::ActiveLevel() == kAvx2; the stubs compiled on toolchains without
// AVX2 support abort if reached.
//
// Determinism: every kernel here is element-wise (no reassociated
// reductions) and built without FMA, so outputs are bit-identical to the
// scalar reference implementations next to the dispatch sites.
#ifndef PRIVIEW_OPT_SOLVER_KERNELS_H_
#define PRIVIEW_OPT_SOLVER_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace priview {
namespace internal {

/// Exact software double multiply for the subnormal neighborhood.
///
/// Multiplies that touch subnormals trigger a ~100+-cycle microcode
/// assist on Intel parts, and IPF's multiplicative descent parks cells at
/// the bottom of the subnormal range (a cell at 2^-1074 times a factor in
/// (0.5, 1] rounds back to itself), so one stuck cell pays that assist in
/// every constraint's scale pass of every sweep. The hardware result is
/// correct — only slow — so the fix is to compute the identical bits in
/// integer arithmetic, which never assists.
///
/// When RN(x*f) lands on the uniform 2^-1074 grid — every subnormal plus
/// the lowest normal binade [2^-1022, 2^-1021) — the exact 106-bit integer
/// product rounded once (to nearest, ties to even) at that grid IS the
/// IEEE result: writes it to *out and returns true. Anything else (larger
/// results, negatives, inf/NaN operands) returns false and the caller
/// must use the hardware multiply. Exhaustively differential-tested
/// against the FPU in tiny_mul_test.
inline bool IpfTinyMul(double x, double f, double* out) {
  uint64_t bx, bf;
  std::memcpy(&bx, &x, 8);
  std::memcpy(&bf, &f, 8);
  if ((bx | bf) >> 63) return false;  // negative: kernel cells never are
  const int ex = static_cast<int>(bx >> 52);
  const int ef = static_cast<int>(bf >> 52);
  if (ex == 0x7FF || ef == 0x7FF) return false;  // inf/NaN
  const uint64_t kMant = (uint64_t{1} << 52) - 1;
  const uint64_t X = (bx & kMant) | (ex ? (uint64_t{1} << 52) : 0);
  const uint64_t F = (bf & kMant) | (ef ? (uint64_t{1} << 52) : 0);
  if (X == 0 || F == 0) {
    *out = 0.0;
    return true;
  }
  // x = X * 2^(Ex-52) with Ex the unbiased exponent (subnormals read as
  // exponent field 1 with no implicit bit); result on the 2^-1074 grid is
  // R = RN(X*F * 2^-sh).
  const int Ex = (ex ? ex : 1) - 1023;
  const int Ef = (ef ? ef : 1) - 1023;
  const int sh = -(Ex + Ef + 970);
  if (sh <= 0) return false;  // result past the uniform grid
  if (sh >= 107) {            // X*F < 2^106 so R < 1/2: rounds to zero
    *out = 0.0;
    return true;
  }
  const unsigned __int128 P = static_cast<unsigned __int128>(X) * F;
  const unsigned __int128 Rw = P >> sh;
  if (Rw >= (static_cast<unsigned __int128>(1) << 53)) {
    return false;  // result past the uniform grid
  }
  uint64_t R = static_cast<uint64_t>(Rw);
  const bool round = (P >> (sh - 1)) & 1;
  const bool sticky =
      (P & ((static_cast<unsigned __int128>(1) << (sh - 1)) - 1)) != 0;
  if (round && (sticky || (R & 1))) ++R;
  if (R >= (uint64_t{1} << 53)) return false;  // rounded up past the grid
  // R < 2^52 is a subnormal bit pattern; [2^52, 2^53) lands exponent
  // field 1 with the right mantissa — the boundary is seamless in bits.
  std::memcpy(out, &R, 8);
  return true;
}

/// The IPF multiplicative update in lattice form. Each target cell
/// `a = ExtractBits(c, within)` of the constraint scope (cell-bit mask
/// `within`) owns the slice of table cells `c` that project onto it, and
/// every cell receives
///   cells[c] = proj[a] > 0 ? min(cells[c] * factor[a], cap) : refill[a]
/// Works for any scope mask (the per-lane target vectors are hoisted per
/// 4-cell block group, so no gathers); requires num_cells >= 4.
/// Element-wise only, so bit-identical to the scalar lattice in ipf.cc.
void IpfScaleLatticeAvx2(double* cells, uint64_t num_cells, uint64_t within,
                         const double* proj, const double* factor,
                         const double* refill, double cap);

/// Scans the table for cells in the subnormal neighborhood (0 < cell <
/// 2^-1000) and records them block-granular: bit b of `words` is set when
/// 4-cell block b contains at least one such cell (words must hold
/// ceil(num_cells/256) entries). Returns whether any bit is set. Runs once
/// per sweep so the scale kernels only pay the per-block check — and the
/// soft-multiply slow path — on sweeps that actually have tiny cells.
bool IpfScanTinyAvx2(const double* cells, uint64_t num_cells,
                     uint64_t* words);

/// IpfScaleLatticeAvx2 with assist avoidance: blocks flagged in
/// `tiny_words` (from IpfScanTinyAvx2) are updated lane-by-lane through
/// IpfTinyMul instead of the vector multiply, so stuck subnormal cells do
/// not trigger a microcode assist per constraint per sweep. Bit-identical
/// to the unchecked kernel (and to the scalar lattice) by IpfTinyMul's
/// exactness; cells that turn tiny mid-sweep are simply slow until the
/// next sweep's scan, never wrong.
void IpfScaleLatticeAvx2Checked(double* cells, uint64_t num_cells,
                                uint64_t within, const double* proj,
                                const double* factor, const double* refill,
                                double cap, const uint64_t* tiny_words);

/// Fused residual + multiplicative-factor pass over one constraint's
/// targets:
///   factor[a] = proj[a] > 0 ? target[a] / proj[a] : 0.0
/// and returns max_a |proj[a] - target[a]|. Vector divides are IEEE-exact
/// and the max of finite absolute values is order-independent, so the
/// result is bit-identical to the scalar loop in ipf.cc.
double IpfFactorResidualAvx2(const double* proj, const double* target,
                             double* factor, size_t n);

}  // namespace internal
}  // namespace priview

#endif  // PRIVIEW_OPT_SOLVER_KERNELS_H_
