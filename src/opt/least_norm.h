// Least-squares ("CLN") reconstruction: of all non-negative tables whose
// projections satisfy the view constraints, return the one with minimum L2
// norm (§4.3). Solved with Dykstra's alternating projection between the
// affine set {x : Cx = b} (projected through a Cholesky solve of C Cᵀ with
// a small ridge for rank deficiency) and the non-negative orthant —
// Dykstra's corrections make the iteration converge to the true projection
// of 0 onto the intersection, i.e. the minimum-norm feasible point.
#ifndef PRIVIEW_OPT_LEAST_NORM_H_
#define PRIVIEW_OPT_LEAST_NORM_H_

#include <vector>

#include "opt/constraint.h"
#include "table/marginal_table.h"

namespace priview {

struct LeastNormOptions {
  int max_iterations = 300;
  double tolerance = 1e-7;  // relative to max(1, total)
};

struct LeastNormResult {
  MarginalTable table;
  int iterations = 0;
  bool converged = false;
};

/// Minimum-L2-norm non-negative table over `attrs` with total `total`
/// meeting `constraints` (deduplicated internally).
LeastNormResult LeastNormSolve(AttrSet attrs, double total,
                               std::vector<MarginalConstraint> constraints,
                               const LeastNormOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_LEAST_NORM_H_
