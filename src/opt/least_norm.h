// Least-squares ("CLN") reconstruction: of all non-negative tables whose
// projections satisfy the view constraints, return the one with minimum L2
// norm (§4.3). Solved with Dykstra's alternating projection between the
// affine set {x : Cx = b} (projected through a Cholesky solve of C Cᵀ with
// a small ridge for rank deficiency) and the non-negative orthant —
// Dykstra's corrections make the iteration converge to the true projection
// of 0 onto the intersection, i.e. the minimum-norm feasible point.
//
// The core is arena-backed and allocation-free: the stacked constraint
// system, its Gram factor and all Dykstra state live in the request arena.
// The dense kernels keep the exact scalar expression shapes of the former
// common/linalg implementation so the compiler contracts/vectorizes them
// identically — outputs are pinned bit-for-bit by solver_golden_test.
#ifndef PRIVIEW_OPT_LEAST_NORM_H_
#define PRIVIEW_OPT_LEAST_NORM_H_

#include <span>

#include "common/arena.h"
#include "opt/constraint.h"
#include "table/marginal_table.h"

namespace priview {

struct LeastNormOptions {
  int max_iterations = 300;
  double tolerance = 1e-7;  // relative to max(1, total)
};

/// Outcome of the allocation-free core (no table attached).
struct LeastNormSolveInfo {
  int iterations = 0;
  bool converged = false;
};

struct LeastNormResult {
  MarginalTable table;
  int iterations = 0;
  bool converged = false;
};

/// Allocation-free core: writes the minimum-L2-norm non-negative table over
/// `attrs` with total `total` meeting `constraints` (deduplicated
/// internally) into caller-provided `cells` of size 2^|attrs|. All scratch
/// comes from `arena` and is rewound on return.
LeastNormSolveInfo LeastNormSolveInto(
    std::span<double> cells, AttrSet attrs, double total,
    std::span<const MarginalConstraint> constraints, Arena& arena,
    const LeastNormOptions& options = {});

/// Managed wrapper: allocates the result table, scratch from `arena`.
LeastNormResult LeastNormSolve(AttrSet attrs, double total,
                               std::span<const MarginalConstraint> constraints,
                               Arena& arena,
                               const LeastNormOptions& options = {});

/// Convenience wrapper on the per-thread solver arena.
LeastNormResult LeastNormSolve(AttrSet attrs, double total,
                               std::span<const MarginalConstraint> constraints,
                               const LeastNormOptions& options = {});

}  // namespace priview

#endif  // PRIVIEW_OPT_LEAST_NORM_H_
