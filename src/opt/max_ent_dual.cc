#include "opt/max_ent_dual.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "common/bits.h"
#include "common/check.h"
#include "common/failpoint.h"

namespace priview {
namespace {

struct DualConstraint {
  uint64_t within_mask;
  std::vector<double> target;     // sanitized, rescaled to common total
  std::vector<double> potential;  // λ, one per target cell
};

// exp() underflows safely below this; also the clamp for potentials so a
// slice forced to zero cannot drive anything to ±inf.
constexpr double kLogFloor = -700.0;
constexpr double kLogCeil = 700.0;

}  // namespace

MaxEntDualResult MaxEntropyDual(AttrSet attrs, double total,
                                std::vector<MarginalConstraint> constraints,
                                const MaxEntDualOptions& options) {
  constraints = DeduplicateConstraints(std::move(constraints));

  MarginalTable table(attrs);
  const size_t num_cells = table.size();
  const double safe_total = std::max(total, 1e-12);

  std::vector<DualConstraint> duals;
  for (const MarginalConstraint& c : constraints) {
    PRIVIEW_CHECK(c.scope.IsSubsetOf(attrs));
    if (c.scope.empty()) continue;
    DualConstraint d;
    d.within_mask = table.CellIndexMaskFor(c.scope);
    d.target = c.target.cells();
    double tsum = 0.0;
    for (double& v : d.target) {
      if (v < 0.0) v = 0.0;
      tsum += v;
    }
    if (tsum <= 0.0) continue;
    for (double& v : d.target) v *= safe_total / tsum;
    d.potential.assign(d.target.size(), 0.0);
    duals.push_back(std::move(d));
  }

  MaxEntDualResult result;
  if (duals.empty()) {
    const double uniform = safe_total / static_cast<double>(num_cells);
    for (double& c : table.cells()) c = uniform;
    result.converged = true;
    result.table = std::move(table);
    return result;
  }

  // Rebuilds the primal p(a) ∝ exp(Σ_c λ_c[proj_c(a)]) normalized to the
  // total. Working from the potentials each time keeps numerical error
  // from accumulating in the table (unlike in-place multiplicative
  // updates), which is the point of this cross-check implementation.
  std::vector<double> log_p(num_cells);
  auto materialize = [&]() {
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      double lp = 0.0;
      for (const DualConstraint& d : duals) {
        lp += d.potential[ExtractBits(cell, d.within_mask)];
      }
      log_p[cell] = std::clamp(lp, 2.0 * kLogFloor, 2.0 * kLogCeil);
    }
    const double max_lp = *std::max_element(log_p.begin(), log_p.end());
    double z = 0.0;
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      z += std::exp(log_p[cell] - max_lp);
    }
    const double log_norm = std::log(safe_total) - max_lp - std::log(z);
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      table.At(cell) = std::exp(log_p[cell] + log_norm);
    }
  };

  const double tol = options.relative_tolerance * std::max(1.0, safe_total);
  std::vector<double> projection;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Gauss–Seidel coordinate ascent on the dual: each constraint's
    // potential absorbs log(target / projection) of the *current* primal,
    // which is re-materialized before every step. (A Jacobi sweep from a
    // stale primal diverges when constraints overlap.)
    double max_residual = 0.0;
    for (DualConstraint& d : duals) {
      materialize();
      projection.assign(d.target.size(), 0.0);
      for (uint64_t cell = 0; cell < num_cells; ++cell) {
        projection[ExtractBits(cell, d.within_mask)] += table.At(cell);
      }
      for (size_t a = 0; a < d.target.size(); ++a) {
        max_residual =
            std::max(max_residual, std::fabs(projection[a] - d.target[a]));
        if (d.target[a] <= 0.0) {
          d.potential[a] = kLogFloor;  // force the slice to zero
        } else if (projection[a] > 0.0) {
          d.potential[a] += std::log(d.target[a] / projection[a]);
        } else {
          // Projection vanished but mass is required: lift the potential.
          d.potential[a] += 1.0;
        }
        d.potential[a] = std::clamp(d.potential[a], kLogFloor, kLogCeil);
      }
    }

    result.iterations = iter + 1;
    result.final_residual = max_residual;
    if (max_residual <= tol) {
      result.converged = true;
      break;
    }
  }
  materialize();

  if (PRIVIEW_FAILPOINT("maxent/stall")) {
    result.converged = false;
    result.final_residual = std::numeric_limits<double>::infinity();
  }

  result.table = std::move(table);
  return result;
}

}  // namespace priview
