#include "opt/max_ent_dual.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "common/check.h"
#include "common/failpoint.h"

namespace priview {
namespace {

// exp() underflows safely below this; also the clamp for potentials so a
// slice forced to zero cannot drive anything to ±inf.
constexpr double kLogFloor = -700.0;
constexpr double kLogCeil = 700.0;

}  // namespace

MaxEntDualSolveInfo MaxEntropyDualInto(
    std::span<double> cells, AttrSet attrs, double total,
    std::span<const MarginalConstraint> constraints, Arena& arena,
    const MaxEntDualOptions& options) {
  const uint64_t num_cells = uint64_t{1} << attrs.size();
  PRIVIEW_CHECK(cells.size() == num_cells);
  const double safe_total = std::max(total, 1e-12);

  Arena::Rewind rewind(arena);

  std::span<ResolvedConstraint> resolved =
      ResolveConstraints(attrs, constraints, arena);

  // Sanitize targets in place and attach a zero-initialized potential span
  // per usable constraint (dropped: empty scope, zero mass).
  std::span<std::span<double>> potentials =
      arena.AllocSpan<std::span<double>>(resolved.size());
  size_t usable = 0;
  size_t max_target = 1;
  for (size_t i = 0; i < resolved.size(); ++i) {
    ResolvedConstraint r = resolved[i];
    if (r.scope.empty()) continue;
    double tsum = 0.0;
    for (double& v : r.target) {
      if (v < 0.0) v = 0.0;
      tsum += v;
    }
    if (tsum <= 0.0) continue;
    for (double& v : r.target) v *= safe_total / tsum;
    potentials[usable] = arena.AllocSpan<double>(r.target.size(), 0.0);
    max_target = std::max(max_target, r.target.size());
    resolved[usable++] = r;
  }
  resolved = resolved.subspan(0, usable);

  MaxEntDualSolveInfo info;
  if (resolved.empty()) {
    const double uniform = safe_total / static_cast<double>(num_cells);
    for (double& c : cells) c = uniform;
    info.converged = true;
    if (PRIVIEW_FAILPOINT("maxent/stall")) {
      info.converged = false;
      info.final_residual = std::numeric_limits<double>::infinity();
    }
    return info;
  }

  // Rebuilds the primal p(a) ∝ exp(Σ_c λ_c[proj_c(a)]) normalized to the
  // total. Working from the potentials each time keeps numerical error
  // from accumulating in the table (unlike in-place multiplicative
  // updates), which is the point of this cross-check implementation.
  std::span<double> log_p = arena.AllocSpan<double>(num_cells);
  auto materialize = [&]() {
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      double lp = 0.0;
      for (size_t d = 0; d < resolved.size(); ++d) {
        lp += potentials[d][resolved[d].slice_index[cell]];
      }
      log_p[cell] = std::clamp(lp, 2.0 * kLogFloor, 2.0 * kLogCeil);
    }
    const double max_lp = *std::max_element(log_p.begin(), log_p.end());
    double z = 0.0;
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      z += std::exp(log_p[cell] - max_lp);
    }
    const double log_norm = std::log(safe_total) - max_lp - std::log(z);
    for (uint64_t cell = 0; cell < num_cells; ++cell) {
      cells[cell] = std::exp(log_p[cell] + log_norm);
    }
  };

  const double tol = options.relative_tolerance * std::max(1.0, safe_total);
  std::span<double> projection = arena.AllocSpan<double>(max_target);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Gauss–Seidel coordinate ascent on the dual: each constraint's
    // potential absorbs log(target / projection) of the *current* primal,
    // which is re-materialized before every step. (A Jacobi sweep from a
    // stale primal diverges when constraints overlap.)
    double max_residual = 0.0;
    for (size_t d = 0; d < resolved.size(); ++d) {
      const ResolvedConstraint& r = resolved[d];
      std::span<double> potential = potentials[d];
      materialize();
      const size_t target_size = r.target.size();
      for (size_t a = 0; a < target_size; ++a) projection[a] = 0.0;
      for (uint64_t cell = 0; cell < num_cells; ++cell) {
        projection[r.slice_index[cell]] += cells[cell];
      }
      for (size_t a = 0; a < target_size; ++a) {
        max_residual =
            std::max(max_residual, std::fabs(projection[a] - r.target[a]));
        if (r.target[a] <= 0.0) {
          potential[a] = kLogFloor;  // force the slice to zero
        } else if (projection[a] > 0.0) {
          potential[a] += std::log(r.target[a] / projection[a]);
        } else {
          // Projection vanished but mass is required: lift the potential.
          potential[a] += 1.0;
        }
        potential[a] = std::clamp(potential[a], kLogFloor, kLogCeil);
      }
    }

    info.iterations = iter + 1;
    info.final_residual = max_residual;
    if (max_residual <= tol) {
      info.converged = true;
      break;
    }
  }
  materialize();

  if (PRIVIEW_FAILPOINT("maxent/stall")) {
    info.converged = false;
    info.final_residual = std::numeric_limits<double>::infinity();
  }
  return info;
}

MaxEntDualResult MaxEntropyDual(AttrSet attrs, double total,
                                std::span<const MarginalConstraint> constraints,
                                Arena& arena,
                                const MaxEntDualOptions& options) {
  MaxEntDualResult result;
  MarginalTable table(attrs);
  const MaxEntDualSolveInfo info = MaxEntropyDualInto(
      std::span<double>(table.cells()), attrs, total, constraints, arena,
      options);
  result.table = std::move(table);
  result.iterations = info.iterations;
  result.converged = info.converged;
  result.final_residual = info.final_residual;
  return result;
}

MaxEntDualResult MaxEntropyDual(AttrSet attrs, double total,
                                std::span<const MarginalConstraint> constraints,
                                const MaxEntDualOptions& options) {
  return MaxEntropyDual(attrs, total, constraints, ThreadLocalArena(),
                        options);
}

}  // namespace priview
