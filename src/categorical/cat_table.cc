#include "categorical/cat_table.h"

#include <cmath>

#include "common/check.h"

namespace priview {

CatDomain::CatDomain(std::vector<int> cardinalities)
    : cards_(std::move(cardinalities)) {
  PRIVIEW_CHECK(!cards_.empty() && cards_.size() <= 64);
  for (int c : cards_) PRIVIEW_CHECK(c >= 2 && c <= 256);
}

size_t CatDomain::TableSize(AttrSet scope) const {
  size_t size = 1;
  for (int a : scope.ToIndices()) {
    PRIVIEW_CHECK(a < d());
    size *= static_cast<size_t>(cards_[a]);
  }
  return size;
}

CatTable::CatTable(const CatDomain& domain, AttrSet scope, double fill)
    : scope_(scope) {
  for (int a : scope.ToIndices()) cards_.push_back(domain.Cardinality(a));
  strides_.resize(cards_.size());
  size_t stride = 1;
  for (size_t i = 0; i < cards_.size(); ++i) {
    strides_[i] = stride;
    stride *= static_cast<size_t>(cards_[i]);
  }
  PRIVIEW_CHECK(stride <= (size_t{1} << 26));
  cells_.assign(stride, fill);
}

double CatTable::Total() const {
  double sum = 0.0;
  for (double c : cells_) sum += c;
  return sum;
}

void CatTable::Scale(double factor) {
  for (double& c : cells_) c *= factor;
}

size_t CatTable::IndexOf(const std::vector<int>& values) const {
  PRIVIEW_CHECK(values.size() == cards_.size());
  size_t index = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    PRIVIEW_CHECK(values[i] >= 0 && values[i] < cards_[i]);
    index += static_cast<size_t>(values[i]) * strides_[i];
  }
  return index;
}

std::vector<int> CatTable::ValuesOf(size_t cell) const {
  std::vector<int> values(cards_.size());
  for (size_t i = 0; i < cards_.size(); ++i) {
    values[i] = static_cast<int>((cell / strides_[i]) %
                                 static_cast<size_t>(cards_[i]));
  }
  return values;
}

std::vector<uint32_t> CatTable::ProjectionMap(const CatDomain& domain,
                                              AttrSet sub) const {
  PRIVIEW_CHECK(sub.IsSubsetOf(scope_));
  const CatTable probe(domain, sub);
  // Position of each sub attribute within this table's scope ordering.
  const std::vector<int> scope_attrs = scope_.ToIndices();
  const std::vector<int> sub_attrs = sub.ToIndices();
  std::vector<size_t> my_stride, sub_stride;
  std::vector<int> sub_card;
  size_t si = 0;
  for (size_t i = 0; i < scope_attrs.size(); ++i) {
    if (si < sub_attrs.size() && scope_attrs[i] == sub_attrs[si]) {
      my_stride.push_back(strides_[i]);
      sub_stride.push_back(probe.strides_[si]);
      sub_card.push_back(cards_[i]);
      ++si;
    }
  }
  PRIVIEW_CHECK(si == sub_attrs.size());

  std::vector<uint32_t> map(cells_.size());
  for (size_t cell = 0; cell < cells_.size(); ++cell) {
    size_t out = 0;
    for (size_t j = 0; j < my_stride.size(); ++j) {
      const size_t value =
          (cell / my_stride[j]) % static_cast<size_t>(sub_card[j]);
      out += value * sub_stride[j];
    }
    map[cell] = static_cast<uint32_t>(out);
  }
  return map;
}

CatTable CatTable::Project(const CatDomain& domain, AttrSet sub) const {
  CatTable out(domain, sub);
  const std::vector<uint32_t> map = ProjectionMap(domain, sub);
  for (size_t cell = 0; cell < cells_.size(); ++cell) {
    out.cells_[map[cell]] += cells_[cell];
  }
  return out;
}

double CatTable::L2DistanceTo(const CatTable& other) const {
  PRIVIEW_CHECK(scope_ == other.scope_ && cells_.size() == other.size());
  double sum = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const double diff = cells_[i] - other.cells_[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

CatDataset::CatDataset(CatDomain domain) : domain_(std::move(domain)) {}

void CatDataset::Add(const std::vector<int>& values) {
  PRIVIEW_CHECK(static_cast<int>(values.size()) == domain_.d());
  for (int a = 0; a < domain_.d(); ++a) {
    PRIVIEW_CHECK(values[a] >= 0 && values[a] < domain_.Cardinality(a));
    values_.push_back(static_cast<uint8_t>(values[a]));
  }
  ++n_;
}

CatTable CatDataset::CountMarginal(AttrSet scope) const {
  CatTable table(domain_, scope);
  const std::vector<int> attrs = scope.ToIndices();
  std::vector<int> record_values(attrs.size());
  for (size_t r = 0; r < n_; ++r) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      record_values[i] = Value(r, attrs[i]);
    }
    table.At(table.IndexOf(record_values)) += 1.0;
  }
  return table;
}

}  // namespace priview
