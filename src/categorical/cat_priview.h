// The PriView pipeline generalized to categorical attributes (§4.7):
// generalized Ripple (neighbors change one attribute's value), the same
// consistency procedure over mixed-radix tables, IPF reconstruction, and
// greedy pair-covering view selection under a per-view cell budget `s`
// (the paper's recommended s ranges per domain cardinality b).
#ifndef PRIVIEW_CATEGORICAL_CAT_PRIVIEW_H_
#define PRIVIEW_CATEGORICAL_CAT_PRIVIEW_H_

#include <vector>

#include "common/rng.h"
#include "categorical/cat_table.h"

namespace priview {

/// Generalized Ripple: a cell below -theta is zeroed and its deficit spread
/// equally over all cells differing in exactly one attribute value.
/// Preserves the total. Returns the number of corrections.
int CatRippleNonNegativity(CatTable* table, double theta = 1.0);

/// Makes all views mutually consistent on every shared sub-scope
/// (ascending intersection-closure order, as in the binary pipeline).
void CatMakeConsistent(const CatDomain& domain, std::vector<CatTable>* views);

/// Max-entropy (IPF) reconstruction of the marginal over `target` from the
/// views, with total count `total`.
CatTable CatReconstructMarginal(const CatDomain& domain,
                                const std::vector<CatTable>& views,
                                AttrSet target, double total,
                                int max_iterations = 500);

/// Greedy pair-covering view selection under the cell budget: every
/// attribute pair shares a view, and each view's cell count stays <= s.
/// Requires every pair to fit (card(a)*card(b) <= s).
std::vector<AttrSet> GreedyPairCoverUnderBudget(const CatDomain& domain,
                                                int cell_budget, Rng* rng);

/// §4.7's s-selection objective sqrt(s) / (log_b s (log_b s - 1)).
double CellBudgetObjective(double b, double s);

/// The paper's recommended [s_lo, s_hi] window for domain cardinality b
/// (b = 2: 100-1000 ... b = 5: 250-5000); interpolates for other b.
void RecommendedCellBudget(double b, double* s_lo, double* s_hi);

/// End-to-end categorical synopsis.
class CatPriViewSynopsis {
 public:
  struct Options {
    double epsilon = 1.0;
    double ripple_theta = 1.0;
    int nonneg_rounds = 1;
    bool add_noise = true;
  };

  static CatPriViewSynopsis Build(const CatDataset& data,
                                  const std::vector<AttrSet>& views,
                                  const Options& options, Rng* rng);

  CatTable Query(AttrSet target) const;

  const std::vector<CatTable>& views() const { return views_; }
  double total() const { return total_; }
  const CatDomain& domain() const { return domain_; }

 private:
  explicit CatPriViewSynopsis(CatDomain domain)
      : domain_(std::move(domain)) {}

  CatDomain domain_;
  double total_ = 0.0;
  std::vector<CatTable> views_;
};

}  // namespace priview

#endif  // PRIVIEW_CATEGORICAL_CAT_PRIVIEW_H_
