// Categorical (non-binary) attribute support — the paper's §4.7 extension.
// Attributes keep integer ids in {0, .., d-1} (so scopes are still
// AttrSets) but each attribute a has a cardinality card(a) >= 2; marginal
// tables become mixed-radix arrays of Π card cells.
#ifndef PRIVIEW_CATEGORICAL_CAT_TABLE_H_
#define PRIVIEW_CATEGORICAL_CAT_TABLE_H_

#include <cstdint>
#include <vector>

#include "table/attr_set.h"

namespace priview {

/// The domain: per-attribute cardinalities, indexed by attribute id.
class CatDomain {
 public:
  explicit CatDomain(std::vector<int> cardinalities);

  int d() const { return static_cast<int>(cards_.size()); }
  int Cardinality(int attr) const { return cards_[attr]; }
  const std::vector<int>& cardinalities() const { return cards_; }

  /// Number of cells of a marginal over `scope` (product of cardinalities).
  size_t TableSize(AttrSet scope) const;

 private:
  std::vector<int> cards_;
};

/// Dense marginal table over a scope of categorical attributes. Cell index
/// is mixed-radix over the scope's attributes in ascending id order (the
/// first/lowest attribute is the fastest-varying digit).
class CatTable {
 public:
  CatTable() = default;
  CatTable(const CatDomain& domain, AttrSet scope, double fill = 0.0);

  AttrSet scope() const { return scope_; }
  size_t size() const { return cells_.size(); }
  const std::vector<int>& scope_cards() const { return cards_; }

  double& At(size_t cell) { return cells_[cell]; }
  double At(size_t cell) const { return cells_[cell]; }
  const std::vector<double>& cells() const { return cells_; }
  std::vector<double>& cells() { return cells_; }

  double Total() const;
  void Scale(double factor);

  /// Cell index for the given per-attribute values (ascending id order,
  /// same length as the scope).
  size_t IndexOf(const std::vector<int>& values) const;

  /// Decodes a cell index into per-attribute values.
  std::vector<int> ValuesOf(size_t cell) const;

  /// For every cell of this table, the cell of the `sub`-scope table it
  /// projects onto. sub must be a subset of scope().
  std::vector<uint32_t> ProjectionMap(const CatDomain& domain,
                                      AttrSet sub) const;

  /// Marginal over `sub` by summation.
  CatTable Project(const CatDomain& domain, AttrSet sub) const;

  double L2DistanceTo(const CatTable& other) const;

 private:
  AttrSet scope_;
  std::vector<int> cards_;    // cardinality per scope attribute (ascending)
  std::vector<size_t> strides_;
  std::vector<double> cells_;
};

/// Categorical dataset: row-major values, one byte per attribute.
class CatDataset {
 public:
  explicit CatDataset(CatDomain domain);

  const CatDomain& domain() const { return domain_; }
  size_t size() const { return n_; }

  /// Appends a record; values.size() == d, each within its cardinality.
  void Add(const std::vector<int>& values);

  int Value(size_t record, int attr) const {
    return values_[record * domain_.d() + attr];
  }

  /// Exact marginal counts over `scope`.
  CatTable CountMarginal(AttrSet scope) const;

 private:
  CatDomain domain_;
  size_t n_ = 0;
  std::vector<uint8_t> values_;
};

}  // namespace priview

#endif  // PRIVIEW_CATEGORICAL_CAT_TABLE_H_
