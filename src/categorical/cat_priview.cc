#include "categorical/cat_priview.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <unordered_set>

#include "common/check.h"

namespace priview {

int CatRippleNonNegativity(CatTable* table, double theta) {
  PRIVIEW_CHECK(theta >= 0.0);
  const std::vector<int>& cards = table->scope_cards();
  if (cards.empty()) return 0;
  int num_neighbors = 0;
  for (int c : cards) num_neighbors += c - 1;
  if (num_neighbors == 0) return 0;

  // Strides recomputed locally (cheap, keeps CatTable's internals private).
  std::vector<size_t> strides(cards.size());
  size_t stride = 1;
  for (size_t i = 0; i < cards.size(); ++i) {
    strides[i] = stride;
    stride *= static_cast<size_t>(cards[i]);
  }

  std::deque<size_t> worklist;
  std::vector<bool> queued(table->size(), false);
  for (size_t cell = 0; cell < table->size(); ++cell) {
    if (table->At(cell) < -theta) {
      worklist.push_back(cell);
      queued[cell] = true;
    }
  }

  const long long max_steps = 1000LL * static_cast<long long>(table->size());
  long long steps = 0;
  int corrections = 0;
  while (!worklist.empty() && steps <= max_steps) {
    const size_t cell = worklist.front();
    worklist.pop_front();
    queued[cell] = false;
    const double value = table->At(cell);
    if (value >= -theta) continue;
    table->At(cell) = 0.0;
    const double share = value / num_neighbors;  // negative
    for (size_t i = 0; i < cards.size(); ++i) {
      const int current =
          static_cast<int>((cell / strides[i]) % static_cast<size_t>(cards[i]));
      for (int other = 0; other < cards[i]; ++other) {
        if (other == current) continue;
        const size_t neighbor =
            cell + (static_cast<size_t>(other) - current) * strides[i];
        table->At(neighbor) += share;
        if (table->At(neighbor) < -theta && !queued[neighbor]) {
          worklist.push_back(neighbor);
          queued[neighbor] = true;
        }
      }
    }
    ++corrections;
    ++steps;
  }
  return corrections;
}

namespace {

std::vector<AttrSet> CatIntersectionClosure(const std::vector<AttrSet>& views) {
  std::set<AttrSet> closure(views.begin(), views.end());
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<AttrSet> snapshot(closure.begin(), closure.end());
    for (size_t i = 0; i < snapshot.size(); ++i) {
      for (size_t j = i + 1; j < snapshot.size(); ++j) {
        if (closure.insert(snapshot[i].Intersect(snapshot[j])).second) {
          changed = true;
        }
      }
    }
  }
  closure.insert(AttrSet());
  std::vector<AttrSet> result;
  for (AttrSet a : closure) {
    int containing = 0;
    for (AttrSet v : views) {
      if (a.IsSubsetOf(v)) ++containing;
    }
    if (containing >= 2) result.push_back(a);
  }
  std::stable_sort(result.begin(), result.end(), [](AttrSet a, AttrSet b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a.mask() < b.mask();
  });
  return result;
}

}  // namespace

void CatMakeConsistent(const CatDomain& domain, std::vector<CatTable>* views) {
  std::vector<AttrSet> scopes;
  scopes.reserve(views->size());
  for (const CatTable& v : *views) scopes.push_back(v.scope());

  for (AttrSet common : CatIntersectionClosure(scopes)) {
    std::vector<int> containing;
    for (size_t i = 0; i < scopes.size(); ++i) {
      if (common.IsSubsetOf(scopes[i])) containing.push_back(static_cast<int>(i));
    }
    if (containing.size() < 2) continue;

    const size_t common_cells = domain.TableSize(common);
    std::vector<double> mean(common_cells, 0.0);
    std::vector<std::vector<uint32_t>> maps;
    std::vector<std::vector<double>> projections;
    for (int idx : containing) {
      const CatTable& view = (*views)[idx];
      maps.push_back(view.ProjectionMap(domain, common));
      std::vector<double> proj(common_cells, 0.0);
      for (size_t cell = 0; cell < view.size(); ++cell) {
        proj[maps.back()[cell]] += view.At(cell);
      }
      for (size_t a = 0; a < common_cells; ++a) mean[a] += proj[a];
      projections.push_back(std::move(proj));
    }
    for (double& v : mean) v /= static_cast<double>(containing.size());

    for (size_t vi = 0; vi < containing.size(); ++vi) {
      CatTable& view = (*views)[containing[vi]];
      const double slice = static_cast<double>(view.size()) /
                           static_cast<double>(common_cells);
      std::vector<double> delta(common_cells);
      for (size_t a = 0; a < common_cells; ++a) {
        delta[a] = (mean[a] - projections[vi][a]) / slice;
      }
      for (size_t cell = 0; cell < view.size(); ++cell) {
        view.At(cell) += delta[maps[vi][cell]];
      }
    }
  }
}

CatTable CatReconstructMarginal(const CatDomain& domain,
                                const std::vector<CatTable>& views,
                                AttrSet target, double total,
                                int max_iterations) {
  // Covered scope: average the covering views' projections.
  {
    CatTable sum(domain, target);
    int covering = 0;
    for (const CatTable& view : views) {
      if (!target.IsSubsetOf(view.scope())) continue;
      const CatTable proj = view.Project(domain, target);
      for (size_t a = 0; a < sum.size(); ++a) sum.At(a) += proj.At(a);
      ++covering;
    }
    if (covering > 0) {
      sum.Scale(1.0 / covering);
      return sum;
    }
  }

  // Constraints: per-view projections onto the intersections with target,
  // keeping maximal scopes only.
  struct Constraint {
    AttrSet scope;
    std::vector<double> target_cells;
  };
  std::vector<Constraint> constraints;
  {
    std::set<AttrSet> scopes;
    for (const CatTable& view : views) {
      const AttrSet common = view.scope().Intersect(target);
      if (!common.empty()) scopes.insert(common);
    }
    for (AttrSet scope : scopes) {
      bool dominated = false;
      for (AttrSet other : scopes) {
        if (scope != other && scope.IsSubsetOf(other)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      // Average over every view containing the scope (consistent views
      // agree; averaging is harmless otherwise).
      std::vector<double> acc(domain.TableSize(scope), 0.0);
      int count = 0;
      for (const CatTable& view : views) {
        if (!scope.IsSubsetOf(view.scope())) continue;
        const CatTable proj = view.Project(domain, scope);
        for (size_t a = 0; a < acc.size(); ++a) acc[a] += proj.At(a);
        ++count;
      }
      double tsum = 0.0;
      for (double& v : acc) {
        v = std::max(v / count, 0.0);
        tsum += v;
      }
      if (tsum <= 0.0) continue;
      const double safe_total = std::max(total, 1e-12);
      for (double& v : acc) v *= safe_total / tsum;
      constraints.push_back({scope, std::move(acc)});
    }
  }

  CatTable table(domain, target,
                 std::max(total, 1e-12) /
                     static_cast<double>(domain.TableSize(target)));
  if (constraints.empty()) return table;

  std::vector<std::vector<uint32_t>> maps;
  maps.reserve(constraints.size());
  for (const Constraint& c : constraints) {
    maps.push_back(table.ProjectionMap(domain, c.scope));
  }

  const double tol = 1e-9 * std::max(1.0, total);
  std::vector<double> projection;
  for (int iter = 0; iter < max_iterations; ++iter) {
    double max_residual = 0.0;
    for (size_t ci = 0; ci < constraints.size(); ++ci) {
      const Constraint& c = constraints[ci];
      projection.assign(c.target_cells.size(), 0.0);
      for (size_t cell = 0; cell < table.size(); ++cell) {
        projection[maps[ci][cell]] += table.At(cell);
      }
      const double slice = static_cast<double>(table.size()) /
                           static_cast<double>(c.target_cells.size());
      const double cell_cap = std::max(total, 1e-12);
      for (size_t cell = 0; cell < table.size(); ++cell) {
        const uint32_t a = maps[ci][cell];
        max_residual = std::max(
            max_residual, std::fabs(projection[a] - c.target_cells[a]));
        if (projection[a] > 0.0) {
          // Cap at the total so huge factors cannot overflow to inf/NaN.
          table.At(cell) = std::min(
              table.At(cell) * (c.target_cells[a] / projection[a]),
              cell_cap);
        } else {
          table.At(cell) = c.target_cells[a] / slice;
        }
      }
    }
    if (max_residual <= tol) break;
  }
  return table;
}

std::vector<AttrSet> GreedyPairCoverUnderBudget(const CatDomain& domain,
                                                int cell_budget, Rng* rng) {
  const int d = domain.d();
  PRIVIEW_CHECK(d >= 2);
  std::set<std::pair<int, int>> uncovered;
  for (int a = 0; a < d; ++a) {
    for (int b = a + 1; b < d; ++b) {
      PRIVIEW_CHECK(domain.Cardinality(a) * domain.Cardinality(b) <=
                    cell_budget);
      uncovered.insert({a, b});
    }
  }

  std::vector<AttrSet> blocks;
  while (!uncovered.empty()) {
    // Seed with a random uncovered pair.
    auto it = uncovered.begin();
    std::advance(it, rng->UniformInt(uncovered.size()));
    std::vector<int> members = {it->first, it->second};
    long long cells = static_cast<long long>(domain.Cardinality(it->first)) *
                      domain.Cardinality(it->second);

    // Extend greedily while the cell budget allows.
    bool grew = true;
    while (grew) {
      grew = false;
      int best_attr = -1;
      int best_gain = 0;
      for (int a = 0; a < d; ++a) {
        if (std::find(members.begin(), members.end(), a) != members.end()) {
          continue;
        }
        if (cells * domain.Cardinality(a) > cell_budget) continue;
        int gain = 0;
        for (int m : members) {
          const std::pair<int, int> key{std::min(a, m), std::max(a, m)};
          if (uncovered.count(key)) ++gain;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_attr = a;
        }
      }
      if (best_attr >= 0 && best_gain > 0) {
        members.push_back(best_attr);
        cells *= domain.Cardinality(best_attr);
        grew = true;
      }
    }

    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const std::pair<int, int> key{
            std::min(members[i], members[j]),
            std::max(members[i], members[j])};
        uncovered.erase(key);
      }
    }
    blocks.push_back(AttrSet::FromIndices(members));
  }
  return blocks;
}

double CellBudgetObjective(double b, double s) {
  PRIVIEW_CHECK(b > 1.0 && s > b * b);
  const double logbs = std::log(s) / std::log(b);
  return std::sqrt(s) / (logbs * (logbs - 1.0));
}

void RecommendedCellBudget(double b, double* s_lo, double* s_hi) {
  PRIVIEW_CHECK(s_lo != nullptr && s_hi != nullptr);
  // Paper's table: b = 2,3,4,5 -> [100,1000], [150,2000], [200,3200],
  // [250,5000]; linear interpolation / extension in b.
  const double clamped = std::max(b, 2.0);
  *s_lo = 100.0 + 50.0 * (clamped - 2.0);
  if (clamped <= 3.0) {
    *s_hi = 1000.0 + 1000.0 * (clamped - 2.0);
  } else if (clamped <= 4.0) {
    *s_hi = 2000.0 + 1200.0 * (clamped - 3.0);
  } else {
    *s_hi = 3200.0 + 1800.0 * (clamped - 4.0);
  }
}

CatPriViewSynopsis CatPriViewSynopsis::Build(const CatDataset& data,
                                             const std::vector<AttrSet>& views,
                                             const Options& options,
                                             Rng* rng) {
  PRIVIEW_CHECK(!views.empty());
  CatPriViewSynopsis synopsis(data.domain());

  const double w = static_cast<double>(views.size());
  for (AttrSet scope : views) {
    CatTable table = data.CountMarginal(scope);
    if (options.add_noise) {
      PRIVIEW_CHECK(options.epsilon > 0.0);
      const double scale = w / options.epsilon;
      for (double& c : table.cells()) c += rng->Laplace(scale);
    }
    synopsis.views_.push_back(std::move(table));
  }

  CatMakeConsistent(synopsis.domain_, &synopsis.views_);
  for (int round = 0; round < options.nonneg_rounds; ++round) {
    for (CatTable& view : synopsis.views_) {
      CatRippleNonNegativity(&view, options.ripple_theta);
    }
    CatMakeConsistent(synopsis.domain_, &synopsis.views_);
  }

  double total = 0.0;
  for (const CatTable& view : synopsis.views_) total += view.Total();
  synopsis.total_ = total / w;
  return synopsis;
}

CatTable CatPriViewSynopsis::Query(AttrSet target) const {
  return CatReconstructMarginal(domain_, views_, target, total_);
}

}  // namespace priview
