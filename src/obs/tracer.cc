#include "obs/tracer.h"

#include <chrono>

#include "common/failpoint.h"

namespace priview::obs {

namespace internal {
std::atomic<bool> g_tracing_armed{false};
}  // namespace internal

namespace {

// Thread-local nesting depth. End() restores the depth to the span's own
// level rather than decrementing, so a torn child (whose End never ran)
// cannot leave the accounting skewed for the rest of the thread.
thread_local int t_span_depth = 0;

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Arm(const TracerOptions& options) {
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.clear();
    slow_capacity_ = options.slow_log_capacity;
  }
  slow_total_.store(0, std::memory_order_relaxed);
  slow_threshold_us_.store(options.slow_span_threshold_us,
                           std::memory_order_relaxed);
  internal::g_tracing_armed.store(true, std::memory_order_relaxed);
}

void Tracer::Disarm() {
  internal::g_tracing_armed.store(false, std::memory_order_relaxed);
}

std::vector<SlowSpanEntry> Tracer::SlowEntries() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

uint64_t Tracer::SlowSpanCount() const {
  return slow_total_.load(std::memory_order_relaxed);
}

void Tracer::ClearSlowLog() {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_log_.clear();
}

void Tracer::RecordSlow(SlowSpanEntry entry) {
  slow_total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_capacity_ == 0) return;
  while (slow_log_.size() >= slow_capacity_) slow_log_.pop_front();
  slow_log_.push_back(std::move(entry));
}

void TraceSpan::Begin(const char* name) {
  name_ = name;
  active_ = true;
  depth_ = t_span_depth;
  t_span_depth = depth_ + 1;
  start_us_ = NowMicros();
}

void TraceSpan::Annotate(const std::string& detail) {
  if (!active_) return;
  if (detail_ != nullptr) {
    *detail_ = detail;
  } else {
    detail_ = std::make_unique<std::string>(detail);
  }
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  if (PRIVIEW_FAILPOINT("obs/span-torn")) {
    // A fault tore this span mid-flight: its duration is meaningless, but
    // the depth bookkeeping captured at Begin() is still valid — restore
    // it here so a torn top-level span (with no enclosing span to heal
    // behind it) does not skew every later slow-log depth on this thread.
    // Count the tear and bail; the registry sees a counter bump instead
    // of a junk observation.
    t_span_depth = depth_;
    static Counter* const torn = MetricsRegistry::Global().GetCounter(
        "priview_spans_torn_total", {},
        "Spans abandoned mid-fault (not recorded)");
    torn->Increment();
    detail_.reset();
    return;
  }
  const uint64_t duration_us = NowMicros() - start_us_;
  t_span_depth = depth_;
  // Tracing may have been disarmed while this span was open; record
  // anyway — the span was started under an armed tracer and dropping it
  // would skew the histogram's count against its sum... both are updated
  // together here, so the family stays internally consistent.
  MetricsRegistry::Global()
      .GetHistogram("priview_span_duration_us", {{"span", name_}},
                    "Span durations in microseconds, by span name")
      ->Observe(duration_us);
  const uint64_t threshold =
      Tracer::Global().slow_threshold_us_.load(std::memory_order_relaxed);
  if (threshold > 0 && duration_us >= threshold) {
    static Counter* const slow = MetricsRegistry::Global().GetCounter(
        "priview_slow_spans_total", {},
        "Spans at or above the slow-span threshold");
    slow->Increment();
    Tracer::Global().RecordSlow(SlowSpanEntry{
        name_, detail_ != nullptr ? std::move(*detail_) : std::string(),
        duration_us, depth_});
  }
  detail_.reset();
}

}  // namespace priview::obs
