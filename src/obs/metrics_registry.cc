#include "obs/metrics_registry.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

#include "common/check.h"
#include "common/parallel.h"

namespace priview::obs {

namespace {

// Label values may carry request detail (scope strings); escape per the
// exposition format so a hostile value cannot break the scrape.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// `{k1="v1",k2="v2"}` (empty string for no labels). `extra` appends one
// more pair — the histogram renderer's `le`.
std::string RenderLabels(const Labels& labels, const Label* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ",";
    first = false;
    out += label.first + "=\"" + EscapeLabelValue(label.second) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first + "=\"" + EscapeLabelValue(extra->second) + "\"";
  }
  out += "}";
  return out;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

}  // namespace

int Histogram::BucketFor(uint64_t value) {
  if (value < 2) return 0;
  const int b = std::bit_width(value) - 1;
  return b >= kBuckets ? kBuckets - 1 : b;
}

void Histogram::Observe(uint64_t value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  for (int b = 0; b < kBuckets; ++b) {
    s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    s.total += s.counts[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    total += counts_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::PercentileUpperBound(double p) const {
  const Snapshot s = TakeSnapshot();
  if (s.total == 0 || !(p > 0.0)) return 0.0;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(s.total);
  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += s.counts[b];
    if (static_cast<double>(cumulative) >= rank) {
      return static_cast<double>(BucketUpperBound(b));
    }
  }
  return static_cast<double>(BucketUpperBound(kBuckets - 1));
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    // The parallel pool exposes its counters as plain functions (common
    // cannot depend on obs); pull them at render time.
    r->RegisterCallbackGauge(
        "priview_parallel_queue_depth",
        "Tasks dispatched but not completed, summed over all in-flight "
        "parallel regions",
        [] { return static_cast<int64_t>(parallel::QueueDepth()); });
    r->RegisterCallbackGauge(
        "priview_parallel_threads", "Effective parallel pool thread count",
        [] { return static_cast<int64_t>(parallel::ThreadCount()); });
    r->RegisterCallbackCounter(
        "priview_parallel_jobs_total", "Parallel regions dispatched",
        [] { return parallel::JobsDispatched(); });
    r->RegisterCallbackCounter(
        "priview_parallel_chunks_total", "Parallel chunks executed",
        [] { return parallel::ChunksExecuted(); });
    r->RegisterCallbackCounter(
        "priview_parallel_inline_retries_total",
        "Chunks recovered via the inline-retry path",
        [] { return parallel::InlineRetryCount(); });
    r->RegisterCallbackCounter(
        "priview_parallel_steals_total",
        "Tasks claimed from a deque the claimant does not own",
        [] { return parallel::StealCount(); });
    r->RegisterCallbackCounter(
        "priview_parallel_steal_failures_total",
        "Steal sweeps that found every deque empty",
        [] { return parallel::StealFailureCount(); });
    r->RegisterCallbackCounter(
        "priview_parallel_overflows_total",
        "Tasks spilled to the shared overflow queue (worker deque full)",
        [] { return parallel::OverflowCount(); });
    // Per-phase occupancy, one name-suffixed gauge per phase (callback
    // instruments carry no labels). Nonzero count AND noise occupancy at
    // the same instant is phase overlap made visible.
    for (int p = 0; p < parallel::kNumPhases; ++p) {
      const auto phase = static_cast<parallel::Phase>(p);
      r->RegisterCallbackGauge(
          std::string("priview_parallel_occupancy_") +
              parallel::PhaseName(phase),
          std::string("Tasks of the ") + parallel::PhaseName(phase) +
              " phase executing right now",
          [phase] {
            return static_cast<int64_t>(parallel::PhaseOccupancy(phase));
          });
    }
    return r;
  }();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(
    const std::string& name, const Labels& labels, Kind kind,
    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Instrument& instrument : instruments_) {
    if (instrument.name == name && instrument.labels == labels) {
      // One family, one type: a counter named like an existing histogram
      // would render an invalid exposition.
      PRIVIEW_CHECK(instrument.kind == kind);
      return &instrument;
    }
  }
  // Instruments hold atomics, so they are neither movable nor copyable:
  // construct in place, then fill in the identity fields.
  Instrument& created = instruments_.emplace_back();
  created.name = name;
  created.labels = labels;
  created.kind = kind;
  bool family_known = false;
  for (const auto& [family, _] : family_help_) {
    if (family == name) {
      family_known = true;
      break;
    }
  }
  if (!family_known) family_help_.emplace_back(name, help);
  return &instruments_.back();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  return &GetOrCreate(name, labels, Kind::kCounter, help)->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  return &GetOrCreate(name, labels, Kind::kGauge, help)->gauge;
}

GaugeD* MetricsRegistry::GetGaugeD(const std::string& name,
                                   const Labels& labels,
                                   const std::string& help) {
  return &GetOrCreate(name, labels, Kind::kGaugeD, help)->gauge_d;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help) {
  return &GetOrCreate(name, labels, Kind::kHistogram, help)->histogram;
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (CallbackInstrument& callback : callbacks_) {
    if (callback.name == name) {
      callback.gauge_fn = std::move(fn);
      callback.monotonic = false;
      return;
    }
  }
  callbacks_.push_back({name, help, false, std::move(fn), nullptr});
}

void MetricsRegistry::RegisterCallbackCounter(const std::string& name,
                                              const std::string& help,
                                              std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (CallbackInstrument& callback : callbacks_) {
    if (callback.name == name) {
      callback.counter_fn = std::move(fn);
      callback.monotonic = true;
      return;
    }
  }
  callbacks_.push_back({name, help, true, nullptr, std::move(fn)});
}

size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size() + callbacks_.size();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  // Callbacks are invoked after mu_ is released: a callback that touches
  // this registry (GetCounter, series_count, ...) would self-deadlock on
  // the non-recursive mutex if run under the lock. The list is
  // snapshotted under the lock instead (std::function copies are cheap
  // and registration-ordered), then evaluated lock-free below.
  std::vector<CallbackInstrument> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callbacks = callbacks_;
    // Families in first-registration order; series within a family in
    // registration order. # HELP / # TYPE once per family.
    for (const auto& [family, help] : family_help_) {
      Kind kind = Kind::kCounter;
      bool seen = false;
      for (const Instrument& instrument : instruments_) {
        if (instrument.name != family) continue;
        if (!seen) {
          seen = true;
          kind = instrument.kind;
          if (!help.empty()) out += "# HELP " + family + " " + help + "\n";
          out += "# TYPE " + family + " ";
          switch (kind) {
            case Kind::kCounter:
              out += "counter\n";
              break;
            case Kind::kGauge:
            case Kind::kGaugeD:
              out += "gauge\n";
              break;
            case Kind::kHistogram:
              out += "histogram\n";
              break;
          }
        }
        switch (instrument.kind) {
          case Kind::kCounter:
            out += family + RenderLabels(instrument.labels) + " ";
            AppendU64(&out, instrument.counter.value());
            out += "\n";
            break;
          case Kind::kGauge:
            out += family + RenderLabels(instrument.labels) + " ";
            AppendI64(&out, instrument.gauge.value());
            out += "\n";
            break;
          case Kind::kGaugeD: {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%g", instrument.gauge_d.value());
            out += family + RenderLabels(instrument.labels) + " ";
            out += buf;
            out += "\n";
            break;
          }
          case Kind::kHistogram: {
            const Histogram::Snapshot s =
                instrument.histogram.TakeSnapshot();
            uint64_t cumulative = 0;
            for (int b = 0; b < Histogram::kBuckets; ++b) {
              cumulative += s.counts[b];
              // Skip interior empty buckets to keep scrapes compact, but
              // always emit the first and last so the shape is parseable.
              if (s.counts[b] == 0 && b != 0 &&
                  b != Histogram::kBuckets - 1) {
                continue;
              }
              char le[32];
              std::snprintf(le, sizeof(le), "%" PRIu64,
                            Histogram::BucketUpperBound(b));
              const Label le_label{"le", le};
              out += family + "_bucket" +
                     RenderLabels(instrument.labels, &le_label) + " ";
              AppendU64(&out, cumulative);
              out += "\n";
            }
            const Label inf_label{"le", "+Inf"};
            out += family + "_bucket" +
                   RenderLabels(instrument.labels, &inf_label) + " ";
            AppendU64(&out, s.total);
            out += "\n";
            out += family + "_sum" + RenderLabels(instrument.labels) + " ";
            AppendU64(&out, s.sum);
            out += "\n";
            out += family + "_count" + RenderLabels(instrument.labels) +
                   " ";
            AppendU64(&out, s.total);
            out += "\n";
          }
        }
      }
    }
  }
  for (const CallbackInstrument& callback : callbacks) {
    if (!callback.help.empty()) {
      out += "# HELP " + callback.name + " " + callback.help + "\n";
    }
    out += "# TYPE " + callback.name +
           (callback.monotonic ? " counter\n" : " gauge\n");
    out += callback.name + " ";
    if (callback.monotonic) {
      AppendU64(&out, callback.counter_fn ? callback.counter_fn() : 0);
    } else {
      AppendI64(&out, callback.gauge_fn ? callback.gauge_fn() : 0);
    }
    out += "\n";
  }
  return out;
}

}  // namespace priview::obs
