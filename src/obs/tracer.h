// Low-overhead tracing: RAII TraceSpans over the monotonic clock, recorded
// into the process-wide MetricsRegistry as per-span-name duration
// histograms, plus a bounded slow-span log with a configurable threshold.
//
// Arming model (same shape as the failpoint framework): the Tracer is
// process-wide and disarmed by default. A disarmed TraceSpan costs one
// relaxed atomic load in its constructor and one branch in its destructor
// — the same budget as a disarmed failpoint site (<1%, enforced by
// bench_obs / BENCH_observability.json). Armed spans take one
// steady_clock reading at each end and one histogram observation.
//
// Nesting: spans nest freely (a thread-local depth is tracked for the
// slow log). The bookkeeping is self-healing: a span abandoned mid-fault
// (see the "obs/span-torn" failpoint, which simulates a span whose end is
// lost inside a fault handler) can never corrupt the registry or the
// depth accounting — the torn span itself restores the thread-local depth
// (so even a torn top-level span leaves no skew behind), and is counted
// in priview_spans_torn_total rather than recorded with a junk duration.
//
// Span taxonomy (DESIGN.md §12):
//   publish                    whole synopsis build
//   publish/count              fused marginal counting pass
//   publish/noise[/view]       Laplace noising, per phase and per view
//   publish/ripple[/view]      non-negativity pass, per phase and per view
//   publish/consistency        one consistency projection pass
//   pipeline/select-views      view selection inside the release pipeline
//   query/marginal             cache-miss marginal answer (solve + insert;
//                              sub-microsecond cache hits are deliberately
//                              span-free — see QueryEngine::CachedQuery)
//   query/solve                one reconstruction solve inside AnswerBatch
//   broker/dispatch            one broker batch dispatch
#ifndef PRIVIEW_OBS_TRACER_H_
#define PRIVIEW_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace priview::obs {

struct TracerOptions {
  /// Spans at or above this duration land in the slow log (and count in
  /// priview_slow_spans_total). 0 disables the slow log.
  uint64_t slow_span_threshold_us = 0;
  /// Ring-buffer capacity of the slow log; older entries are dropped.
  size_t slow_log_capacity = 128;
};

/// One slow-log record.
struct SlowSpanEntry {
  std::string name;
  std::string detail;  // optional Annotate() payload (e.g. query scope)
  uint64_t duration_us = 0;
  int depth = 0;  // nesting depth at which the span ran
};

namespace internal {
/// The disarmed fast path reads only this (cf. failpoint::g_armed_count).
extern std::atomic<bool> g_tracing_armed;
inline bool TracingArmed() {
  return g_tracing_armed.load(std::memory_order_relaxed);
}
}  // namespace internal

class Tracer {
 public:
  static Tracer& Global();

  /// Arms tracing process-wide (idempotent; re-arming replaces options
  /// and clears the slow log).
  void Arm(const TracerOptions& options = {});
  void Disarm();
  bool armed() const { return internal::TracingArmed(); }

  uint64_t slow_threshold_us() const {
    return slow_threshold_us_.load(std::memory_order_relaxed);
  }

  /// Point-in-time copy of the slow log, oldest first.
  std::vector<SlowSpanEntry> SlowEntries() const;
  /// Total slow spans observed since arming (including ones the ring
  /// buffer has already dropped).
  uint64_t SlowSpanCount() const;
  void ClearSlowLog();

 private:
  friend class TraceSpan;
  Tracer() = default;

  void RecordSlow(SlowSpanEntry entry);

  std::atomic<uint64_t> slow_threshold_us_{0};
  mutable std::mutex slow_mu_;
  std::deque<SlowSpanEntry> slow_log_;
  size_t slow_capacity_ = 128;
  std::atomic<uint64_t> slow_total_{0};
};

/// RAII span. Construct with a static-storage name (string literal); the
/// pointer is kept for the span's lifetime. Copying is disabled — a span
/// marks a region of one stack frame.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (internal::TracingArmed()) Begin(name);
  }
  ~TraceSpan() {
    if (active_) End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void End();

  /// Attaches a detail string carried into the slow log (ignored when the
  /// span is disarmed or the slow log is off).
  void Annotate(const std::string& detail);

  bool active() const { return active_; }

 private:
  void Begin(const char* name);

  const char* name_ = nullptr;
  bool active_ = false;
  int depth_ = 0;
  uint64_t start_us_ = 0;
  // Lazily allocated: an inline std::string's ctor/dtor would tax every
  // disarmed span, and annotations only exist on armed slow-log paths.
  std::unique_ptr<std::string> detail_;
};

}  // namespace priview::obs

#endif  // PRIVIEW_OBS_TRACER_H_
