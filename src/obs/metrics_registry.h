// Unified metrics substrate for the whole stack: named counters, gauges
// and fixed-bucket histograms, registered once and updated lock-free, with
// a Prometheus text-exposition renderer for in-process scraping and the
// server's wire `metrics` request.
//
// Design:
//   - Instruments are owned by a MetricsRegistry and live as long as it
//     does; Get* returns a stable pointer (the same pointer for the same
//     name + label set), so call sites cache it once (typically in a
//     function-local static) and pay one relaxed atomic RMW per update.
//   - The process-wide registry (MetricsRegistry::Global()) carries the
//     publish-pipeline, query-path and solver instruments plus pull-style
//     callback gauges over the parallel pool (queue depth, thread count,
//     inline retries). Subsystems needing isolation (one ServerMetrics per
//     server, so tests and multi-server processes do not cross-pollute)
//     own an instance registry instead.
//   - Histograms share one shape with serve's latency histograms: bucket i
//     covers [2^i, 2^(i+1)) of whatever unit the caller observes (bucket 0
//     also absorbs 0 and 1), 22 buckets, top bucket open-ended. For
//     microsecond latencies the top bucket starts at ~2.1 s.
//
// Naming scheme (DESIGN.md §12): `priview_<subsystem>_<what>[_<unit>]`,
// labels for the dimension within a family — e.g.
// `priview_span_duration_us{span="publish/noise"}`,
// `priview_query_cache_lookups_total{result="exact"}`.
#ifndef PRIVIEW_OBS_METRICS_REGISTRY_H_
#define PRIVIEW_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace priview::obs {

/// One label dimension: rendered as `{key="value"}`.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Monotonically increasing count. Updates are one relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, arm states).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Double-valued gauge for quantities that are not integers — privacy
/// budgets (ε), rates, fractions. Stored as the IEEE-754 bit pattern in an
/// atomic word, so Set/value are single relaxed loads/stores like Gauge.
class GaugeD {
 public:
  void Set(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of +0.0
};

/// Fixed-bucket power-of-two histogram: bucket i covers [2^i, 2^(i+1))
/// (bucket 0 also takes 0 and 1), 22 buckets. One relaxed fetch_add on the
/// bucket plus one on the sum per observation; snapshots may be off by
/// in-flight increments but are never torn within a single bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 22;

  void Observe(uint64_t value);

  struct Snapshot {
    uint64_t counts[kBuckets] = {};
    uint64_t total = 0;
    uint64_t sum = 0;
  };
  Snapshot TakeSnapshot() const;

  uint64_t total_count() const;
  /// Upper bound below which a fraction `p` in (0, 1] of observations
  /// fell (bucket upper bound; 0 when empty).
  double PercentileUpperBound(double p) const;
  /// Inclusive upper bound of bucket `b` (the Prometheus `le` value).
  static uint64_t BucketUpperBound(int b) {
    return (uint64_t{1} << (b + 1)) - 1;
  }
  static int BucketFor(uint64_t value);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry. First use registers the parallel-pool
  /// callback gauges (queue depth, thread count, jobs/chunks/retries).
  static MetricsRegistry& Global();

  /// Returns the instrument for (name, labels), creating it on first use.
  /// `help` is recorded on creation (first caller wins) and rendered as
  /// the family's # HELP line. Mixing instrument types under one family
  /// name is a programming error (checked).
  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  GaugeD* GetGaugeD(const std::string& name, const Labels& labels = {},
                    const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "");

  /// Pull-style instrument: `fn` is evaluated at render time. Useful for
  /// values owned elsewhere (pool queue depth, broker queue depth).
  /// Registering the same name again replaces the callback.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             std::function<int64_t()> fn);
  /// As RegisterCallbackGauge but rendered with counter semantics — for
  /// monotonic values owned elsewhere.
  void RegisterCallbackCounter(const std::string& name,
                               const std::string& help,
                               std::function<uint64_t()> fn);

  /// Prometheus text exposition (version 0.0.4): # HELP / # TYPE per
  /// family, then one series per label set; histograms render cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  /// Number of registered instrument series (diagnostics/tests).
  size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kGaugeD, kHistogram };
  struct Instrument {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    GaugeD gauge_d;
    Histogram histogram;
  };
  struct CallbackInstrument {
    std::string name;
    std::string help;
    bool monotonic = false;
    std::function<int64_t()> gauge_fn;
    std::function<uint64_t()> counter_fn;
  };

  Instrument* GetOrCreate(const std::string& name, const Labels& labels,
                          Kind kind, const std::string& help);

  mutable std::mutex mu_;  // guards registration and render bookkeeping
  // deque: stable addresses across registration (instrument pointers are
  // handed out and cached by call sites).
  std::deque<Instrument> instruments_;
  std::vector<CallbackInstrument> callbacks_;
  // family name -> (help, kind): one # HELP/# TYPE per family.
  std::vector<std::pair<std::string, std::string>> family_help_;
};

}  // namespace priview::obs

#endif  // PRIVIEW_OBS_METRICS_REGISTRY_H_
