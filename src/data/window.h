// WindowBuffer — epoch-structured record ingest for continuous release.
//
// Records arrive in batches; calling AdvanceEpoch seals everything
// ingested since the last advance as one epoch's arrival and returns the
// *delta* between the previous window and the new one (records entering
// and records leaving). The streaming publisher feeds that delta to its
// delta-aware view counter instead of recounting the whole window.
//
// Window modes:
//   kTumbling   — the window is exactly the latest epoch's batch; every
//                 advance replaces it wholesale.
//   kSliding    — the window is the last `window_batches` epoch batches;
//                 an advance adds the new batch and drops the oldest one
//                 once the window is full.
//   kCumulative — the window is every record ever ingested; deltas only
//                 ever add.
#ifndef PRIVIEW_DATA_WINDOW_H_
#define PRIVIEW_DATA_WINDOW_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/status.h"
#include "table/dataset.h"

namespace priview {

enum class WindowMode { kTumbling, kSliding, kCumulative };

const char* WindowModeName(WindowMode mode);

/// Records entering / leaving the release window at one epoch advance.
struct EpochDelta {
  std::vector<uint64_t> added;
  std::vector<uint64_t> removed;
};

class WindowBuffer {
 public:
  /// `window_batches` is the sliding-window depth; it is ignored (and
  /// normalized to 1 / unbounded) for tumbling / cumulative modes.
  WindowBuffer(int d, WindowMode mode, int window_batches = 1);

  /// Buffers records for the next epoch. Fails if any record sets a bit
  /// at or above attribute d (nothing is buffered in that case).
  Status Ingest(std::span<const uint64_t> records);

  /// Seals the pending batch as this epoch's arrival, advances the
  /// window, and returns the records that entered and left it. An empty
  /// pending batch is a legal (records-only-expiring) epoch.
  EpochDelta AdvanceEpoch();

  /// Materializes the current window as a Dataset — the full-republish
  /// reference path (differential tests, cold starts).
  Dataset WindowDataset() const;

  int d() const { return d_; }
  WindowMode mode() const { return mode_; }
  /// Number of AdvanceEpoch calls so far.
  int64_t epochs() const { return epochs_; }
  /// Records currently inside the window (excludes the pending batch).
  size_t window_size() const { return window_records_; }
  /// Records ingested but not yet sealed by AdvanceEpoch.
  size_t pending_size() const { return pending_.size(); }

 private:
  int d_;
  WindowMode mode_;
  size_t window_batches_;
  int64_t epochs_ = 0;
  size_t window_records_ = 0;
  std::vector<uint64_t> pending_;
  std::deque<std::vector<uint64_t>> window_;
};

}  // namespace priview

#endif  // PRIVIEW_DATA_WINDOW_H_
