// MCHAIN synthetic datasets (paper §5, after Usatenko & Yampol'skii):
// order-i binary Markov chains. Each record is a 64-bit sequence; given the
// previous i bits with s ones, the next bit is 1 with probability
// 0.5 + (1 - 2s/i)/4. Higher order couples more attributes, letting the
// evaluation dial attribute correlation up and down.
#ifndef PRIVIEW_DATA_MCHAIN_H_
#define PRIVIEW_DATA_MCHAIN_H_

#include "common/rng.h"
#include "table/dataset.h"

namespace priview {

/// Probability that the next bit is 1 given s ones among the previous
/// `order` bits.
double MchainNextProbability(int order, int ones);

/// Generates `n` records of `d` bits from an order-`order` chain. The first
/// `order` bits of each record are fair coin flips (the chain's burn-in).
Dataset MakeMchainDataset(int order, int d, size_t n, Rng* rng);

}  // namespace priview

#endif  // PRIVIEW_DATA_MCHAIN_H_
