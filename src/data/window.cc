#include "data/window.h"

#include <limits>
#include <utility>

#include "common/check.h"

namespace priview {

const char* WindowModeName(WindowMode mode) {
  switch (mode) {
    case WindowMode::kTumbling:
      return "tumbling";
    case WindowMode::kSliding:
      return "sliding";
    case WindowMode::kCumulative:
      return "cumulative";
  }
  return "unknown";
}

WindowBuffer::WindowBuffer(int d, WindowMode mode, int window_batches)
    : d_(d), mode_(mode) {
  PRIVIEW_CHECK(d >= 1 && d <= 64);
  switch (mode) {
    case WindowMode::kTumbling:
      window_batches_ = 1;
      break;
    case WindowMode::kSliding:
      PRIVIEW_CHECK(window_batches >= 1);
      window_batches_ = static_cast<size_t>(window_batches);
      break;
    case WindowMode::kCumulative:
      window_batches_ = std::numeric_limits<size_t>::max();
      break;
  }
}

Status WindowBuffer::Ingest(std::span<const uint64_t> records) {
  const uint64_t universe =
      d_ == 64 ? ~uint64_t{0} : (uint64_t{1} << d_) - 1;
  for (uint64_t record : records) {
    if ((record & ~universe) != 0) {
      return Status::InvalidArgument(
          "record sets attribute bits outside the " + std::to_string(d_) +
          "-attribute universe");
    }
  }
  pending_.insert(pending_.end(), records.begin(), records.end());
  return Status::OK();
}

EpochDelta WindowBuffer::AdvanceEpoch() {
  EpochDelta delta;
  delta.added = std::move(pending_);
  pending_.clear();
  window_records_ += delta.added.size();
  window_.push_back(delta.added);  // copy: the delta is returned to the caller
  while (window_.size() > window_batches_) {
    std::vector<uint64_t>& expiring = window_.front();
    window_records_ -= expiring.size();
    delta.removed.insert(delta.removed.end(), expiring.begin(),
                         expiring.end());
    window_.pop_front();
  }
  ++epochs_;
  return delta;
}

Dataset WindowBuffer::WindowDataset() const {
  std::vector<uint64_t> records;
  records.reserve(window_records_);
  for (const std::vector<uint64_t>& batch : window_) {
    records.insert(records.end(), batch.begin(), batch.end());
  }
  return Dataset(d_, std::move(records));
}

}  // namespace priview
