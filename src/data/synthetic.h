// Synthetic stand-ins for the paper's real datasets (Kosarak, AOL, MSNBC),
// which are not available offline. Each generator reproduces the features
// the experiments actually exercise: dimensionality d, record count N,
// power-law attribute frequencies (page/category popularity) and low-order
// correlation structure (users who visit one page in a topic tend to visit
// related pages). See DESIGN.md for the substitution argument.
//
// The model: per-record activity a ~ exponential clamp, topic clusters of
// attributes; attribute j fires with probability scaled by activity, its
// popularity rank, and a boost when its topic is active for the record.
#ifndef PRIVIEW_DATA_SYNTHETIC_H_
#define PRIVIEW_DATA_SYNTHETIC_H_

#include "common/rng.h"
#include "table/dataset.h"

namespace priview {

/// Tunable clickstream-like generator.
struct ClickstreamModel {
  int d = 32;
  size_t n = 100000;
  /// Frequency of the most popular attribute.
  double top_frequency = 0.6;
  /// Power-law exponent of the popularity decay across attributes.
  double popularity_exponent = 1.1;
  /// Number of topic clusters inducing correlations.
  int num_topics = 8;
  /// Probability a topic is active for a record.
  double topic_activation = 0.25;
  /// Multiplier applied to an attribute's firing odds when its topic is
  /// active (>1 induces positive correlation within a topic).
  double topic_boost = 4.0;
  /// Heavy-tail user activity multiplier scale (0 disables).
  double activity_scale = 0.5;
};

/// Samples a dataset from the model.
Dataset MakeClickstreamDataset(const ClickstreamModel& model, Rng* rng);

/// Kosarak-like: d = 32, N = 912,627 (clicks on a news portal's top pages).
Dataset MakeKosarakLike(Rng* rng, size_t n = 912627);

/// AOL-like: d = 45, N = 647,377 (search-keyword categories).
Dataset MakeAolLike(Rng* rng, size_t n = 647377);

/// MSNBC-like: d = 9, N = 989,818 (page-category visits).
Dataset MakeMsnbcLike(Rng* rng, size_t n = 989818);

}  // namespace priview

#endif  // PRIVIEW_DATA_SYNTHETIC_H_
