// Dataset serialization in the FIMI transaction format used by the
// repositories the paper draws from (kosarak.dat et al.): one record per
// line, the line listing the indices of the attributes set to 1.
#ifndef PRIVIEW_DATA_IO_H_
#define PRIVIEW_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "table/dataset.h"

namespace priview {

/// Writes `data` to `path` in FIMI transaction format.
Status WriteTransactions(const Dataset& data, const std::string& path);

/// Reads a FIMI transaction file. Attribute indices must be < d; lines may
/// be empty (a record with no attributes set).
StatusOr<Dataset> ReadTransactions(const std::string& path, int d);

}  // namespace priview

#endif  // PRIVIEW_DATA_IO_H_
