#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace priview {

Dataset MakeClickstreamDataset(const ClickstreamModel& model, Rng* rng) {
  PRIVIEW_CHECK(model.d >= 1 && model.d <= 64);
  PRIVIEW_CHECK(model.num_topics >= 1);

  // Base popularity: power-law decay from top_frequency.
  std::vector<double> base(model.d);
  for (int j = 0; j < model.d; ++j) {
    base[j] = model.top_frequency /
              std::pow(static_cast<double>(j + 1), model.popularity_exponent);
  }
  // Topic assignment round-robins attributes so each topic mixes popular
  // and unpopular pages (as real portals do).
  std::vector<int> topic(model.d);
  for (int j = 0; j < model.d; ++j) topic[j] = j % model.num_topics;

  Dataset data(model.d);
  std::vector<bool> active(model.num_topics);
  for (size_t i = 0; i < model.n; ++i) {
    const double activity =
        1.0 + (model.activity_scale > 0.0
                   ? rng->Exponential(1.0 / model.activity_scale)
                   : 0.0);
    for (int t = 0; t < model.num_topics; ++t) {
      active[t] = rng->Bernoulli(model.topic_activation);
    }
    uint64_t record = 0;
    for (int j = 0; j < model.d; ++j) {
      double p = base[j] * activity;
      if (active[topic[j]]) p *= model.topic_boost;
      if (rng->Bernoulli(std::min(p, 0.98))) record |= (1ULL << j);
    }
    data.Add(record);
  }
  return data;
}

Dataset MakeKosarakLike(Rng* rng, size_t n) {
  ClickstreamModel model;
  model.d = 32;
  model.n = n;
  model.top_frequency = 0.6;
  model.popularity_exponent = 1.1;
  model.num_topics = 8;
  model.topic_activation = 0.25;
  model.topic_boost = 4.0;
  model.activity_scale = 0.5;
  return MakeClickstreamDataset(model, rng);
}

Dataset MakeAolLike(Rng* rng, size_t n) {
  ClickstreamModel model;
  model.d = 45;
  model.n = n;
  // Search categories are flatter and less correlated than page clicks.
  model.top_frequency = 0.45;
  model.popularity_exponent = 0.9;
  model.num_topics = 9;
  model.topic_activation = 0.2;
  model.topic_boost = 3.0;
  model.activity_scale = 0.6;
  return MakeClickstreamDataset(model, rng);
}

Dataset MakeMsnbcLike(Rng* rng, size_t n) {
  ClickstreamModel model;
  model.d = 9;
  model.n = n;
  // Mild correlations: MSNBC's 9 page categories correlate weakly, which
  // is why the paper's Fig. 1 sees PriView (pair coverage only) track Flat
  // even at k = 4.
  model.top_frequency = 0.55;
  model.popularity_exponent = 0.8;
  model.num_topics = 3;
  model.topic_activation = 0.3;
  model.topic_boost = 2.0;
  model.activity_scale = 0.4;
  return MakeClickstreamDataset(model, rng);
}

}  // namespace priview
