#include "data/mchain.h"

#include "common/bits.h"
#include "common/check.h"

namespace priview {

double MchainNextProbability(int order, int ones) {
  PRIVIEW_CHECK(order >= 1 && ones >= 0 && ones <= order);
  return 0.5 + (1.0 - 2.0 * static_cast<double>(ones) / order) / 4.0;
}

Dataset MakeMchainDataset(int order, int d, size_t n, Rng* rng) {
  PRIVIEW_CHECK(order >= 1 && order < d && d <= 64);
  Dataset data(d);
  const uint64_t window_mask = (order >= 64) ? ~0ULL : ((1ULL << order) - 1);
  for (size_t i = 0; i < n; ++i) {
    uint64_t record = 0;
    for (int bit = 0; bit < order; ++bit) {
      if (rng->Bernoulli(0.5)) record |= (1ULL << bit);
    }
    for (int bit = order; bit < d; ++bit) {
      const uint64_t window = (record >> (bit - order)) & window_mask;
      const int ones = PopCount(window);
      if (rng->Bernoulli(MchainNextProbability(order, ones))) {
        record |= (1ULL << bit);
      }
    }
    data.Add(record);
  }
  return data;
}

}  // namespace priview
