#include "data/io.h"

#include <fstream>
#include <sstream>

namespace priview {

Status WriteTransactions(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (uint64_t record : data.records()) {
    bool first = true;
    for (int a = 0; a < data.d(); ++a) {
      if ((record >> a) & 1) {
        if (!first) out << ' ';
        out << a;
        first = false;
      }
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Dataset> ReadTransactions(const std::string& path, int d) {
  if (d < 1 || d > 64) {
    return Status::InvalidArgument("d must be in [1, 64]");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  Dataset data(d);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    uint64_t record = 0;
    std::istringstream fields(line);
    long long attr;
    while (fields >> attr) {
      if (attr < 0 || attr >= d) {
        return Status::OutOfRange("attribute " + std::to_string(attr) +
                                  " out of range on line " +
                                  std::to_string(line_number));
      }
      record |= (1ULL << attr);
    }
    data.Add(record);
  }
  return data;
}

}  // namespace priview
