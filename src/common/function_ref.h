// FunctionRef: a non-owning, trivially-copyable reference to a callable —
// two words (object pointer + trampoline pointer), no allocation, no
// virtual dispatch through std::function's type-erased storage.
//
// The parallel layer takes its loop bodies by FunctionRef: a ParallelFor
// over a tiny region used to pay a std::function construction (a heap
// allocation once the captures outgrow the SBO buffer) on every dispatch,
// which is pure tax for a callable that only needs to live for the length
// of the call. FunctionRef is safe exactly when the referenced callable
// outlives the call — true for every synchronous parallel region, and the
// only way the parallel layer uses it.
//
// Deliberately minimal: no null state, no target introspection. Construct
// from any callable (including a temporary lambda at a call site — the
// temporary lives until the full-expression ends, which outlives the
// synchronous call it is passed to).
#ifndef PRIVIEW_COMMON_FUNCTION_REF_H_
#define PRIVIEW_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace priview {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& f) {
    using T = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<T>) {
      // A plain function has no object to point at; smuggle the function
      // pointer itself through obj_ (reinterpret_cast both ways — the
      // round trip through void* is exact).
      obj_ = reinterpret_cast<void*>(std::addressof(f));
      call_ = [](void* obj, Args... args) -> R {
        return (reinterpret_cast<T*>(obj))(std::forward<Args>(args)...);
      };
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      call_ = [](void* obj, Args... args) -> R {
        return (*static_cast<T*>(obj))(std::forward<Args>(args)...);
      };
    }
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace priview

#endif  // PRIVIEW_COMMON_FUNCTION_REF_H_
