#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/failpoint.h"

namespace priview::parallel {
namespace {

// Thrown (and caught internally) when the "parallel/task-throw" failpoint
// fires; distinguishes an injected fault, which is safe to retry inline,
// from a genuine exception out of a chunk body, which is not.
struct InjectedTaskFault {};

// True on pool worker threads; a parallel region entered from a worker
// (nesting) runs inline instead of re-entering the pool.
thread_local bool t_in_pool_worker = false;

std::atomic<uint64_t> g_inline_retries{0};
std::atomic<uint64_t> g_jobs_dispatched{0};
std::atomic<uint64_t> g_chunks_executed{0};
std::atomic<size_t> g_queue_depth{0};

int DefaultThreadCount() {
  if (const char* env = std::getenv("PRIVIEW_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// One shared pool. Workers are spawned lazily on the first multi-chunk
// region and live for the rest of the process (the pool itself is
// intentionally leaked; workers park between jobs). A single dispatch runs
// at a time (job_mu_); a second thread hitting a parallel region while the
// pool is busy falls back to inline execution, so concurrent callers (e.g.
// two analyst threads issuing AnswerBatch at once) can never deadlock.
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();
    return *pool;
  }

  int threads() {
    std::lock_guard<std::mutex> lock(config_mu_);
    return override_ > 0 ? override_ : DefaultThreadCount();
  }

  void SetOverride(int n) {
    PRIVIEW_CHECK(n >= 0);
    // Taking job_mu_ waits out any in-flight dispatch, so the count never
    // changes under a running region. The pool only ever grows; workers
    // beyond the current count sit jobs out.
    std::lock_guard<std::mutex> dispatch(job_mu_);
    std::lock_guard<std::mutex> lock(config_mu_);
    override_ = n;
  }

  void Run(size_t chunks, const std::function<void(int, size_t)>& chunk_body) {
    if (chunks == 0) return;
    // Observability accounting: every chunk below flows through
    // AttemptChunk exactly once (retries replay already-counted chunks),
    // which pairs each fetch_add here with one fetch_sub there.
    g_jobs_dispatched.fetch_add(1, std::memory_order_relaxed);
    g_queue_depth.fetch_add(chunks, std::memory_order_relaxed);
    const int want = threads();
    std::unique_lock<std::mutex> dispatch(job_mu_, std::try_to_lock);
    if (want <= 1 || chunks == 1 || t_in_pool_worker ||
        !dispatch.owns_lock()) {
      RunInline(chunks, chunk_body);
      return;
    }
    EnsureWorkers(want - 1);

    JobState job;
    job.body = &chunk_body;
    job.chunk_count = chunks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      active_worker_limit_ = want - 1;
      ++generation_;
    }
    work_cv_.notify_all();

    // The caller is worker slot 0.
    WorkChunks(&job, /*slot=*/0);
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Wait until every chunk completed AND every joined worker has left
      // the (stack-allocated) job before tearing it down.
      done_cv_.wait(lock, [&] {
        return job.done_count == job.chunk_count && job.workers_inside == 0;
      });
      job_ = nullptr;
    }
    FinishJob(&job);
  }

 private:
  struct JobState {
    const std::function<void(int, size_t)>* body = nullptr;
    size_t chunk_count = 0;
    std::atomic<size_t> next_chunk{0};
    size_t done_count = 0;     // guarded by Pool::mu_
    int workers_inside = 0;    // guarded by Pool::mu_
    // Failure bookkeeping (guarded by fail_mu).
    std::mutex fail_mu;
    std::vector<size_t> injected_chunks;
    std::exception_ptr first_error;
  };

  // One chunk attempt: evaluates the task-throw failpoint, shields the
  // pool from exceptions. Returns normally in every case.
  static void AttemptChunk(JobState* job, int slot, size_t chunk) {
    g_chunks_executed.fetch_add(1, std::memory_order_relaxed);
    try {
      if (PRIVIEW_FAILPOINT("parallel/task-throw")) throw InjectedTaskFault{};
      (*job->body)(slot, chunk);
    } catch (const InjectedTaskFault&) {
      std::lock_guard<std::mutex> lock(job->fail_mu);
      job->injected_chunks.push_back(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->fail_mu);
      if (!job->first_error) job->first_error = std::current_exception();
    }
    g_queue_depth.fetch_sub(1, std::memory_order_relaxed);
  }

  // Replays injected-fault chunks inline (ascending order, slot 0) and
  // rethrows the first genuine error. Runs on the calling thread after the
  // barrier, so slot 0 is exclusively ours again; the injected failpoint
  // fires before the chunk body, so a retried chunk has no partial effects
  // to undo and the recovered result is bit-identical to an unfaulted run.
  static void FinishJob(JobState* job) {
    if (job->first_error) std::rethrow_exception(job->first_error);
    if (job->injected_chunks.empty()) return;
    std::sort(job->injected_chunks.begin(), job->injected_chunks.end());
    for (size_t chunk : job->injected_chunks) {
      g_inline_retries.fetch_add(1, std::memory_order_relaxed);
      (*job->body)(/*slot=*/0, chunk);
    }
  }

  static void RunInline(size_t chunks,
                        const std::function<void(int, size_t)>& chunk_body) {
    JobState job;
    job.body = &chunk_body;
    job.chunk_count = chunks;
    for (size_t c = 0; c < chunks; ++c) AttemptChunk(&job, /*slot=*/0, c);
    FinishJob(&job);
  }

  void WorkChunks(JobState* job, int slot) {
    for (;;) {
      const size_t chunk = job->next_chunk.fetch_add(1);
      if (chunk >= job->chunk_count) break;
      AttemptChunk(job, slot, chunk);
      std::lock_guard<std::mutex> lock(mu_);
      if (++job->done_count == job->chunk_count) done_cv_.notify_all();
    }
  }

  void EnsureWorkers(int count) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < count) {
      const int slot = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, slot] { WorkerLoop(slot); });
    }
  }

  void WorkerLoop(int slot) {
    t_in_pool_worker = true;
    uint64_t seen = 0;
    for (;;) {
      JobState* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        // Workers parked beyond the current thread count sit this job out;
        // a worker waking after the job already finished sees nullptr.
        if (job_ == nullptr || slot > active_worker_limit_) continue;
        job = job_;
        ++job->workers_inside;
      }
      WorkChunks(job, slot);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--job->workers_inside == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex config_mu_;
  int override_ = 0;

  std::mutex job_mu_;  // serializes dispatches

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  uint64_t generation_ = 0;
  JobState* job_ = nullptr;
  int active_worker_limit_ = 0;
};

// Chunk partition shared by every entry point: depends only on (n, grain).
struct Partition {
  size_t grain;
  size_t chunks;
};

Partition MakePartition(size_t begin, size_t end, size_t grain) {
  const size_t n = begin < end ? end - begin : 0;
  const size_t g = grain == 0 ? 1 : grain;
  return {g, n == 0 ? 0 : (n + g - 1) / g};
}

}  // namespace

int ThreadCount() { return Pool::Get().threads(); }

int MaxWorkerSlots() { return Pool::Get().threads(); }

void SetThreadCount(int n) { Pool::Get().SetOverride(n); }

uint64_t InlineRetryCount() {
  return g_inline_retries.load(std::memory_order_relaxed);
}

uint64_t JobsDispatched() {
  return g_jobs_dispatched.load(std::memory_order_relaxed);
}

uint64_t ChunksExecuted() {
  return g_chunks_executed.load(std::memory_order_relaxed);
}

size_t QueueDepth() {
  return g_queue_depth.load(std::memory_order_relaxed);
}

void ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body) {
  const Partition part = MakePartition(begin, end, grain);
  if (part.chunks == 0) return;
  Pool::Get().Run(part.chunks, [&](int /*slot*/, size_t chunk) {
    const size_t b = begin + chunk * part.grain;
    const size_t e = std::min(end, b + part.grain);
    body(chunk, b, e);
  });
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  ParallelForChunks(begin, end, grain,
                    [&](size_t /*chunk*/, size_t b, size_t e) { body(b, e); });
}

void ParallelForWorkers(size_t begin, size_t end, size_t grain,
                        const std::function<void(int, size_t, size_t)>& body) {
  const Partition part = MakePartition(begin, end, grain);
  if (part.chunks == 0) return;
  Pool::Get().Run(part.chunks, [&](int slot, size_t chunk) {
    const size_t b = begin + chunk * part.grain;
    const size_t e = std::min(end, b + part.grain);
    body(slot, b, e);
  });
}

}  // namespace priview::parallel
