#include "common/parallel.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <thread>

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/failpoint.h"

namespace priview::parallel {
namespace {

// Thrown (and caught internally) when the "parallel/task-throw" failpoint
// fires on a loop chunk; distinguishes an injected fault, which is safe to
// replay inline, from a genuine exception out of a chunk body, which is
// not. Graph nodes never throw this — their recovery is an immediate
// same-thread re-run (see the header's fault-injection contract).
struct InjectedTaskFault {};

// Worker slot of the current thread: >= 1 on pool workers, -1 elsewhere.
// A parallel region entered from a worker (nesting) runs inline instead of
// re-entering the scheduler.
thread_local int t_worker_slot = -1;

std::atomic<uint64_t> g_inline_retries{0};
std::atomic<uint64_t> g_jobs_dispatched{0};
std::atomic<uint64_t> g_chunks_executed{0};
std::atomic<uint64_t> g_steals{0};
std::atomic<uint64_t> g_steal_failures{0};
std::atomic<uint64_t> g_overflows{0};
// Tasks dispatched but not yet completed, summed over every in-flight
// region. Each task pairs exactly one increment (at dispatch) with exactly
// one decrement (when its attempt completes, injected or not), so the
// counter is exact under any number of concurrent dispatchers and can
// never underflow.
std::atomic<size_t> g_outstanding{0};
std::array<std::atomic<int>, kNumPhases> g_occupancy{};

constexpr const char* kPhaseNames[kNumPhases] = {
    "generic", "count", "merge", "noise", "ripple", "consistency", "solve"};

int DefaultThreadCount() {
  if (const char* env = std::getenv("PRIVIEW_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Chunk partition shared by every entry point: depends only on (n, grain).
struct Partition {
  size_t grain;
  size_t chunks;
};

Partition MakePartition(size_t begin, size_t end, size_t grain) {
  const size_t n = begin < end ? end - begin : 0;
  const size_t g = grain == 0 ? 1 : grain;
  return {g, n == 0 ? 0 : (n + g - 1) / g};
}

struct JobState;

// One schedulable unit: a loop chunk or a graph node of `job`.
struct Task {
  JobState* job = nullptr;
  uint32_t index = 0;
};

// Per-region state, stack-allocated in the dispatching frame. Exactly one
// of `loop` / `graph` is set.
struct JobState {
  const FunctionRef<void(int, size_t)>* loop = nullptr;
  Phase loop_phase = Phase::kGeneric;

  TaskGraph* graph = nullptr;
  std::unique_ptr<std::atomic<uint32_t>[]> indegree;
  std::atomic<bool> failed{false};  // graph mode: skip not-yet-started nodes

  std::atomic<size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  // Set (and notified) inside one done_mu critical section by the task
  // that drives `remaining` to zero — the completer's LAST touch of this
  // stack-resident state. The dispatching caller must observe it while
  // holding done_mu before returning; `remaining == 0` alone is only a
  // hint, not a lifetime guarantee (the completer may still be inside
  // the critical section).
  bool done = false;

  std::mutex fail_mu;
  std::vector<size_t> injected_chunks;  // loop mode: replayed by the caller
  std::exception_ptr first_error;
};

// Bounded per-worker deque. The owner drains the FRONT (ascending chunk
// order — forward streaming locality; graph enables also land at the front
// so a just-unblocked dependent runs while its inputs are hot); thieves
// take from the BACK, the end farthest from the owner's working set. A
// full ring spills to the scheduler's shared overflow queue.
class WorkerDeque {
 public:
  static constexpr size_t kCap = 2048;

  bool PushBack(Task t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == kCap) return false;
    ring_[(head_ + size_) % kCap] = t;
    ++size_;
    return true;
  }

  bool PushFront(Task t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == kCap) return false;
    head_ = (head_ + kCap - 1) % kCap;
    ring_[head_] = t;
    ++size_;
    return true;
  }

  bool PopFront(Task* t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == 0) return false;
    *t = ring_[head_];
    head_ = (head_ + 1) % kCap;
    --size_;
    return true;
  }

  bool PopBack(Task* t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == 0) return false;
    *t = ring_[(head_ + size_ - 1) % kCap];
    --size_;
    return true;
  }

  // Steals the back task only if it belongs to `job` — the dispatching
  // caller helps its own region without executing (and being blocked
  // inside) an unrelated concurrent region.
  bool PopBackIfJob(const JobState* job, Task* t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == 0 || ring_[(head_ + size_ - 1) % kCap].job != job) {
      return false;
    }
    *t = ring_[(head_ + size_ - 1) % kCap];
    --size_;
    return true;
  }

 private:
  std::mutex mu_;
  std::array<Task, kCap> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
};

class Scheduler {
 public:
  // Caller (slot 0) plus at most kMaxThreads - 1 pool workers.
  static constexpr int kMaxThreads = 64;

  static Scheduler& Get() {
    // Intentionally leaked; workers are detached and park between jobs,
    // so static-destruction order can't strand one on a dead condvar.
    static Scheduler* scheduler = new Scheduler();
    return *scheduler;
  }

  int threads() {
    std::lock_guard<std::mutex> lock(config_mu_);
    const int n = override_ > 0 ? override_ : DefaultThreadCount();
    return std::min(n, kMaxThreads);
  }

  void SetOverride(int n) {
    PRIVIEW_CHECK(n >= 0);
    // The unique lock waits out every in-flight dispatch (dispatchers hold
    // it shared for the life of their region), so the count never changes
    // under a running region. Workers only ever spawn; those beyond the
    // active limit sit jobs out.
    std::unique_lock<std::shared_mutex> idle(dispatch_mu_);
    std::lock_guard<std::mutex> lock(config_mu_);
    override_ = n;
  }

  void RunLoop(Phase phase, size_t chunks,
               const FunctionRef<void(int, size_t)>& body) {
    if (chunks == 0) return;
    g_jobs_dispatched.fetch_add(1, std::memory_order_relaxed);
    JobState job;
    job.loop = &body;
    job.loop_phase = phase;
    const int want = threads();
    std::shared_lock<std::shared_mutex> dispatch(dispatch_mu_,
                                                 std::try_to_lock);
    if (want <= 1 || chunks == 1 || t_worker_slot >= 0 ||
        !dispatch.owns_lock()) {
      job.remaining.store(chunks, std::memory_order_relaxed);
      g_outstanding.fetch_add(chunks);
      for (size_t c = 0; c < chunks; ++c) {
        Execute(Task{&job, static_cast<uint32_t>(c)}, /*slot=*/0);
      }
      FinishLoop(&job);
      return;
    }
    const int lanes = want - 1;
    EnsureWorkers(lanes);
    limit_.store(lanes, std::memory_order_release);
    job.remaining.store(chunks, std::memory_order_relaxed);
    g_outstanding.fetch_add(chunks);
    // Deal contiguous blocks: lane i owns chunks [.., ..) and drains them
    // in ascending order; imbalance is repaired by stealing, not by a
    // shared next-chunk counter every worker contends on.
    for (int lane = 1; lane <= lanes; ++lane) {
      const size_t b = chunks * static_cast<size_t>(lane - 1) /
                       static_cast<size_t>(lanes);
      const size_t e =
          chunks * static_cast<size_t>(lane) / static_cast<size_t>(lanes);
      for (size_t c = b; c < e; ++c) {
        PushBack(lane, Task{&job, static_cast<uint32_t>(c)});
      }
    }
    WakeWorkers();
    DrainAsCaller(&job);
    FinishLoop(&job);
  }

  void RunGraph(TaskGraph* graph);

  // --- introspection ---
  int max_worker_slots() { return threads(); }

 private:
  void ExecuteBody(JobState* job, int slot, uint32_t index);

  // One task attempt: evaluates the task-throw failpoint, shields the pool
  // from exceptions, keeps every counter paired. Returns normally always.
  void Execute(Task t, int slot) {
    JobState* job = t.job;
    const Phase phase = job->graph
                            ? PhaseOfNode(job, t.index)
                            : job->loop_phase;
    g_chunks_executed.fetch_add(1, std::memory_order_relaxed);
    g_occupancy[static_cast<int>(phase)].fetch_add(1);
    const bool skip =
        job->graph != nullptr && job->failed.load(std::memory_order_acquire);
    if (!skip) {
      try {
        if (PRIVIEW_FAILPOINT("parallel/task-throw")) {
          if (job->graph != nullptr) {
            // Dependents are gated on this node's completion, so the
            // recovery runs here and now: the failpoint fired before the
            // body, so this is the body's first (and only) execution.
            g_inline_retries.fetch_add(1, std::memory_order_relaxed);
          } else {
            throw InjectedTaskFault{};
          }
        }
        ExecuteBody(job, slot, t.index);
      } catch (const InjectedTaskFault&) {
        std::lock_guard<std::mutex> lock(job->fail_mu);
        job->injected_chunks.push_back(t.index);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(job->fail_mu);
          if (!job->first_error) job->first_error = std::current_exception();
        }
        job->failed.store(true, std::memory_order_release);
      }
    }
    g_occupancy[static_cast<int>(phase)].fetch_sub(1);
    g_outstanding.fetch_sub(1);
    if (job->graph != nullptr) EnableDependents(job, t.index, slot);
    const size_t left = job->remaining.fetch_sub(1) - 1;
    if (left == 0) {
      // Flag and notify inside the critical section: the waiting caller
      // can only see done == true while holding done_mu, which sequences
      // this entire block (the completer's last touch) before the
      // JobState's destruction on the caller's stack.
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->done = true;
      job->done_cv.notify_all();
    }
  }

  Phase PhaseOfNode(JobState* job, uint32_t index);
  void EnableDependents(JobState* job, uint32_t index, int slot);

  // Replays injected-fault chunks inline (ascending order, slot 0) and
  // rethrows the first genuine error. Runs on the calling thread after the
  // region completed, so slot 0 is exclusively ours again; the injected
  // failpoint fires before the chunk body, so a retried chunk has no
  // partial effects to undo and the recovered result is bit-identical to
  // an unfaulted run.
  void FinishLoop(JobState* job) {
    if (job->first_error) std::rethrow_exception(job->first_error);
    if (job->injected_chunks.empty()) return;
    std::sort(job->injected_chunks.begin(), job->injected_chunks.end());
    for (size_t chunk : job->injected_chunks) {
      g_inline_retries.fetch_add(1, std::memory_order_relaxed);
      (*job->loop)(/*slot=*/0, chunk);
    }
  }

  // The dispatching caller works as slot 0: it claims tasks of its OWN
  // region (back-of-deque steals plus the overflow queue) until the region
  // completes. Claims are restricted by job so a caller never blocks
  // inside an unrelated concurrent region's task.
  void DrainAsCaller(JobState* job) {
    Task t;
    for (;;) {
      if (job->remaining.load(std::memory_order_acquire) == 0) break;
      if (TryClaimForCaller(job, &t)) {
        Execute(t, /*slot=*/0);
        continue;
      }
      std::unique_lock<std::mutex> lock(job->done_mu);
      if (job->done) return;
      // Timed wait, not a pure block: a graph node finishing elsewhere can
      // enable new tasks the caller should help with.
      job->done_cv.wait_for(lock, std::chrono::microseconds(200));
      if (job->done) return;
    }
    // remaining hit zero, but the completing worker may still be inside
    // the done_mu critical section. Wait for `done` under the mutex — the
    // only exit that makes destroying the JobState safe.
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] { return job->done; });
  }

  bool TryClaimForCaller(JobState* job, Task* t) {
    const int lanes = limit_.load(std::memory_order_acquire);
    const int start =
        static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed));
    for (int i = 0; i < lanes; ++i) {
      const int lane = 1 + (start + i) % lanes;
      if (deques_[lane]->PopBackIfJob(job, t)) {
        g_pending.fetch_sub(1);
        g_steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
        if (it->job == job) {
          *t = *it;
          overflow_.erase(it);
          g_pending.fetch_sub(1);
          return true;
        }
      }
    }
    g_steal_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool TryClaimForWorker(int slot, uint64_t* rng_state, Task* t) {
    if (deques_[slot]->PopFront(t)) {
      g_pending.fetch_sub(1);
      return true;
    }
    const int lanes = limit_.load(std::memory_order_acquire);
    // Randomized victim order: xorshift so concurrent thieves fan out
    // instead of convoying on the same victim.
    uint64_t x = *rng_state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng_state = x;
    const int start = static_cast<int>(x % static_cast<uint64_t>(
                                               lanes > 0 ? lanes : 1));
    for (int i = 0; i < lanes; ++i) {
      const int lane = 1 + (start + i) % lanes;
      if (lane == slot) continue;
      if (deques_[lane]->PopBack(t)) {
        g_pending.fetch_sub(1);
        g_steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      if (!overflow_.empty()) {
        *t = overflow_.front();
        overflow_.pop_front();
        g_pending.fetch_sub(1);
        return true;
      }
    }
    g_steal_failures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void PushBack(int lane, Task t) {
    if (!deques_[lane]->PushBack(t)) {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_.push_back(t);
      g_overflows.fetch_add(1, std::memory_order_relaxed);
    }
    g_pending.fetch_add(1);
  }

  void PushFront(int lane, Task t) {
    if (!deques_[lane]->PushFront(t)) {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_.push_back(t);
      g_overflows.fetch_add(1, std::memory_order_relaxed);
    }
    g_pending.fetch_add(1);
  }

  // Pushes a just-enabled graph node. A worker keeps it at its own deque
  // front (the prerequisite's output is hot in its cache); the caller has
  // no deque and deals round-robin.
  void PushEnabled(Task t, int slot) {
    if (slot >= 1) {
      PushFront(slot, t);
    } else {
      const int lanes = std::max(1, limit_.load(std::memory_order_acquire));
      const int lane =
          1 + static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                               static_cast<uint64_t>(lanes));
      PushBack(lane, t);
    }
    WakeWorkers();
  }

  void EnsureWorkers(int count) {
    PRIVIEW_CHECK(count < kMaxThreads);
    if (worker_count_.load(std::memory_order_acquire) >= count) return;
    std::lock_guard<std::mutex> lock(spawn_mu_);
    while (worker_count_.load(std::memory_order_relaxed) < count) {
      const int slot = worker_count_.load(std::memory_order_relaxed) + 1;
      deques_[slot] = std::make_unique<WorkerDeque>();
      std::thread([this, slot] { WorkerLoop(slot); }).detach();
      worker_count_.store(slot, std::memory_order_release);
    }
  }

  void WakeWorkers() {
    if (sleepers_.load(std::memory_order_acquire) == 0) return;
    // Lock-then-notify: a worker between its predicate check and wait()
    // holds sleep_mu_, so the notification cannot slip into that window.
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();
  }

  void WorkerLoop(int slot) {
    t_worker_slot = slot;
    uint64_t rng_state = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(slot) +
                         0xbf58476d1ce4e5b9ull;
    Task t;
    for (;;) {
      if (TryClaimForWorker(slot, &rng_state, &t)) {
        Execute(t, slot);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleepers_.fetch_add(1);
      sleep_cv_.wait(lock, [&] {
        return g_pending.load() > 0 &&
               slot <= limit_.load(std::memory_order_acquire);
      });
      sleepers_.fetch_sub(1);
    }
  }

  std::mutex config_mu_;
  int override_ = 0;

  // Held shared by every pooled dispatch for the life of its region;
  // held unique by SetOverride. Concurrent dispatchers coexist.
  std::shared_mutex dispatch_mu_;

  std::mutex spawn_mu_;
  std::atomic<int> worker_count_{0};
  std::atomic<int> limit_{0};  // worker slots 1..limit_ participate
  std::array<std::unique_ptr<WorkerDeque>, kMaxThreads> deques_;

  std::mutex overflow_mu_;
  std::deque<Task> overflow_;

  // Claimable (pushed, unclaimed) tasks — the worker wake predicate.
  std::atomic<size_t> g_pending{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};

  std::atomic<uint64_t> rr_{0};
};

}  // namespace

// Grants the scheduler access to TaskGraph internals without widening the
// public API; exposes only public types (NodeId, Phase) so the
// anonymous-namespace Scheduler never names the private Node struct.
class SchedulerAccess {
 public:
  static void Run(TaskGraph* graph) { Scheduler::Get().RunGraph(graph); }
  static Phase NodePhase(const TaskGraph* graph, uint32_t id) {
    return graph->nodes_[id].phase;
  }
  static void RunNodeBody(const TaskGraph* graph, uint32_t id, int slot) {
    graph->nodes_[id].body(slot);
  }
  static const std::vector<TaskGraph::NodeId>& Dependents(
      const TaskGraph* graph, uint32_t id) {
    return graph->nodes_[id].dependents;
  }
  static uint32_t Indegree(const TaskGraph* graph, uint32_t id) {
    return graph->nodes_[id].indegree;
  }
};

namespace {

void Scheduler::ExecuteBody(JobState* job, int slot, uint32_t index) {
  if (job->graph != nullptr) {
    SchedulerAccess::RunNodeBody(job->graph, index, slot);
  } else {
    (*job->loop)(slot, index);
  }
}

Phase Scheduler::PhaseOfNode(JobState* job, uint32_t index) {
  return SchedulerAccess::NodePhase(job->graph, index);
}

void Scheduler::EnableDependents(JobState* job, uint32_t index, int slot) {
  for (TaskGraph::NodeId d :
       SchedulerAccess::Dependents(job->graph, index)) {
    if (job->indegree[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      PushEnabled(Task{job, d}, slot);
    }
  }
}

void Scheduler::RunGraph(TaskGraph* graph) {
  const size_t n = graph->size();
  if (n == 0) return;
  g_jobs_dispatched.fetch_add(1, std::memory_order_relaxed);

  const int want = threads();
  std::shared_lock<std::shared_mutex> dispatch(dispatch_mu_,
                                               std::try_to_lock);
  if (want <= 1 || n == 1 || t_worker_slot >= 0 || !dispatch.owns_lock()) {
    // Inline: Kahn order, ascending node id among the ready set — a fixed,
    // thread-count-independent schedule.
    g_outstanding.fetch_add(n);
    std::vector<uint32_t> indegree(n);
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        ready;
    for (uint32_t i = 0; i < n; ++i) {
      indegree[i] = SchedulerAccess::Indegree(graph, i);
      if (indegree[i] == 0) ready.push(i);
    }
    std::exception_ptr first_error;
    bool failed = false;
    size_t executed = 0;
    while (!ready.empty()) {
      const uint32_t id = ready.top();
      ready.pop();
      ++executed;
      const Phase phase = SchedulerAccess::NodePhase(graph, id);
      g_chunks_executed.fetch_add(1, std::memory_order_relaxed);
      g_occupancy[static_cast<int>(phase)].fetch_add(1);
      if (!failed) {
        try {
          if (PRIVIEW_FAILPOINT("parallel/task-throw")) {
            g_inline_retries.fetch_add(1, std::memory_order_relaxed);
          }
          SchedulerAccess::RunNodeBody(graph, id, /*slot=*/0);
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
          failed = true;
        }
      }
      g_occupancy[static_cast<int>(phase)].fetch_sub(1);
      g_outstanding.fetch_sub(1);
      for (uint32_t d : SchedulerAccess::Dependents(graph, id)) {
        if (--indegree[d] == 0) ready.push(d);
      }
    }
    PRIVIEW_CHECK(executed == n);  // acyclic — validated by Run() upfront
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  const int lanes = want - 1;
  EnsureWorkers(lanes);
  limit_.store(lanes, std::memory_order_release);

  JobState job;
  job.graph = graph;
  job.indegree = std::make_unique<std::atomic<uint32_t>[]>(n);
  std::vector<uint32_t> ready;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t deg = SchedulerAccess::Indegree(graph, i);
    job.indegree[i].store(deg, std::memory_order_relaxed);
    if (deg == 0) ready.push_back(i);
  }
  job.remaining.store(n, std::memory_order_relaxed);
  g_outstanding.fetch_add(n);
  // Deal the initially-ready nodes in contiguous ascending blocks, same as
  // loop chunks; everything else enters via EnableDependents.
  const size_t r = ready.size();
  for (int lane = 1; lane <= lanes; ++lane) {
    const size_t b =
        r * static_cast<size_t>(lane - 1) / static_cast<size_t>(lanes);
    const size_t e = r * static_cast<size_t>(lane) / static_cast<size_t>(lanes);
    for (size_t i = b; i < e; ++i) PushBack(lane, Task{&job, ready[i]});
  }
  WakeWorkers();
  DrainAsCaller(&job);
  if (job.first_error) std::rethrow_exception(job.first_error);
}

}  // namespace

const char* PhaseName(Phase phase) {
  const int i = static_cast<int>(phase);
  PRIVIEW_CHECK(i >= 0 && i < kNumPhases);
  return kPhaseNames[i];
}

int ThreadCount() { return Scheduler::Get().threads(); }

int MaxWorkerSlots() { return Scheduler::Get().threads(); }

void SetThreadCount(int n) { Scheduler::Get().SetOverride(n); }

uint64_t InlineRetryCount() {
  return g_inline_retries.load(std::memory_order_relaxed);
}

uint64_t JobsDispatched() {
  return g_jobs_dispatched.load(std::memory_order_relaxed);
}

uint64_t ChunksExecuted() {
  return g_chunks_executed.load(std::memory_order_relaxed);
}

uint64_t StealCount() { return g_steals.load(std::memory_order_relaxed); }

uint64_t StealFailureCount() {
  return g_steal_failures.load(std::memory_order_relaxed);
}

uint64_t OverflowCount() {
  return g_overflows.load(std::memory_order_relaxed);
}

size_t QueueDepth() { return g_outstanding.load(std::memory_order_relaxed); }

int PhaseOccupancy(Phase phase) {
  const int i = static_cast<int>(phase);
  PRIVIEW_CHECK(i >= 0 && i < kNumPhases);
  return g_occupancy[i].load(std::memory_order_relaxed);
}

size_t L3CacheBytes() {
  static const size_t bytes = [] {
    size_t detected = 0;
#if defined(__linux__)
    const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (l3 > 0) {
      detected = static_cast<size_t>(l3);
    } else {
      const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
      if (l2 > 0) detected = static_cast<size_t>(l2) * 4;
    }
#endif
    return detected > 0 ? detected : size_t{8} << 20;
  }();
  return bytes;
}

size_t CacheAwareGrain(size_t items, size_t bytes_per_item,
                       size_t resident_bytes) {
  if (items == 0) return 1;
  const size_t bpi = std::max<size_t>(1, bytes_per_item);
  constexpr size_t kMinBlockBytes = size_t{32} << 10;
  constexpr size_t kMaxBlockBytes = size_t{1} << 20;
  // The streamed block's cache budget: a 1/16 share of L3 (several
  // workers stream concurrently and the resident set needs its share
  // too), net of the chunk-invariant resident footprint.
  size_t budget = L3CacheBytes() / 16;
  budget = budget > resident_bytes ? budget - resident_bytes : kMinBlockBytes;
  budget = std::clamp(budget, kMinBlockBytes, kMaxBlockBytes);
  // Overhead floor beats locality ceiling beats steal balance: a chunk is
  // never under ~32KB of streamed data, never over the cache budget, and
  // large inputs split into >= ~64 chunks so thieves can balance. None of
  // the three inputs involve the thread count.
  const size_t floor_grain = std::max<size_t>(1, kMinBlockBytes / bpi);
  const size_t ceil_grain = std::max(floor_grain, budget / bpi);
  const size_t balance_grain = std::max<size_t>(1, (items + 63) / 64);
  return std::clamp(balance_grain, floor_grain, ceil_grain);
}

void ParallelForChunks(Phase phase, size_t begin, size_t end, size_t grain,
                       FunctionRef<void(size_t, size_t, size_t)> body) {
  const Partition part = MakePartition(begin, end, grain);
  if (part.chunks == 0) return;
  const auto chunk_body = [&](int /*slot*/, size_t chunk) {
    const size_t b = begin + chunk * part.grain;
    const size_t e = std::min(end, b + part.grain);
    body(chunk, b, e);
  };
  Scheduler::Get().RunLoop(phase, part.chunks,
                           FunctionRef<void(int, size_t)>(chunk_body));
}

void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       FunctionRef<void(size_t, size_t, size_t)> body) {
  ParallelForChunks(Phase::kGeneric, begin, end, grain, body);
}

void ParallelFor(Phase phase, size_t begin, size_t end, size_t grain,
                 FunctionRef<void(size_t, size_t)> body) {
  ParallelForChunks(phase, begin, end, grain,
                    [&](size_t /*chunk*/, size_t b, size_t e) { body(b, e); });
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 FunctionRef<void(size_t, size_t)> body) {
  ParallelFor(Phase::kGeneric, begin, end, grain, body);
}

void ParallelForWorkers(Phase phase, size_t begin, size_t end, size_t grain,
                        FunctionRef<void(int, size_t, size_t)> body) {
  const Partition part = MakePartition(begin, end, grain);
  if (part.chunks == 0) return;
  const auto chunk_body = [&](int slot, size_t chunk) {
    const size_t b = begin + chunk * part.grain;
    const size_t e = std::min(end, b + part.grain);
    body(slot, b, e);
  };
  Scheduler::Get().RunLoop(phase, part.chunks,
                           FunctionRef<void(int, size_t)>(chunk_body));
}

void ParallelForWorkers(size_t begin, size_t end, size_t grain,
                        FunctionRef<void(int, size_t, size_t)> body) {
  ParallelForWorkers(Phase::kGeneric, begin, end, grain, body);
}

TaskGraph::NodeId TaskGraph::AddTask(Phase phase,
                                     std::function<void(int)> body) {
  PRIVIEW_CHECK(!ran_);
  PRIVIEW_CHECK(body != nullptr);
  Node node;
  node.phase = phase;
  node.body = std::move(body);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void TaskGraph::DependsOn(NodeId task, NodeId prerequisite) {
  PRIVIEW_CHECK(!ran_);
  PRIVIEW_CHECK(task < nodes_.size() && prerequisite < nodes_.size());
  PRIVIEW_CHECK(task != prerequisite);
  nodes_[prerequisite].dependents.push_back(task);
  ++nodes_[task].indegree;
}

void TaskGraph::Run() {
  PRIVIEW_CHECK(!ran_);
  ran_ = true;
  // Acyclicity check upfront (Kahn over a scratch copy): a cyclic graph
  // must fail loudly here, not hang the scheduler.
  {
    std::vector<uint32_t> indegree(nodes_.size());
    std::vector<NodeId> ready;
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      indegree[i] = nodes_[i].indegree;
      if (indegree[i] == 0) ready.push_back(i);
    }
    size_t seen = 0;
    while (!ready.empty()) {
      const NodeId id = ready.back();
      ready.pop_back();
      ++seen;
      for (NodeId d : nodes_[id].dependents) {
        if (--indegree[d] == 0) ready.push_back(d);
      }
    }
    PRIVIEW_CHECK(seen == nodes_.size());  // cycle otherwise
  }
  SchedulerAccess::Run(this);
}

}  // namespace priview::parallel
