// Deterministic fault-injection framework for the release/serve pipeline.
//
// A *failpoint* is a named site in production code that tests (and chaos
// drills) can arm to force a rare failure — an I/O error, a solver stall, a
// NaN sample — without mocking the world. Sites are written as
//
//   if (PRIVIEW_FAILPOINT("serialize/write-io")) {
//     return Status::IOError("injected: serialize/write-io");
//   }
//
// and cost one relaxed atomic load when nothing is armed (the common case);
// when the library is configured with -DPRIVIEW_FAILPOINTS=OFF the macro
// compiles to the literal `false` and the site vanishes entirely.
//
// Triggering is deterministic and reproducible:
//   "always"            fire on every hit
//   "off"               never fire (but still count hits)
//   "hit=K"             fire only on the K-th hit (1-based)
//   "from=K"            fire on every hit >= K
//   "p=P,seed=S"        fire with probability P per hit, driven by a
//                       splitmix64 stream seeded with S (same seed ->
//                       same firing pattern, run to run)
//
// Activation is programmatic (failpoint::Arm / Disarm / DisarmAll) or via
// the environment: PRIVIEW_FAILPOINTS="name=spec;name2=spec" is parsed on
// library first use, so chaos can be injected into an unmodified binary.
#ifndef PRIVIEW_COMMON_FAILPOINT_H_
#define PRIVIEW_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

#ifndef PRIVIEW_FAILPOINTS_ENABLED
#define PRIVIEW_FAILPOINTS_ENABLED 1
#endif

namespace priview::failpoint {

/// Canonical list of every failpoint wired into the library, so chaos
/// suites can walk all fault sites without grepping the sources. Keep in
/// sync with the PRIVIEW_FAILPOINT sites (failpoint_test cross-checks that
/// each of these names is hittable).
///
///   rng/laplace-nan            Laplace sample returns NaN
///   rng/laplace-huge           Laplace sample returns 1e300
///   dp/budget-exhausted        BudgetAccountant::Spend fails
///   serialize/write-io         WriteSynopsis fails mid-stream
///   serialize/open-write       SaveSynopsis cannot open the file
///   serialize/open-read        LoadSynopsis cannot open the file
///   serialize/view-checksum    per-view checksum verification fails
///   serialize/file-checksum    whole-file checksum verification fails
///   ipf/stall                  IPF reports non-convergence immediately
///   ipf/nan-cell               IPF result has a NaN cell
///   maxent/stall               dual max-ent solver reports non-convergence
///   leastnorm/stall            least-norm solver reports non-convergence
///   reconstruct/primary-junk   primary solver output treated as junk
///   pipeline/budget-exhausted  pipeline budget spend fails
///   parallel/task-throw        a thread-pool task throws before running;
///                              the pool recovers it by inline retry
///   serve/queue-full           broker admission queue reports full
///   serve/io-torn-frame        wire frame write is torn mid-payload
///   serve/swap-race            registry hot-swap loses a concurrent race
///   serve/accept-emfile        accept(2) behaves as EMFILE: the supervisor
///                              must shed the connection via its spare fd
///                              and keep accepting, never spin
///   serve/peer-stall           a readable peer is treated as stalled
///                              mid-frame: evicted on the frame deadline
///   serve/half-open            a freshly accepted peer is treated as
///                              half-open (no traffic ever): evicted on the
///                              idle deadline
///   serve/slow-reader          a response completion is treated as landing
///                              on a non-draining peer: evicted as an
///                              egress-buffer overflow
///   obs/span-torn              a trace span's end is lost mid-fault; the
///                              tear is counted, never recorded as a
///                              duration, and nesting self-heals
///   store/fsync-fail           a SynopsisStore fsync (temp file, manifest
///                              or directory) fails, leaving unsynced state
///   store/torn-rename          crash window between the durable rename and
///                              the manifest append: the synopsis file
///                              lands on disk as an unjournaled orphan
///   store/manifest-torn-tail   the manifest append writes only a record
///                              prefix (torn tail); recovery must truncate
///   stream/rollover-abort      crash window between the store's durable
///                              journal append and the registry hot-swap:
///                              the new epoch is durable but not serving
const std::vector<std::string>& KnownFailpoints();

/// Arms `name` with a trigger spec (grammar above). Returns
/// InvalidArgument on a malformed spec. Arming resets the hit counter.
Status Arm(const std::string& name, const std::string& spec);

/// Disarms one failpoint / all failpoints. Hit counters survive until the
/// point is re-armed.
void Disarm(const std::string& name);
void DisarmAll();

/// True if `name` is currently armed (with any spec, including "off").
bool IsArmed(const std::string& name);

/// Number of times the site `name` has been evaluated since it was last
/// armed (armed points only; disarmed sites take the fast path and do not
/// count).
uint64_t HitCount(const std::string& name);

/// Parses a "name=spec;name=spec" activation string (the
/// PRIVIEW_FAILPOINTS env-var format) and arms each entry. Empty segments
/// are ignored; the first malformed entry aborts the parse with a Status.
Status ArmFromSpecString(const std::string& activation);

namespace internal {

/// Count of armed failpoints; the macro's fast path checks this before
/// taking any lock. Relaxed is fine: arming happens-before the test code
/// that exercises the site in every supported usage.
extern std::atomic<int> g_armed_count;

/// Slow path: looks `name` up in the registry, counts the hit, evaluates
/// the trigger. Called only when at least one failpoint is armed.
bool Evaluate(const char* name);

/// Parses PRIVIEW_FAILPOINTS from the environment once per process. Run
/// from a static initializer in failpoint.cc (before main), so the hot
/// path below never pays for it.
void InitFromEnvOnce();

inline bool Hit(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return false;
  return Evaluate(name);
}

}  // namespace internal

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(const std::string& name, const std::string& spec)
      : name_(name) {
    status_ = Arm(name, spec);
  }
  ~ScopedFailpoint() { Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;
  const Status& status() const { return status_; }

 private:
  std::string name_;
  Status status_;
};

}  // namespace priview::failpoint

#if PRIVIEW_FAILPOINTS_ENABLED
#define PRIVIEW_FAILPOINT(name) (::priview::failpoint::internal::Hit(name))
#else
#define PRIVIEW_FAILPOINT(name) (false)
#endif

#endif  // PRIVIEW_COMMON_FAILPOINT_H_
