#include "common/status.h"

namespace priview {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace priview
