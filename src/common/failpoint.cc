#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

namespace priview::failpoint {
namespace {

enum class TriggerKind { kOff, kAlways, kNthHit, kFromHit, kProbability };

struct Trigger {
  TriggerKind kind = TriggerKind::kOff;
  uint64_t hit_threshold = 0;  // kNthHit / kFromHit
  double probability = 0.0;    // kProbability
  uint64_t prng_state = 0;     // kProbability: splitmix64 stream
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Trigger> armed;
  // Hit counts survive disarm so tests can assert a site was exercised.
  std::map<std::string, uint64_t> last_hits;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Parses "key=value" with an unsigned integer value.
bool ParseU64(const std::string& s, size_t prefix_len, uint64_t* out) {
  const std::string digits = s.substr(prefix_len);
  if (digits.empty()) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

StatusOr<Trigger> ParseSpec(const std::string& spec) {
  Trigger t;
  if (spec == "off") {
    t.kind = TriggerKind::kOff;
    return t;
  }
  if (spec == "always") {
    t.kind = TriggerKind::kAlways;
    return t;
  }
  if (spec.rfind("hit=", 0) == 0 || spec.rfind("from=", 0) == 0) {
    const bool nth = spec[0] == 'h';
    t.kind = nth ? TriggerKind::kNthHit : TriggerKind::kFromHit;
    if (!ParseU64(spec, nth ? 4 : 5, &t.hit_threshold) ||
        t.hit_threshold == 0) {
      return Status::InvalidArgument("bad failpoint hit spec: " + spec);
    }
    return t;
  }
  if (spec.rfind("p=", 0) == 0) {
    // "p=0.25,seed=7" — seed optional, defaults to 1.
    const size_t comma = spec.find(',');
    const std::string prob_str = spec.substr(2, comma == std::string::npos
                                                    ? std::string::npos
                                                    : comma - 2);
    char* end = nullptr;
    t.probability = std::strtod(prob_str.c_str(), &end);
    if (end == prob_str.c_str() || *end != '\0' || t.probability < 0.0 ||
        t.probability > 1.0) {
      return Status::InvalidArgument("bad failpoint probability: " + spec);
    }
    uint64_t seed = 1;
    if (comma != std::string::npos) {
      const std::string seed_part = spec.substr(comma + 1);
      if (seed_part.rfind("seed=", 0) != 0 ||
          !ParseU64(seed_part, 5, &seed)) {
        return Status::InvalidArgument("bad failpoint seed: " + spec);
      }
    }
    t.kind = TriggerKind::kProbability;
    t.prng_state = seed;
    return t;
  }
  return Status::InvalidArgument("unknown failpoint spec: " + spec);
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

bool Evaluate(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return false;
  Trigger& t = it->second;
  ++t.hits;
  registry.last_hits[name] = t.hits;
  switch (t.kind) {
    case TriggerKind::kOff:
      return false;
    case TriggerKind::kAlways:
      return true;
    case TriggerKind::kNthHit:
      return t.hits == t.hit_threshold;
    case TriggerKind::kFromHit:
      return t.hits >= t.hit_threshold;
    case TriggerKind::kProbability: {
      const double u =
          static_cast<double>(SplitMix64(&t.prng_state) >> 11) * 0x1.0p-53;
      return u < t.probability;
    }
  }
  return false;
}

void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("PRIVIEW_FAILPOINTS");
    if (env != nullptr && *env != '\0') {
      // Malformed env entries are ignored (a diagnostics knob must never
      // take the process down); tests cover the parse via
      // ArmFromSpecString directly.
      (void)ArmFromSpecString(env);
    }
  });
}

}  // namespace internal

namespace {

// Env activation happens before main so PRIVIEW_FAILPOINT sites stay a
// single relaxed load. (g_armed_count is constant-initialized, so the
// cross-TU initialization order is safe; failpoint sites evaluated during
// other TUs' static initialization may miss env-armed points, which is
// acceptable for a diagnostics knob.)
const bool g_env_initialized = [] {
  internal::InitFromEnvOnce();
  return true;
}();

}  // namespace

const std::vector<std::string>& KnownFailpoints() {
  static const std::vector<std::string>* points =
      new std::vector<std::string>{
          "rng/laplace-nan",
          "rng/laplace-huge",
          "dp/budget-exhausted",
          "serialize/write-io",
          "serialize/open-write",
          "serialize/open-read",
          "serialize/view-checksum",
          "serialize/file-checksum",
          "ipf/stall",
          "ipf/nan-cell",
          "maxent/stall",
          "leastnorm/stall",
          "reconstruct/primary-junk",
          "pipeline/budget-exhausted",
          "parallel/task-throw",
          "serve/queue-full",
          "serve/io-torn-frame",
          "serve/swap-race",
          "serve/accept-emfile",
          "serve/peer-stall",
          "serve/half-open",
          "serve/slow-reader",
          "obs/span-torn",
          "store/fsync-fail",
          "store/torn-rename",
          "store/manifest-torn-tail",
          "stream/rollover-abort",
      };
  return *points;
}

Status Arm(const std::string& name, const std::string& spec) {
  StatusOr<Trigger> trigger = ParseSpec(spec);
  if (!trigger.ok()) return trigger.status();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.armed.emplace(name, trigger.value());
  if (!inserted) {
    it->second = trigger.value();
  } else {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  registry.last_hits[name] = 0;
  return Status::OK();
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.armed.erase(name) > 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  internal::g_armed_count.fetch_sub(static_cast<int>(registry.armed.size()),
                                    std::memory_order_relaxed);
  registry.armed.clear();
}

bool IsArmed(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.armed.count(name) > 0;
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.last_hits.find(name);
  return it == registry.last_hits.end() ? 0 : it->second;
}

Status ArmFromSpecString(const std::string& activation) {
  size_t start = 0;
  while (start <= activation.size()) {
    size_t end = activation.find(';', start);
    if (end == std::string::npos) end = activation.size();
    const std::string entry = activation.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad failpoint entry: " + entry);
    }
    const Status st = Arm(entry.substr(0, eq), entry.substr(eq + 1));
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace priview::failpoint
