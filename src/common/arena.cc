#include "common/arena.h"

#include <cstdlib>

#include "common/check.h"

namespace priview {
namespace {

size_t AlignUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

}  // namespace

Arena::Arena(size_t initial_bytes) {
  blocks_.reserve(4);
  blocks_.push_back(NewBlock(initial_bytes > 0 ? initial_bytes : 1));
}

Arena::~Arena() { FreeBlocks(); }

Arena::Block Arena::NewBlock(size_t min_bytes) {
  Block block;
  block.size = AlignUp(min_bytes, kMaxAlign);
  block.raw = std::malloc(block.size + kMaxAlign);
  PRIVIEW_CHECK(block.raw != nullptr);
  block.base = reinterpret_cast<char*>(
      AlignUp(reinterpret_cast<uintptr_t>(block.raw), kMaxAlign));
  capacity_ += block.size;
  return block;
}

void Arena::FreeBlocks() {
  for (Block& block : blocks_) std::free(block.raw);
  blocks_.clear();
  capacity_ = 0;
}

void* Arena::AllocBytes(size_t bytes, size_t align) {
  PRIVIEW_CHECK(align != 0 && (align & (align - 1)) == 0 &&
                align <= kMaxAlign);
  if (bytes == 0) bytes = 1;  // distinct non-null pointers, simpler callers
  while (true) {
    Block& block = blocks_[current_];
    const size_t start = AlignUp(offset_, align);
    if (start + bytes <= block.size) {
      used_ += (start - offset_) + bytes;  // alignment padding + payload
      offset_ = start + bytes;
      if (used_ > high_water_) high_water_ = used_;
      return block.base + start;
    }
    // Account the stranded tail of the exhausted block as used capacity so
    // the high-water mark reflects what a single block must hold.
    used_ += block.size - offset_;
    if (current_ + 1 == blocks_.size()) {
      blocks_.push_back(NewBlock(bytes > block.size ? bytes : 2 * block.size));
    }
    ++current_;
    offset_ = 0;
  }
}

bool Arena::warm() const {
  return blocks_.size() == 1 && blocks_[0].size >= high_water_;
}

void Arena::Reset() {
  ++resets_;
  if (blocks_.size() > 1) {
    FreeBlocks();
    blocks_.push_back(NewBlock(high_water_));
  }
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

Arena& ThreadLocalArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace priview

