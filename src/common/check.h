// Invariant checking for programmer errors. PRIVIEW_CHECK stays on in all
// build types (the cost is negligible next to the numeric work), matching
// the always-on assertion style used by storage engines for correctness-
// critical invariants.
#ifndef PRIVIEW_COMMON_CHECK_H_
#define PRIVIEW_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace priview::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace priview::internal

#define PRIVIEW_CHECK(expr)                                          \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::priview::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                                \
  } while (0)

#define PRIVIEW_CHECK_OK(status_expr)                                    \
  do {                                                                   \
    const ::priview::Status _pv_st = (status_expr);                      \
    if (!_pv_st.ok()) {                                                  \
      std::fprintf(stderr, "CHECK_OK failed: %s at %s:%d\n",             \
                   _pv_st.ToString().c_str(), __FILE__, __LINE__);       \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // PRIVIEW_COMMON_CHECK_H_
