// Bump arena for the solver hot path. One solve = one arena lifetime:
// every tableau, constraint target, scratch vector and index table is a
// monotonic allocation out of a single flat region, released all at once
// by Reset() (which keeps — and coalesces — capacity, so a warmed arena
// serves every subsequent same-shaped solve with zero heap traffic).
//
// Discipline (DESIGN.md §15):
//   * Allocation never constructs: only trivially-destructible value types
//     (doubles, ints, PODs of those) may live in an arena.
//   * Spans returned by AllocSpan are invalidated by Reset() and by the
//     destruction of any enclosing Rewind scope — never store them beyond
//     the solve that made them.
//   * Arenas are single-threaded by construction: one per request lane
//     (reconstruct keeps one per thread). No internal locking.
//
// Growth allocates additional blocks (via malloc, not operator new, so a
// counting-allocator test harness measures the *client's* allocations, not
// the arena's warm-up); Reset() collapses a multi-block arena into one
// block sized to the high-water mark, which is what makes the steady state
// allocation-free.
#ifndef PRIVIEW_COMMON_ARENA_H_
#define PRIVIEW_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace priview {

class Arena {
 public:
  static constexpr size_t kDefaultInitialBytes = size_t{1} << 16;
  /// Strictest alignment AllocBytes hands out by default; covers AVX2
  /// (32-byte) vector loads of double lanes.
  static constexpr size_t kMaxAlign = 64;

  explicit Arena(size_t initial_bytes = kDefaultInitialBytes);
  ~Arena();

  // Spans point into the arena, so it must stay put.
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage. `align` must be a power of two <= kMaxAlign.
  void* AllocBytes(size_t bytes, size_t align);

  /// Uninitialized span of `n` Ts, aligned for T (at least 32 bytes for
  /// 8-byte scalars so SIMD kernels can assume vector alignment).
  template <typename T>
  std::span<T> AllocSpan(size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "arena memory is released without running destructors");
    constexpr size_t kAlign = alignof(T) >= 32 ? alignof(T) : 32;
    return {static_cast<T*>(AllocBytes(n * sizeof(T), kAlign)), n};
  }

  /// Span of `n` Ts, every element set to `fill`.
  template <typename T>
  std::span<T> AllocSpan(size_t n, T fill) {
    std::span<T> s = AllocSpan<T>(n);
    for (T& v : s) v = fill;
    return s;
  }

  /// Bytes currently handed out (tail fragmentation of exhausted blocks
  /// counts — it is capacity the current layout cannot use).
  size_t used() const { return used_; }
  /// Total bytes reserved across all blocks.
  size_t capacity() const { return capacity_; }
  /// Largest used() ever observed — the size Reset() coalesces to.
  size_t high_water_bytes() const { return high_water_; }
  /// Number of Reset() calls (the per-request recycle count).
  uint64_t resets() const { return resets_; }
  /// True when the arena has a single block that covers the high-water
  /// mark: every workload no bigger than what it has already served will
  /// allocate nothing.
  bool warm() const;

  /// Releases everything. Keeps capacity; if the last cycle spilled into
  /// multiple blocks they are coalesced into one block covering the
  /// high-water mark, so the next same-shaped cycle is single-block and
  /// heap-free.
  void Reset();

  /// Scoped mark/rewind: allocations made inside the scope are released on
  /// destruction (capacity, as always, is retained). Used for nested
  /// scratch (e.g. a fallback solver reusing the request arena).
  class Rewind {
   public:
    explicit Rewind(Arena& arena)
        : arena_(arena), block_(arena.current_), offset_(arena.offset_),
          used_(arena.used_) {}
    ~Rewind() {
      arena_.current_ = block_;
      arena_.offset_ = offset_;
      arena_.used_ = used_;
    }
    Rewind(const Rewind&) = delete;
    Rewind& operator=(const Rewind&) = delete;

   private:
    Arena& arena_;
    size_t block_;
    size_t offset_;
    size_t used_;
  };

 private:
  struct Block {
    void* raw = nullptr;    // malloc'd pointer (base - padding)
    char* base = nullptr;   // kMaxAlign-aligned start
    size_t size = 0;        // usable bytes at base
  };

  Block NewBlock(size_t min_bytes);
  void FreeBlocks();

  std::vector<Block> blocks_;
  size_t current_ = 0;  // index of the block being bumped
  size_t offset_ = 0;   // bump offset within blocks_[current_]
  size_t used_ = 0;
  size_t capacity_ = 0;
  size_t high_water_ = 0;
  uint64_t resets_ = 0;
};

/// The calling thread's solver scratch arena: one per request lane (each
/// pool worker and each caller thread gets its own), reused across solves.
/// Callers that own a whole request end it with Reset(); nested users
/// (solver wrappers, fallback chains) scope themselves with Arena::Rewind
/// and must never Reset an arena they did not fully own.
Arena& ThreadLocalArena();

}  // namespace priview

#endif  // PRIVIEW_COMMON_ARENA_H_
