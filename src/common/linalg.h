// Minimal dense linear algebra: just what the matrix-mechanism evaluator and
// the least-norm reconstruction solver need. Row-major double matrices,
// Cholesky factorization of SPD systems, and a few norms. Sizes in this
// project stay small (<= a few thousand rows), so simple O(n^3) kernels are
// the right tool.
#ifndef PRIVIEW_COMMON_LINALG_H_
#define PRIVIEW_COMMON_LINALG_H_

#include <cstddef>
#include <vector>

namespace priview {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Transpose.
  Matrix Transposed() const;

  /// this * v for a vector v of length cols().
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// this^T * v for a vector v of length rows().
  std::vector<double> TransposedMatVec(const std::vector<double>& v) const;

  /// Gram matrix this * this^T (rows x rows).
  Matrix GramRows() const;

  /// Squared Frobenius norm.
  double FrobeniusSquared() const;

  /// Maximum column L1 norm (the L1 sensitivity of a query matrix whose
  /// columns index database cells).
  double MaxColumnL1() const;

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

/// Cholesky factorization of a symmetric positive-definite matrix, with an
/// optional ridge added to the diagonal for numerical rank-deficiency
/// (constraint Gram matrices of noisy marginals are often near-singular).
class Cholesky {
 public:
  /// Factors a + ridge*I. Returns false if the matrix is not positive
  /// definite even after the ridge.
  bool Factor(const Matrix& a, double ridge = 0.0);

  /// Solves (A + ridge I) x = b. Requires a successful Factor().
  std::vector<double> Solve(const std::vector<double>& b) const;

  bool factored() const { return factored_; }

 private:
  Matrix l_;
  bool factored_ = false;
};

/// Squared L2 norm of a vector.
double NormSquared(const std::vector<double>& v);

/// Dot product; sizes must match.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace priview

#endif  // PRIVIEW_COMMON_LINALG_H_
