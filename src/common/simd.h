// Runtime SIMD dispatch for the solver kernels (WHT butterfly, IPF scale
// loop, simplex row operations). Exactly two levels exist by design:
//
//   kScalar — portable C++, the reference semantics.
//   kAvx2   — 256-bit kernels compiled into dedicated *_avx2.cc TUs with
//             -mavx2 (and only -mavx2: FMA stays off, contraction stays
//             off), selected at runtime when the CPU supports AVX2.
//
// The determinism contract: both levels produce bit-identical outputs.
// Kernels therefore restrict themselves to element-wise operations (no
// reassociated reductions) and never fuse multiply-add; solver_golden_test
// pins this against fixtures captured from the pre-SIMD implementation.
//
// PRIVIEW_SIMD=scalar|avx2 in the environment overrides auto-detection
// (requesting avx2 on a CPU without it falls back to scalar).
#ifndef PRIVIEW_COMMON_SIMD_H_
#define PRIVIEW_COMMON_SIMD_H_

namespace priview {
namespace simd {

enum class Level { kScalar, kAvx2 };

/// Were the AVX2 TUs compiled into this binary?
bool Avx2CompiledIn();

/// AVX2 compiled in *and* supported by this CPU.
bool Avx2Available();

/// The level kernels dispatch on: the env override if set and satisfiable,
/// else the best available. Resolved once and cached (cheap to call from
/// inner dispatch points).
Level ActiveLevel();

/// Test hook: force a level (kAvx2 silently degrades to kScalar when
/// unavailable, so tests can request both unconditionally). Not
/// thread-safe; call only from single-threaded test setup.
void SetLevelForTest(Level level);
/// Back to auto-detection.
void ResetLevelForTest();

const char* LevelName(Level level);

}  // namespace simd
}  // namespace priview

#endif  // PRIVIEW_COMMON_SIMD_H_
