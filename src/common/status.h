// Lightweight Status / StatusOr types for recoverable errors (I/O, bad
// arguments from external input). Programmer errors use PRIVIEW_CHECK from
// check.h instead. Modeled after the RocksDB/Abseil idiom: cheap to copy in
// the OK case, carries a code + message otherwise.
#ifndef PRIVIEW_COMMON_STATUS_H_
#define PRIVIEW_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace priview {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kIOError,
  kDataLoss,
  kDeadlineExceeded,
  // The service cannot take the request right now (nothing listening,
  // connection refused, server draining). Appended after the original
  // codes so serialized code values stay stable on the wire.
  kUnavailable,
};

/// Result of an operation that can fail without it being a programming bug.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Stored data failed integrity verification (checksum mismatch,
  /// truncated artifact) — distinct from InvalidArgument so callers can
  /// route to recovery instead of rejecting the request.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// The request's deadline passed before an answer could be produced —
  /// distinct from ResourceExhausted (admission refusal) so serving-layer
  /// callers can tell "retry later" from "ask for more time".
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The peer cannot take the request right now (nothing listening,
  /// connection refused, server draining). The canonical *retryable*
  /// failure: transient by definition, unlike ResourceExhausted (which is
  /// load shedding — retrying amplifies the overload being shed).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or the Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : v_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status ok_status = Status::OK();
    return ok() ? ok_status : std::get<Status>(v_);
  }
  /// Requires ok(); terminates otherwise (std::get throws).
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace priview

#endif  // PRIVIEW_COMMON_STATUS_H_
