// Parallel execution substrate: a lazily-initialized process-wide thread
// pool with blocked-range ParallelFor and a deterministic reduction helper.
//
// Determinism contract (relied on by the synopsis pipeline and its tests):
// the partition of [begin, end) into chunks depends only on the range and
// the grain — never on the thread count — and ParallelReduce folds the
// per-chunk partials in ascending chunk order on the calling thread. Any
// computation whose chunks write disjoint state (or accumulate
// exactly-representable integers, where addition is associative) therefore
// produces bit-identical results at 1, 2 or 8 threads.
//
// Thread-count resolution, in priority order:
//   1. SetThreadCount(n) with n >= 1 (tests and benches),
//   2. the PRIVIEW_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
// A count of 1 (or a single-chunk range, or a call made from inside a pool
// worker) runs the chunks inline on the caller — the pool is never entered,
// so serial behavior is exactly the pre-parallel code path.
//
// Fault injection: each chunk's first attempt evaluates the
// "parallel/task-throw" failpoint; an injected fault marks the chunk failed
// and the caller re-runs every failed chunk inline (in ascending chunk
// order) after the barrier. Injection happens before the chunk body runs,
// so the retry cannot double-apply side effects and the recovered result is
// bit-identical to an unfaulted run. A genuine exception escaping a chunk
// body is not retried (the body may have partially executed); it is
// captured and rethrown on the calling thread.
#ifndef PRIVIEW_COMMON_PARALLEL_H_
#define PRIVIEW_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace priview::parallel {

/// Effective thread count the next parallel region will use (>= 1).
int ThreadCount();

/// Overrides the thread count; n == 0 restores the default resolution
/// (PRIVIEW_THREADS, then hardware concurrency). Takes effect on the next
/// parallel region; must not be called from inside one.
void SetThreadCount(int n);

/// Upper bound on the worker-slot index ParallelForWorkers can pass —
/// equal to the current thread count. Slot 0 is the calling thread.
int MaxWorkerSlots();

/// Total chunks recovered via the inline-retry path since process start
/// (diagnostics; exercised by the chaos suite).
uint64_t InlineRetryCount();

/// Parallel regions dispatched since process start (including inline
/// ones). Pulled by the observability registry's callback counters.
uint64_t JobsDispatched();

/// Chunks executed since process start (every attempt, inline or pooled).
uint64_t ChunksExecuted();

/// Chunks of the in-flight parallel region not yet completed; 0 when no
/// region is running. One dispatch runs at a time, so this is the pool's
/// whole backlog — the serving layer's queue-depth gauge.
size_t QueueDepth();

/// Runs body(chunk_begin, chunk_end) over a blocked partition of
/// [begin, end) with ~grain items per chunk. Blocks until every chunk has
/// completed. `grain` must be >= 1; a range of fewer than 2 chunks runs
/// inline on the caller.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// As ParallelFor, also passing the chunk's index (0-based, stable across
/// thread counts) — the hook deterministic reductions key partials on.
void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& body);

/// As ParallelFor, also passing a worker slot in [0, MaxWorkerSlots())
/// that is unique among concurrently running chunks — for per-thread
/// accumulator tables. Slot contents must be merge-order-independent
/// (e.g. exact integer counts) for the determinism contract to hold.
void ParallelForWorkers(size_t begin, size_t end, size_t grain,
                        const std::function<void(int, size_t, size_t)>& body);

/// Deterministic map-reduce: map(chunk_begin, chunk_end) -> T runs on the
/// pool, then the partials are folded left-to-right in chunk order on the
/// calling thread: acc = combine(acc, partial). Bit-identical results for
/// any thread count, including non-associative (floating-point) combines.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T init, MapFn map,
                 CombineFn combine) {
  if (begin >= end) return init;
  const size_t n = end - begin;
  const size_t g = grain == 0 ? 1 : grain;
  const size_t chunks = (n + g - 1) / g;
  std::vector<T> partials(chunks, init);
  ParallelForChunks(begin, end, g,
                    [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                      partials[chunk] = map(chunk_begin, chunk_end);
                    });
  T acc = init;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

}  // namespace priview::parallel

#endif  // PRIVIEW_COMMON_PARALLEL_H_
