// Parallel execution substrate: a lazily-initialized process-wide
// work-stealing scheduler with blocked-range ParallelFor, a deterministic
// reduction helper, and a dependency-graph mode (TaskGraph) that lets
// pipeline phases overlap instead of meeting at barriers.
//
// Scheduling model. Every worker owns a bounded chunk deque. A dispatch
// deals the (fixed) chunk partition across the worker deques in contiguous
// blocks; each worker drains its own deque front-to-back (ascending chunk
// order — forward streaming locality) and, when empty, steals from the
// back of a randomized victim's deque. Tasks that do not fit a bounded
// deque spill to a shared overflow queue. The dispatching caller
// participates as worker slot 0 by stealing tasks of its own job, so
// `threads == 1` runs fully inline with zero synchronization. Multiple
// threads may dispatch concurrently (the serve handler pool and the stream
// publisher do): their regions coexist in the deques and drain in
// parallel, instead of one of them falling back to serial execution.
//
// Determinism contract (relied on by the synopsis pipeline and its tests):
// the partition of [begin, end) into chunks depends only on the range and
// the grain — never on the thread count or the runtime schedule — and
// ParallelReduce folds the per-chunk partials in ascending chunk order on
// the calling thread. Any computation whose chunks write disjoint state
// (or accumulate exactly-representable integers, where addition is
// associative) therefore produces bit-identical results at 1, 2, 4, 8 or
// 16 threads. Work stealing only permutes which worker runs a chunk,
// which the contract is explicitly insensitive to. TaskGraph adds a
// dependency dimension: a node may run as soon as its prerequisites
// completed, so nodes of different phases overlap — bit-identical as long
// as nodes without a dependency path between them are order-independent
// (the same requirement chunks already carry).
//
// Thread-count resolution, in priority order:
//   1. SetThreadCount(n) with n >= 1 (tests and benches),
//   2. the PRIVIEW_THREADS environment variable,
//   3. std::thread::hardware_concurrency().
// A count of 1 (or a single-chunk range, or a call made from inside a pool
// worker) runs the chunks inline on the caller.
//
// Fault injection: each chunk's first attempt evaluates the
// "parallel/task-throw" failpoint. For blocked loops an injected fault
// marks the chunk failed and the caller re-runs every failed chunk inline
// (in ascending chunk order) after the region completes. For TaskGraph
// nodes the executing thread re-runs the node immediately (dependents are
// already gated on its completion, so a deferred replay would deadlock
// them). In both modes injection happens before the body runs, so the
// retry cannot double-apply side effects and the recovered result is
// bit-identical to an unfaulted run. A genuine exception escaping a body
// is not retried; it is captured and rethrown on the calling thread (and,
// in graph mode, cancels nodes that have not started yet).
#ifndef PRIVIEW_COMMON_PARALLEL_H_
#define PRIVIEW_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/function_ref.h"

namespace priview::parallel {

/// Pipeline phase a region or task belongs to. Purely observational: the
/// scheduler tracks per-phase occupancy (how many tasks of each phase are
/// executing right now), which is how phase overlap shows up in metrics —
/// count and noise occupancy simultaneously nonzero during a publish.
enum class Phase : int {
  kGeneric = 0,
  kCount,
  kMerge,
  kNoise,
  kRipple,
  kConsistency,
  kSolve,
};
inline constexpr int kNumPhases = 7;

/// Stable lowercase name for a phase (metric suffixes, logs).
const char* PhaseName(Phase phase);

/// Effective thread count the next parallel region will use (>= 1).
int ThreadCount();

/// Overrides the thread count; n == 0 restores the default resolution
/// (PRIVIEW_THREADS, then hardware concurrency). Waits for in-flight
/// regions to drain, then takes effect on the next parallel region; must
/// not be called from inside one.
void SetThreadCount(int n);

/// Upper bound on the worker-slot index ParallelForWorkers can pass —
/// equal to the current thread count. Slot 0 is the calling thread.
int MaxWorkerSlots();

/// Total chunks recovered via the inline-retry path since process start
/// (diagnostics; exercised by the chaos suite).
uint64_t InlineRetryCount();

/// Parallel regions dispatched since process start (including inline
/// ones). Pulled by the observability registry's callback counters.
uint64_t JobsDispatched();

/// Chunks executed since process start (every attempt, inline or pooled).
uint64_t ChunksExecuted();

/// Tasks claimed from a deque the claiming thread does not own (includes
/// the dispatching caller's claims — it owns no deque). The load-balance
/// signal: zero means static placement already matched the work.
uint64_t StealCount();

/// Steal sweeps that found every deque empty (the thief went to sleep or
/// re-scanned). High failure-to-steal ratios mean the pool is starved.
uint64_t StealFailureCount();

/// Tasks that spilled to the shared overflow queue because a worker deque
/// was full. Overflowed tasks still execute; the counter flags dispatches
/// outsized for the bounded deques.
uint64_t OverflowCount();

/// Tasks dispatched but not yet completed, summed across ALL in-flight
/// regions; 0 when the scheduler is idle. Correct under concurrent
/// dispatchers: each region's tasks are counted at dispatch and uncounted
/// as they complete, so concurrent regions sum instead of clobbering.
size_t QueueDepth();

/// Tasks of `phase` executing right now (per-phase occupancy gauge).
int PhaseOccupancy(Phase phase);

/// Size of the last-level cache the grain heuristic targets. Detected
/// once (sysconf on Linux); falls back to 8 MiB when undetectable.
size_t L3CacheBytes();

/// Chunk grain (items per chunk) sized so one chunk's streamed footprint
/// (`items * bytes_per_item`) plus the chunk-invariant working set
/// (`resident_bytes`, e.g. accumulator tables) targets a share of L3,
/// floored so a chunk is never smaller than ~32KB of streamed data (task
/// overhead), and capped so large inputs split into at least ~64 chunks
/// for the thieves to balance. Depends on the machine's cache size but
/// NEVER on the thread count, so the partition — and with it every
/// deterministic reduction — is identical at any thread count.
size_t CacheAwareGrain(size_t items, size_t bytes_per_item,
                       size_t resident_bytes);

/// Runs body(chunk_begin, chunk_end) over a blocked partition of
/// [begin, end) with ~grain items per chunk. Blocks until every chunk has
/// completed. `grain` must be >= 1; a range of fewer than 2 chunks runs
/// inline on the caller.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 FunctionRef<void(size_t, size_t)> body);
void ParallelFor(Phase phase, size_t begin, size_t end, size_t grain,
                 FunctionRef<void(size_t, size_t)> body);

/// As ParallelFor, also passing the chunk's index (0-based, stable across
/// thread counts) — the hook deterministic reductions key partials on.
void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       FunctionRef<void(size_t, size_t, size_t)> body);
void ParallelForChunks(Phase phase, size_t begin, size_t end, size_t grain,
                       FunctionRef<void(size_t, size_t, size_t)> body);

/// As ParallelFor, also passing a worker slot in [0, MaxWorkerSlots())
/// that is unique among concurrently running chunks of THIS region — for
/// per-thread accumulator tables. Slot contents must be
/// merge-order-independent (e.g. exact integer counts) for the
/// determinism contract to hold.
void ParallelForWorkers(size_t begin, size_t end, size_t grain,
                        FunctionRef<void(int, size_t, size_t)> body);
void ParallelForWorkers(Phase phase, size_t begin, size_t end, size_t grain,
                        FunctionRef<void(int, size_t, size_t)> body);

/// Deterministic map-reduce: map(chunk_begin, chunk_end) -> T runs on the
/// pool, then the partials are folded left-to-right in chunk order on the
/// calling thread: acc = combine(acc, partial). Bit-identical results for
/// any thread count, including non-associative (floating-point) combines.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T init, MapFn map,
                 CombineFn combine) {
  if (begin >= end) return init;
  const size_t n = end - begin;
  const size_t g = grain == 0 ? 1 : grain;
  const size_t chunks = (n + g - 1) / g;
  std::vector<T> partials(chunks, init);
  ParallelForChunks(begin, end, g,
                    [&](size_t chunk, size_t chunk_begin, size_t chunk_end) {
                      partials[chunk] = map(chunk_begin, chunk_end);
                    });
  T acc = init;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

/// Dependency-graph execution: nodes are tasks tagged with a phase, edges
/// are happens-before prerequisites. Run() executes every node on the
/// work-stealing scheduler, releasing a node the moment its last
/// prerequisite completes — so a node two phases downstream can run while
/// unrelated nodes of the first phase are still executing (phase overlap).
/// A node enabled by a pool worker is pushed onto that worker's own deque
/// front, so the data its prerequisite just produced is still hot.
///
/// Node bodies receive a worker slot in [0, MaxWorkerSlots()), unique
/// among concurrently running nodes of this graph. Nodes with no
/// dependency path between them must be order-independent (disjoint
/// writes, or exact-integer accumulation) for determinism.
///
/// Single-use: build, Run() once, discard. The graph must be acyclic
/// (checked). A genuine exception cancels nodes that have not started and
/// is rethrown from Run(); the "parallel/task-throw" failpoint is
/// recovered by an immediate same-thread re-run (see file header).
class TaskGraph {
 public:
  using NodeId = uint32_t;

  /// Adds a task; returns its id. Bodies may allocate (graph construction
  /// is per-publish, not per-chunk).
  NodeId AddTask(Phase phase, std::function<void(int)> body);

  /// Declares that `task` must not start before `prerequisite` completed.
  void DependsOn(NodeId task, NodeId prerequisite);

  size_t size() const { return nodes_.size(); }

  /// Executes the whole graph; blocks until every node completed (or the
  /// graph was cancelled by a genuine exception, which is rethrown).
  void Run();

 private:
  friend class SchedulerAccess;
  struct Node {
    Phase phase = Phase::kGeneric;
    std::function<void(int)> body;
    std::vector<NodeId> dependents;
    uint32_t indegree = 0;
  };
  std::vector<Node> nodes_;
  bool ran_ = false;
};

}  // namespace priview::parallel

#endif  // PRIVIEW_COMMON_PARALLEL_H_
