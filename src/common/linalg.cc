#include "common/linalg.h"

#include <cmath>

#include "common/check.h"

namespace priview {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  PRIVIEW_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  PRIVIEW_CHECK(static_cast<int>(v.size()) == cols_);
  std::vector<double> out(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    double sum = 0.0;
    const double* row = &data_[static_cast<size_t>(i) * cols_];
    for (int j = 0; j < cols_; ++j) sum += row[j] * v[j];
    out[i] = sum;
  }
  return out;
}

std::vector<double> Matrix::TransposedMatVec(
    const std::vector<double>& v) const {
  PRIVIEW_CHECK(static_cast<int>(v.size()) == rows_);
  std::vector<double> out(cols_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const double* row = &data_[static_cast<size_t>(i) * cols_];
    for (int j = 0; j < cols_; ++j) out[j] += row[j] * vi;
  }
  return out;
}

Matrix Matrix::GramRows() const {
  Matrix out(rows_, rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* ri = &data_[static_cast<size_t>(i) * cols_];
    for (int j = i; j < rows_; ++j) {
      const double* rj = &data_[static_cast<size_t>(j) * cols_];
      double sum = 0.0;
      for (int k = 0; k < cols_; ++k) sum += ri[k] * rj[k];
      out(i, j) = sum;
      out(j, i) = sum;
    }
  }
  return out;
}

double Matrix::FrobeniusSquared() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return sum;
}

double Matrix::MaxColumnL1() const {
  double best = 0.0;
  for (int j = 0; j < cols_; ++j) {
    double sum = 0.0;
    for (int i = 0; i < rows_; ++i) sum += std::fabs((*this)(i, j));
    if (sum > best) best = sum;
  }
  return best;
}

bool Cholesky::Factor(const Matrix& a, double ridge) {
  PRIVIEW_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  l_ = Matrix(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a(i, j) + ((i == j) ? ridge : 0.0);
      for (int k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          factored_ = false;
          return false;
        }
        l_(i, i) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
  factored_ = true;
  return true;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  PRIVIEW_CHECK(factored_);
  const int n = l_.rows();
  PRIVIEW_CHECK(static_cast<int>(b.size()) == n);
  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (int k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

double NormSquared(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return sum;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  PRIVIEW_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace priview
