#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace priview {
namespace simd {
namespace {

// -1 = auto, otherwise a forced Level. Relaxed is fine: the test hook is
// documented single-threaded and the steady state is read-only.
std::atomic<int> g_forced{-1};

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level DetectLevel() {
  const char* env = std::getenv("PRIVIEW_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (env != nullptr && std::strcmp(env, "avx2") == 0) {
    return Avx2Available() ? Level::kAvx2 : Level::kScalar;
  }
  return Avx2Available() ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

bool Avx2CompiledIn() {
#if defined(PRIVIEW_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Available() { return Avx2CompiledIn() && CpuHasAvx2(); }

Level ActiveLevel() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level detected = DetectLevel();
  return detected;
}

void SetLevelForTest(Level level) {
  if (level == Level::kAvx2 && !Avx2Available()) level = Level::kScalar;
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetLevelForTest() { g_forced.store(-1, std::memory_order_relaxed); }

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

}  // namespace simd
}  // namespace priview
