// Bit-manipulation helpers used throughout the table layer. The hot path is
// ExtractBits (a software PEXT): it maps a record's bits at the positions
// given by a mask to a compact marginal-cell index.
#ifndef PRIVIEW_COMMON_BITS_H_
#define PRIVIEW_COMMON_BITS_H_

#include <bit>
#include <cstdint>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace priview {

/// Number of set bits.
inline int PopCount(uint64_t x) { return std::popcount(x); }

/// Extracts the bits of `value` at the positions set in `mask` and packs
/// them contiguously into the low bits of the result (PEXT semantics).
/// Example: value=0b101101, mask=0b001101 -> 0b111.
inline uint64_t ExtractBits(uint64_t value, uint64_t mask) {
#if defined(__BMI2__)
  return _pext_u64(value, mask);
#else
  uint64_t result = 0;
  int out = 0;
  while (mask != 0) {
    const uint64_t low = mask & (~mask + 1);
    if (value & low) result |= (1ULL << out);
    ++out;
    mask &= mask - 1;
  }
  return result;
#endif
}

/// Inverse of ExtractBits: scatters the low bits of `value` to the positions
/// set in `mask` (PDEP semantics).
inline uint64_t DepositBits(uint64_t value, uint64_t mask) {
#if defined(__BMI2__)
  return _pdep_u64(value, mask);
#else
  uint64_t result = 0;
  int in = 0;
  while (mask != 0) {
    const uint64_t low = mask & (~mask + 1);
    if (value & (1ULL << in)) result |= low;
    ++in;
    mask &= mask - 1;
  }
  return result;
#endif
}

/// Index (0-based) of the lowest set bit. Requires x != 0.
inline int LowestBitIndex(uint64_t x) { return std::countr_zero(x); }

/// Iterates subsets: given the current subset `sub` of `mask`, returns the
/// next subset in the standard (sub - mask) & mask enumeration. Start from 0
/// and stop after returning to 0.
inline uint64_t NextSubset(uint64_t sub, uint64_t mask) {
  return (sub - mask) & mask;
}

}  // namespace priview

#endif  // PRIVIEW_COMMON_BITS_H_
