// RetryPolicy: capped exponential backoff with deterministic seeded
// jitter and a transport-aware error classifier, for callers that repeat
// *idempotent* work against a flaky peer (the PriViewClient, bench
// drivers, future replication).
//
// Design points:
//   - Determinism. Jitter is drawn from a forked Rng stream (one fork per
//     call via NewCall()), so a test that seeds the policy sees the same
//     backoff schedule run to run — retries are reproducible the same way
//     the rest of the library's randomness is.
//   - Classification, not blanket retries. Transport damage (Unavailable,
//     IOError, DataLoss) is retryable because the caller promises the
//     request is idempotent. DeadlineExceeded is retryable only for the
//     *connect* phase (the peer may be booting/recovering); a request
//     deadline is the caller's budget and retrying inside it is wrong.
//     InvalidArgument/NotFound/OutOfRange are deterministic failures, and
//     ResourceExhausted is admission control shedding load — retrying it
//     amplifies exactly the overload being shed, so it is never retried.
//   - Budgets. A per-call attempt cap plus an optional overall wall-clock
//     budget bound how long one logical call can camp on a dead peer.
#ifndef PRIVIEW_COMMON_RETRY_H_
#define PRIVIEW_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace priview {

/// How the drawn backoff relates to the deterministic schedule.
enum class JitterMode {
  /// Exponential base with symmetric jitter: uniform in
  /// [base*(1-jitter), base*(1+jitter)] where base doubles per retry.
  kProportional,
  /// Decorrelated jitter (the AWS architecture-blog variant): each backoff
  /// is uniform in [initial_backoff, 3*previous_backoff], capped at
  /// max_backoff. Successive draws decorrelate a fleet of clients that
  /// failed at the same instant — under proportional jitter they all sleep
  /// within ±jitter of the same base and redial a restarting server in
  /// near-lockstep waves; decorrelated draws spread the redials across the
  /// whole window, which is what a reconnect storm needs.
  kDecorrelated,
};

struct RetryOptions {
  /// Total attempts for one logical call, first try included. 1 disables
  /// retries entirely.
  int max_attempts = 4;
  /// Backoff before the first retry; doubles (see `multiplier`) up to
  /// `max_backoff` for later ones.
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  double multiplier = 2.0;
  /// Symmetric jitter fraction: the drawn backoff is uniform in
  /// [base*(1-jitter), base*(1+jitter)]. 0 disables jitter.
  /// (kProportional mode only; kDecorrelated ignores it.)
  double jitter = 0.2;
  JitterMode jitter_mode = JitterMode::kProportional;
  /// Seed for the jitter stream; the same seed reproduces the same
  /// schedule across runs.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Overall wall-clock budget for one logical call (first attempt
  /// included). Zero means "attempt cap only". When a retry's backoff
  /// would land past the budget the call gives up with the last error.
  std::chrono::milliseconds overall_budget{0};
};

/// Pure classifier: may `status` be retried at all (caller must separately
/// guarantee idempotency)? `connect_phase` widens the set to
/// DeadlineExceeded, which is retryable only while establishing a
/// connection.
bool IsRetryableStatus(const Status& status, bool connect_phase = false);

/// Per-call retry state: attempt counting, budget tracking, and the
/// deterministic backoff schedule. Obtain via RetryPolicy::NewCall().
class RetryController {
 public:
  RetryController(const RetryOptions& options, Rng jitter_stream);

  /// True when `status` is worth another attempt: retryable per the
  /// classifier, attempts remain, and the next backoff still fits the
  /// overall budget. Does not sleep.
  bool ShouldRetry(const Status& status, bool connect_phase = false);

  /// The backoff to sleep before the next attempt. Advances the schedule;
  /// call exactly once per granted retry.
  std::chrono::milliseconds NextBackoff();

  int attempts_started() const { return attempts_; }
  /// Record that an attempt is starting (the first one included).
  void BeginAttempt() { ++attempts_; }

 private:
  const RetryOptions options_;
  Rng rng_;
  int attempts_ = 0;
  int backoffs_granted_ = 0;
  /// Previous decorrelated draw in milliseconds (the recurrence state).
  double last_backoff_ms_ = 0.0;
  std::chrono::steady_clock::time_point call_start_;
};

/// Immutable retry configuration plus the root of the jitter stream. Not
/// thread-safe (NewCall forks the stream): share by value, one policy per
/// client/thread, the way Rng is used everywhere else in the library.
class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options = {})
      : options_(options), rng_(options.seed) {}

  /// Fresh per-call state with its own forked jitter stream.
  RetryController NewCall() { return RetryController(options_, rng_.Fork()); }

  const RetryOptions& options() const { return options_; }
  bool enabled() const { return options_.max_attempts > 1; }

 private:
  RetryOptions options_;
  Rng rng_;
};

}  // namespace priview

#endif  // PRIVIEW_COMMON_RETRY_H_
