#include "common/rng.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/failpoint.h"

namespace priview {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  PRIVIEW_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return v % n;
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformOpen() {
  return (static_cast<double>(NextUint64() >> 11) + 0.5) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Laplace(double scale) {
  PRIVIEW_CHECK(scale > 0.0);
  if (PRIVIEW_FAILPOINT("rng/laplace-nan")) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (PRIVIEW_FAILPOINT("rng/laplace-huge")) return 1e300;
  // Inverse-CDF: U uniform in (-1/2, 1/2), x = -b·sgn(U)·ln(1 - 2|U|).
  const double u = UniformOpen() - 0.5;
  const double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  PRIVIEW_CHECK(rate > 0.0);
  return -std::log(UniformOpen()) / rate;
}

double Rng::Normal(double mean, double stddev) {
  const double u1 = UniformOpen();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  PRIVIEW_CHECK(count >= 0 && count <= n);
  // Floyd's algorithm keeps this O(count) in expectation.
  std::vector<int> picked;
  picked.reserve(count);
  std::vector<bool> in(n, false);
  for (int j = n - count; j < n; ++j) {
    int t = static_cast<int>(UniformInt(static_cast<uint64_t>(j) + 1));
    if (in[t]) t = j;
    in[t] = true;
    picked.push_back(t);
  }
  std::vector<int> sorted;
  sorted.reserve(count);
  for (int i = 0; i < n; ++i) {
    if (in[i]) sorted.push_back(i);
  }
  return sorted;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace priview
