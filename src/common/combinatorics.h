// Combinatorial helpers: binomial coefficients (exact and floating-point)
// and enumeration of fixed-size subsets in lexicographic order.
#ifndef PRIVIEW_COMMON_COMBINATORICS_H_
#define PRIVIEW_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace priview {

/// C(n, k) as a double; exact for the modest n used here (n <= 64),
/// safe against intermediate overflow for larger n.
double BinomialDouble(int n, int k);

/// C(n, k) as uint64_t. Requires the result to fit; checked.
uint64_t Binomial(int n, int k);

/// Sum_{j=0..k} C(n, j): number of subsets of size at most k.
double BinomialPrefixSum(int n, int k);

/// Enumerates all k-element subsets of {0, .., n-1} as sorted index vectors
/// in lexicographic order. Intended for small C(n, k) (verifier / designs).
std::vector<std::vector<int>> AllSubsets(int n, int k);

/// Visits all k-element subsets of {0, .., n-1} as bitmasks, in increasing
/// numeric order, via Gosper's hack. Calls fn(mask) for each.
template <typename Fn>
void ForEachSubsetMask(int n, int k, Fn&& fn) {
  if (k == 0) {
    fn(uint64_t{0});
    return;
  }
  if (k > n) return;
  if (k >= 64) {
    fn(~0ULL);
    return;
  }
  // First bit position outside the universe; 0 means "no limit" (n == 64).
  const uint64_t limit_bit = (n >= 64) ? 0 : (1ULL << n);
  uint64_t mask = (1ULL << k) - 1;
  while (true) {
    fn(mask);
    // Gosper's hack: next integer with the same popcount.
    const uint64_t c = mask & (~mask + 1);
    const uint64_t r = mask + c;
    if (r == 0) break;  // carry out of bit 63: enumeration exhausted
    const uint64_t next = (((r ^ mask) >> 2) / c) | r;
    if (limit_bit != 0 && next >= limit_bit) break;
    mask = next;
  }
}

}  // namespace priview

#endif  // PRIVIEW_COMMON_COMBINATORICS_H_
