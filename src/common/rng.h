// Deterministic, seedable random number generation. All randomized steps in
// the library (noise injection, data synthesis, query sampling) draw from an
// explicitly passed Rng so experiments are reproducible run-to-run.
#ifndef PRIVIEW_COMMON_RNG_H_
#define PRIVIEW_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace priview {

/// xoshiro256++ PRNG seeded via splitmix64. Small, fast, and with
/// statistical quality far beyond what noise-injection experiments need.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in (0, 1) — never exactly 0, safe for log().
  double UniformOpen();

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Laplace-distributed value with the given scale (location 0).
  /// Density (1/2b)·exp(-|x|/b). Scale must be > 0.
  double Laplace(double scale);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Samples `count` distinct integers from [0, n) in increasing order.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Derives an independent child generator; used to give each experiment
  /// run its own stream without coupling to sampling order elsewhere.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace priview

#endif  // PRIVIEW_COMMON_RNG_H_
