#include "common/combinatorics.h"

#include <limits>

#include "common/check.h"

namespace priview {

double BinomialDouble(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

uint64_t Binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (int i = 0; i < k; ++i) {
    // result * (n - i) must not overflow; the division is exact at each step
    // because result holds C(n, i+... ) partial products of consecutive ints.
    PRIVIEW_CHECK(result <=
                  std::numeric_limits<uint64_t>::max() /
                      static_cast<uint64_t>(n - i));
    result = result * static_cast<uint64_t>(n - i) /
             static_cast<uint64_t>(i + 1);
  }
  return result;
}

double BinomialPrefixSum(int n, int k) {
  double sum = 0.0;
  for (int j = 0; j <= k && j <= n; ++j) sum += BinomialDouble(n, j);
  return sum;
}

std::vector<std::vector<int>> AllSubsets(int n, int k) {
  std::vector<std::vector<int>> result;
  if (k < 0 || k > n) return result;
  std::vector<int> cur(k);
  for (int i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    result.push_back(cur);
    // Advance to the next lexicographic combination.
    int i = k - 1;
    while (i >= 0 && cur[i] == n - k + i) --i;
    if (i < 0) break;
    ++cur[i];
    for (int j = i + 1; j < k; ++j) cur[j] = cur[j - 1] + 1;
  }
  return result;
}

}  // namespace priview
