#include "common/retry.h"

#include <algorithm>

namespace priview {

bool IsRetryableStatus(const Status& status, bool connect_phase) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kIOError:
    case StatusCode::kDataLoss:
      return true;
    case StatusCode::kDeadlineExceeded:
      // Only the connect phase: a booting/recovering peer times out the
      // handshake and comes back; a request-level deadline is the caller's
      // budget and must not be silently re-spent.
      return connect_phase;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:  // admission shed: never amplify
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

RetryController::RetryController(const RetryOptions& options, Rng jitter_stream)
    : options_(options),
      rng_(jitter_stream),
      call_start_(std::chrono::steady_clock::now()) {}

bool RetryController::ShouldRetry(const Status& status, bool connect_phase) {
  if (status.ok()) return false;
  if (!IsRetryableStatus(status, connect_phase)) return false;
  if (attempts_ >= options_.max_attempts) return false;
  if (options_.overall_budget.count() > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - call_start_);
    if (elapsed >= options_.overall_budget) return false;
    // Project the *shortest* possible next backoff (the jitter band's low
    // edge): if even that lands past the budget, the retry cannot help.
    double shortest;
    if (options_.jitter_mode == JitterMode::kDecorrelated) {
      // The decorrelated band's low edge is always initial_backoff.
      shortest = static_cast<double>(options_.initial_backoff.count());
    } else {
      double base = static_cast<double>(options_.initial_backoff.count());
      for (int i = 0; i < backoffs_granted_; ++i) base *= options_.multiplier;
      base = std::min(base, static_cast<double>(options_.max_backoff.count()));
      shortest = base * (1.0 - std::min(options_.jitter, 1.0));
    }
    if (elapsed.count() + shortest >
        static_cast<double>(options_.overall_budget.count())) {
      return false;
    }
  }
  return true;
}

std::chrono::milliseconds RetryController::NextBackoff() {
  double scaled;
  if (options_.jitter_mode == JitterMode::kDecorrelated) {
    // sleep = min(cap, uniform(initial, 3 * previous)); previous starts at
    // initial. The draw itself (not a fixed base) seeds the next interval,
    // so two clients that failed together diverge after one round trip.
    const double initial =
        static_cast<double>(options_.initial_backoff.count());
    const double prev =
        backoffs_granted_ == 0 ? initial : last_backoff_ms_;
    const double high = std::max(initial, 3.0 * prev);
    const double u = rng_.UniformDouble();
    scaled = initial + u * (high - initial);
    scaled = std::min(scaled, static_cast<double>(options_.max_backoff.count()));
    last_backoff_ms_ = scaled;
    ++backoffs_granted_;
  } else {
    double base = static_cast<double>(options_.initial_backoff.count());
    for (int i = 0; i < backoffs_granted_; ++i) base *= options_.multiplier;
    ++backoffs_granted_;
    base = std::min(base, static_cast<double>(options_.max_backoff.count()));
    scaled = base;
    if (options_.jitter > 0.0) {
      // Uniform in [1 - j, 1 + j], drawn from this call's forked stream.
      const double u = rng_.UniformDouble();
      scaled = base * (1.0 - options_.jitter + 2.0 * options_.jitter * u);
    }
  }
  if (scaled < 0.0) scaled = 0.0;
  auto backoff = std::chrono::milliseconds(static_cast<int64_t>(scaled));
  if (options_.overall_budget.count() > 0) {
    // Never sleep past the budget: clamp so the final attempt still gets a
    // slice of wall clock instead of waking up already out of time.
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - call_start_);
    const auto remaining = options_.overall_budget - elapsed;
    backoff = std::max(std::chrono::milliseconds(0),
                       std::min(backoff, remaining));
  }
  return backoff;
}

}  // namespace priview
