// ContingencyTable: the full 2^d table over all attributes. Only feasible
// for small d; used by the Flat baseline, MWEM and the Fourier-LP
// post-processing exactly as the paper restricts them (d = 9 experiments).
#ifndef PRIVIEW_TABLE_CONTINGENCY_TABLE_H_
#define PRIVIEW_TABLE_CONTINGENCY_TABLE_H_

#include <cstdint>
#include <vector>

#include "table/attr_set.h"
#include "table/dataset.h"
#include "table/marginal_table.h"

namespace priview {

/// Dense full contingency table over d <= 26 binary attributes.
class ContingencyTable {
 public:
  /// Zero table over d attributes.
  explicit ContingencyTable(int d);

  /// Exact table of record counts.
  static ContingencyTable FromDataset(const Dataset& data);

  int d() const { return d_; }
  size_t size() const { return cells_.size(); }

  double& At(uint64_t cell) { return cells_[cell]; }
  double At(uint64_t cell) const { return cells_[cell]; }
  const std::vector<double>& cells() const { return cells_; }
  std::vector<double>& cells() { return cells_; }

  double Total() const;

  /// Marginal over `attrs` by summing cells.
  MarginalTable MarginalOf(AttrSet attrs) const;

 private:
  int d_;
  std::vector<double> cells_;
};

}  // namespace priview

#endif  // PRIVIEW_TABLE_CONTINGENCY_TABLE_H_
