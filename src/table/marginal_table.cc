#include "table/marginal_table.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"

namespace priview {

MarginalTable::MarginalTable(AttrSet attrs, double fill)
    : attrs_(attrs), cells_(size_t{1} << attrs.size(), fill) {
  PRIVIEW_CHECK(attrs.size() <= 30);
}

MarginalTable::MarginalTable(AttrSet attrs, std::vector<double> cells)
    : attrs_(attrs), cells_(std::move(cells)) {
  PRIVIEW_CHECK(attrs.size() <= 30);
  PRIVIEW_CHECK(cells_.size() == (size_t{1} << attrs.size()));
}

double MarginalTable::Total() const {
  double sum = 0.0;
  for (double c : cells_) sum += c;
  return sum;
}

uint64_t MarginalTable::CellIndexMaskFor(AttrSet sub) const {
  PRIVIEW_CHECK(sub.IsSubsetOf(attrs_));
  // The j-th bit of a cell index corresponds to the j-th smallest attribute
  // of attrs_; extracting sub's attribute bits through attrs_'s mask yields
  // exactly the cell-index positions of sub's attributes.
  return ExtractBits(sub.mask(), attrs_.mask());
}

MarginalTable MarginalTable::Project(AttrSet sub) const {
  const uint64_t within = CellIndexMaskFor(sub);
  MarginalTable out(sub);
  // Target cell `a` owns the lattice {DepositBits(a, within) | s : s ⊆
  // ~within}, and NextSubset enumerates it in increasing cell order — so
  // each target sum accumulates in exactly the order the former per-cell
  // ExtractBits loop did, without any per-cell bit extraction.
  const uint64_t rest_mask = (cells_.size() - 1) & ~within;
  for (uint64_t a = 0; a < out.size(); ++a) {
    const uint64_t base = DepositBits(a, within);
    double sum = 0.0;
    uint64_t s = 0;
    do {
      sum += cells_[base | s];
      s = NextSubset(s, rest_mask);
    } while (s != 0);
    out.At(a) = sum;
  }
  return out;
}

void MarginalTable::AddConstant(double delta) {
  for (double& c : cells_) c += delta;
}

void MarginalTable::Scale(double factor) {
  for (double& c : cells_) c *= factor;
}

std::vector<double> MarginalTable::Normalized() const {
  const double total = Total();
  std::vector<double> out(cells_.size());
  if (total == 0.0) {
    const double u = 1.0 / static_cast<double>(cells_.size());
    for (double& p : out) p = u;
    return out;
  }
  for (size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i] / total;
  return out;
}

double MarginalTable::L2DistanceTo(const MarginalTable& other) const {
  PRIVIEW_CHECK(attrs_ == other.attrs_);
  double sum = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const double diff = cells_[i] - other.cells_[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double MarginalTable::LinfDistanceTo(const MarginalTable& other) const {
  PRIVIEW_CHECK(attrs_ == other.attrs_);
  double best = 0.0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    best = std::max(best, std::fabs(cells_[i] - other.cells_[i]));
  }
  return best;
}

double MarginalTable::MinCell() const {
  double best = cells_.empty() ? 0.0 : cells_[0];
  for (double c : cells_) best = std::min(best, c);
  return best;
}

}  // namespace priview
