// Dataset: a d-dimensional binary dataset, one 64-bit word per record
// (bit i = value of attribute i). Supports O(N) exact marginal counting —
// the only primitive any differentially private mechanism in this library
// uses to touch raw data.
#ifndef PRIVIEW_TABLE_DATASET_H_
#define PRIVIEW_TABLE_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

/// Binary dataset with at most 64 attributes.
class Dataset {
 public:
  /// Empty dataset over d attributes, 0 <= d <= 64.
  explicit Dataset(int d);

  /// Dataset from pre-built records; bits >= d must be clear.
  Dataset(int d, std::vector<uint64_t> records);

  int d() const { return d_; }
  /// Number of records N.
  size_t size() const { return records_.size(); }

  const std::vector<uint64_t>& records() const { return records_; }

  /// Appends one record. Bits at positions >= d must be clear; checked.
  void Add(uint64_t record);

  /// Exact (non-private) marginal counts over `attrs`. O(N) time.
  MarginalTable CountMarginal(AttrSet attrs) const;

  /// Fused multi-view counting: the marginals of all `views` from ONE
  /// cache-blocked pass over the records, parallelized over record blocks
  /// with per-thread accumulator tables merged at the end. Exactly equal
  /// (bit-identical — counts are exact integers in double) to calling
  /// CountMarginal once per view, at any thread count, but w times less
  /// record traffic. This is the synopsis-construction hot path.
  std::vector<MarginalTable> CountMarginals(
      std::span<const AttrSet> views) const;

  /// Exact count of records whose bits at `attrs` equal `assignment`
  /// (assignment packed in the compact cell-index convention).
  double CountCell(AttrSet attrs, uint64_t assignment) const;

  /// Empirical frequency of attribute `a` being 1.
  double AttributeFrequency(int a) const;

 private:
  int d_;
  std::vector<uint64_t> records_;
};

}  // namespace priview

#endif  // PRIVIEW_TABLE_DATASET_H_
