// Dataset: a d-dimensional binary dataset, one 64-bit word per record
// (bit i = value of attribute i). Supports O(N) exact marginal counting —
// the only primitive any differentially private mechanism in this library
// uses to touch raw data.
#ifndef PRIVIEW_TABLE_DATASET_H_
#define PRIVIEW_TABLE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

/// The fused multi-view counting computation, reified so a caller can
/// schedule its pieces (instead of running it as one opaque parallel
/// region). The plan splits the records into cache-sized chunks and the
/// views into L1-sized accumulator groups; the schedulable units are
///   AccumulateGroup(slot, group, chunk)   — count one (group, chunk) cell
///   MergeGroup(group)                     — fold slot accumulators, slot-
///                                           ascending, into the tables
/// MergeGroup(g) may run only after every AccumulateGroup(·, g, ·)
/// completed; accumulations of DIFFERENT groups touch disjoint accumulator
/// slices, so a group can merge (and its views proceed to noise) while
/// other groups are still counting — the overlap the synopsis task graph
/// exploits. Counts are exact integers in double, so any execution order
/// respecting those dependencies is bit-identical.
///
/// Borrows the dataset's record array: the Dataset must outlive the plan.
/// Per-slot accumulators are allocated eagerly for every worker slot, so
/// concurrent AccumulateGroup/MergeGroup calls never race on allocation.
class FusedCountPlan {
 public:
  size_t num_views() const { return tables_.size(); }
  size_t num_groups() const { return group_start_.size() - 1; }
  /// Record chunks per group; 0 when there are no views or no records.
  size_t num_record_chunks() const { return record_chunks_; }
  /// Records per chunk (cache-aware; thread-count independent).
  size_t record_grain() const { return record_grain_; }
  /// Group that view v's accumulator slice belongs to.
  size_t GroupOfView(size_t v) const { return group_of_view_[v]; }
  /// Half-open view-index range [first, last) of group g.
  std::pair<size_t, size_t> GroupViews(size_t g) const {
    return {group_start_[g], group_start_[g + 1]};
  }

  /// Accumulates record chunk `chunk` into group `group`'s slice of worker
  /// slot `slot`'s accumulator. Slot-exclusive while running (the parallel
  /// layer's slot contract); different groups write disjoint slices.
  void AccumulateGroup(int slot, size_t group, size_t chunk);

  /// Folds every slot's slice of `group` into the output tables, in
  /// ascending slot order. Requires all AccumulateGroup calls for `group`
  /// to have completed.
  void MergeGroup(size_t group);

  /// Mutable access to view v's output table — lets a task graph chain
  /// per-view post-processing (noising) onto a merged group before
  /// TakeTables(). Valid only after MergeGroup(GroupOfView(v)) completed
  /// and before TakeTables().
  MarginalTable& table(size_t v) { return tables_[v]; }

  /// Yields the counted tables (after every MergeGroup ran).
  std::vector<MarginalTable> TakeTables() { return std::move(tables_); }

 private:
  friend class Dataset;
  FusedCountPlan() = default;

  const std::vector<uint64_t>* records_ = nullptr;
  std::vector<MarginalTable> tables_;
  std::vector<uint64_t> masks_;
  std::vector<size_t> offset_;  // view v's cells at [offset_[v], offset_[v+1])
  std::vector<size_t> group_start_;
  std::vector<size_t> group_of_view_;
  size_t record_grain_ = 1;
  size_t record_chunks_ = 0;
  std::vector<std::vector<double>> acc_;  // [slot][total_cells]
};

/// Binary dataset with at most 64 attributes.
class Dataset {
 public:
  /// Empty dataset over d attributes, 0 <= d <= 64.
  explicit Dataset(int d);

  /// Dataset from pre-built records; bits >= d must be clear.
  Dataset(int d, std::vector<uint64_t> records);

  int d() const { return d_; }
  /// Number of records N.
  size_t size() const { return records_.size(); }

  const std::vector<uint64_t>& records() const { return records_; }

  /// Appends one record. Bits at positions >= d must be clear; checked.
  void Add(uint64_t record);

  /// Exact (non-private) marginal counts over `attrs`. O(N) time.
  MarginalTable CountMarginal(AttrSet attrs) const;

  /// Fused multi-view counting: the marginals of all `views` from ONE
  /// cache-blocked pass over the records, parallelized over record blocks
  /// with per-thread accumulator tables merged at the end. Exactly equal
  /// (bit-identical — counts are exact integers in double) to calling
  /// CountMarginal once per view, at any thread count, but w times less
  /// record traffic. This is the synopsis-construction hot path.
  std::vector<MarginalTable> CountMarginals(
      std::span<const AttrSet> views) const;

  /// The fused counting pass as a schedulable plan (see FusedCountPlan).
  /// CountMarginals is exactly PlanFusedCount + accumulate every
  /// (group, chunk) + merge every group; callers that want phase overlap
  /// wire the same pieces into a task graph instead.
  FusedCountPlan PlanFusedCount(std::span<const AttrSet> views) const;

  /// Exact count of records whose bits at `attrs` equal `assignment`
  /// (assignment packed in the compact cell-index convention).
  double CountCell(AttrSet attrs, uint64_t assignment) const;

  /// Empirical frequency of attribute `a` being 1.
  double AttributeFrequency(int a) const;

 private:
  int d_;
  std::vector<uint64_t> records_;
};

}  // namespace priview

#endif  // PRIVIEW_TABLE_DATASET_H_
