#include "table/dataset.h"

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"

namespace priview {

Dataset::Dataset(int d) : d_(d) { PRIVIEW_CHECK(d >= 0 && d <= 64); }

Dataset::Dataset(int d, std::vector<uint64_t> records)
    : d_(d), records_(std::move(records)) {
  PRIVIEW_CHECK(d >= 0 && d <= 64);
  if (d < 64) {
    const uint64_t illegal = ~((d == 0) ? 0ULL : ((1ULL << d) - 1));
    for (uint64_t r : records_) PRIVIEW_CHECK((r & illegal) == 0);
  }
}

void Dataset::Add(uint64_t record) {
  if (d_ < 64) {
    PRIVIEW_CHECK((record >> d_) == 0);
  }
  records_.push_back(record);
}

MarginalTable Dataset::CountMarginal(AttrSet attrs) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  MarginalTable table(attrs);
  const uint64_t mask = attrs.mask();
  for (uint64_t r : records_) {
    table.At(ExtractBits(r, mask)) += 1.0;
  }
  return table;
}

FusedCountPlan Dataset::PlanFusedCount(std::span<const AttrSet> views) const {
  const size_t w = views.size();
  FusedCountPlan plan;
  plan.records_ = &records_;
  plan.tables_.reserve(w);
  plan.masks_.resize(w);
  // Flat per-slot accumulators: view v's cells live at [offset_[v],
  // offset_[v + 1]) so one allocation covers all views.
  plan.offset_.assign(w + 1, 0);
  for (size_t v = 0; v < w; ++v) {
    PRIVIEW_CHECK(views[v].IsSubsetOf(AttrSet::Full(d_)));
    plan.tables_.emplace_back(views[v]);
    plan.masks_[v] = views[v].mask();
    plan.offset_[v + 1] = plan.offset_[v] + (size_t{1} << views[v].size());
  }

  // Two-level blocking. Record chunks stay hot across the inner passes;
  // views are grouped so each group's accumulator slice fits L1
  // (scattering increments across all w tables at once would miss on
  // nearly every write — with a C3 design that is ~1MB of tables). Each
  // record chunk is then re-streamed once per view group from L1/L2
  // instead of once per view from DRAM, which is the fused win.
  constexpr size_t kGroupCellBudget = 2048;  // 16KB of doubles
  plan.group_start_.push_back(0);
  {
    size_t cells_in_group = 0;
    for (size_t v = 0; v < w; ++v) {
      const size_t cells = plan.offset_[v + 1] - plan.offset_[v];
      if (cells_in_group > 0 && cells_in_group + cells > kGroupCellBudget) {
        plan.group_start_.push_back(v);
        cells_in_group = 0;
      }
      cells_in_group += cells;
      plan.group_of_view_.push_back(plan.group_start_.size() - 1);
    }
    plan.group_start_.push_back(w);
  }

  if (w == 0 || records_.empty()) return plan;

  // Record chunk size from the cache, not a constant: one chunk of packed
  // records should stream within an L3 share net of the accumulator
  // footprint. Machine-dependent but thread-count independent, so the
  // partition (and the exact-integer counts) are identical at any count.
  plan.record_grain_ = parallel::CacheAwareGrain(
      records_.size(), sizeof(uint64_t),
      /*resident_bytes=*/kGroupCellBudget * sizeof(double));
  plan.record_chunks_ =
      (records_.size() + plan.record_grain_ - 1) / plan.record_grain_;

  // Eager per-slot allocation: a group can merge while other groups are
  // still accumulating on other slots, so lazy allocation would race on
  // the vector itself. Slices are disjoint; the arrays are not.
  const size_t total_cells = plan.offset_[w];
  plan.acc_.resize(static_cast<size_t>(parallel::MaxWorkerSlots()));
  for (std::vector<double>& a : plan.acc_) a.assign(total_cells, 0.0);
  return plan;
}

void FusedCountPlan::AccumulateGroup(int slot, size_t group, size_t chunk) {
  PRIVIEW_CHECK(slot >= 0 && static_cast<size_t>(slot) < acc_.size());
  PRIVIEW_CHECK(group + 1 < group_start_.size());
  PRIVIEW_CHECK(chunk < record_chunks_);
  std::vector<double>& a = acc_[static_cast<size_t>(slot)];
  const uint64_t* rec = records_->data();
  const size_t begin = chunk * record_grain_;
  const size_t end = std::min(records_->size(), begin + record_grain_);
  const size_t v_begin = group_start_[group], v_end = group_start_[group + 1];
  for (size_t i = begin; i < end; ++i) {
    const uint64_t r = rec[i];
    for (size_t v = v_begin; v < v_end; ++v) {
      a[offset_[v] + ExtractBits(r, masks_[v])] += 1.0;
    }
  }
}

void FusedCountPlan::MergeGroup(size_t group) {
  PRIVIEW_CHECK(group + 1 < group_start_.size());
  const size_t v_begin = group_start_[group], v_end = group_start_[group + 1];
  // Merge in slot order. Cell values are exact integers (N << 2^53), so
  // the merge is bit-identical no matter which slot counted which chunk.
  for (const std::vector<double>& a : acc_) {
    for (size_t v = v_begin; v < v_end; ++v) {
      double* cells = tables_[v].cells().data();
      const double* part = a.data() + offset_[v];
      const size_t n_cells = offset_[v + 1] - offset_[v];
      for (size_t c = 0; c < n_cells; ++c) cells[c] += part[c];
    }
  }
}

std::vector<MarginalTable> Dataset::CountMarginals(
    std::span<const AttrSet> views) const {
  FusedCountPlan plan = PlanFusedCount(views);
  if (plan.num_record_chunks() > 0) {
    // All groups inside one record-chunk task: the chunk is re-streamed
    // once per group while hot. The task-graph publish path instead makes
    // (group, chunk) the unit so finished groups can merge early; both
    // orders accumulate the same exact integers.
    const size_t groups = plan.num_groups();
    parallel::ParallelForWorkers(
        parallel::Phase::kCount, 0, plan.num_record_chunks(), 1,
        [&](int slot, size_t chunk_begin, size_t chunk_end) {
          for (size_t chunk = chunk_begin; chunk < chunk_end; ++chunk) {
            for (size_t g = 0; g < groups; ++g) {
              plan.AccumulateGroup(slot, g, chunk);
            }
          }
        });
    // Groups write disjoint table ranges, so merging is itself parallel.
    parallel::ParallelFor(parallel::Phase::kMerge, 0, groups, 1,
                          [&](size_t g_begin, size_t g_end) {
                            for (size_t g = g_begin; g < g_end; ++g) {
                              plan.MergeGroup(g);
                            }
                          });
  }
  return plan.TakeTables();
}

double Dataset::CountCell(AttrSet attrs, uint64_t assignment) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  PRIVIEW_CHECK(assignment < (uint64_t{1} << attrs.size()));
  const uint64_t mask = attrs.mask();
  const uint64_t want = DepositBits(assignment, mask);
  size_t count = 0;
  for (uint64_t r : records_) {
    if ((r & mask) == want) ++count;
  }
  return static_cast<double>(count);
}

double Dataset::AttributeFrequency(int a) const {
  PRIVIEW_CHECK(a >= 0 && a < d_);
  if (records_.empty()) return 0.0;
  // Word-blocked popcount: pack attribute a's bit from 64 consecutive
  // records into one word and popcount it, instead of a per-record
  // shift-and-mask-and-add chain. Blocks reduce in exact integer counts,
  // so the parallel fold is bit-identical to serial.
  const uint64_t* records = records_.data();
  // Exact integer partials: any grain gives the same sum, so the
  // cache-aware grain is safe here even though it is machine-dependent.
  const size_t grain =
      parallel::CacheAwareGrain(records_.size(), sizeof(uint64_t), 0);
  const uint64_t count = parallel::ParallelReduce<uint64_t>(
      0, records_.size(), grain, 0,
      [&](size_t begin, size_t end) {
        uint64_t block_count = 0;
        size_t i = begin;
        for (; i + 64 <= end; i += 64) {
          uint64_t packed = 0;
          for (int j = 0; j < 64; ++j) {
            packed |= ((records[i + j] >> a) & 1ULL) << j;
          }
          block_count += static_cast<uint64_t>(PopCount(packed));
        }
        for (; i < end; ++i) block_count += (records[i] >> a) & 1ULL;
        return block_count;
      },
      [](uint64_t x, uint64_t y) { return x + y; });
  return static_cast<double>(count) / static_cast<double>(records_.size());
}

}  // namespace priview
