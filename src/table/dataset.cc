#include "table/dataset.h"

#include "common/bits.h"
#include "common/check.h"
#include "common/parallel.h"

namespace priview {

Dataset::Dataset(int d) : d_(d) { PRIVIEW_CHECK(d >= 0 && d <= 64); }

Dataset::Dataset(int d, std::vector<uint64_t> records)
    : d_(d), records_(std::move(records)) {
  PRIVIEW_CHECK(d >= 0 && d <= 64);
  if (d < 64) {
    const uint64_t illegal = ~((d == 0) ? 0ULL : ((1ULL << d) - 1));
    for (uint64_t r : records_) PRIVIEW_CHECK((r & illegal) == 0);
  }
}

void Dataset::Add(uint64_t record) {
  if (d_ < 64) {
    PRIVIEW_CHECK((record >> d_) == 0);
  }
  records_.push_back(record);
}

MarginalTable Dataset::CountMarginal(AttrSet attrs) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  MarginalTable table(attrs);
  const uint64_t mask = attrs.mask();
  for (uint64_t r : records_) {
    table.At(ExtractBits(r, mask)) += 1.0;
  }
  return table;
}

std::vector<MarginalTable> Dataset::CountMarginals(
    std::span<const AttrSet> views) const {
  const size_t w = views.size();
  std::vector<MarginalTable> out;
  out.reserve(w);
  std::vector<uint64_t> masks(w);
  // Flat per-thread accumulators: view v's cells live at [offset[v],
  // offset[v + 1]) so one allocation covers all views.
  std::vector<size_t> offset(w + 1, 0);
  for (size_t v = 0; v < w; ++v) {
    PRIVIEW_CHECK(views[v].IsSubsetOf(AttrSet::Full(d_)));
    out.emplace_back(views[v]);
    masks[v] = views[v].mask();
    offset[v + 1] = offset[v] + (size_t{1} << views[v].size());
  }
  if (w == 0 || records_.empty()) return out;
  const size_t total_cells = offset[w];

  // Two-level blocking. Record chunks (32KB of packed records) stay hot
  // across the inner passes; views are grouped so each group's accumulator
  // slice fits L1 (scattering increments across all w tables at once would
  // miss on nearly every write — with a C3 design that is ~1MB of tables).
  // Each record chunk is then re-streamed once per view group from L1/L2
  // instead of once per view from DRAM, which is the fused win.
  constexpr size_t kRecordGrain = 4096;
  constexpr size_t kGroupCellBudget = 2048;  // 16KB of doubles
  std::vector<size_t> group_start;  // indices into views, last = w
  group_start.push_back(0);
  {
    size_t cells_in_group = 0;
    for (size_t v = 0; v < w; ++v) {
      const size_t cells = offset[v + 1] - offset[v];
      if (cells_in_group > 0 && cells_in_group + cells > kGroupCellBudget) {
        group_start.push_back(v);
        cells_in_group = 0;
      }
      cells_in_group += cells;
    }
    group_start.push_back(w);
  }

  const int slots = parallel::MaxWorkerSlots();
  std::vector<std::vector<double>> acc(static_cast<size_t>(slots));
  parallel::ParallelForWorkers(
      0, records_.size(), kRecordGrain,
      [&](int slot, size_t begin, size_t end) {
        PRIVIEW_CHECK(slot >= 0 && slot < slots);
        std::vector<double>& a = acc[static_cast<size_t>(slot)];
        if (a.empty()) a.assign(total_cells, 0.0);
        const uint64_t* mask = masks.data();
        const size_t* off = offset.data();
        const uint64_t* rec = records_.data();
        for (size_t g = 0; g + 1 < group_start.size(); ++g) {
          const size_t v_begin = group_start[g], v_end = group_start[g + 1];
          for (size_t i = begin; i < end; ++i) {
            const uint64_t r = rec[i];
            for (size_t v = v_begin; v < v_end; ++v) {
              a[off[v] + ExtractBits(r, mask[v])] += 1.0;
            }
          }
        }
      });

  // Merge in slot order. Cell values are exact integers (N << 2^53), so
  // the merge is bit-identical no matter which slot counted which block.
  for (const std::vector<double>& a : acc) {
    if (a.empty()) continue;
    for (size_t v = 0; v < w; ++v) {
      double* cells = out[v].cells().data();
      const double* part = a.data() + offset[v];
      const size_t n_cells = offset[v + 1] - offset[v];
      for (size_t c = 0; c < n_cells; ++c) cells[c] += part[c];
    }
  }
  return out;
}

double Dataset::CountCell(AttrSet attrs, uint64_t assignment) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  PRIVIEW_CHECK(assignment < (uint64_t{1} << attrs.size()));
  const uint64_t mask = attrs.mask();
  const uint64_t want = DepositBits(assignment, mask);
  size_t count = 0;
  for (uint64_t r : records_) {
    if ((r & mask) == want) ++count;
  }
  return static_cast<double>(count);
}

double Dataset::AttributeFrequency(int a) const {
  PRIVIEW_CHECK(a >= 0 && a < d_);
  if (records_.empty()) return 0.0;
  // Word-blocked popcount: pack attribute a's bit from 64 consecutive
  // records into one word and popcount it, instead of a per-record
  // shift-and-mask-and-add chain. Blocks reduce in exact integer counts,
  // so the parallel fold is bit-identical to serial.
  const uint64_t* records = records_.data();
  const uint64_t count = parallel::ParallelReduce<uint64_t>(
      0, records_.size(), size_t{1} << 16, 0,
      [&](size_t begin, size_t end) {
        uint64_t block_count = 0;
        size_t i = begin;
        for (; i + 64 <= end; i += 64) {
          uint64_t packed = 0;
          for (int j = 0; j < 64; ++j) {
            packed |= ((records[i + j] >> a) & 1ULL) << j;
          }
          block_count += static_cast<uint64_t>(PopCount(packed));
        }
        for (; i < end; ++i) block_count += (records[i] >> a) & 1ULL;
        return block_count;
      },
      [](uint64_t x, uint64_t y) { return x + y; });
  return static_cast<double>(count) / static_cast<double>(records_.size());
}

}  // namespace priview
