#include "table/dataset.h"

#include "common/bits.h"
#include "common/check.h"

namespace priview {

Dataset::Dataset(int d) : d_(d) { PRIVIEW_CHECK(d >= 0 && d <= 64); }

Dataset::Dataset(int d, std::vector<uint64_t> records)
    : d_(d), records_(std::move(records)) {
  PRIVIEW_CHECK(d >= 0 && d <= 64);
  if (d < 64) {
    const uint64_t illegal = ~((d == 0) ? 0ULL : ((1ULL << d) - 1));
    for (uint64_t r : records_) PRIVIEW_CHECK((r & illegal) == 0);
  }
}

void Dataset::Add(uint64_t record) {
  if (d_ < 64) {
    PRIVIEW_CHECK((record >> d_) == 0);
  }
  records_.push_back(record);
}

MarginalTable Dataset::CountMarginal(AttrSet attrs) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  MarginalTable table(attrs);
  const uint64_t mask = attrs.mask();
  for (uint64_t r : records_) {
    table.At(ExtractBits(r, mask)) += 1.0;
  }
  return table;
}

double Dataset::CountCell(AttrSet attrs, uint64_t assignment) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  PRIVIEW_CHECK(assignment < (uint64_t{1} << attrs.size()));
  const uint64_t mask = attrs.mask();
  const uint64_t want = DepositBits(assignment, mask);
  size_t count = 0;
  for (uint64_t r : records_) {
    if ((r & mask) == want) ++count;
  }
  return static_cast<double>(count);
}

double Dataset::AttributeFrequency(int a) const {
  PRIVIEW_CHECK(a >= 0 && a < d_);
  if (records_.empty()) return 0.0;
  size_t count = 0;
  for (uint64_t r : records_) count += (r >> a) & 1;
  return static_cast<double>(count) / static_cast<double>(records_.size());
}

}  // namespace priview
