// AttrSet: a set of attribute indices in {0, .., 63}, stored as a bitmask.
// This is the universal currency of the library: views, marginal scopes and
// covering-design blocks are all AttrSets.
#ifndef PRIVIEW_TABLE_ATTR_SET_H_
#define PRIVIEW_TABLE_ATTR_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace priview {

/// Set of attributes (dimensions), d <= 64. Value type, cheap to copy.
class AttrSet {
 public:
  constexpr AttrSet() : mask_(0) {}
  constexpr explicit AttrSet(uint64_t mask) : mask_(mask) {}

  /// Builds the set {attrs[0], attrs[1], ...}. Indices must be in [0, 64).
  static AttrSet FromIndices(const std::vector<int>& attrs) {
    uint64_t m = 0;
    for (int a : attrs) {
      PRIVIEW_CHECK(a >= 0 && a < 64);
      m |= (1ULL << a);
    }
    return AttrSet(m);
  }

  /// The full set {0, .., d-1}.
  static AttrSet Full(int d) {
    PRIVIEW_CHECK(d >= 0 && d <= 64);
    return AttrSet(d == 64 ? ~0ULL : ((1ULL << d) - 1));
  }

  uint64_t mask() const { return mask_; }
  int size() const { return PopCount(mask_); }
  bool empty() const { return mask_ == 0; }
  bool Contains(int attr) const { return (mask_ >> attr) & 1; }
  bool IsSubsetOf(AttrSet other) const {
    return (mask_ & other.mask_) == mask_;
  }

  AttrSet Intersect(AttrSet other) const {
    return AttrSet(mask_ & other.mask_);
  }
  AttrSet Union(AttrSet other) const { return AttrSet(mask_ | other.mask_); }
  AttrSet Minus(AttrSet other) const { return AttrSet(mask_ & ~other.mask_); }

  /// Attribute indices in ascending order.
  std::vector<int> ToIndices() const {
    std::vector<int> out;
    out.reserve(size());
    uint64_t m = mask_;
    while (m != 0) {
      out.push_back(LowestBitIndex(m));
      m &= m - 1;
    }
    return out;
  }

  /// "{1,5,8}"-style rendering for logs and test messages.
  std::string ToString() const {
    std::string s = "{";
    bool first = true;
    for (int a : ToIndices()) {
      if (!first) s += ",";
      s += std::to_string(a);
      first = false;
    }
    s += "}";
    return s;
  }

  friend bool operator==(AttrSet a, AttrSet b) { return a.mask_ == b.mask_; }
  friend bool operator!=(AttrSet a, AttrSet b) { return a.mask_ != b.mask_; }
  friend bool operator<(AttrSet a, AttrSet b) { return a.mask_ < b.mask_; }

 private:
  uint64_t mask_;
};

}  // namespace priview

#endif  // PRIVIEW_TABLE_ATTR_SET_H_
