#include "table/contingency_table.h"

#include "common/bits.h"
#include "common/check.h"

namespace priview {

ContingencyTable::ContingencyTable(int d)
    : d_(d), cells_(size_t{1} << d, 0.0) {
  PRIVIEW_CHECK(d >= 0 && d <= 26);
}

ContingencyTable ContingencyTable::FromDataset(const Dataset& data) {
  ContingencyTable table(data.d());
  for (uint64_t r : data.records()) table.cells_[r] += 1.0;
  return table;
}

double ContingencyTable::Total() const {
  double sum = 0.0;
  for (double c : cells_) sum += c;
  return sum;
}

MarginalTable ContingencyTable::MarginalOf(AttrSet attrs) const {
  PRIVIEW_CHECK(attrs.IsSubsetOf(AttrSet::Full(d_)));
  MarginalTable out(attrs);
  const uint64_t mask = attrs.mask();
  for (uint64_t c = 0; c < cells_.size(); ++c) {
    out.At(ExtractBits(c, mask)) += cells_[c];
  }
  return out;
}

}  // namespace priview
