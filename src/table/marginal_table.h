// MarginalTable: a (possibly noisy) marginal contingency table over a set A
// of binary attributes. Holds 2^|A| real-valued cells. Cell indexing: bit j
// of the cell index is the value assigned to the j-th smallest attribute in
// A. Projection onto a subset of A sums the matching cells.
#ifndef PRIVIEW_TABLE_MARGINAL_TABLE_H_
#define PRIVIEW_TABLE_MARGINAL_TABLE_H_

#include <cstdint>
#include <vector>

#include "table/attr_set.h"

namespace priview {

/// Dense marginal table over up to ~20 attributes (2^|A| cells).
class MarginalTable {
 public:
  MarginalTable() = default;

  /// Zero-filled table over `attrs`.
  explicit MarginalTable(AttrSet attrs, double fill = 0.0);

  /// Table with the given cell values; cells.size() must be 2^|attrs|.
  MarginalTable(AttrSet attrs, std::vector<double> cells);

  AttrSet attrs() const { return attrs_; }
  /// Number of attributes |A|.
  int arity() const { return attrs_.size(); }
  /// Number of cells, 2^|A|.
  size_t size() const { return cells_.size(); }

  double& At(uint64_t cell) { return cells_[cell]; }
  double At(uint64_t cell) const { return cells_[cell]; }

  const std::vector<double>& cells() const { return cells_; }
  std::vector<double>& cells() { return cells_; }

  /// Sum of all cells (the table's total count).
  double Total() const;

  /// Marginal over `sub` (must satisfy sub ⊆ attrs()), by summing cells.
  MarginalTable Project(AttrSet sub) const;

  /// The mask over *cell-index bit positions* corresponding to the
  /// attributes of `sub` within this table's attribute ordering. A cell c of
  /// this table projects to cell ExtractBits(c, mask) of the sub-table.
  uint64_t CellIndexMaskFor(AttrSet sub) const;

  /// Adds `delta` to every cell.
  void AddConstant(double delta);

  /// Multiplies every cell by `factor`.
  void Scale(double factor);

  /// Cells divided by Total(); all zeros stay a uniform distribution if the
  /// total is 0 (a degenerate but possible noisy outcome).
  std::vector<double> Normalized() const;

  /// Sqrt of the sum of squared per-cell differences. Tables must share the
  /// same attribute set.
  double L2DistanceTo(const MarginalTable& other) const;

  /// Largest absolute per-cell difference. Tables must share attrs.
  double LinfDistanceTo(const MarginalTable& other) const;

  /// Smallest cell value.
  double MinCell() const;

 private:
  AttrSet attrs_;
  std::vector<double> cells_;
};

}  // namespace priview

#endif  // PRIVIEW_TABLE_MARGINAL_TABLE_H_
