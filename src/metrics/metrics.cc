#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace priview {

double NormalizedL2Error(const MarginalTable& estimate,
                         const MarginalTable& truth, double n) {
  PRIVIEW_CHECK(n > 0.0);
  return estimate.L2DistanceTo(truth) / n;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  PRIVIEW_CHECK(p.size() == q.size());
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    // Skip negligible mass: beyond contributing nothing, a subnormal p_i
    // can make (p_i + q_i)/2 underflow to zero in the JS construction,
    // which would otherwise trip the q > 0 requirement.
    if (p[i] <= 1e-15) continue;
    PRIVIEW_CHECK(q[i] > 0.0);
    sum += p[i] * std::log(p[i] / q[i]);
  }
  return sum;
}

double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q) {
  PRIVIEW_CHECK(p.size() == q.size());
  std::vector<double> m(p.size());
  for (size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  // m_i = 0 implies p_i = q_i = 0, so both KL terms skip index i.
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

namespace {

// Noisy tables may carry negative cells; JS divergence needs points on the
// probability simplex, so clamp to zero before normalizing (an all-zero
// table maps to uniform).
std::vector<double> ToSimplex(const MarginalTable& table) {
  std::vector<double> p(table.size());
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double cell = table.At(i);
    // Defensive: non-finite cells (a numerically broken estimate) are
    // treated as empty rather than poisoning the divergence.
    p[i] = std::isfinite(cell) ? std::max(cell, 0.0) : 0.0;
    total += p[i];
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(p.size());
    for (double& v : p) v = uniform;
    return p;
  }
  for (double& v : p) v /= total;
  return p;
}

}  // namespace

double JensenShannonTables(const MarginalTable& estimate,
                           const MarginalTable& truth) {
  return JensenShannon(ToSimplex(estimate), ToSimplex(truth));
}

namespace {

double Percentile(const std::vector<double>& sorted, double pct) {
  const double rank = pct / 100.0 * (static_cast<double>(sorted.size()) - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Candlestick Summarize(std::vector<double> values) {
  PRIVIEW_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  Candlestick c;
  c.p25 = Percentile(values, 25.0);
  c.median = Percentile(values, 50.0);
  c.p75 = Percentile(values, 75.0);
  c.p95 = Percentile(values, 95.0);
  double sum = 0.0;
  for (double v : values) sum += v;
  c.mean = sum / static_cast<double>(values.size());
  return c;
}

std::vector<AttrSet> SampleQuerySets(int d, int k, int count, Rng* rng) {
  PRIVIEW_CHECK(k <= d);
  // Distinct sets; when count exceeds C(d, k) this would loop forever, so
  // callers must keep count within the population (checked loosely).
  std::set<AttrSet> seen;
  std::vector<AttrSet> out;
  int attempts = 0;
  while (static_cast<int>(out.size()) < count) {
    const AttrSet q = AttrSet::FromIndices(
        rng->SampleWithoutReplacement(d, k));
    if (seen.insert(q).second) out.push_back(q);
    PRIVIEW_CHECK(++attempts < count * 1000 + 1000);
  }
  return out;
}

std::vector<AttrSet> ConsecutiveQuerySets(int d, int k) {
  PRIVIEW_CHECK(k <= d);
  std::vector<AttrSet> out;
  for (int start = 0; start + k <= d; ++start) {
    std::vector<int> attrs(k);
    for (int i = 0; i < k; ++i) attrs[i] = start + i;
    out.push_back(AttrSet::FromIndices(attrs));
  }
  return out;
}

}  // namespace priview
