#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"

namespace priview {

double NormalizedL2Error(const MarginalTable& estimate,
                         const MarginalTable& truth, double n) {
  PRIVIEW_CHECK(n > 0.0);
  return estimate.L2DistanceTo(truth) / n;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  PRIVIEW_CHECK(p.size() == q.size());
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    // Skip negligible mass: beyond contributing nothing, a subnormal p_i
    // can make (p_i + q_i)/2 underflow to zero in the JS construction,
    // which would otherwise trip the q > 0 requirement.
    if (p[i] <= 1e-15) continue;
    PRIVIEW_CHECK(q[i] > 0.0);
    sum += p[i] * std::log(p[i] / q[i]);
  }
  return sum;
}

double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q) {
  PRIVIEW_CHECK(p.size() == q.size());
  std::vector<double> m(p.size());
  for (size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  // m_i = 0 implies p_i = q_i = 0, so both KL terms skip index i.
  return 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
}

namespace {

// Noisy tables may carry negative cells; JS divergence needs points on the
// probability simplex, so clamp to zero before normalizing (an all-zero
// table maps to uniform).
std::vector<double> ToSimplex(const MarginalTable& table) {
  std::vector<double> p(table.size());
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double cell = table.At(i);
    // Defensive: non-finite cells (a numerically broken estimate) are
    // treated as empty rather than poisoning the divergence.
    p[i] = std::isfinite(cell) ? std::max(cell, 0.0) : 0.0;
    total += p[i];
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(p.size());
    for (double& v : p) v = uniform;
    return p;
  }
  for (double& v : p) v /= total;
  return p;
}

}  // namespace

double JensenShannonTables(const MarginalTable& estimate,
                           const MarginalTable& truth) {
  return JensenShannon(ToSimplex(estimate), ToSimplex(truth));
}

double PercentileOfSorted(const std::vector<double>& sorted, double pct) {
  PRIVIEW_CHECK(!sorted.empty());
  PRIVIEW_CHECK(pct >= 0.0 && pct <= 100.0);
  const double rank = pct / 100.0 * (static_cast<double>(sorted.size()) - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Candlestick Summarize(std::vector<double> values) {
  PRIVIEW_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  Candlestick c;
  c.p25 = PercentileOfSorted(values, 25.0);
  c.median = PercentileOfSorted(values, 50.0);
  c.p75 = PercentileOfSorted(values, 75.0);
  c.p95 = PercentileOfSorted(values, 95.0);
  double sum = 0.0;
  for (double v : values) sum += v;
  c.mean = sum / static_cast<double>(values.size());
  return c;
}

namespace {

// C(n, r), saturating at `cap`: the sampler only needs to know how the
// population compares to the request, never the exact astronomical value.
uint64_t BinomialCapped(int n, int r, uint64_t cap) {
  if (r < 0 || r > n) return 0;
  r = std::min(r, n - r);
  // result is C(n-r+i-1, i-1) entering iteration i, so result*num/i is an
  // exact integer. The product is formed in 128 bits — result stays below
  // cap (< 2^64) and num <= n — so saturation is decided on the true
  // post-division value, never on the pre-division product (which can be
  // up to a factor of i larger and must not trip the cap by itself).
  unsigned __int128 result = 1;
  for (int i = 1; i <= r; ++i) {
    const unsigned __int128 num = static_cast<unsigned __int128>(n - r + i);
    result = result * num / static_cast<unsigned __int128>(i);
    if (result >= cap) return cap;
  }
  return static_cast<uint64_t>(result);
}

// Every k-subset of {0, .., d-1}, lexicographic. Only called when the
// population is known to be within a small factor of the request size.
std::vector<AttrSet> EnumerateQuerySets(int d, int k) {
  std::vector<AttrSet> out;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    out.push_back(AttrSet::FromIndices(idx));
    int i = k - 1;
    while (i >= 0 && idx[i] == d - k + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return out;
}

}  // namespace

std::vector<AttrSet> SampleQuerySets(int d, int k, int count, Rng* rng) {
  PRIVIEW_CHECK(k >= 0 && k <= d);
  if (count <= 0) return {};
  // The population size picks the strategy. Rejection sampling near (or
  // past) C(d, k) distinct sets degenerates — at count == C(d, k) it used
  // to abort on its attempt limit — so dense requests enumerate instead.
  const uint64_t want = static_cast<uint64_t>(count);
  const uint64_t total = BinomialCapped(d, k, /*cap=*/4 * want);
  if (total <= want) {
    // The request covers the whole population: return all of it.
    return EnumerateQuerySets(d, k);
  }
  if (total <= 2 * want) {
    // Dense: draw `count` positions from the enumerated population.
    std::vector<AttrSet> all = EnumerateQuerySets(d, k);
    std::vector<AttrSet> out;
    out.reserve(want);
    for (int i : rng->SampleWithoutReplacement(static_cast<int>(all.size()),
                                               count)) {
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse (acceptance rate > 1/2 throughout): rejection sampling is cheap
  // and needs no enumeration.
  std::set<AttrSet> seen;
  std::vector<AttrSet> out;
  out.reserve(want);
  while (static_cast<int>(out.size()) < count) {
    const AttrSet q = AttrSet::FromIndices(
        rng->SampleWithoutReplacement(d, k));
    if (seen.insert(q).second) out.push_back(q);
  }
  return out;
}

std::vector<AttrSet> ConsecutiveQuerySets(int d, int k) {
  PRIVIEW_CHECK(k <= d);
  std::vector<AttrSet> out;
  for (int start = 0; start + k <= d; ++start) {
    std::vector<int> attrs(k);
    for (int i = 0; i < k; ++i) attrs[i] = start + i;
    out.push_back(AttrSet::FromIndices(attrs));
  }
  return out;
}

}  // namespace priview
