// Error measures and summary statistics used by the evaluation (§2, §5):
// normalized L2 error, Jensen–Shannon divergence, and the candlestick
// five-number profile (25/50/75/95 percentiles + mean) the paper plots.
#ifndef PRIVIEW_METRICS_METRICS_H_
#define PRIVIEW_METRICS_METRICS_H_

#include <vector>

#include "common/rng.h"
#include "table/attr_set.h"
#include "table/marginal_table.h"

namespace priview {

/// L2 distance between the tables divided by n (the plots' y-axis).
double NormalizedL2Error(const MarginalTable& estimate,
                         const MarginalTable& truth, double n);

/// KL divergence Σ p_i ln(p_i / q_i) over probability vectors; terms with
/// p_i = 0 contribute 0. Requires q_i > 0 wherever p_i > 0 (guaranteed by
/// the JS construction below).
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Jensen–Shannon divergence (Eq. 1) between probability vectors.
double JensenShannon(const std::vector<double>& p,
                     const std::vector<double>& q);

/// JS divergence between the two tables after normalization.
double JensenShannonTables(const MarginalTable& estimate,
                           const MarginalTable& truth);

/// The paper's candlestick: 25th percentile, median, 75th, 95th, mean.
struct Candlestick {
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
};

/// Summary of a sample (linear-interpolation percentiles). Values need not
/// be sorted. Requires a non-empty sample.
Candlestick Summarize(std::vector<double> values);

/// Linear-interpolation percentile of an ascending-sorted sample:
/// rank = pct/100 * (n-1), interpolated between the two neighbouring order
/// statistics (so a single-element sample returns that element for every
/// pct). Requires a non-empty `sorted` and pct in [0, 100].
double PercentileOfSorted(const std::vector<double>& sorted, double pct);

/// `count` distinct random k-subsets of {0, .., d-1}. Safe at every count:
/// when `count` meets or exceeds C(d, k), the entire population is returned
/// (which may be fewer than `count` sets); requests within a factor of two
/// of the population are drawn from an enumeration, so sampling never
/// degenerates near the boundary. count <= 0 returns empty.
std::vector<AttrSet> SampleQuerySets(int d, int k, int count, Rng* rng);

/// All d-k+1 consecutive windows {i, .., i+k-1} — the MCHAIN queries, which
/// exercise exactly the chain's inter-attribute dependencies.
std::vector<AttrSet> ConsecutiveQuerySets(int d, int k);

}  // namespace priview

#endif  // PRIVIEW_METRICS_METRICS_H_
