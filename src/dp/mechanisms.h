// Differential-privacy primitives: the Laplace mechanism (on scalars,
// marginal tables and full contingency tables) and the exponential
// mechanism. Sensitivities are supplied by the caller — each mechanism in
// the paper derives its own (e.g. releasing w view marginals has L1
// sensitivity w because a record lands in exactly one cell per view).
#ifndef PRIVIEW_DP_MECHANISMS_H_
#define PRIVIEW_DP_MECHANISMS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/contingency_table.h"
#include "table/marginal_table.h"

namespace priview {

/// y = x + Lap(sensitivity / epsilon).
double NoisyCount(double x, double sensitivity, double epsilon, Rng* rng);

/// Adds independent Lap(sensitivity / epsilon) noise to every cell.
void AddLaplaceNoise(MarginalTable* table, double sensitivity, double epsilon,
                     Rng* rng);

/// Adds independent Lap(sensitivity / epsilon) noise to every cell.
void AddLaplaceNoise(ContingencyTable* table, double sensitivity,
                     double epsilon, Rng* rng);

/// Exponential mechanism: selects index i with probability proportional to
/// exp(epsilon * score[i] / (2 * sensitivity)). Scores may be any reals;
/// computed with the max subtracted for numerical stability.
int ExponentialMechanism(const std::vector<double>& scores, double epsilon,
                         double sensitivity, Rng* rng);

/// Tracks cumulative privacy spending against a fixed total budget.
/// Spend() returns a failed Status instead of silently exceeding epsilon.
class BudgetAccountant {
 public:
  explicit BudgetAccountant(double total_epsilon);

  /// Consumes `epsilon`; fails (and consumes nothing) if that would exceed
  /// the total. A tiny relative slack absorbs floating-point drift from
  /// budgets split into T equal parts.
  Status Spend(double epsilon);

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

 private:
  double total_;
  double spent_ = 0.0;
};

}  // namespace priview

#endif  // PRIVIEW_DP_MECHANISMS_H_
