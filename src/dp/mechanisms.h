// Differential-privacy primitives: the Laplace mechanism (on scalars,
// marginal tables and full contingency tables) and the exponential
// mechanism. Sensitivities are supplied by the caller — each mechanism in
// the paper derives its own (e.g. releasing w view marginals has L1
// sensitivity w because a record lands in exactly one cell per view).
#ifndef PRIVIEW_DP_MECHANISMS_H_
#define PRIVIEW_DP_MECHANISMS_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "table/contingency_table.h"
#include "table/marginal_table.h"

namespace priview {

/// y = x + Lap(sensitivity / epsilon).
double NoisyCount(double x, double sensitivity, double epsilon, Rng* rng);

/// Adds independent Lap(sensitivity / epsilon) noise to every cell.
void AddLaplaceNoise(MarginalTable* table, double sensitivity, double epsilon,
                     Rng* rng);

/// Adds independent Lap(sensitivity / epsilon) noise to every cell.
void AddLaplaceNoise(ContingencyTable* table, double sensitivity,
                     double epsilon, Rng* rng);

/// Exponential mechanism: selects index i with probability proportional to
/// exp(epsilon * score[i] / (2 * sensitivity)). Scores may be any reals;
/// computed with the max subtracted for numerical stability.
int ExponentialMechanism(const std::vector<double>& scores, double epsilon,
                         double sensitivity, Rng* rng);

/// Tracks cumulative privacy spending against a fixed total budget.
/// Spend() returns a failed Status instead of silently exceeding epsilon.
///
/// Thread safety: Spend / CarveChild / spent / remaining are safe to call
/// concurrently from any number of threads — spending is a CAS loop on an
/// atomic, so two racing Spends can never jointly exceed the total (the
/// loser re-reads and re-checks). Moving an accountant is NOT thread-safe
/// against concurrent use of the source (moves happen at handoff time,
/// before any sharing).
///
/// Observability: constructed with a non-empty `metric_label`, the
/// accountant exports `priview_budget_spent_epsilon{budget=<label>}` and
/// `priview_budget_remaining_epsilon{budget=<label>}` gauges to the global
/// metrics registry (refreshed on every successful spend) and counts
/// refusals in `priview_budget_refusals_total{budget=<label>}`. Unlabeled
/// accountants (the pipeline's transient per-release ones) stay silent.
class BudgetAccountant {
 public:
  explicit BudgetAccountant(double total_epsilon,
                            const std::string& metric_label = "");
  BudgetAccountant(BudgetAccountant&& other) noexcept;
  BudgetAccountant& operator=(BudgetAccountant&& other) noexcept;
  BudgetAccountant(const BudgetAccountant&) = delete;
  BudgetAccountant& operator=(const BudgetAccountant&) = delete;

  /// Consumes `epsilon`; fails (and consumes nothing) if that would exceed
  /// the total. A tiny relative slack absorbs floating-point drift from
  /// budgets split into T equal parts. Refusal is a typed
  /// ResourceExhausted Status — never a silent overspend.
  Status Spend(double epsilon);

  /// Carves a child budget of `child_epsilon` out of this accountant: the
  /// parent spends `child_epsilon` up front and the child may then spend
  /// up to that amount independently. This is the cross-epoch schedule
  /// primitive: a streaming publisher carves one child per epoch from the
  /// release's total ε, so the sum over all epochs can never exceed it.
  /// Fails (spending nothing) when the remaining parent budget is short.
  StatusOr<BudgetAccountant> CarveChild(
      double child_epsilon, const std::string& child_label = "");

  double total() const { return total_; }
  double spent() const { return spent_.load(std::memory_order_relaxed); }
  double remaining() const { return total_ - spent(); }

 private:
  void PublishGauges() const;

  double total_;
  std::atomic<double> spent_{0.0};
  std::string label_;
};

}  // namespace priview

#endif  // PRIVIEW_DP_MECHANISMS_H_
