#include "dp/mechanisms.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "obs/metrics_registry.h"

namespace priview {

double NoisyCount(double x, double sensitivity, double epsilon, Rng* rng) {
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  return x + rng->Laplace(sensitivity / epsilon);
}

void AddLaplaceNoise(MarginalTable* table, double sensitivity, double epsilon,
                     Rng* rng) {
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double scale = sensitivity / epsilon;
  for (double& c : table->cells()) c += rng->Laplace(scale);
}

void AddLaplaceNoise(ContingencyTable* table, double sensitivity,
                     double epsilon, Rng* rng) {
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double scale = sensitivity / epsilon;
  for (double& c : table->cells()) c += rng->Laplace(scale);
}

int ExponentialMechanism(const std::vector<double>& scores, double epsilon,
                         double sensitivity, Rng* rng) {
  PRIVIEW_CHECK(!scores.empty());
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double factor = epsilon / (2.0 * sensitivity);
  const double max_score = *std::max_element(scores.begin(), scores.end());
  std::vector<double> weights(scores.size());
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    weights[i] = std::exp(factor * (scores[i] - max_score));
    total += weights[i];
  }
  double u = rng->UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

BudgetAccountant::BudgetAccountant(double total_epsilon,
                                   const std::string& metric_label)
    : total_(total_epsilon), label_(metric_label) {
  PRIVIEW_CHECK(total_epsilon > 0.0);
  PublishGauges();
}

BudgetAccountant::BudgetAccountant(BudgetAccountant&& other) noexcept
    : total_(other.total_),
      spent_(other.spent_.load(std::memory_order_relaxed)),
      label_(std::move(other.label_)) {
  other.label_.clear();  // the moved-from shell stops publishing gauges
}

BudgetAccountant& BudgetAccountant::operator=(
    BudgetAccountant&& other) noexcept {
  if (this != &other) {
    total_ = other.total_;
    spent_.store(other.spent_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    label_ = std::move(other.label_);
    other.label_.clear();
  }
  return *this;
}

void BudgetAccountant::PublishGauges() const {
  if (label_.empty()) return;
  const obs::Labels labels{{"budget", label_}};
  const double spent_now = spent();
  obs::MetricsRegistry::Global()
      .GetGaugeD("priview_budget_spent_epsilon", labels,
                 "Cumulative privacy budget consumed by this accountant")
      ->Set(spent_now);
  obs::MetricsRegistry::Global()
      .GetGaugeD("priview_budget_remaining_epsilon", labels,
                 "Privacy budget this accountant can still spend")
      ->Set(total_ - spent_now);
}

Status BudgetAccountant::Spend(double epsilon) {
  auto refuse = [&](Status status) {
    if (!label_.empty()) {
      obs::MetricsRegistry::Global()
          .GetCounter("priview_budget_refusals_total",
                      {{"budget", label_}},
                      "Spend attempts refused to protect the total ε")
          ->Increment();
    }
    return status;
  };
  if (PRIVIEW_FAILPOINT("dp/budget-exhausted")) {
    return refuse(Status::ResourceExhausted("injected: dp/budget-exhausted"));
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const double slack = 1e-9 * total_;
  // CAS loop: the check and the add are one atomic step, so concurrent
  // spenders can never jointly exceed the total — a loser re-reads the new
  // spent value and re-checks against the cap before retrying.
  double observed = spent_.load(std::memory_order_relaxed);
  for (;;) {
    if (observed + epsilon > total_ + slack) {
      return refuse(Status::ResourceExhausted(
          "privacy budget exceeded: spent " + std::to_string(observed) +
          " + " + std::to_string(epsilon) + " > total " +
          std::to_string(total_)));
    }
    if (spent_.compare_exchange_weak(observed, observed + epsilon,
                                     std::memory_order_relaxed)) {
      break;
    }
  }
  PublishGauges();
  return Status::OK();
}

StatusOr<BudgetAccountant> BudgetAccountant::CarveChild(
    double child_epsilon, const std::string& child_label) {
  if (child_epsilon <= 0.0) {
    return Status::InvalidArgument("child epsilon must be positive");
  }
  const Status spent = Spend(child_epsilon);
  if (!spent.ok()) return spent;
  return BudgetAccountant(child_epsilon, child_label);
}

}  // namespace priview
