#include "dp/mechanisms.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/status.h"

namespace priview {

double NoisyCount(double x, double sensitivity, double epsilon, Rng* rng) {
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  return x + rng->Laplace(sensitivity / epsilon);
}

void AddLaplaceNoise(MarginalTable* table, double sensitivity, double epsilon,
                     Rng* rng) {
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double scale = sensitivity / epsilon;
  for (double& c : table->cells()) c += rng->Laplace(scale);
}

void AddLaplaceNoise(ContingencyTable* table, double sensitivity,
                     double epsilon, Rng* rng) {
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double scale = sensitivity / epsilon;
  for (double& c : table->cells()) c += rng->Laplace(scale);
}

int ExponentialMechanism(const std::vector<double>& scores, double epsilon,
                         double sensitivity, Rng* rng) {
  PRIVIEW_CHECK(!scores.empty());
  PRIVIEW_CHECK(sensitivity > 0.0 && epsilon > 0.0);
  const double factor = epsilon / (2.0 * sensitivity);
  const double max_score = *std::max_element(scores.begin(), scores.end());
  std::vector<double> weights(scores.size());
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    weights[i] = std::exp(factor * (scores[i] - max_score));
    total += weights[i];
  }
  double u = rng->UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

BudgetAccountant::BudgetAccountant(double total_epsilon)
    : total_(total_epsilon) {
  PRIVIEW_CHECK(total_epsilon > 0.0);
}

Status BudgetAccountant::Spend(double epsilon) {
  if (PRIVIEW_FAILPOINT("dp/budget-exhausted")) {
    return Status::ResourceExhausted("injected: dp/budget-exhausted");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  const double slack = 1e-9 * total_;
  if (spent_ + epsilon > total_ + slack) {
    return Status::ResourceExhausted("privacy budget exceeded");
  }
  spent_ += epsilon;
  return Status::OK();
}

}  // namespace priview
