// priview_tool — command-line front end for the full release workflow.
//
//   priview_tool synth --kind=kosarak --n=100000 --out=data.dat
//       Generate demo data (kinds: kosarak, aol, msnbc, mchain<order>).
//   priview_tool build --in=data.dat --d=32 --eps=1.0 --out=synopsis.pv
//       Run the §4.5 pipeline (noisy count -> view selection -> synopsis)
//       and save the differentially private synopsis.
//   priview_tool info --in=synopsis.pv
//       Describe a synopsis file.
//   priview_tool query --in=synopsis.pv --attrs=1,5,9
//       Reconstruct and print the marginal over the given attributes.
//
// The data owner runs `build` once; everyone else only ever touches the
// synopsis file.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/pipeline.h"
#include "core/query_engine.h"
#include "core/serialization.h"
#include "data/io.h"
#include "data/mchain.h"
#include "data/synthetic.h"

namespace {

using namespace priview;

const char* FindFlag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const char* def) {
  const char* v = FindFlag(argc, argv, name);
  return v ? v : def;
}

int FlagInt(int argc, char** argv, const char* name, int def) {
  const char* v = FindFlag(argc, argv, name);
  return v ? std::atoi(v) : def;
}

double FlagDouble(int argc, char** argv, const char* name, double def) {
  const char* v = FindFlag(argc, argv, name);
  return v ? std::atof(v) : def;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  priview_tool synth --kind=kosarak|aol|msnbc|mchain<i> "
               "[--n=N] [--seed=S] --out=FILE\n"
               "  priview_tool build --in=FILE --d=D [--eps=1.0] "
               "[--seed=S] --out=FILE\n"
               "  priview_tool info  --in=FILE\n"
               "  priview_tool query --in=FILE --attrs=a,b,c "
               "[--method=cme|cln|lp]\n");
  return 2;
}

int CmdSynth(int argc, char** argv) {
  const std::string kind = FlagStr(argc, argv, "kind", "kosarak");
  const std::string out = FlagStr(argc, argv, "out", "");
  const size_t n = static_cast<size_t>(FlagInt(argc, argv, "n", 100000));
  Rng rng(static_cast<uint64_t>(FlagInt(argc, argv, "seed", 1)));
  if (out.empty()) return Usage();

  Dataset data(1);
  if (kind == "kosarak") {
    data = MakeKosarakLike(&rng, n);
  } else if (kind == "aol") {
    data = MakeAolLike(&rng, n);
  } else if (kind == "msnbc") {
    data = MakeMsnbcLike(&rng, n);
  } else if (kind.rfind("mchain", 0) == 0) {
    const int order = std::max(1, std::atoi(kind.c_str() + 6));
    data = MakeMchainDataset(order, 64, n, &rng);
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
    return 2;
  }
  const Status st = WriteTransactions(data, out);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records (d=%d) to %s\n", data.size(), data.d(),
              out.c_str());
  return 0;
}

int CmdBuild(int argc, char** argv) {
  const std::string in = FlagStr(argc, argv, "in", "");
  const std::string out = FlagStr(argc, argv, "out", "");
  const int d = FlagInt(argc, argv, "d", 0);
  if (in.empty() || out.empty() || d <= 0) return Usage();

  StatusOr<Dataset> data = ReadTransactions(in, d);
  if (!data.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }

  PipelineOptions options;
  options.total_epsilon = FlagDouble(argc, argv, "eps", 1.0);
  Rng rng(static_cast<uint64_t>(FlagInt(argc, argv, "seed", 1)));
  StatusOr<PipelineResult> result =
      BuildPriViewPipeline(data.value(), options, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const PipelineResult& r = result.value();
  std::printf("selected %s (noise error %.5f, noisy N %.0f)\n",
              r.selection.design.Name().c_str(), r.selection.noise_error,
              r.noisy_count);
  std::printf("budget: %.4f on count + %.4f on views = %.4f total\n",
              r.count_epsilon, r.views_epsilon, options.total_epsilon);
  const Status st = SaveSynopsis(r.synopsis, out);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved synopsis to %s\n", out.c_str());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  const std::string in = FlagStr(argc, argv, "in", "");
  if (in.empty()) return Usage();
  StatusOr<PriViewSynopsis> synopsis = LoadSynopsis(in);
  if (!synopsis.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 synopsis.status().ToString().c_str());
    return 1;
  }
  const PriViewSynopsis& s = synopsis.value();
  std::printf("synopsis: d=%d, epsilon=%.4f, total count %.0f\n", s.d(),
              s.options().epsilon, s.total());
  std::printf("%zu views:\n", s.views().size());
  for (const MarginalTable& view : s.views()) {
    std::printf("  %s (%zu cells)\n", view.attrs().ToString().c_str(),
                view.size());
  }
  return 0;
}

int CmdQuery(int argc, char** argv) {
  const std::string in = FlagStr(argc, argv, "in", "");
  const std::string attrs_csv = FlagStr(argc, argv, "attrs", "");
  const std::string method_name = FlagStr(argc, argv, "method", "cme");
  if (in.empty() || attrs_csv.empty()) return Usage();

  ReconstructionMethod method = ReconstructionMethod::kMaxEntropy;
  if (method_name == "cln") method = ReconstructionMethod::kLeastNorm;
  if (method_name == "lp") method = ReconstructionMethod::kLinearProgram;

  StatusOr<PriViewSynopsis> synopsis = LoadSynopsis(in);
  if (!synopsis.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 synopsis.status().ToString().c_str());
    return 1;
  }
  std::vector<int> attrs;
  for (const char* p = attrs_csv.c_str(); *p != '\0';) {
    attrs.push_back(std::atoi(p));
    while (*p != '\0' && *p != ',') ++p;
    if (*p == ',') ++p;
  }
  const AttrSet scope = AttrSet::FromIndices(attrs);
  const MarginalTable table = synopsis.value().Query(scope, method);
  std::printf("marginal over %s (total %.1f):\n",
              scope.ToString().c_str(), table.Total());
  for (uint64_t cell = 0; cell < table.size(); ++cell) {
    std::printf("  ");
    for (int b = 0; b < table.arity(); ++b) {
      std::printf("%c", (cell >> b) & 1 ? '1' : '0');
    }
    std::printf("  %12.2f\n", table.At(cell));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "synth") return CmdSynth(argc, argv);
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "info") return CmdInfo(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  return Usage();
}
