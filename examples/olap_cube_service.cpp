// Scenario: an OLAP-style cube service over private synopses — as a real
// service. Marginal tables are "essentially equivalent to OLAP cubes"
// (§1); this example forks a server process that hosts two differentially
// private releases of the same clickstream (eps=1.0 and eps=0.5) behind
// the src/serve stack, then acts as the analyst: it connects to the
// Unix-domain socket with the client library and issues cube queries over
// the wire — roll-up, slice, dice, conjunction — including the coherence
// check that makes consistent synopses worth serving (a roll-up of a
// serve-side cube agrees with a fresh query for the smaller cube, a
// property Direct-style noise does not give you).
//
//   ./olap_cube_service
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/view_selection.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace priview;

volatile sig_atomic_t g_stop = 0;
void HandleTerm(int) { g_stop = 1; }

// Child process: build the private releases, host them, serve until
// SIGTERM. Exits via _exit so the parent's stdio buffers are not flushed
// twice.
int RunServer(const std::string& socket_path) {
  signal(SIGTERM, HandleTerm);

  Rng rng(99);
  Dataset data = MakeKosarakLike(&rng, 300000);
  const ViewSelection sel =
      SelectViews(data.d(), static_cast<double>(data.size()), 1.0, &rng);

  serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  serve::PriViewServer server(server_options);
  for (const double epsilon : {1.0, 0.5}) {
    PriViewOptions options;
    options.epsilon = epsilon;
    const std::string name = epsilon == 1.0 ? "eps1" : "eps05";
    const Status install = server.registry().Install(
        name, PriViewSynopsis::Build(data, sel.design.blocks, options, &rng));
    if (!install.ok()) {
      std::fprintf(stderr, "[server] install %s: %s\n", name.c_str(),
                   install.ToString().c_str());
      return 1;
    }
  }
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "[server] start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("[server] pid %d serving d=%d (%s) on %s\n",
              static_cast<int>(getpid()), data.d(), sel.design.Name().c_str(),
              socket_path.c_str());
  std::fflush(stdout);

  while (!g_stop) pause();
  server.Stop();
  return 0;
}

// The server builds two synopses from 300k records before it binds the
// socket; keep retrying the connect until it is up.
StatusOr<serve::PriViewClient> ConnectWithRetry(const std::string& path) {
  for (int attempt = 0; attempt < 600; ++attempt) {
    StatusOr<serve::PriViewClient> client =
        serve::PriViewClient::Connect(path);
    if (client.ok()) return client;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return Status::IOError("server never came up on " + path);
}

#define CHECK_OK(expr)                                                      \
  ({                                                                        \
    auto result_ = (expr);                                                  \
    if (!result_.ok()) {                                                    \
      std::fprintf(stderr, "[analyst] %s failed: %s\n", #expr,              \
                   result_.status().ToString().c_str());                    \
      return 1;                                                             \
    }                                                                       \
    std::move(result_).value();                                             \
  })

// Parent process: the analyst. Everything below travels over the wire —
// the synopses live in the other process.
int RunAnalyst(const std::string& socket_path) {
  serve::PriViewClient client = CHECK_OK(ConnectWithRetry(socket_path));

  const std::string listing = CHECK_OK(client.List());
  std::printf("[analyst] connected; hosted releases:\n%s", listing.c_str());

  // A 4-dimensional cube from the eps=1.0 release.
  const AttrSet dims = AttrSet::FromIndices({1, 5, 12, 20});
  const serve::ClientTable cube = CHECK_OK(client.Marginal("eps1", dims));
  std::printf("\n[analyst] 4-d cube over %s: total %.0f (epoch %llu, "
              "tier %d)\n",
              dims.ToString().c_str(), cube.table.Total(),
              static_cast<unsigned long long>(cube.epoch),
              static_cast<int>(cube.tier));

  // Roll-up coherence, across the wire: the server rolls the 4-d cube up
  // to {1, 5}, and separately answers {1, 5} as a fresh query. Consistent
  // synopses make these agree.
  const AttrSet pair = AttrSet::FromIndices({1, 5});
  const serve::ClientTable rolled =
      CHECK_OK(client.RollUp("eps1", dims, pair));
  const serve::ClientTable fresh = CHECK_OK(client.Marginal("eps1", pair));
  double max_gap = 0.0;
  for (uint64_t c = 0; c < rolled.table.size(); ++c) {
    max_gap = std::max(max_gap,
                       std::abs(rolled.table.At(c) - fresh.table.At(c)));
  }
  std::printf("[analyst] roll-up coherence |rollup - fresh query|_inf = "
              "%.4f\n",
              max_gap);

  // Slice on page1: visitors vs non-visitors, then the conditional visit
  // rate of page 5 in each slice.
  const serve::ClientTable visitors =
      CHECK_OK(client.Slice("eps1", dims, /*attr=*/1, /*value=*/1));
  const serve::ClientTable others =
      CHECK_OK(client.Slice("eps1", dims, /*attr=*/1, /*value=*/0));
  std::printf("\n[analyst] slice page1=1: %.0f readers; page1=0: %.0f\n",
              visitors.table.Total(), others.table.Total());
  const AttrSet page5 = AttrSet::FromIndices({5});
  std::printf("[analyst] P(page5 | page1)  = %.4f\n",
              visitors.table.Project(page5).At(1) / visitors.table.Total());
  std::printf("[analyst] P(page5 | !page1) = %.4f\n",
              others.table.Project(page5).At(1) / others.table.Total());

  // Dice down to the page1=1, page5=1 corner, and cross-check it with a
  // conjunction query (which the server answers from the same broker).
  const serve::ClientTable diced =
      CHECK_OK(client.Dice("eps1", dims, pair, /*values=*/0b11));
  const serve::ClientValue both =
      CHECK_OK(client.Conjunction("eps1", pair, /*assignment=*/0b11));
  std::printf("\n[analyst] dice page1=1&page5=1: %.0f readers "
              "(conjunction query says %.0f)\n",
              diced.table.Total(), both.value);

  // Same question at lower privacy budget: the eps=0.5 release answers
  // from its own engine, independently.
  const serve::ClientTable loose = CHECK_OK(client.Marginal("eps05", pair));
  double eps_gap = 0.0;
  for (uint64_t c = 0; c < loose.table.size(); ++c) {
    eps_gap = std::max(eps_gap,
                       std::abs(loose.table.At(c) - fresh.table.At(c)));
  }
  std::printf("[analyst] eps=0.5 vs eps=1.0 on %s: |diff|_inf = %.1f\n",
              pair.ToString().c_str(), eps_gap);

  const std::string stats = CHECK_OK(client.Stats());
  std::printf("\n[analyst] server stats: %s\n", stats.c_str());
  return 0;
}

}  // namespace

int main() {
  const std::string socket_path =
      "/tmp/priview_olap_" + std::to_string(::getpid()) + ".sock";

  const pid_t server_pid = fork();
  if (server_pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (server_pid == 0) _exit(RunServer(socket_path));

  const int rc = RunAnalyst(socket_path);
  kill(server_pid, SIGTERM);
  int wait_status = 0;
  waitpid(server_pid, &wait_status, 0);
  std::printf("[analyst] server stopped (exit %d)\n",
              WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1);
  return rc;
}
