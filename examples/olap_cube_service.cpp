// Scenario: an OLAP-style cube service over a private synopsis. Marginal
// tables are "essentially equivalent to OLAP cubes" (§1); this example
// implements the cube operations analysts expect — slice, dice, roll-up —
// all computed from one differentially private PriView synopsis, and shows
// that roll-ups are internally consistent (a property Direct-style noise
// does not give you).
//
//   ./olap_cube_service
#include <cstdio>

#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/view_selection.h"

namespace {

using priview::AttrSet;
using priview::MarginalTable;
using priview::PriViewSynopsis;

// Roll-up: aggregate a cube to fewer dimensions.
MarginalTable RollUp(const MarginalTable& cube, AttrSet keep) {
  return cube.Project(keep);
}

// Slice: fix one attribute's value, producing the sub-cube over the rest.
MarginalTable Slice(const MarginalTable& cube, int attr, int value) {
  const AttrSet rest = cube.attrs().Minus(AttrSet::FromIndices({attr}));
  MarginalTable out(rest);
  const uint64_t attr_bit = cube.CellIndexMaskFor(AttrSet::FromIndices({attr}));
  const uint64_t rest_mask = cube.CellIndexMaskFor(rest);
  for (uint64_t cell = 0; cell < cube.size(); ++cell) {
    const int bit = (cell & attr_bit) ? 1 : 0;
    if (bit != value) continue;
    out.At(priview::ExtractBits(cell, rest_mask)) += cube.At(cell);
  }
  return out;
}

}  // namespace

int main() {
  using namespace priview;
  Rng rng(99);
  Dataset data = MakeKosarakLike(&rng, 300000);

  const double epsilon = 1.0;
  const ViewSelection sel =
      SelectViews(data.d(), static_cast<double>(data.size()), epsilon, &rng);
  PriViewOptions options;
  options.epsilon = epsilon;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, sel.design.blocks, options, &rng);
  std::printf("cube service online: d=%d, synopsis %s, eps=%.1f\n\n",
              data.d(), sel.design.Name().c_str(), epsilon);

  // Analyst asks for a 4-dimensional cube.
  const AttrSet dims = AttrSet::FromIndices({1, 5, 12, 20});
  const MarginalTable cube = synopsis.Query(dims);
  std::printf("4-d cube over %s (total %.0f)\n", dims.ToString().c_str(),
              cube.Total());

  // Roll-up to {1, 5} two ways: via the cube, and as a fresh query. With a
  // consistent synopsis both agree — the cube algebra is coherent.
  const AttrSet pair = AttrSet::FromIndices({1, 5});
  const MarginalTable rolled = RollUp(cube, pair);
  const MarginalTable direct_query = synopsis.Query(pair);
  double max_gap = 0.0;
  for (uint64_t c = 0; c < rolled.size(); ++c) {
    max_gap = std::max(max_gap,
                       std::abs(rolled.At(c) - direct_query.At(c)));
  }
  std::printf("roll-up coherence |cube rollup - fresh query|_inf = %.4f "
              "(%.4f%% of N)\n",
              max_gap, 100.0 * max_gap / synopsis.total());

  // Slice: readers who did visit page 1 — distribution over {5, 12, 20}.
  const MarginalTable visitors = Slice(cube, 1, 1);
  const MarginalTable non_visitors = Slice(cube, 1, 0);
  std::printf("\nslice on page1=1: %.0f readers; page1=0: %.0f readers\n",
              visitors.Total(), non_visitors.Total());

  // Dice: compare conditional visit rates of page 5 given page 1.
  const double p5_given_1 =
      visitors.Project(AttrSet::FromIndices({5})).At(1) / visitors.Total();
  const double p5_given_not1 =
      non_visitors.Project(AttrSet::FromIndices({5})).At(1) /
      non_visitors.Total();
  std::printf("P(page5 | page1)   = %.4f\n", p5_given_1);
  std::printf("P(page5 | !page1)  = %.4f\n", p5_given_not1);

  // Ground truth for reference.
  const MarginalTable truth = data.CountMarginal(dims);
  std::printf("\ncube normalized L2 error vs truth: %.5f\n",
              cube.L2DistanceTo(truth) / static_cast<double>(data.size()));
  return 0;
}
