// Scenario: a news portal wants to publish co-visitation statistics of its
// 45 page categories without exposing any individual reader — the paper's
// AOL-style motivating workload. The analyst downstream never sees raw
// data, only the synopsis, and asks correlation-style questions.
//
//   ./clickstream_release [--n=200000] [--eps=1.0]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "core/query_engine.h"
#include "core/synopsis.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "design/view_selection.h"
#include "metrics/metrics.h"

namespace {

int FlagInt(int argc, char** argv, const char* name, int def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return def;
}

double FlagDouble(int argc, char** argv, const char* name, double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace priview;
  const int n = FlagInt(argc, argv, "n", 200000);
  const double epsilon = FlagDouble(argc, argv, "eps", 1.0);

  Rng rng(7);
  Dataset data = MakeAolLike(&rng, static_cast<size_t>(n));
  std::printf("publisher side: d=%d categories, N=%zu readers, eps=%.2f\n",
              data.d(), data.size(), epsilon);

  // --- Publisher: build and "release" the synopsis. -----------------------
  const ViewSelection sel =
      SelectViews(data.d(), static_cast<double>(n), epsilon, &rng);
  PriViewOptions options;
  options.epsilon = epsilon;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, sel.design.blocks, options, &rng);
  std::printf("released synopsis: %s (%zu marginal tables, %zu cells "
              "total)\n\n",
              sel.design.Name().c_str(), synopsis.views().size(),
              synopsis.views().size() * synopsis.views()[0].size());

  // --- Analyst: works from the synopsis only, via the query engine. -------
  // Q1: Which category pairs co-occur far more often than independence
  // would predict? (lift of the (1,1) cell). Restricted to categories with
  // solid support — lift on rare cells is noise-dominated at any epsilon.
  const QueryEngine engine(&synopsis);
  std::printf("top associated category pairs (by lift):\n");
  struct Pair {
    int a, b;
    double lift;
  };
  std::vector<Pair> pairs;
  for (int a = 0; a < data.d(); ++a) {
    if (engine.Probability(AttrSet::FromIndices({a}), 1) < 0.05) continue;
    for (int b = a + 1; b < data.d(); ++b) {
      if (engine.Probability(AttrSet::FromIndices({b}), 1) < 0.05) continue;
      pairs.push_back({a, b, engine.Lift(a, b)});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.lift > y.lift; });
  std::printf("(note: taking the top-k of noisy statistics inflates them — "
              "the winner's curse;\n true lifts shown for calibration)\n");
  for (size_t i = 0; i < pairs.size() && i < 5; ++i) {
    // Compare against the (normally unavailable) ground truth.
    const MarginalTable truth = data.CountMarginal(
        AttrSet::FromIndices({pairs[i].a, pairs[i].b}));
    const double n_true = static_cast<double>(data.size());
    const double true_lift =
        (truth.At(0b11) / n_true) /
        (((truth.At(0b01) + truth.At(0b11)) / n_true) *
         ((truth.At(0b10) + truth.At(0b11)) / n_true));
    std::printf("  categories %2d & %2d: private lift %.2f (true %.2f)\n",
                pairs[i].a, pairs[i].b, pairs[i].lift, true_lift);
  }

  // Q2: a 6-way drill-down none of the views covers directly.
  const AttrSet drill = AttrSet::FromIndices({0, 1, 2, 9, 18, 27});
  const MarginalTable cube = synopsis.Query(drill);
  const MarginalTable cube_truth = data.CountMarginal(drill);
  std::printf("\n6-way drill-down %s: normalized L2 error %.5f, "
              "JS divergence %.6f\n",
              drill.ToString().c_str(),
              NormalizedL2Error(cube, cube_truth,
                                static_cast<double>(data.size())),
              JensenShannonTables(cube, cube_truth));

  // Q3: persist the synthetic source data for external tooling.
  const std::string path = "clickstream_sample.dat";
  Dataset sample(data.d());
  for (size_t i = 0; i < 1000; ++i) sample.Add(data.records()[i]);
  const Status io = WriteTransactions(sample, path);
  std::printf("\nwrote 1000-record sample to %s: %s\n", path.c_str(),
              io.ToString().c_str());
  return 0;
}
