// Scenario: sequence data (the paper's MCHAIN synthesis) — 64-step binary
// time series where each step depends on the previous `order` steps. Shows
// how the strength of temporal correlation interacts with pair-covering
// views: the paper's Fig. 5 insight that mc3 is hardest, reproduced
// interactively.
//
//   ./mchain_explorer [--order=3]
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "core/synopsis.h"
#include "data/mchain.h"
#include "design/covering_design.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  using namespace priview;
  int requested_order = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--order=", 8) == 0) {
      requested_order = std::atoi(argv[i] + 8);
    }
  }

  Rng rng(11);
  const int d = 64;
  const CoveringDesign design = MakeCoveringDesign(d, 8, 2, &rng);
  std::printf("views: %s on d=%d\n\n", design.Name().c_str(), d);
  std::printf("order | mean L2 err (k=4, consecutive) | note\n");
  std::printf("------+--------------------------------+---------------\n");

  for (int order = 1; order <= 7; ++order) {
    if (requested_order != 0 && order != requested_order) continue;
    Rng data_rng(100 + order);
    const Dataset data = MakeMchainDataset(order, d, 200000, &data_rng);

    PriViewOptions options;
    options.epsilon = 1.0;
    Rng noise_rng(200 + order);
    const PriViewSynopsis synopsis =
        PriViewSynopsis::Build(data, design.blocks, options, &noise_rng);

    const auto queries = ConsecutiveQuerySets(d, 4);
    const double n = static_cast<double>(data.size());
    double err = 0.0;
    for (AttrSet q : queries) {
      err += NormalizedL2Error(synopsis.Query(q), data.CountMarginal(q), n);
    }
    err /= static_cast<double>(queries.size());
    const char* note = "";
    if (order <= 2) note = "pairs cover the dependence";
    if (order == 3) note = "4-attr correlation, pairs strained";
    if (order >= 4) note = "dependence diffuse, easy again";
    std::printf("  %d   | %.6f                       | %s\n", order, err,
                note);
  }
  return 0;
}
