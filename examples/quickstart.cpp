// Quickstart: build a differentially private PriView synopsis of a binary
// dataset and query arbitrary k-way marginals from it.
//
//   ./quickstart
//
// Walks the full pipeline: data -> view selection (covering design) ->
// noisy views -> consistency + ripple -> max-entropy marginal queries.
#include <cstdio>

#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/view_selection.h"
#include "metrics/metrics.h"

int main() {
  using namespace priview;

  // 1. A dataset: 32 binary attributes (think: which of 32 pages each of
  //    100k users visited). Replace with ReadTransactions() for real data.
  Rng rng(2024);
  Dataset data = MakeKosarakLike(&rng, 100000);
  std::printf("dataset: d=%d, N=%zu\n", data.d(), data.size());

  // 2. Choose views. SelectViews picks a covering design following the
  //    paper's §4.5 heuristic (ell = 8, t chosen from the Eq. 5 noise
  //    error). The N estimate may be rough — a noisy count is fine.
  const double epsilon = 1.0;
  const ViewSelection sel =
      SelectViews(data.d(), static_cast<double>(data.size()), epsilon, &rng);
  std::printf("views:   %s covering all %d-subsets, noise error %.5f\n",
              sel.design.Name().c_str(), sel.design.t, sel.noise_error);

  // 3. Build the synopsis. This is the only step that touches the data;
  //    everything afterwards is post-processing of the noisy views.
  PriViewOptions options;
  options.epsilon = epsilon;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, sel.design.blocks, options, &rng);
  std::printf("synopsis: %zu noisy views, consistent total %.0f\n\n",
              synopsis.views().size(), synopsis.total());

  // 4. Query any k-way marginal — k was never fixed up front.
  const double n = static_cast<double>(data.size());
  for (int k : {2, 4, 6}) {
    Rng qrng(k);
    double err = 0.0;
    const auto queries = SampleQuerySets(data.d(), k, 20, &qrng);
    for (AttrSet q : queries) {
      const MarginalTable answer = synopsis.Query(q);
      err += NormalizedL2Error(answer, data.CountMarginal(q), n);
    }
    std::printf("k=%d: mean normalized L2 error over %zu random marginals: "
                "%.5f\n",
                k, queries.size(), err / queries.size());
  }

  // 5. Inspect one marginal in detail.
  const AttrSet scope = AttrSet::FromIndices({0, 1, 2});
  const MarginalTable truth = data.CountMarginal(scope);
  const MarginalTable priv = synopsis.Query(scope);
  std::printf("\nmarginal over %s (true vs private):\n",
              scope.ToString().c_str());
  for (uint64_t cell = 0; cell < priv.size(); ++cell) {
    std::printf("  cell %llu: %8.0f vs %8.0f\n",
                static_cast<unsigned long long>(cell), truth.At(cell),
                priv.At(cell));
  }
  return 0;
}
