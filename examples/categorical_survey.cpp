// Scenario: a survey with non-binary categorical answers (the paper's §4.7
// extension) — e.g. age bracket (5 values), region (4), education (4),
// employment (3), and six yes/maybe/no opinion questions. Builds a
// categorical PriView synopsis with pair-covering views under a cell
// budget, and cross-tabulates privately.
//
//   ./categorical_survey
#include <cstdio>

#include "common/rng.h"
#include "categorical/cat_priview.h"
#include "categorical/cat_table.h"

int main() {
  using namespace priview;
  Rng rng(31);

  // Domain: 10 attributes with mixed cardinalities.
  const CatDomain domain({5, 4, 4, 3, 3, 3, 3, 3, 3, 3});
  std::printf("survey domain: %d attributes, cardinalities ", domain.d());
  for (int a = 0; a < domain.d(); ++a) {
    std::printf("%d%s", domain.Cardinality(a),
                a + 1 < domain.d() ? "," : "\n");
  }

  // Synthesize respondents: age drives region/education/opinions weakly.
  CatDataset data(domain);
  std::vector<int> record(domain.d());
  const size_t n = 150000;
  for (size_t i = 0; i < n; ++i) {
    record[0] = static_cast<int>(rng.UniformInt(5));
    for (int a = 1; a < domain.d(); ++a) {
      if (rng.Bernoulli(0.45)) {
        record[a] = record[0] % domain.Cardinality(a);
      } else {
        record[a] = static_cast<int>(rng.UniformInt(domain.Cardinality(a)));
      }
    }
    data.Add(record);
  }
  std::printf("respondents: N=%zu\n\n", data.size());

  // §4.7 guidance: average cardinality ~3.4 -> cell budget a few hundred.
  double s_lo = 0.0, s_hi = 0.0;
  RecommendedCellBudget(3.4, &s_lo, &s_hi);
  const int budget = static_cast<int>(s_lo * 2);
  std::printf("recommended cell budget window for b=3.4: [%.0f, %.0f]; "
              "using s=%d\n",
              s_lo, s_hi, budget);

  const std::vector<AttrSet> blocks =
      GreedyPairCoverUnderBudget(domain, budget, &rng);
  std::printf("pair-covering views: %zu blocks\n", blocks.size());
  for (AttrSet b : blocks) {
    std::printf("  %s (%zu cells)\n", b.ToString().c_str(),
                domain.TableSize(b));
  }

  CatPriViewSynopsis::Options options;
  options.epsilon = 1.0;
  const CatPriViewSynopsis synopsis =
      CatPriViewSynopsis::Build(data, blocks, options, &rng);

  // Cross-tab: age bracket x employment (attrs 0 and 3).
  const AttrSet crosstab = AttrSet::FromIndices({0, 3});
  const CatTable priv = synopsis.Query(crosstab);
  const CatTable truth = data.CountMarginal(crosstab);
  std::printf("\nage x employment cross-tab (private / true):\n");
  for (int age = 0; age < 5; ++age) {
    std::printf("  age %d: ", age);
    for (int emp = 0; emp < 3; ++emp) {
      const size_t cell = priv.IndexOf({age, emp});
      std::printf("%7.0f/%-7.0f", priv.At(cell), truth.At(cell));
    }
    std::printf("\n");
  }

  // A 3-way marginal that no single view covers.
  const AttrSet deep = AttrSet::FromIndices({0, 5, 9});
  const CatTable deep_priv = synopsis.Query(deep);
  const CatTable deep_truth = data.CountMarginal(deep);
  std::printf("\n3-way marginal %s: normalized L2 error %.5f\n",
              deep.ToString().c_str(),
              deep_priv.L2DistanceTo(deep_truth) / static_cast<double>(n));
  return 0;
}
