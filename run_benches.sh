#!/bin/bash
# Runs every bench binary, recording all output to bench_output.txt.
# Figures 3/4/6 accept --queries/--runs to trade fidelity for time; the
# paper protocol is 200 queries x 5 runs (the committed bench_output.txt
# used a reduced protocol for the LP-heavy figures — see EXPERIMENTS.md).
set -u
cd "$(dirname "$0")/build"
out=../bench_output.txt
: > "$out"
for b in bench/*; do
  [ -x "$b" ] || continue
  # bench_parallel / bench_serve run separately below so they can
  # regenerate BENCH_perf.json / BENCH_serve.json.
  [ "$(basename "$b")" = bench_parallel ] && continue
  [ "$(basename "$b")" = bench_serve ] && continue
  [ "$(basename "$b")" = bench_obs ] && continue
  [ "$(basename "$b")" = bench_store ] && continue
  [ "$(basename "$b")" = bench_stream ] && continue
  echo "##### $(basename "$b") #####" | tee -a "$out"
  ( time "./$b" "$@" ) >> "$out" 2>&1
  echo "exit=$? done $(basename "$b")"
done
# Perf record: publish thread matrix, query latency, threaded speedups,
# cache hit rate — bench_timing (above, in bench_output.txt) has the
# calibrated google-benchmark numbers; bench_parallel distills the perf
# contract into machine-readable BENCH_perf.json. bench_parallel exits
# non-zero when a perf bar fails and that failure is fatal here — the
# record must never be refreshed from a regressed run. The bars:
#   - publish bit-identity across the 1/2/4/8/16-thread matrix (any host);
#   - the multicore publish bar: >= 1.8x over serial at 4 threads, applied
#     only when the host has >= 4 hardware threads (oversubscribed matrix
#     entries land as JSON null, never as fake speedups);
#   - cold Q8 through the arena solver at least 3x faster than the
#     pre-arena baseline (any host).
if [ -x bench/bench_parallel ]; then
  echo "##### bench_parallel #####" | tee -a "$out"
  ( time ./bench/bench_parallel --out=../BENCH_perf.json "$@" ) >> "$out" 2>&1
  parallel_rc=$?
  echo "exit=$parallel_rc done bench_parallel"
  if [ "$parallel_rc" -ne 0 ]; then
    echo "FATAL: bench_parallel perf bar failed (exit=$parallel_rc) —" \
         "publish determinism, the 4-thread multicore bar, or the solver" \
         "bar regressed" >&2
    tail -n 20 "$out" >&2
    exit "$parallel_rc"
  fi
fi
# Serving record: throughput + p50/p99 at 1/8/64 clients with and without
# coalescing, the overloaded (queue-full, rejecting) regime, a 5000+
# connection adversarial soak (soak_* fields) and slowloris churn
# (adversarial_* fields). bench_serve exits non-zero when the transport
# regression bar fails — fleet not fully admitted, adversaries not
# evicted by cause, or healthy-client errors — and that failure is fatal
# here: the serving record must never be refreshed from a run that
# regressed the transport.
if [ -x bench/bench_serve ]; then
  echo "##### bench_serve #####" | tee -a "$out"
  ( time ./bench/bench_serve --out=../BENCH_serve.json "$@" ) >> "$out" 2>&1
  serve_rc=$?
  echo "exit=$serve_rc done bench_serve"
  if [ "$serve_rc" -ne 0 ]; then
    echo "FATAL: bench_serve transport regression bar failed (exit=$serve_rc)" >&2
    tail -n 20 "$out" >&2
    exit "$serve_rc"
  fi
fi
# Observability record: disarmed-span overhead (<1% bar — a non-zero exit
# here means the tracing substrate got too expensive), armed publish-phase
# breakdown, and the slow-query log hit count.
if [ -x bench/bench_obs ]; then
  echo "##### bench_obs #####" | tee -a "$out"
  ( time ./bench/bench_obs --out=../BENCH_observability.json "$@" ) >> "$out" 2>&1
  echo "exit=$? done bench_obs"
fi
# Durability record: atomic-install and recovery-scan latency plus the
# disarmed store-failpoint overhead (<1% of an install bar — a non-zero
# exit here means crash safety got too expensive on the hot path).
if [ -x bench/bench_store ]; then
  echo "##### bench_store #####" | tee -a "$out"
  ( time ./bench/bench_store --out=../BENCH_store.json "$@" ) >> "$out" 2>&1
  echo "exit=$? done bench_store"
fi
# Streaming record: delta-aware recount vs full recount on a 1%-changed
# epoch, plus durable epoch rollover through store + registry.
# bench_stream exits non-zero when a streaming bar fails — delta recount
# no longer at least 3x faster than a full recount, or the registry
# hot-swap stalling readers beyond its bound — and that failure is fatal
# here: the streaming record must never be refreshed from a run that
# regressed the epoch pipeline.
if [ -x bench/bench_stream ]; then
  echo "##### bench_stream #####" | tee -a "$out"
  ( time ./bench/bench_stream --out=../BENCH_stream.json "$@" ) >> "$out" 2>&1
  stream_rc=$?
  echo "exit=$stream_rc done bench_stream"
  if [ "$stream_rc" -ne 0 ]; then
    echo "FATAL: bench_stream streaming perf bar failed (exit=$stream_rc)" >&2
    tail -n 20 "$out" >&2
    exit "$stream_rc"
  fi
fi
echo "ALL BENCHES DONE"
