#!/bin/bash
# Runs every bench binary, recording all output to bench_output.txt.
# Figures 3/4/6 accept --queries/--runs to trade fidelity for time; the
# paper protocol is 200 queries x 5 runs (the committed bench_output.txt
# used a reduced protocol for the LP-heavy figures — see EXPERIMENTS.md).
set -u
cd "$(dirname "$0")/build"
out=../bench_output.txt
: > "$out"
for b in bench/*; do
  [ -x "$b" ] || continue
  echo "##### $(basename "$b") #####" | tee -a "$out"
  ( time "./$b" "$@" ) >> "$out" 2>&1
  echo "exit=$? done $(basename "$b")"
done
echo "ALL BENCHES DONE"
