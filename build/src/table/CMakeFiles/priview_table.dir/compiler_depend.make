# Empty compiler generated dependencies file for priview_table.
# This may be replaced when dependencies are built.
