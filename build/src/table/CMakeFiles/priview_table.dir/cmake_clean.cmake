file(REMOVE_RECURSE
  "CMakeFiles/priview_table.dir/contingency_table.cc.o"
  "CMakeFiles/priview_table.dir/contingency_table.cc.o.d"
  "CMakeFiles/priview_table.dir/dataset.cc.o"
  "CMakeFiles/priview_table.dir/dataset.cc.o.d"
  "CMakeFiles/priview_table.dir/marginal_table.cc.o"
  "CMakeFiles/priview_table.dir/marginal_table.cc.o.d"
  "libpriview_table.a"
  "libpriview_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
