file(REMOVE_RECURSE
  "libpriview_table.a"
)
