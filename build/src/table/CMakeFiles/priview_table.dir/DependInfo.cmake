
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/contingency_table.cc" "src/table/CMakeFiles/priview_table.dir/contingency_table.cc.o" "gcc" "src/table/CMakeFiles/priview_table.dir/contingency_table.cc.o.d"
  "/root/repo/src/table/dataset.cc" "src/table/CMakeFiles/priview_table.dir/dataset.cc.o" "gcc" "src/table/CMakeFiles/priview_table.dir/dataset.cc.o.d"
  "/root/repo/src/table/marginal_table.cc" "src/table/CMakeFiles/priview_table.dir/marginal_table.cc.o" "gcc" "src/table/CMakeFiles/priview_table.dir/marginal_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
