file(REMOVE_RECURSE
  "libpriview_bench_util.a"
)
