file(REMOVE_RECURSE
  "CMakeFiles/priview_bench_util.dir/harness.cc.o"
  "CMakeFiles/priview_bench_util.dir/harness.cc.o.d"
  "libpriview_bench_util.a"
  "libpriview_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
