# Empty compiler generated dependencies file for priview_bench_util.
# This may be replaced when dependencies are built.
