
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_util/harness.cc" "src/bench_util/CMakeFiles/priview_bench_util.dir/harness.cc.o" "gcc" "src/bench_util/CMakeFiles/priview_bench_util.dir/harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/priview_table.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/priview_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
