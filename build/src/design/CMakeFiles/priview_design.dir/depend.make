# Empty dependencies file for priview_design.
# This may be replaced when dependencies are built.
