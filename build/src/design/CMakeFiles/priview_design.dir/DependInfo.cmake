
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/covering_design.cc" "src/design/CMakeFiles/priview_design.dir/covering_design.cc.o" "gcc" "src/design/CMakeFiles/priview_design.dir/covering_design.cc.o.d"
  "/root/repo/src/design/gf2_cover.cc" "src/design/CMakeFiles/priview_design.dir/gf2_cover.cc.o" "gcc" "src/design/CMakeFiles/priview_design.dir/gf2_cover.cc.o.d"
  "/root/repo/src/design/local_search.cc" "src/design/CMakeFiles/priview_design.dir/local_search.cc.o" "gcc" "src/design/CMakeFiles/priview_design.dir/local_search.cc.o.d"
  "/root/repo/src/design/view_selection.cc" "src/design/CMakeFiles/priview_design.dir/view_selection.cc.o" "gcc" "src/design/CMakeFiles/priview_design.dir/view_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/priview_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
