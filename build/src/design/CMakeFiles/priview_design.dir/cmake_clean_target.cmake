file(REMOVE_RECURSE
  "libpriview_design.a"
)
