file(REMOVE_RECURSE
  "CMakeFiles/priview_design.dir/covering_design.cc.o"
  "CMakeFiles/priview_design.dir/covering_design.cc.o.d"
  "CMakeFiles/priview_design.dir/gf2_cover.cc.o"
  "CMakeFiles/priview_design.dir/gf2_cover.cc.o.d"
  "CMakeFiles/priview_design.dir/local_search.cc.o"
  "CMakeFiles/priview_design.dir/local_search.cc.o.d"
  "CMakeFiles/priview_design.dir/view_selection.cc.o"
  "CMakeFiles/priview_design.dir/view_selection.cc.o.d"
  "libpriview_design.a"
  "libpriview_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
