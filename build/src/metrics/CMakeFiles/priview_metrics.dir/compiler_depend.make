# Empty compiler generated dependencies file for priview_metrics.
# This may be replaced when dependencies are built.
