file(REMOVE_RECURSE
  "CMakeFiles/priview_metrics.dir/metrics.cc.o"
  "CMakeFiles/priview_metrics.dir/metrics.cc.o.d"
  "libpriview_metrics.a"
  "libpriview_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
