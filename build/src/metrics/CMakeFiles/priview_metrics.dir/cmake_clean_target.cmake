file(REMOVE_RECURSE
  "libpriview_metrics.a"
)
