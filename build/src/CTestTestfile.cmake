# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("table")
subdirs("dp")
subdirs("fourier")
subdirs("design")
subdirs("opt")
subdirs("core")
subdirs("baselines")
subdirs("data")
subdirs("metrics")
subdirs("categorical")
subdirs("bench_util")
