# Empty compiler generated dependencies file for priview_opt.
# This may be replaced when dependencies are built.
