
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/constraint.cc" "src/opt/CMakeFiles/priview_opt.dir/constraint.cc.o" "gcc" "src/opt/CMakeFiles/priview_opt.dir/constraint.cc.o.d"
  "/root/repo/src/opt/ipf.cc" "src/opt/CMakeFiles/priview_opt.dir/ipf.cc.o" "gcc" "src/opt/CMakeFiles/priview_opt.dir/ipf.cc.o.d"
  "/root/repo/src/opt/least_norm.cc" "src/opt/CMakeFiles/priview_opt.dir/least_norm.cc.o" "gcc" "src/opt/CMakeFiles/priview_opt.dir/least_norm.cc.o.d"
  "/root/repo/src/opt/max_ent_dual.cc" "src/opt/CMakeFiles/priview_opt.dir/max_ent_dual.cc.o" "gcc" "src/opt/CMakeFiles/priview_opt.dir/max_ent_dual.cc.o.d"
  "/root/repo/src/opt/simplex.cc" "src/opt/CMakeFiles/priview_opt.dir/simplex.cc.o" "gcc" "src/opt/CMakeFiles/priview_opt.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/priview_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
