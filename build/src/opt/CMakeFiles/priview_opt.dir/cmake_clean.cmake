file(REMOVE_RECURSE
  "CMakeFiles/priview_opt.dir/constraint.cc.o"
  "CMakeFiles/priview_opt.dir/constraint.cc.o.d"
  "CMakeFiles/priview_opt.dir/ipf.cc.o"
  "CMakeFiles/priview_opt.dir/ipf.cc.o.d"
  "CMakeFiles/priview_opt.dir/least_norm.cc.o"
  "CMakeFiles/priview_opt.dir/least_norm.cc.o.d"
  "CMakeFiles/priview_opt.dir/max_ent_dual.cc.o"
  "CMakeFiles/priview_opt.dir/max_ent_dual.cc.o.d"
  "CMakeFiles/priview_opt.dir/simplex.cc.o"
  "CMakeFiles/priview_opt.dir/simplex.cc.o.d"
  "libpriview_opt.a"
  "libpriview_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
