file(REMOVE_RECURSE
  "libpriview_opt.a"
)
