# Empty compiler generated dependencies file for priview_categorical.
# This may be replaced when dependencies are built.
