file(REMOVE_RECURSE
  "libpriview_categorical.a"
)
