file(REMOVE_RECURSE
  "CMakeFiles/priview_categorical.dir/cat_priview.cc.o"
  "CMakeFiles/priview_categorical.dir/cat_priview.cc.o.d"
  "CMakeFiles/priview_categorical.dir/cat_table.cc.o"
  "CMakeFiles/priview_categorical.dir/cat_table.cc.o.d"
  "libpriview_categorical.a"
  "libpriview_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
