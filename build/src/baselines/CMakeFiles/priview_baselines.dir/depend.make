# Empty dependencies file for priview_baselines.
# This may be replaced when dependencies are built.
