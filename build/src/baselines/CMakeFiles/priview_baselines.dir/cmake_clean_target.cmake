file(REMOVE_RECURSE
  "libpriview_baselines.a"
)
