file(REMOVE_RECURSE
  "CMakeFiles/priview_baselines.dir/datacube.cc.o"
  "CMakeFiles/priview_baselines.dir/datacube.cc.o.d"
  "CMakeFiles/priview_baselines.dir/direct.cc.o"
  "CMakeFiles/priview_baselines.dir/direct.cc.o.d"
  "CMakeFiles/priview_baselines.dir/flat.cc.o"
  "CMakeFiles/priview_baselines.dir/flat.cc.o.d"
  "CMakeFiles/priview_baselines.dir/fourier.cc.o"
  "CMakeFiles/priview_baselines.dir/fourier.cc.o.d"
  "CMakeFiles/priview_baselines.dir/learning.cc.o"
  "CMakeFiles/priview_baselines.dir/learning.cc.o.d"
  "CMakeFiles/priview_baselines.dir/matrix_mechanism.cc.o"
  "CMakeFiles/priview_baselines.dir/matrix_mechanism.cc.o.d"
  "CMakeFiles/priview_baselines.dir/mwem.cc.o"
  "CMakeFiles/priview_baselines.dir/mwem.cc.o.d"
  "CMakeFiles/priview_baselines.dir/uniform.cc.o"
  "CMakeFiles/priview_baselines.dir/uniform.cc.o.d"
  "libpriview_baselines.a"
  "libpriview_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
