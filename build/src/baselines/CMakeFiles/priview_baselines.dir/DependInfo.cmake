
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/datacube.cc" "src/baselines/CMakeFiles/priview_baselines.dir/datacube.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/datacube.cc.o.d"
  "/root/repo/src/baselines/direct.cc" "src/baselines/CMakeFiles/priview_baselines.dir/direct.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/direct.cc.o.d"
  "/root/repo/src/baselines/flat.cc" "src/baselines/CMakeFiles/priview_baselines.dir/flat.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/flat.cc.o.d"
  "/root/repo/src/baselines/fourier.cc" "src/baselines/CMakeFiles/priview_baselines.dir/fourier.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/fourier.cc.o.d"
  "/root/repo/src/baselines/learning.cc" "src/baselines/CMakeFiles/priview_baselines.dir/learning.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/learning.cc.o.d"
  "/root/repo/src/baselines/matrix_mechanism.cc" "src/baselines/CMakeFiles/priview_baselines.dir/matrix_mechanism.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/matrix_mechanism.cc.o.d"
  "/root/repo/src/baselines/mwem.cc" "src/baselines/CMakeFiles/priview_baselines.dir/mwem.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/mwem.cc.o.d"
  "/root/repo/src/baselines/uniform.cc" "src/baselines/CMakeFiles/priview_baselines.dir/uniform.cc.o" "gcc" "src/baselines/CMakeFiles/priview_baselines.dir/uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/priview_table.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/priview_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/fourier/CMakeFiles/priview_fourier.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/priview_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/priview_core.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/priview_design.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
