# Empty dependencies file for priview_common.
# This may be replaced when dependencies are built.
