file(REMOVE_RECURSE
  "libpriview_common.a"
)
