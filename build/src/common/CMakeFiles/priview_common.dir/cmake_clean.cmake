file(REMOVE_RECURSE
  "CMakeFiles/priview_common.dir/combinatorics.cc.o"
  "CMakeFiles/priview_common.dir/combinatorics.cc.o.d"
  "CMakeFiles/priview_common.dir/linalg.cc.o"
  "CMakeFiles/priview_common.dir/linalg.cc.o.d"
  "CMakeFiles/priview_common.dir/rng.cc.o"
  "CMakeFiles/priview_common.dir/rng.cc.o.d"
  "CMakeFiles/priview_common.dir/status.cc.o"
  "CMakeFiles/priview_common.dir/status.cc.o.d"
  "libpriview_common.a"
  "libpriview_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
