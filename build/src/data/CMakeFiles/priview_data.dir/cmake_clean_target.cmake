file(REMOVE_RECURSE
  "libpriview_data.a"
)
