# Empty compiler generated dependencies file for priview_data.
# This may be replaced when dependencies are built.
