file(REMOVE_RECURSE
  "CMakeFiles/priview_data.dir/io.cc.o"
  "CMakeFiles/priview_data.dir/io.cc.o.d"
  "CMakeFiles/priview_data.dir/mchain.cc.o"
  "CMakeFiles/priview_data.dir/mchain.cc.o.d"
  "CMakeFiles/priview_data.dir/synthetic.cc.o"
  "CMakeFiles/priview_data.dir/synthetic.cc.o.d"
  "libpriview_data.a"
  "libpriview_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
