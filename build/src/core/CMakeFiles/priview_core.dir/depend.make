# Empty dependencies file for priview_core.
# This may be replaced when dependencies are built.
