file(REMOVE_RECURSE
  "libpriview_core.a"
)
