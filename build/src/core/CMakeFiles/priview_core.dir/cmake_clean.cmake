file(REMOVE_RECURSE
  "CMakeFiles/priview_core.dir/consistency.cc.o"
  "CMakeFiles/priview_core.dir/consistency.cc.o.d"
  "CMakeFiles/priview_core.dir/error_model.cc.o"
  "CMakeFiles/priview_core.dir/error_model.cc.o.d"
  "CMakeFiles/priview_core.dir/nonneg.cc.o"
  "CMakeFiles/priview_core.dir/nonneg.cc.o.d"
  "CMakeFiles/priview_core.dir/pipeline.cc.o"
  "CMakeFiles/priview_core.dir/pipeline.cc.o.d"
  "CMakeFiles/priview_core.dir/query_engine.cc.o"
  "CMakeFiles/priview_core.dir/query_engine.cc.o.d"
  "CMakeFiles/priview_core.dir/reconstruct.cc.o"
  "CMakeFiles/priview_core.dir/reconstruct.cc.o.d"
  "CMakeFiles/priview_core.dir/serialization.cc.o"
  "CMakeFiles/priview_core.dir/serialization.cc.o.d"
  "CMakeFiles/priview_core.dir/synopsis.cc.o"
  "CMakeFiles/priview_core.dir/synopsis.cc.o.d"
  "CMakeFiles/priview_core.dir/variance.cc.o"
  "CMakeFiles/priview_core.dir/variance.cc.o.d"
  "libpriview_core.a"
  "libpriview_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
