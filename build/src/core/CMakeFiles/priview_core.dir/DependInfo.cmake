
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/priview_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/error_model.cc" "src/core/CMakeFiles/priview_core.dir/error_model.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/error_model.cc.o.d"
  "/root/repo/src/core/nonneg.cc" "src/core/CMakeFiles/priview_core.dir/nonneg.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/nonneg.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/priview_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/query_engine.cc" "src/core/CMakeFiles/priview_core.dir/query_engine.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/query_engine.cc.o.d"
  "/root/repo/src/core/reconstruct.cc" "src/core/CMakeFiles/priview_core.dir/reconstruct.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/reconstruct.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/priview_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/serialization.cc.o.d"
  "/root/repo/src/core/synopsis.cc" "src/core/CMakeFiles/priview_core.dir/synopsis.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/synopsis.cc.o.d"
  "/root/repo/src/core/variance.cc" "src/core/CMakeFiles/priview_core.dir/variance.cc.o" "gcc" "src/core/CMakeFiles/priview_core.dir/variance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/priview_table.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/priview_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/priview_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/priview_design.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
