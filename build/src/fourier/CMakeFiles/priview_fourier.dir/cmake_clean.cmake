file(REMOVE_RECURSE
  "CMakeFiles/priview_fourier.dir/wht.cc.o"
  "CMakeFiles/priview_fourier.dir/wht.cc.o.d"
  "libpriview_fourier.a"
  "libpriview_fourier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_fourier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
