# Empty compiler generated dependencies file for priview_fourier.
# This may be replaced when dependencies are built.
