file(REMOVE_RECURSE
  "libpriview_fourier.a"
)
