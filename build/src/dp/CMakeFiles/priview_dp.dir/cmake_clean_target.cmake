file(REMOVE_RECURSE
  "libpriview_dp.a"
)
