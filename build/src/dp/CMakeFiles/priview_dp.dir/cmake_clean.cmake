file(REMOVE_RECURSE
  "CMakeFiles/priview_dp.dir/mechanisms.cc.o"
  "CMakeFiles/priview_dp.dir/mechanisms.cc.o.d"
  "libpriview_dp.a"
  "libpriview_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
