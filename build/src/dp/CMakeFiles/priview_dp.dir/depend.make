# Empty dependencies file for priview_dp.
# This may be replaced when dependencies are built.
