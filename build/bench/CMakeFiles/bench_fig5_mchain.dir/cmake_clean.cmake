file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mchain.dir/bench_fig5_mchain.cc.o"
  "CMakeFiles/bench_fig5_mchain.dir/bench_fig5_mchain.cc.o.d"
  "bench_fig5_mchain"
  "bench_fig5_mchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
