# Empty dependencies file for bench_fig5_mchain.
# This may be replaced when dependencies are built.
