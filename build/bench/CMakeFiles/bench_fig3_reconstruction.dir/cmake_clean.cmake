file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_reconstruction.dir/bench_fig3_reconstruction.cc.o"
  "CMakeFiles/bench_fig3_reconstruction.dir/bench_fig3_reconstruction.cc.o.d"
  "bench_fig3_reconstruction"
  "bench_fig3_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
