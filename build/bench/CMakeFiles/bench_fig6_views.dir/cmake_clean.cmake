file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_views.dir/bench_fig6_views.cc.o"
  "CMakeFiles/bench_fig6_views.dir/bench_fig6_views.cc.o.d"
  "bench_fig6_views"
  "bench_fig6_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
