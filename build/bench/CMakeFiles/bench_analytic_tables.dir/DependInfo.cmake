
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_analytic_tables.cc" "bench/CMakeFiles/bench_analytic_tables.dir/bench_analytic_tables.cc.o" "gcc" "bench/CMakeFiles/bench_analytic_tables.dir/bench_analytic_tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/priview_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/priview_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/priview_design.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/priview_data.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/priview_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_util/CMakeFiles/priview_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/priview_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/priview_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/fourier/CMakeFiles/priview_fourier.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/priview_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/priview_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
