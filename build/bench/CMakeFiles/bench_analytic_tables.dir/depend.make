# Empty dependencies file for bench_analytic_tables.
# This may be replaced when dependencies are built.
