file(REMOVE_RECURSE
  "CMakeFiles/bench_analytic_tables.dir/bench_analytic_tables.cc.o"
  "CMakeFiles/bench_analytic_tables.dir/bench_analytic_tables.cc.o.d"
  "bench_analytic_tables"
  "bench_analytic_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytic_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
