# Empty dependencies file for bench_categorical.
# This may be replaced when dependencies are built.
