file(REMOVE_RECURSE
  "CMakeFiles/bench_categorical.dir/bench_categorical.cc.o"
  "CMakeFiles/bench_categorical.dir/bench_categorical.cc.o.d"
  "bench_categorical"
  "bench_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
