file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_nonneg.dir/bench_fig4_nonneg.cc.o"
  "CMakeFiles/bench_fig4_nonneg.dir/bench_fig4_nonneg.cc.o.d"
  "bench_fig4_nonneg"
  "bench_fig4_nonneg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_nonneg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
