file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_msnbc.dir/bench_fig1_msnbc.cc.o"
  "CMakeFiles/bench_fig1_msnbc.dir/bench_fig1_msnbc.cc.o.d"
  "bench_fig1_msnbc"
  "bench_fig1_msnbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_msnbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
