file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_kosarak_aol.dir/bench_fig2_kosarak_aol.cc.o"
  "CMakeFiles/bench_fig2_kosarak_aol.dir/bench_fig2_kosarak_aol.cc.o.d"
  "bench_fig2_kosarak_aol"
  "bench_fig2_kosarak_aol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_kosarak_aol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
