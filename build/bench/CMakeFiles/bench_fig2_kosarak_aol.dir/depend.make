# Empty dependencies file for bench_fig2_kosarak_aol.
# This may be replaced when dependencies are built.
