file(REMOVE_RECURSE
  "CMakeFiles/datacube_test.dir/datacube_test.cc.o"
  "CMakeFiles/datacube_test.dir/datacube_test.cc.o.d"
  "datacube_test"
  "datacube_test.pdb"
  "datacube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
