# Empty compiler generated dependencies file for ipf_test.
# This may be replaced when dependencies are built.
