file(REMOVE_RECURSE
  "CMakeFiles/ipf_test.dir/ipf_test.cc.o"
  "CMakeFiles/ipf_test.dir/ipf_test.cc.o.d"
  "ipf_test"
  "ipf_test.pdb"
  "ipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
