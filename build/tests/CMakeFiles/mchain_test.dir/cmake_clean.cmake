file(REMOVE_RECURSE
  "CMakeFiles/mchain_test.dir/mchain_test.cc.o"
  "CMakeFiles/mchain_test.dir/mchain_test.cc.o.d"
  "mchain_test"
  "mchain_test.pdb"
  "mchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
