# Empty dependencies file for mchain_test.
# This may be replaced when dependencies are built.
