file(REMOVE_RECURSE
  "CMakeFiles/attr_set_test.dir/attr_set_test.cc.o"
  "CMakeFiles/attr_set_test.dir/attr_set_test.cc.o.d"
  "attr_set_test"
  "attr_set_test.pdb"
  "attr_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
