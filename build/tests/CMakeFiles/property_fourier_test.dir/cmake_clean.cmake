file(REMOVE_RECURSE
  "CMakeFiles/property_fourier_test.dir/property_fourier_test.cc.o"
  "CMakeFiles/property_fourier_test.dir/property_fourier_test.cc.o.d"
  "property_fourier_test"
  "property_fourier_test.pdb"
  "property_fourier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_fourier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
