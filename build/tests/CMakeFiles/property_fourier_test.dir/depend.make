# Empty dependencies file for property_fourier_test.
# This may be replaced when dependencies are built.
