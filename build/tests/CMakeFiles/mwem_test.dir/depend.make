# Empty dependencies file for mwem_test.
# This may be replaced when dependencies are built.
