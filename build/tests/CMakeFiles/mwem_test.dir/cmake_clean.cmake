file(REMOVE_RECURSE
  "CMakeFiles/mwem_test.dir/mwem_test.cc.o"
  "CMakeFiles/mwem_test.dir/mwem_test.cc.o.d"
  "mwem_test"
  "mwem_test.pdb"
  "mwem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
