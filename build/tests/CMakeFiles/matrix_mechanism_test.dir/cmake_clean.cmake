file(REMOVE_RECURSE
  "CMakeFiles/matrix_mechanism_test.dir/matrix_mechanism_test.cc.o"
  "CMakeFiles/matrix_mechanism_test.dir/matrix_mechanism_test.cc.o.d"
  "matrix_mechanism_test"
  "matrix_mechanism_test.pdb"
  "matrix_mechanism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
