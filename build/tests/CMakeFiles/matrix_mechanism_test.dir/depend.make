# Empty dependencies file for matrix_mechanism_test.
# This may be replaced when dependencies are built.
