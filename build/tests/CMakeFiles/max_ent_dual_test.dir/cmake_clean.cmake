file(REMOVE_RECURSE
  "CMakeFiles/max_ent_dual_test.dir/max_ent_dual_test.cc.o"
  "CMakeFiles/max_ent_dual_test.dir/max_ent_dual_test.cc.o.d"
  "max_ent_dual_test"
  "max_ent_dual_test.pdb"
  "max_ent_dual_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_ent_dual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
