# Empty compiler generated dependencies file for max_ent_dual_test.
# This may be replaced when dependencies are built.
