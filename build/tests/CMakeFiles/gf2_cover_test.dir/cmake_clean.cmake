file(REMOVE_RECURSE
  "CMakeFiles/gf2_cover_test.dir/gf2_cover_test.cc.o"
  "CMakeFiles/gf2_cover_test.dir/gf2_cover_test.cc.o.d"
  "gf2_cover_test"
  "gf2_cover_test.pdb"
  "gf2_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf2_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
