file(REMOVE_RECURSE
  "CMakeFiles/least_norm_test.dir/least_norm_test.cc.o"
  "CMakeFiles/least_norm_test.dir/least_norm_test.cc.o.d"
  "least_norm_test"
  "least_norm_test.pdb"
  "least_norm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/least_norm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
