# Empty compiler generated dependencies file for least_norm_test.
# This may be replaced when dependencies are built.
