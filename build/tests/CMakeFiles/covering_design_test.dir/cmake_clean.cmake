file(REMOVE_RECURSE
  "CMakeFiles/covering_design_test.dir/covering_design_test.cc.o"
  "CMakeFiles/covering_design_test.dir/covering_design_test.cc.o.d"
  "covering_design_test"
  "covering_design_test.pdb"
  "covering_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covering_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
