# Empty compiler generated dependencies file for covering_design_test.
# This may be replaced when dependencies are built.
