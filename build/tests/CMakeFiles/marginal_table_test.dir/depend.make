# Empty dependencies file for marginal_table_test.
# This may be replaced when dependencies are built.
