file(REMOVE_RECURSE
  "CMakeFiles/marginal_table_test.dir/marginal_table_test.cc.o"
  "CMakeFiles/marginal_table_test.dir/marginal_table_test.cc.o.d"
  "marginal_table_test"
  "marginal_table_test.pdb"
  "marginal_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marginal_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
