file(REMOVE_RECURSE
  "CMakeFiles/dp_audit_test.dir/dp_audit_test.cc.o"
  "CMakeFiles/dp_audit_test.dir/dp_audit_test.cc.o.d"
  "dp_audit_test"
  "dp_audit_test.pdb"
  "dp_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
