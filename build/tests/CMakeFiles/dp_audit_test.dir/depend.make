# Empty dependencies file for dp_audit_test.
# This may be replaced when dependencies are built.
