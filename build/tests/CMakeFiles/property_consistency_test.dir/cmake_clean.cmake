file(REMOVE_RECURSE
  "CMakeFiles/property_consistency_test.dir/property_consistency_test.cc.o"
  "CMakeFiles/property_consistency_test.dir/property_consistency_test.cc.o.d"
  "property_consistency_test"
  "property_consistency_test.pdb"
  "property_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
