# Empty dependencies file for property_consistency_test.
# This may be replaced when dependencies are built.
