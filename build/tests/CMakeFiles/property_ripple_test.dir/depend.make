# Empty dependencies file for property_ripple_test.
# This may be replaced when dependencies are built.
