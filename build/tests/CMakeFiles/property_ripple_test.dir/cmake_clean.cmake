file(REMOVE_RECURSE
  "CMakeFiles/property_ripple_test.dir/property_ripple_test.cc.o"
  "CMakeFiles/property_ripple_test.dir/property_ripple_test.cc.o.d"
  "property_ripple_test"
  "property_ripple_test.pdb"
  "property_ripple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_ripple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
