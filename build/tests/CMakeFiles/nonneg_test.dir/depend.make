# Empty dependencies file for nonneg_test.
# This may be replaced when dependencies are built.
