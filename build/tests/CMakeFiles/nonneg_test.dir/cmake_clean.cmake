file(REMOVE_RECURSE
  "CMakeFiles/nonneg_test.dir/nonneg_test.cc.o"
  "CMakeFiles/nonneg_test.dir/nonneg_test.cc.o.d"
  "nonneg_test"
  "nonneg_test.pdb"
  "nonneg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonneg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
