file(REMOVE_RECURSE
  "CMakeFiles/property_simplex_test.dir/property_simplex_test.cc.o"
  "CMakeFiles/property_simplex_test.dir/property_simplex_test.cc.o.d"
  "property_simplex_test"
  "property_simplex_test.pdb"
  "property_simplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
