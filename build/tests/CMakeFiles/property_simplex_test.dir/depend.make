# Empty dependencies file for property_simplex_test.
# This may be replaced when dependencies are built.
