# Empty compiler generated dependencies file for wht_test.
# This may be replaced when dependencies are built.
