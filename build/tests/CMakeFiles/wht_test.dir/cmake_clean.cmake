file(REMOVE_RECURSE
  "CMakeFiles/wht_test.dir/wht_test.cc.o"
  "CMakeFiles/wht_test.dir/wht_test.cc.o.d"
  "wht_test"
  "wht_test.pdb"
  "wht_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wht_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
