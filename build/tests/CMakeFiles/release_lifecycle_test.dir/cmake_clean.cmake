file(REMOVE_RECURSE
  "CMakeFiles/release_lifecycle_test.dir/release_lifecycle_test.cc.o"
  "CMakeFiles/release_lifecycle_test.dir/release_lifecycle_test.cc.o.d"
  "release_lifecycle_test"
  "release_lifecycle_test.pdb"
  "release_lifecycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/release_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
