# Empty compiler generated dependencies file for release_lifecycle_test.
# This may be replaced when dependencies are built.
