# Empty dependencies file for clickstream_release.
# This may be replaced when dependencies are built.
