file(REMOVE_RECURSE
  "CMakeFiles/clickstream_release.dir/clickstream_release.cpp.o"
  "CMakeFiles/clickstream_release.dir/clickstream_release.cpp.o.d"
  "clickstream_release"
  "clickstream_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
