file(REMOVE_RECURSE
  "CMakeFiles/priview_tool.dir/priview_tool.cpp.o"
  "CMakeFiles/priview_tool.dir/priview_tool.cpp.o.d"
  "priview_tool"
  "priview_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priview_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
