# Empty compiler generated dependencies file for priview_tool.
# This may be replaced when dependencies are built.
