file(REMOVE_RECURSE
  "CMakeFiles/mchain_explorer.dir/mchain_explorer.cpp.o"
  "CMakeFiles/mchain_explorer.dir/mchain_explorer.cpp.o.d"
  "mchain_explorer"
  "mchain_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mchain_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
