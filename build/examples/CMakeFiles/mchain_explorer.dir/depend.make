# Empty dependencies file for mchain_explorer.
# This may be replaced when dependencies are built.
