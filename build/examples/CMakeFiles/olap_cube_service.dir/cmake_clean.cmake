file(REMOVE_RECURSE
  "CMakeFiles/olap_cube_service.dir/olap_cube_service.cpp.o"
  "CMakeFiles/olap_cube_service.dir/olap_cube_service.cpp.o.d"
  "olap_cube_service"
  "olap_cube_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_cube_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
