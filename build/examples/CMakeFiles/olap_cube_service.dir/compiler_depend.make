# Empty compiler generated dependencies file for olap_cube_service.
# This may be replaced when dependencies are built.
