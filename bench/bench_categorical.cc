// §4.7 extension bench: categorical PriView. Sweeps the per-view cell
// budget s and reports reconstruction error, alongside the paper's
// recommended window for the domain's average cardinality — reproducing
// the s-guideline table empirically.
//
// Flags: --n=150000 --runs=3 --queries=30
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "categorical/cat_priview.h"
#include "categorical/cat_table.h"

using namespace priview;

namespace {

CatDataset MakeSurvey(const CatDomain& domain, size_t n, Rng* rng) {
  CatDataset data(domain);
  std::vector<int> record(domain.d());
  for (size_t i = 0; i < n; ++i) {
    record[0] = static_cast<int>(rng->UniformInt(domain.Cardinality(0)));
    for (int a = 1; a < domain.d(); ++a) {
      record[a] = rng->Bernoulli(0.5)
                      ? record[0] % domain.Cardinality(a)
                      : static_cast<int>(
                            rng->UniformInt(domain.Cardinality(a)));
    }
    data.Add(record);
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = static_cast<size_t>(FlagInt(argc, argv, "n", 150000));
  const int runs = FlagInt(argc, argv, "runs", 3);
  const int num_queries = FlagInt(argc, argv, "queries", 30);

  const CatDomain domain({4, 3, 3, 4, 2, 3, 4, 3, 2, 3, 3, 4});
  double b_avg = 0.0;
  for (int a = 0; a < domain.d(); ++a) b_avg += domain.Cardinality(a);
  b_avg /= domain.d();
  double s_lo = 0.0, s_hi = 0.0;
  RecommendedCellBudget(b_avg, &s_lo, &s_hi);
  std::printf("domain: d=%d, mean cardinality %.2f; recommended s in "
              "[%.0f, %.0f]\n",
              domain.d(), b_avg, s_lo, s_hi);

  Rng data_rng(871);
  const CatDataset data = MakeSurvey(domain, n, &data_rng);

  // Queries: random 3-attribute scopes.
  Rng qrng(872);
  std::vector<AttrSet> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(
        AttrSet::FromIndices(qrng.SampleWithoutReplacement(domain.d(), 3)));
  }
  std::vector<CatTable> truths;
  for (AttrSet q : queries) truths.push_back(data.CountMarginal(q));

  PrintHeader("Sec 4.7: cell-budget sweep, eps=1.0, 3-way queries");
  for (int budget : {36, 72, 144, 288, 576, 1152, 2304}) {
    double total_err = 0.0;
    int blocks_used = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(880 + run);
      const std::vector<AttrSet> blocks =
          GreedyPairCoverUnderBudget(domain, budget, &rng);
      blocks_used = static_cast<int>(blocks.size());
      CatPriViewSynopsis::Options options;
      options.epsilon = 1.0;
      const CatPriViewSynopsis synopsis =
          CatPriViewSynopsis::Build(data, blocks, options, &rng);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        total_err += synopsis.Query(queries[qi]).L2DistanceTo(truths[qi]) /
                     static_cast<double>(n);
      }
    }
    const double mean_err =
        total_err / (runs * static_cast<double>(queries.size()));
    const char* marker =
        (budget >= s_lo && budget <= s_hi) ? "  <- in recommended window"
                                           : "";
    std::printf("s=%5d  w=%3d  mean L2 err=%.5f%s\n", budget, blocks_used,
                mean_err, marker);
  }
  return 0;
}
