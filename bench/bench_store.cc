// Durable-store benchmark: what does crash safety cost? Times the atomic
// install path end-to-end (serialize → tmp fsync → rename → dir fsync →
// journal append + fsync), the restart path (manifest replay + recovery
// scan over a populated directory), and the store failpoint sites in the
// production (disarmed) state — the acceptance bar for the disarmed
// overhead is < 1% of an install, enforced by the exit code.
//
// Flags: --install_iters=40 --recover_iters=40 --check_iters=20000000
//        --out=BENCH_store.json
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "serve/synopsis_registry.h"
#include "store/synopsis_store.h"

using namespace priview;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PriViewSynopsis MakeSynopsis(Rng* rng) {
  Dataset data = MakeMsnbcLike(rng, 20000);
  PriViewOptions options;
  options.add_noise = false;
  return PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, rng);
}

}  // namespace

int main(int argc, char** argv) {
  const int install_iters = FlagInt(argc, argv, "install_iters", 40);
  const int recover_iters = FlagInt(argc, argv, "recover_iters", 40);
  const long long check_iters = FlagInt(argc, argv, "check_iters", 20000000);
  std::string out_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }

  PrintHeader("Store: durable install, recovery scan, disarmed failpoints");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "priview_bench_store")
          .string();
  std::filesystem::remove_all(dir);

  Rng rng(42);
  const PriViewSynopsis synopsis = MakeSynopsis(&rng);
  failpoint::DisarmAll();

  store::StoreOptions store_options;
  store_options.dir = dir;

  // 1. Atomic durable install, end to end. Rotating over a few names
  // exercises both the fresh-name and the supersede (unlink old file)
  // paths, like a server republishing releases.
  const std::vector<std::string> names = {"alpha", "beta", "gamma", "delta"};
  double install_us = 0.0;
  {
    store::SynopsisStore store(store_options);
    if (!store.Open().ok()) {
      std::fprintf(stderr, "store open failed\n");
      return 1;
    }
    const double t0 = NowSeconds();
    for (int i = 0; i < install_iters; ++i) {
      const Status installed =
          store.Install(names[static_cast<size_t>(i) % names.size()],
                        synopsis);
      if (!installed.ok()) {
        std::fprintf(stderr, "install failed: %s\n",
                     installed.ToString().c_str());
        return 1;
      }
    }
    install_us =
        (NowSeconds() - t0) / static_cast<double>(install_iters) * 1e6;
  }

  // 2. The restart path: manifest replay (Open) plus the recovery scan
  // (verify + load every current release into a registry), against the
  // directory the install loop left behind.
  double recover_us = 0.0;
  {
    const double t0 = NowSeconds();
    for (int i = 0; i < recover_iters; ++i) {
      store::SynopsisStore store(store_options);
      if (!store.Open().ok()) {
        std::fprintf(stderr, "reopen failed\n");
        return 1;
      }
      serve::SynopsisRegistry registry;
      StatusOr<store::RecoveryReport> report = store.Recover(&registry);
      if (!report.ok() || registry.size() != names.size()) {
        std::fprintf(stderr, "recovery failed\n");
        return 1;
      }
    }
    recover_us =
        (NowSeconds() - t0) / static_cast<double>(recover_iters) * 1e6;
  }

  // 3. The disarmed fast path in isolation: one env-init check plus one
  // relaxed atomic load per site visit.
  long long fired = 0;
  const double t1 = NowSeconds();
  for (long long i = 0; i < check_iters; ++i) {
    if (PRIVIEW_FAILPOINT("bench/store-probe")) ++fired;
  }
  const double check_ns =
      (NowSeconds() - t1) / static_cast<double>(check_iters) * 1e9;

  // 4. Store sites evaluated per install: arm everything in counting mode
  // ("off" never fires but counts hits) and replay a few installs.
  for (const std::string& name : failpoint::KnownFailpoints()) {
    (void)failpoint::Arm(name, "off");
  }
  const int count_iters = 8;
  {
    store::SynopsisStore store(store_options);
    if (!store.Open().ok()) return 1;
    for (int i = 0; i < count_iters; ++i) {
      if (!store.Install("probe", synopsis).ok()) return 1;
    }
  }
  double store_hits = 0.0;
  for (const std::string& name : failpoint::KnownFailpoints()) {
    if (name.rfind("store/", 0) == 0) {
      store_hits += static_cast<double>(failpoint::HitCount(name));
    }
  }
  failpoint::DisarmAll();
  const double checks_per_install = store_hits / count_iters;

  const double overhead =
      install_us > 0.0 ? checks_per_install * check_ns / (install_us * 1e3)
                       : 0.0;
  const double overhead_percent = overhead * 100.0;
  const bool pass = overhead_percent < 1.0;

  std::printf("durable install       %12.1f us/op  (%d iters)\n", install_us,
              install_iters);
  std::printf("open + recover        %12.1f us/op  (%d iters, %zu releases)\n",
              recover_us, recover_iters, names.size());
  std::printf("failpoint fast path   %12.3f ns/check  (%lld iters, sink %lld)\n",
              check_ns, check_iters, fired);
  std::printf("store sites/install   %12.2f\n", checks_per_install);
  std::printf("overhead              %12.6f %%  (bar: < 1%%)  %s\n",
              overhead_percent, pass ? "PASS" : "FAIL");

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"store\",\n"
                 "  \"workload\": \"atomic durable install + manifest-replay "
                 "recovery, failpoints compiled in but disarmed\",\n"
                 "  \"install_us_per_op\": %.1f,\n"
                 "  \"recover_us_per_op\": %.1f,\n"
                 "  \"failpoint_ns_per_check\": %.4f,\n"
                 "  \"store_checks_per_install\": %.2f,\n"
                 "  \"overhead_percent\": %.6f,\n"
                 "  \"threshold_percent\": 1.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 install_us, recover_us, check_ns, checks_per_install,
                 overhead_percent, pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return pass ? 0 : 1;
}
