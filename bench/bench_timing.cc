// §4.6 timing table: wall-clock time to publish the synopsis (P) and to
// reconstruct a single 6-way (Q6) and 8-way (Q8) marginal, for
//   Kosarak-like d=32 with C2(8,~) and C3(8,~)
//   AOL-like    d=45 with C2(8,~) and C3(8,~)
// Implemented with google-benchmark so numbers come from calibrated
// repetitions. The paper's Python implementation reports P = 8.78s /
// 90.81s / 47.42s / 593.27s and sub-minute queries; a C++ implementation
// should be one to two orders faster — shape, not absolute values.
//
// Run with --benchmark_min_time etc.; use --quick via env N override.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "metrics/metrics.h"

using namespace priview;

namespace {

struct Setting {
  const Dataset* data;
  CoveringDesign design;
};

const Dataset& Kosarak() {
  static const Dataset data = [] {
    Rng rng(861);
    return MakeKosarakLike(&rng, 912627);
  }();
  return data;
}

const Dataset& Aol() {
  static const Dataset data = [] {
    Rng rng(862);
    return MakeAolLike(&rng, 647377);
  }();
  return data;
}

CoveringDesign DesignFor(int d, int t) {
  Rng rng(900 + d + t);
  return MakeCoveringDesign(d, 8, t, &rng);
}

void BM_PublishSynopsis(benchmark::State& state, const Dataset& data, int t) {
  const CoveringDesign design = DesignFor(data.d(), t);
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    PriViewOptions options;
    options.epsilon = 1.0;
    benchmark::DoNotOptimize(
        PriViewSynopsis::Build(data, design.blocks, options, &rng));
  }
  state.SetLabel(design.Name());
}

void BM_Query(benchmark::State& state, const Dataset& data, int t, int k) {
  const CoveringDesign design = DesignFor(data.d(), t);
  Rng rng(7);
  PriViewOptions options;
  options.epsilon = 1.0;
  const PriViewSynopsis synopsis =
      PriViewSynopsis::Build(data, design.blocks, options, &rng);
  Rng qrng(8);
  const auto queries = SampleQuerySets(data.d(), k, 16, &qrng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synopsis.Query(queries[i % queries.size()]));
    ++i;
  }
  state.SetLabel(design.Name() + " Q" + std::to_string(k));
}

}  // namespace

BENCHMARK_CAPTURE(BM_PublishSynopsis, kosarak_c2, Kosarak(), 2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_PublishSynopsis, kosarak_c3, Kosarak(), 3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_PublishSynopsis, aol_c2, Aol(), 2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_PublishSynopsis, aol_c3, Aol(), 3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_CAPTURE(BM_Query, kosarak_c2_q6, Kosarak(), 2, 6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, kosarak_c2_q8, Kosarak(), 2, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, kosarak_c3_q6, Kosarak(), 3, 6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, kosarak_c3_q8, Kosarak(), 3, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, aol_c2_q6, Aol(), 2, 6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, aol_c2_q8, Aol(), 2, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, aol_c3_q6, Aol(), 3, 6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Query, aol_c3_q8, Aol(), 3, 8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
