// Reproduces the paper's analytic tables:
//   §3.2  — d-threshold where Direct beats Flat (k = 2..5)
//   §4.5a — the ell-selection objectives for ell = 5..12
//   §4.5b — the Kosarak t-selection row: noise error (Eq. 5) for t = 2,3,4
#include <cstdio>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/error_model.h"
#include "design/covering_design.h"
#include "design/view_selection.h"

using namespace priview;

int main(int argc, char** argv) {
  PrintHeader("Table (Sec 3.2): Direct-vs-Flat crossover");
  std::printf("%-4s %-28s\n", "k", "Direct better than Flat from");
  for (int k = 2; k <= 5; ++k) {
    std::printf("%-4d d >= %d\n", k, DirectBeatsFlatThreshold(k));
  }
  std::printf("(paper: 16, 26, 36, 46)\n");

  PrintHeader("Table (Sec 4.5): ell-selection objectives");
  std::printf("%-5s %-22s %-22s\n", "ell", "2^(l/2)/l(l-1)",
              "2^(l/2)/l(l-1)(l-2)");
  for (int ell = 5; ell <= 12; ++ell) {
    std::printf("%-5d %-22.3f %-22.3f\n", ell, EllObjectivePairs(ell),
                EllObjectiveTriples(ell));
  }
  std::printf("(paper row ell=8: 0.286, 0.048 — minimum region)\n");

  PrintHeader("Table (Sec 4.5): Kosarak t-selection (d=32, N~900k, eps=1)");
  const double n = FlagDouble(argc, argv, "n", 900000);
  const double eps = FlagDouble(argc, argv, "eps", 1.0);
  Rng rng(1);
  std::printf("%-4s %-6s %-12s %-30s\n", "t", "w", "err (Eq.5)",
              "paper (w=20/106/620)");
  const double paper_err[] = {0.00047, 0.0011, 0.0026};
  const int paper_w[] = {20, 106, 620};
  for (int t = 2; t <= 4; ++t) {
    const CoveringDesign design = MakeCoveringDesign(32, 8, t, &rng);
    const double err = NoiseErrorEq5(n, 32, eps, 8, design.w());
    std::printf("%-4d %-6d %-12.5f w=%d err=%.5f\n", t, design.w(), err,
                paper_w[t - 2], paper_err[t - 2]);
  }
  std::printf("(greedy designs use slightly more blocks than the La Jolla "
              "optima; Eq. 5 uses the actual w)\n");

  PrintHeader("ESE reference points (Sec 4.1 example, d=16, k=2, eps=1)");
  std::printf("Flat   ESE/Vu: %.0f (paper 65536)\n",
              FlatEse(16, 1.0) / UnitVariance(1.0));
  std::printf("Direct ESE/Vu: %.0f (paper 57600)\n",
              DirectEse(16, 2, 1.0) / UnitVariance(1.0));
  std::printf("Six 8-way views, pair ESE/Vu: %.0f (paper prints 9126; "
              "4*36*64 = 9216)\n",
              4.0 * 36.0 * 64.0);
  return 0;
}
