// Figure 6: different covering designs on the Kosarak-like dataset —
// varying ell in {6, 8, 10} for t = 2 and t = 3, with the Eq. 5 noise-error
// prediction printed as the paper's purple stars. Expected shape: designs
// with ell near 8 perform similarly; t = 3 designs give tighter error
// bands; noise error near 0.002 performs well.
//
// Flags: --queries=100 --runs=5 --quick=1
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "design/view_selection.h"

using namespace priview;

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 100);
  const int runs = FlagInt(argc, argv, "runs", 5);
  const bool quick = FlagBool(argc, argv, "quick", false);

  Rng data_rng(841);
  const Dataset data = MakeKosarakLike(&data_rng, quick ? 60000 : 912627);
  const int d = data.d();
  const double n = static_cast<double>(data.size());

  Rng design_rng(51);
  std::vector<CoveringDesign> designs;
  for (int t : {2, 3}) {
    for (int ell : {6, 8, 10}) {
      designs.push_back(MakeCoveringDesign(d, ell, t, &design_rng));
    }
  }

  for (double epsilon : {1.0, 0.1}) {
    for (int k : {4, 6, 8}) {
      PrintHeader("Figure 6: Kosarak-like d=32, eps=" +
                  std::to_string(epsilon) + ", k=" + std::to_string(k));
      Rng qrng(1100 + k);
      const auto queries = SampleQuerySets(d, k, num_queries, &qrng);
      for (const CoveringDesign& design : designs) {
        std::unique_ptr<PriViewSynopsis> synopsis;
        const WorkloadErrors errors = EvaluateWorkload(
            data, queries, runs,
            [&](int run) {
              Rng build_rng(9500 + run);
              PriViewOptions options;
              options.epsilon = epsilon;
              synopsis = std::make_unique<PriViewSynopsis>(
                  PriViewSynopsis::Build(data, design.blocks, options,
                                         &build_rng));
            },
            [&](AttrSet q) { return synopsis->Query(q); });
        PrintCandlestickRow(design.Name(), SummarizeErrors(errors));
        std::printf("%-28s noise-error prediction (Eq.5) = %.3e\n", "",
                    NoiseErrorEq5(n, d, epsilon, design.ell, design.w()));
      }
    }
  }
  return 0;
}
