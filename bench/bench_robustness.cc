// Robustness-cost benchmark: what do the failpoint sites cost when nothing
// is armed (the production state)? Times the reconstruction hot path with
// all failpoints disarmed, times the disarmed fast path itself in
// isolation, counts how many sites one reconstruction actually evaluates,
// and reports the overhead fraction — the acceptance bar is < 1%.
//
// Flags: --iters=400 --check_iters=20000000 --out=BENCH_robustness.json
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "core/reconstruct.h"
#include "core/synopsis.h"
#include "data/synthetic.h"

using namespace priview;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = FlagInt(argc, argv, "iters", 400);
  const long long check_iters =
      FlagInt(argc, argv, "check_iters", 20000000);
  std::string out_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }

  PrintHeader("Robustness: failpoints-disarmed overhead, reconstruction path");

  // The workload: solver-path reconstructions (uncovered targets) over an
  // exact synopsis — the serving hot path the failpoints instrument.
  Rng rng(42);
  Dataset data = MakeMsnbcLike(&rng, 50000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
  const std::vector<AttrSet> targets = {
      AttrSet::FromIndices({0, 4}), AttrSet::FromIndices({1, 3}),
      AttrSet::FromIndices({0, 3, 5}), AttrSet::FromIndices({2, 6})};

  failpoint::DisarmAll();

  // 1. Reconstruction throughput with every failpoint disarmed.
  double sink = 0.0;
  const double t0 = NowSeconds();
  for (int i = 0; i < iters; ++i) {
    const MarginalTable table = ReconstructMarginal(
        synopsis.views(), targets[static_cast<size_t>(i) % targets.size()],
        synopsis.total(), ReconstructionMethod::kMaxEntropy);
    sink += table.At(0);
  }
  const double reconstruct_ns =
      (NowSeconds() - t0) / static_cast<double>(iters) * 1e9;

  // 2. The disarmed fast path in isolation: one env-init check plus one
  // relaxed atomic load per site visit.
  long long fired = 0;
  const double t1 = NowSeconds();
  for (long long i = 0; i < check_iters; ++i) {
    if (PRIVIEW_FAILPOINT("bench/robustness-probe")) ++fired;
  }
  const double check_ns =
      (NowSeconds() - t1) / static_cast<double>(check_iters) * 1e9;

  // 3. Sites evaluated per reconstruction: arm everything in counting mode
  // ("off" never fires but counts hits) and replay the workload.
  for (const std::string& name : failpoint::KnownFailpoints()) {
    (void)failpoint::Arm(name, "off");
  }
  const int count_iters = 32;
  for (int i = 0; i < count_iters; ++i) {
    const MarginalTable table = ReconstructMarginal(
        synopsis.views(), targets[static_cast<size_t>(i) % targets.size()],
        synopsis.total(), ReconstructionMethod::kMaxEntropy);
    sink += table.At(0);
  }
  double total_hits = 0.0;
  for (const std::string& name : failpoint::KnownFailpoints()) {
    total_hits += static_cast<double>(failpoint::HitCount(name));
  }
  failpoint::DisarmAll();
  const double checks_per_op = total_hits / count_iters;

  const double overhead = reconstruct_ns > 0.0
                              ? checks_per_op * check_ns / reconstruct_ns
                              : 0.0;
  const double overhead_percent = overhead * 100.0;
  const bool pass = overhead_percent < 1.0;

  std::printf("reconstruct           %12.1f ns/op  (%d iters, sink %.3g)\n",
              reconstruct_ns, iters, sink + fired);
  std::printf("failpoint fast path   %12.3f ns/check  (%lld iters)\n",
              check_ns, check_iters);
  std::printf("sites per reconstruct %12.2f\n", checks_per_op);
  std::printf("overhead              %12.5f %%  (bar: < 1%%)  %s\n",
              overhead_percent, pass ? "PASS" : "FAIL");

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"robustness\",\n"
                 "  \"workload\": \"solver-path reconstruction, failpoints "
                 "compiled in but disarmed\",\n"
                 "  \"reconstruct_ns_per_op\": %.1f,\n"
                 "  \"failpoint_ns_per_check\": %.4f,\n"
                 "  \"failpoint_checks_per_op\": %.2f,\n"
                 "  \"overhead_percent\": %.6f,\n"
                 "  \"threshold_percent\": 1.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 reconstruct_ns, check_ns, checks_per_op, overhead_percent,
                 pass ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
