// Ablations called out in DESIGN.md, beyond the paper's figures:
//   A. consistency on/off (with reconstruction held at CME)
//   B. Ripple theta sweep
//   C. IPF vs dual-ascent max-entropy solver agreement and speed
//   D. averaging-vs-single-view for covered queries (implicit in
//      consistency: measured via covered pairs)
//
// Flags: --queries=60 --runs=3 --quick=1
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/reconstruct.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "opt/ipf.h"
#include "opt/max_ent_dual.h"

using namespace priview;

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 60);
  const int runs = FlagInt(argc, argv, "runs", 3);
  const bool quick = FlagBool(argc, argv, "quick", false);

  Rng data_rng(881);
  const Dataset data = MakeKosarakLike(&data_rng, quick ? 60000 : 300000);
  Rng design_rng(882);
  const CoveringDesign design = MakeCoveringDesign(32, 8, 2, &design_rng);
  Rng qrng(883);
  const auto queries = SampleQuerySets(32, 6, num_queries, &qrng);

  // A: consistency ablation.
  PrintHeader("Ablation A: consistency step on/off (k=6, eps=1.0, CME)");
  for (bool consistency : {true, false}) {
    std::unique_ptr<PriViewSynopsis> synopsis;
    const WorkloadErrors errors = EvaluateWorkload(
        data, queries, runs,
        [&](int run) {
          Rng rng(900 + run);
          PriViewOptions options;
          options.epsilon = 1.0;
          options.run_consistency = consistency;
          synopsis = std::make_unique<PriViewSynopsis>(
              PriViewSynopsis::Build(data, design.blocks, options, &rng));
        },
        [&](AttrSet q) { return synopsis->Query(q); });
    PrintCandlestickRow(consistency ? "consistency=on" : "consistency=off",
                        SummarizeErrors(errors));
  }

  // B: theta sweep.
  PrintHeader("Ablation B: Ripple theta sweep (k=6, eps=1.0)");
  for (double theta : {0.0, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    std::unique_ptr<PriViewSynopsis> synopsis;
    const WorkloadErrors errors = EvaluateWorkload(
        data, queries, runs,
        [&](int run) {
          Rng rng(910 + run);
          PriViewOptions options;
          options.epsilon = 1.0;
          options.ripple.theta = theta;
          synopsis = std::make_unique<PriViewSynopsis>(
              PriViewSynopsis::Build(data, design.blocks, options, &rng));
        },
        [&](AttrSet q) { return synopsis->Query(q); });
    PrintCandlestickRow("theta=" + std::to_string(theta),
                        SummarizeErrors(errors));
  }

  // C: solver agreement + speed.
  PrintHeader("Ablation C: IPF vs dual-ascent max entropy");
  {
    Rng rng(920);
    PriViewOptions options;
    options.epsilon = 1.0;
    const PriViewSynopsis synopsis =
        PriViewSynopsis::Build(data, design.blocks, options, &rng);
    double max_gap = 0.0;
    double ipf_ms = 0.0, dual_ms = 0.0;
    const int sample = std::min<int>(10, static_cast<int>(queries.size()));
    for (int i = 0; i < sample; ++i) {
      const AttrSet q = queries[i];
      std::vector<MarginalConstraint> constraints =
          ConstraintsFor(synopsis.views(), q);
      const auto t0 = std::chrono::steady_clock::now();
      const IpfResult ipf =
          MaxEntropyIpf(q, synopsis.total(), constraints);
      const auto t1 = std::chrono::steady_clock::now();
      const MaxEntDualResult dual =
          MaxEntropyDual(q, synopsis.total(), constraints);
      const auto t2 = std::chrono::steady_clock::now();
      ipf_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      dual_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      for (size_t c = 0; c < ipf.table.size(); ++c) {
        max_gap = std::max(
            max_gap, std::abs(ipf.table.At(c) - dual.table.At(c)));
      }
    }
    std::printf("max |IPF - dual| over %d queries: %.4f counts "
                "(N=%zu)\n",
                sample, max_gap, data.size());
    std::printf("mean solve time: IPF %.2f ms, dual %.2f ms\n",
                ipf_ms / sample, dual_ms / sample);
  }

  // D: covered-pair error (averaging across covering views happens inside
  // Query; compare against reading a single view).
  PrintHeader("Ablation D: covered-pair averaging vs single view");
  {
    Rng rng(930);
    PriViewOptions options;
    options.epsilon = 1.0;
    const PriViewSynopsis synopsis =
        PriViewSynopsis::Build(data, design.blocks, options, &rng);
    // Find pairs covered by >= 2 views.
    double avg_err = 0.0, single_err = 0.0;
    int used = 0;
    for (int a = 0; a < 32 && used < 40; ++a) {
      for (int b = a + 1; b < 32 && used < 40; ++b) {
        const AttrSet pair = AttrSet::FromIndices({a, b});
        std::vector<const MarginalTable*> covering;
        for (const MarginalTable& v : synopsis.views()) {
          if (pair.IsSubsetOf(v.attrs())) covering.push_back(&v);
        }
        if (covering.size() < 2) continue;
        const MarginalTable truth = data.CountMarginal(pair);
        avg_err += synopsis.Query(pair).L2DistanceTo(truth);
        single_err += covering[0]->Project(pair).L2DistanceTo(truth);
        ++used;
      }
    }
    if (used > 0) {
      std::printf("pairs covered by >=2 views: %d; mean L2 error "
                  "averaged=%.2f single-view=%.2f\n",
                  used, avg_err / used, single_err / used);
      std::printf("(after consistency the views agree, so both numbers "
                  "reflect the variance-reduced estimate)\n");
    } else {
      std::printf("no multiply-covered pairs in this design\n");
    }
  }
  return 0;
}
