// Scaling ablation (beyond the paper's figures): PriView's measured error
// against the analytic predictions as N and epsilon vary, holding the
// design fixed. Validates the Eq. 5 / PredictQueryEse error model that
// drives view selection: measured noise error should track the prediction
// with a ~1/(N eps) profile until coverage error takes over.
//
// Flags: --queries=40 --runs=3
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/synopsis.h"
#include "core/variance.h"
#include "data/synthetic.h"
#include "design/covering_design.h"
#include "design/view_selection.h"

using namespace priview;

namespace {

void RunPoint(const Dataset& data, const CoveringDesign& design,
              double epsilon, const std::vector<AttrSet>& queries,
              int runs, const std::string& label) {
  std::unique_ptr<PriViewSynopsis> synopsis;
  const WorkloadErrors errors = EvaluateWorkload(
      data, queries, runs,
      [&](int run) {
        Rng rng(3000 + run);
        PriViewOptions options;
        options.epsilon = epsilon;
        synopsis = std::make_unique<PriViewSynopsis>(
            PriViewSynopsis::Build(data, design.blocks, options, &rng));
      },
      [&](AttrSet q) { return synopsis->Query(q); });
  const ErrorSummary summary = SummarizeErrors(errors);
  // Analytic predictions for comparison.
  double predicted = 0.0;
  for (AttrSet q : queries) {
    predicted += PredictNormalizedError(design.blocks, q, epsilon,
                                        static_cast<double>(data.size()));
  }
  predicted /= static_cast<double>(queries.size());
  std::printf("%-26s measured mean=%.3e  predicted noise=%.3e  Eq5=%.3e\n",
              label.c_str(), summary.l2.mean, predicted,
              NoiseErrorEq5(static_cast<double>(data.size()), data.d(),
                            epsilon, design.ell, design.w()));
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 40);
  const int runs = FlagInt(argc, argv, "runs", 3);
  const int d = 32;

  Rng design_rng(61);
  const CoveringDesign design = MakeCoveringDesign(d, 8, 2, &design_rng);
  Rng qrng(62);
  const auto queries = SampleQuerySets(d, 4, num_queries, &qrng);

  PrintHeader("Scaling in N (eps=1.0, k=4, " + design.Name() + ")");
  for (size_t n : {20000, 60000, 180000, 540000}) {
    Rng data_rng(63);
    const Dataset data = MakeKosarakLike(&data_rng, n);
    RunPoint(data, design, 1.0, queries, runs, "N=" + std::to_string(n));
  }

  PrintHeader("Scaling in epsilon (N=180000, k=4)");
  Rng data_rng(63);
  const Dataset data = MakeKosarakLike(&data_rng, 180000);
  for (double epsilon : {2.0, 1.0, 0.5, 0.2, 0.1, 0.05}) {
    RunPoint(data, design, epsilon, queries, runs,
             "eps=" + std::to_string(epsilon));
  }
  return 0;
}
