// Figure 1: all methods on the MSNBC-like dataset (d = 9), L2 error
// candlesticks. Methods: PriView (C2(6,3), max-entropy), Flat, Direct,
// Fourier, FourierLP, MWEM, Matrix Mechanism (expected error), Learning
// with gamma = 1/2, 1/4, 1/8 (plus noise-free stars), Uniform.
//
// Flags: --queries=200 --runs=5 --n=989818 --k=2,4 via --kmin/--kmax
#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/datacube.h"
#include "baselines/direct.h"
#include "baselines/flat.h"
#include "baselines/fourier.h"
#include "baselines/learning.h"
#include "baselines/matrix_mechanism.h"
#include "baselines/mwem.h"
#include "baselines/uniform.h"
#include "bench_util/harness.h"
#include "common/combinatorics.h"
#include "common/rng.h"
#include "core/error_model.h"
#include "core/synopsis.h"
#include "data/synthetic.h"
#include "design/covering_design.h"

using namespace priview;

namespace {

void RunMechanism(const Dataset& data, const std::vector<AttrSet>& queries,
                  int runs, double epsilon, int k,
                  MarginalMechanism* mechanism, uint64_t seed) {
  Rng rng(seed);
  const WorkloadErrors errors = EvaluateWorkload(
      data, queries, runs,
      [&](int) { mechanism->Fit(data, epsilon, k, &rng); },
      [&](AttrSet q) { return mechanism->Query(q); });
  PrintCandlestickRow(mechanism->Name(), SummarizeErrors(errors));
}

}  // namespace

int main(int argc, char** argv) {
  const int num_queries = FlagInt(argc, argv, "queries", 200);
  const int runs = FlagInt(argc, argv, "runs", 5);
  const size_t n = static_cast<size_t>(FlagInt(argc, argv, "n", 989818));
  const int kmin = FlagInt(argc, argv, "kmin", 2);
  const int kmax = FlagInt(argc, argv, "kmax", 4);
  const bool quick = FlagBool(argc, argv, "quick", false);

  Rng data_rng(20140622);
  const Dataset data = MakeMsnbcLike(&data_rng, quick ? 50000 : n);
  const int d = data.d();

  for (double epsilon : {1.0, 0.1}) {
    for (int k = kmin; k <= kmax; k += 2) {
      PrintHeader("Figure 1: MSNBC-like d=9, eps=" + std::to_string(epsilon) +
                  ", k=" + std::to_string(k));
      Rng qrng(42 + k);
      const int max_queries = std::min<long long>(
          num_queries, static_cast<long long>(BinomialDouble(d, k)));
      const auto queries = SampleQuerySets(d, k, max_queries, &qrng);

      // PriView with the paper's C2(6,3).
      {
        Rng rng(1);
        const CoveringDesign design = MakeCoveringDesign(9, 6, 2, &rng);
        std::unique_ptr<PriViewSynopsis> synopsis;
        const WorkloadErrors errors = EvaluateWorkload(
            data, queries, runs,
            [&](int run) {
              Rng build_rng(1000 + run);
              PriViewOptions options;
              options.epsilon = epsilon;
              synopsis = std::make_unique<PriViewSynopsis>(
                  PriViewSynopsis::Build(data, design.blocks, options,
                                         &build_rng));
            },
            [&](AttrSet q) { return synopsis->Query(q); });
        PrintCandlestickRow("PriView " + design.Name(),
                            SummarizeErrors(errors));
      }

      FlatMechanism flat;
      RunMechanism(data, queries, runs, epsilon, k, &flat, 2);
      {
        // §5.1: "The DataCube method in [8] would choose Flat" at d = 9.
        DataCubeMechanism datacube;
        RunMechanism(data, queries, runs, epsilon, k, &datacube, 21);
      }
      DirectMechanism direct;
      RunMechanism(data, queries, runs, epsilon, k, &direct, 3);
      FourierMechanism fourier;
      RunMechanism(data, queries, runs, epsilon, k, &fourier, 4);
      {
        FourierLpMechanism fourier_lp;
        const int lp_runs = quick ? 1 : std::min(runs, 3);
        RunMechanism(data, queries, lp_runs, epsilon, k, &fourier_lp, 5);
      }
      {
        MwemOptions mwem_options;
        if (quick) mwem_options.update_sweeps = 20;
        MwemMechanism mwem(mwem_options);
        RunMechanism(data, queries, runs, epsilon, k, &mwem, 6);
      }
      for (double gamma : {0.5, 0.25, 0.125}) {
        LearningMechanism learning(gamma);
        RunMechanism(data, queries, runs, epsilon, k, &learning, 7);
        LearningMechanism stars(gamma, /*add_noise=*/false);
        RunMechanism(data, queries, 1, epsilon, k, &stars, 8);
      }
      UniformMechanism uniform;
      RunMechanism(data, queries, 1, epsilon, k, &uniform, 9);

      // Matrix mechanism: expected per-query normalized L2 (analytic).
      const MatrixMechanismResult mm = EvaluateMatrixMechanism(d, k, epsilon);
      std::printf("%-28s L2  expected=%.3e (best strategy: %s)\n",
                  "MatrixMech(expected)",
                  ExpectedNormalizedL2(mm.best.expected_marginal_ese,
                                       static_cast<double>(data.size())),
                  mm.best.strategy.c_str());
    }
  }
  return 0;
}
