// Observability-cost benchmark: what does the tracing substrate cost when
// nothing is armed (the production state), and what does an armed scrape
// look like? Three measurements:
//
//   1. Disarmed-span overhead on the serving hot path: the span-free cached
//      hit, and the cheapest spanned op — a covered-target cache miss
//      (lookup + projection + insert), which sets the strictest bar.
//      Acceptance: < 1% (exit code enforced, like bench_robustness).
//   2. Per-phase publish breakdown: armed builds, reported from the
//      priview_span_duration_us histograms the scrape would export.
//   3. Slow-query log: armed queries over a threshold, hit count.
//
// Flags: --iters=20000 --span_iters=20000000 --builds=3
//        --slow_threshold_us=200 --out=BENCH_observability.json
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/query_engine.h"
#include "data/synthetic.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

using namespace priview;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SpanTotal(const char* name) {
  return obs::MetricsRegistry::Global()
      .GetHistogram("priview_span_duration_us", {{"span", name}})
      ->total_count();
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = FlagInt(argc, argv, "iters", 20000);
  const long long span_iters = FlagInt(argc, argv, "span_iters", 20000000);
  const int builds = FlagInt(argc, argv, "builds", 3);
  const int slow_threshold_us = FlagInt(argc, argv, "slow_threshold_us", 200);
  std::string out_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }

  PrintHeader("Observability: disarmed-span overhead, armed publish breakdown");

  // The workload: steady-state cached marginal queries — the serving hot
  // path, and the cheapest operation a span wraps.
  Rng rng(42);
  Dataset data = MakeMsnbcLike(&rng, 50000);
  PriViewOptions options;
  options.add_noise = false;
  const PriViewSynopsis synopsis = PriViewSynopsis::Build(
      data,
      {AttrSet::FromIndices({0, 1, 2}), AttrSet::FromIndices({2, 3, 4}),
       AttrSet::FromIndices({4, 5, 6})},
      options, &rng);
  StatusOr<QueryEngine> engine = QueryEngine::Create(&synopsis);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const std::vector<AttrSet> targets = {
      AttrSet::FromIndices({0, 4}), AttrSet::FromIndices({1, 3}),
      AttrSet::FromIndices({0, 3, 5}), AttrSet::FromIndices({2, 6})};
  // Warm the cache so the timed loop measures the steady state.
  double sink = 0.0;
  for (const AttrSet& target : targets) {
    sink += engine.value().TryMarginal(target).value().At(0);
  }
  // The cheapest op that actually crosses a span: a covered-target cache
  // miss (lookup + projection + insert). A 2-entry cache cycled over four
  // covered targets misses every time, so the timed loop is 100% the
  // spanned miss path at its minimum realistic cost.
  QueryEngineOptions miss_options;
  miss_options.cache_capacity = 2;
  StatusOr<QueryEngine> thrashed =
      QueryEngine::Create(&synopsis, miss_options);
  if (!thrashed.ok()) return 1;
  const std::vector<AttrSet> covered = {
      AttrSet::FromIndices({0, 1}), AttrSet::FromIndices({2, 3}),
      AttrSet::FromIndices({4, 5}), AttrSet::FromIndices({1, 2})};

  obs::Tracer::Global().Disarm();

  // 1a. Query throughput with tracing disarmed (the production state):
  // the span-free cached hot path, and the cheapest spanned miss path.
  // Each measurement is the best of kReps repetitions — the noisy shared
  // environment otherwise swings single-shot timings by 2x.
  constexpr int kReps = 5;
  double hit_ns = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0 = NowSeconds();
    for (int i = 0; i < iters; ++i) {
      sink += engine.value()
                  .TryMarginal(targets[static_cast<size_t>(i) % targets.size()])
                  .value()
                  .At(0);
    }
    const double ns = (NowSeconds() - t0) / static_cast<double>(iters) * 1e9;
    if (ns < hit_ns) hit_ns = ns;
  }
  double miss_ns = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0b = NowSeconds();
    for (int i = 0; i < iters; ++i) {
      sink += thrashed.value()
                  .TryMarginal(covered[static_cast<size_t>(i) % covered.size()])
                  .value()
                  .At(0);
    }
    const double ns = (NowSeconds() - t0b) / static_cast<double>(iters) * 1e9;
    if (ns < miss_ns) miss_ns = ns;
  }

  // 1b. The disarmed span in isolation: one relaxed atomic load in the
  // constructor, one branch in the destructor. The timing loop's own
  // increment/compare/branch costs as much as the span does, so calibrate
  // with an identical empty loop and subtract.
  long long base_sink = 0;
  long long active = 0;
  const long long rep_iters = span_iters / kReps > 0 ? span_iters / kReps : 1;
  double base_ns = 1e18;
  double span_raw_ns = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const double tb = NowSeconds();
    for (long long i = 0; i < rep_iters; ++i) {
      asm volatile("" : "+r"(base_sink));  // keep the empty loop alive
    }
    const double ns =
        (NowSeconds() - tb) / static_cast<double>(rep_iters) * 1e9;
    if (ns < base_ns) base_ns = ns;
    const double t1 = NowSeconds();
    for (long long i = 0; i < rep_iters; ++i) {
      obs::TraceSpan span("bench/obs-probe");
      if (span.active()) ++active;
    }
    const double raw =
        (NowSeconds() - t1) / static_cast<double>(rep_iters) * 1e9;
    if (raw < span_raw_ns) span_raw_ns = raw;
  }
  const double span_ns =
      span_raw_ns > base_ns ? span_raw_ns - base_ns : 0.0;

  // 1c. Spans evaluated per op: armed spans record exactly one observation
  // per site visit, so replay a slice of each workload armed and count
  // histogram growth. The cached hot path is deliberately span-free.
  obs::Tracer::Global().Arm();
  const int count_iters = 256;
  uint64_t marginal_before = SpanTotal("query/marginal");
  uint64_t solve_before = SpanTotal("query/solve");
  for (int i = 0; i < count_iters; ++i) {
    sink += engine.value()
                .TryMarginal(targets[static_cast<size_t>(i) % targets.size()])
                .value()
                .At(0);
  }
  const double hit_spans_per_op =
      static_cast<double>((SpanTotal("query/marginal") - marginal_before) +
                          (SpanTotal("query/solve") - solve_before)) /
      count_iters;
  marginal_before = SpanTotal("query/marginal");
  solve_before = SpanTotal("query/solve");
  for (int i = 0; i < count_iters; ++i) {
    sink += thrashed.value()
                .TryMarginal(covered[static_cast<size_t>(i) % covered.size()])
                .value()
                .At(0);
  }
  const double miss_spans_per_op =
      static_cast<double>((SpanTotal("query/marginal") - marginal_before) +
                          (SpanTotal("query/solve") - solve_before)) /
      count_iters;
  obs::Tracer::Global().Disarm();

  // The bar applies to whichever path spans make relatively costlier.
  const double hit_overhead =
      hit_ns > 0.0 ? hit_spans_per_op * span_ns / hit_ns : 0.0;
  const double miss_overhead =
      miss_ns > 0.0 ? miss_spans_per_op * span_ns / miss_ns : 0.0;
  const double overhead_percent =
      100.0 * (hit_overhead > miss_overhead ? hit_overhead : miss_overhead);
  const bool pass = overhead_percent < 1.0;

  std::printf("cache-hit query       %12.1f ns/op  %5.2f spans/op\n", hit_ns,
              hit_spans_per_op);
  std::printf("cache-miss query      %12.1f ns/op  %5.2f spans/op\n", miss_ns,
              miss_spans_per_op);
  std::printf(
      "disarmed span         %12.3f ns/span  (raw %.3f - loop %.3f; "
      "%lld iters, sink %.3g)\n",
      span_ns, span_raw_ns, base_ns, span_iters,
      sink + static_cast<double>(active + base_sink));
  std::printf("overhead              %12.5f %%  (bar: < 1%%)  %s\n",
              overhead_percent, pass ? "PASS" : "FAIL");

  // 2. Armed publish breakdown: noisy pipeline builds under tracing, then
  // read the per-phase histograms the metrics scrape would export.
  static const char* const kPhases[] = {
      "publish",        "publish/count",       "publish/noise",
      "publish/ripple", "publish/consistency", "pipeline/select-views"};
  struct PhaseRow {
    uint64_t count;
    uint64_t sum_us;
  };
  PhaseRow before[6];
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (int p = 0; p < 6; ++p) {
    const obs::Histogram::Snapshot s =
        registry.GetHistogram("priview_span_duration_us",
                              {{"span", kPhases[p]}})
            ->TakeSnapshot();
    before[p] = {s.total, s.sum};
  }
  obs::TracerOptions trace_options;
  trace_options.slow_span_threshold_us =
      static_cast<uint64_t>(slow_threshold_us);
  obs::Tracer::Global().Arm(trace_options);
  for (int b = 0; b < builds; ++b) {
    Rng build_rng(1000 + static_cast<uint64_t>(b));
    PipelineOptions pipeline_options;
    pipeline_options.total_epsilon = 1.0;
    StatusOr<PipelineResult> built =
        BuildPriViewPipeline(data, pipeline_options, &build_rng);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    sink += built.value().synopsis.Query(AttrSet::FromIndices({0, 4})).At(0);
  }

  // 3. Slow-query log: reconstruction-path queries under the threshold.
  for (int i = 0; i < 64; ++i) {
    sink += engine.value()
                .TryMarginal(targets[static_cast<size_t>(i) % targets.size()])
                .value()
                .At(0);
  }
  const uint64_t slow_hits = obs::Tracer::Global().SlowSpanCount();
  obs::Tracer::Global().Disarm();

  std::printf("\nArmed publish breakdown (%d builds):\n", builds);
  PhaseRow rows[6];
  for (int p = 0; p < 6; ++p) {
    const obs::Histogram::Snapshot s =
        registry.GetHistogram("priview_span_duration_us",
                              {{"span", kPhases[p]}})
            ->TakeSnapshot();
    rows[p] = {s.total - before[p].count, s.sum - before[p].sum_us};
    const double avg_us =
        rows[p].count > 0
            ? static_cast<double>(rows[p].sum_us) / rows[p].count
            : 0.0;
    std::printf("  %-22s %8llu spans  %10.1f us avg\n", kPhases[p],
                (unsigned long long)rows[p].count, avg_us);
  }
  std::printf("slow-span log hits    %12llu  (threshold %d us)\n",
              (unsigned long long)slow_hits, slow_threshold_us);

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"observability\",\n"
                 "  \"workload\": \"cache-hit and thrashed cache-miss "
                 "queries, tracing compiled in but disarmed\",\n"
                 "  \"cache_hit_ns_per_op\": %.1f,\n"
                 "  \"cache_hit_spans_per_op\": %.2f,\n"
                 "  \"cache_miss_ns_per_op\": %.1f,\n"
                 "  \"cache_miss_spans_per_op\": %.2f,\n"
                 "  \"disarmed_span_ns\": %.4f,\n"
                 "  \"disarmed_span_raw_ns\": %.4f,\n"
                 "  \"empty_loop_ns\": %.4f,\n"
                 "  \"overhead_percent\": %.6f,\n"
                 "  \"threshold_percent\": 1.0,\n"
                 "  \"pass\": %s,\n"
                 "  \"publish_breakdown\": {\n",
                 hit_ns, hit_spans_per_op, miss_ns, miss_spans_per_op, span_ns,
                 span_raw_ns, base_ns, overhead_percent,
                 pass ? "true" : "false");
    for (int p = 0; p < 6; ++p) {
      const double avg_us =
          rows[p].count > 0
              ? static_cast<double>(rows[p].sum_us) / rows[p].count
              : 0.0;
      std::fprintf(json, "    \"%s\": {\"spans\": %llu, \"avg_us\": %.1f}%s\n",
                   kPhases[p], (unsigned long long)rows[p].count, avg_us,
                   p + 1 < 6 ? "," : "");
    }
    std::fprintf(json,
                 "  },\n"
                 "  \"slow_span_threshold_us\": %d,\n"
                 "  \"slow_span_log_hits\": %llu\n"
                 "}\n",
                 slow_threshold_us, (unsigned long long)slow_hits);
    std::fclose(json);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
